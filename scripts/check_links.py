#!/usr/bin/env python3
"""Check relative markdown links and intra-document anchors.

Usage::

    python scripts/check_links.py README.md docs

Arguments are markdown files or directories (scanned for ``*.md``).
For every inline link ``[text](target)``:

* ``http(s)://`` and ``mailto:`` targets are skipped (no network in CI);
* relative file targets must exist (resolved against the containing
  file's directory);
* ``#anchor`` fragments — bare or on a relative ``.md`` target — must
  match a heading in the referenced document, using GitHub's slug rules
  (lowercase, punctuation dropped, spaces to dashes).

Exit status 0 when everything resolves, 1 otherwise (one line per
broken link).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    """All heading anchors of a markdown file (code fences skipped)."""
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_md_files(args: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in args:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        else:
            files.append(p)
    return files


def check(files: list[Path]) -> list[str]:
    errors: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}
    for md in files:
        in_fence = False
        for lineno, line in enumerate(
            md.read_text(encoding="utf-8").splitlines(), 1
        ):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, fragment = target.partition("#")
                if path_part:
                    dest = (md.parent / path_part).resolve()
                    if not dest.exists():
                        errors.append(
                            f"{md}:{lineno}: broken link -> {target}"
                        )
                        continue
                else:
                    dest = md.resolve()
                if fragment and dest.suffix == ".md":
                    if dest not in anchor_cache:
                        anchor_cache[dest] = anchors_of(dest)
                    if fragment not in anchor_cache[dest]:
                        errors.append(
                            f"{md}:{lineno}: missing anchor -> {target}"
                        )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    files = iter_md_files(argv)
    errors = check(files)
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
