#!/usr/bin/env python
"""Generate EXPERIMENTS.md from saved benchmark output.

Usage::

    python scripts/generate_experiments.py paper_results.txt [more.txt ...]

Parses the rendered tables saved by ``repro-bench --out``, re-applies the
per-figure shape checks, and writes the full EXPERIMENTS.md including the
methodology header and the paper-vs-measured commentary.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.figures import FIGURES
from repro.bench.report import figure_section, load_results

HEADER = """\
# EXPERIMENTS — paper vs. measured

This document is **generated** (`python scripts/generate_experiments.py`)
from actual benchmark runs, so the tables below are exactly what the code
produces.  Regenerate the inputs with::

    repro-bench --all --mode paper --quiet --out paper_results.txt

## Methodology

* All numbers are **virtual time** from the deterministic simulator
  (DESIGN.md §2 explains the cluster substitution); the reproduction
  target is the *shape* of each figure — who wins, the trend direction,
  rough factors — not absolute microseconds.
* Measurements follow the paper's OSU protocol (§5): a warm-up
  iteration absorbs the one-off hierarchy/window setup the paper
  excludes, then the timed run; the slowest rank's time is reported.
  (The simulator is deterministic, so one timed repetition equals the
  mean of the paper's 10000.)
* `Hy_*` = the hybrid MPI+MPI implementation (this repo's
  `repro.core`), synchronization barriers *included*, as in the paper.
  `Allgather`/`Ori_*` = the tuned pure-MPI baseline (SMP-aware
  hierarchical collectives, MPICH-style algorithm selection,
  Cray-MPI/Open-MPI personalities).
* Each section carries an automated verdict: the shape check is code
  (`repro.bench.report.SHAPE_CHECKS`), evaluated against the measured
  rows at generation time.

## Reproducing through the cached sweep service

The sweep-style figures are also reproducible through `repro-sweep`
(docs/sweeps.md), which shards the points across worker processes and
memoizes every result in a content-addressed cache.  Virtual-time
results are bit-identical to the committed baselines — `--check-bench`
asserts it — and a warm re-run answers entirely from cache::

    repro-sweep run --figure fig7  --cache sweep-cache --workers 4 --check-bench .
    repro-sweep run --figure fig9  --cache sweep-cache --workers 4 --check-bench .
    repro-sweep run --figure fig10 --cache sweep-cache --workers 4 --check-bench .
    repro-sweep run --figure fig10 --cache sweep-cache --check-bench .  # warm: 100% hits

On the reference machine the cold full Fig 10 sweep takes ~8 s and the
warm re-run ~2 ms (>1000× the required 10×).  The transport-crossover
extension reuses the same cache through the model engine::

    repro-model transports --cache sweep-cache

and a long-running advisor can serve the warmed cache over HTTP
(`repro-sweep serve --cache sweep-cache --port 8017`; endpoints in
docs/sweeps.md).

## Summary of shapes vs. the paper

| figure | paper's claim | reproduced? | note |
|---|---|---|---|
| Fig 7 | Hy flat & always faster on one node; pure grows | yes | Hy ~0.9-1.2 µs constant; pure 3.5 µs → 4.8 ms |
| Fig 8a/8b | Hy slightly slower at 1 rank/node; gap shrinks | yes | worst case ~1.1-1.4× at tiny sizes, ~1.0× large |
| Fig 9a/9b | advantage grows with ranks/node | yes | monotone in ppn for both message sizes & MPIs |
| Fig 10 | Hy wins on irregular population | yes | ratios > 1 at every size |
| Fig 11a-d | Hy_SUMMA consistently ≥ Ori; small blocks gain most | mostly | ratios ≥ 1 with clear wins; our peak is ~2-2.8× vs the paper's 5× for 8×8 (see DESIGN.md §8) |
| Fig 12 | BPMF ratio > 1, slow rise, savings ≤ ~10 % | yes | 1.01-1.02 at 24 cores rising to ~1.1-1.15 at 1024 (paper: +3.9 % at 1024, savings up to 10 %) |
| §6 sync | flags cheaper than barrier | yes | ablation `abl_sync` |
| §6 placement | node-sorted array avoids packing penalty | yes | ablation `abl_placement` |
| §7 pipeline | pipelining helps large irregular exchanges | yes | ablation `abl_pipeline`, ~3.4× on skewed blocks |
| [14] multi-leader | baseline improvement, gap remains | yes | ablation `abl_multileader` |

---

## Measured results
"""


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    sections = []
    seen = set()
    for path in argv:
        for result in load_results(path):
            if result.figure_id in seen:
                continue
            seen.add(result.figure_id)
            claim = (
                FIGURES[result.figure_id].paper_claim
                if result.figure_id in FIGURES
                else "(unregistered figure)"
            )
            sections.append((result.figure_id, figure_section(result, claim)))
    # Order: paper figures first (fig*), then ablations, then extensions.
    def sort_key(item):
        fid = item[0]
        if fid.startswith("fig"):
            return (0, fid)
        if fid.startswith("abl"):
            return (1, fid)
        return (2, fid)

    sections.sort(key=sort_key)
    body = HEADER + "\n" + "\n".join(text for _fid, text in sections)
    Path("EXPERIMENTS.md").write_text(body, encoding="utf-8")
    print(f"EXPERIMENTS.md written with {len(sections)} figure sections")
    missing = set(FIGURES) - seen
    if missing:
        print(f"note: no saved results for: {', '.join(sorted(missing))}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
