#!/usr/bin/env python
"""BPMF on a synthetic chembl-like dataset — Ori_ vs Hy_ (paper §5.2.2).

Runs the real Gibbs sampler in data mode on a down-scaled synthetic
activity matrix, shows the training RMSE falling over the iterations
(the factorization genuinely learns), and compares the total time of
the pure-MPI and hybrid MPI+MPI allgather variants.

Run:  python examples/bpmf_factorization.py
"""

from repro.apps.bpmf import BPMFConfig, bpmf_program
from repro.apps.datasets import synthetic_chembl
from repro.machine import hazel_hen
from repro.mpi import run_program

CORES = 16


def main():
    dataset = synthetic_chembl(
        n_compounds=600, n_targets=120, density=0.08, latent_dim=8, seed=11
    )
    print(
        f"synthetic activity matrix: {dataset.num_compounds} compounds x "
        f"{dataset.num_targets} targets, {dataset.nnz} observations "
        f"({dataset.density * 100:.1f}% dense)"
    )
    results = {}
    for variant in ("ori", "hybrid"):
        cfg = BPMFConfig(
            dataset=dataset,
            iterations=6,
            latent_dim=8,
            variant=variant,
            per_item_overhead=0.0,       # real math is being executed
            per_iteration_overhead=0.0,
        )
        res = run_program(
            hazel_hen(num_nodes=1),
            nprocs=CORES,
            program=bpmf_program,
            program_kwargs={"config": cfg},
        )
        results[variant] = res.returns[0]
        rmse = results[variant]["rmse"]
        print(f"\n{variant}: RMSE per iteration: "
              + "  ".join(f"{x:.3f}" for x in rmse))
        assert rmse[-1] < rmse[0], "sampler failed to reduce training RMSE"
    ori = results["ori"]["total"]
    hy = results["hybrid"]["total"]
    print(f"\nOri_BPMF total (virtual): {ori * 1e3:9.2f} ms")
    print(f"Hy_BPMF  total (virtual): {hy * 1e3:9.2f} ms")
    print(f"ratio Ori/Hy            : {ori / hy:9.3f} "
          f"(paper Fig 12: > 1, rising with cores)")


if __name__ == "__main__":
    main()
