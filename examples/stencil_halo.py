#!/usr/bin/env python
"""2D Jacobi halo exchange — pure MPI vs hybrid MPI+MPI (Hoefler [10]).

The workload that motivated hybrid MPI+MPI: a 1D-decomposed 5-point
Jacobi sweep.  In the hybrid variant, on-node neighbours read each
other's boundary rows straight out of the node-shared window instead of
exchanging messages; only node-boundary halos use the network.  Both
variants produce bit-identical grids (checksums compared below).

Run:  python examples/stencil_halo.py
"""

from repro.apps.stencil import StencilConfig, stencil_program
from repro.machine import hazel_hen
from repro.mpi import run_program

RANKS = 32  # over two simulated nodes -> 1 inter-node boundary


def run_variant(variant: str):
    cfg = StencilConfig(
        rows_per_rank=32, cols=128, iterations=8, variant=variant
    )
    res = run_program(
        hazel_hen(num_nodes=2),
        nprocs=RANKS,
        program=stencil_program,
        program_kwargs={"config": cfg},
    )
    total = max(r["total"] for r in res.returns)
    checksum = sum(r["checksum"] for r in res.returns)
    return total, checksum, res


def main():
    print(f"Jacobi 5-point stencil: {RANKS} ranks x 32x128 strips, "
          f"8 sweeps, 2 nodes")
    totals = {}
    sums = {}
    for variant in ("pure", "hybrid"):
        total, checksum, res = run_variant(variant)
        totals[variant] = total
        sums[variant] = checksum
        print(f"{variant:>7}: {total * 1e6:10.1f} us  "
              f"checksum={checksum:+.9f}  "
              f"net msgs={res.network_messages} "
              f"on-node copies={res.intra_copies}")
    assert abs(sums["pure"] - sums["hybrid"]) < 1e-9, "results diverged!"
    print(f"identical results; speedup pure/hybrid = "
          f"{totals['pure'] / totals['hybrid']:.2f}x "
          f"(on-node halos became plain loads)")


if __name__ == "__main__":
    main()
