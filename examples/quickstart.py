#!/usr/bin/env python
"""Quickstart: hybrid MPI+MPI allgather on a simulated 3-node cluster.

Demonstrates the full public API surface in ~60 lines:

1. build a simulated machine (the paper's Cray XC40 preset),
2. write a rank program that sets up the hybrid hierarchy (paper Fig 4),
3. fill a node-shared buffer, run the hybrid allgather,
4. read the full result back with plain loads (zero on-node copies),
5. compare against the pure-MPI allgather timing.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import HybridContext
from repro.machine import hazel_hen
from repro.mpi import run_program

COUNT = 8  # doubles contributed per rank


def hybrid_program(mpi):
    """One simulated MPI rank: hybrid allgather via a shared window."""
    comm = mpi.world
    # One-off setup: shared-memory + bridge communicators, shared window.
    ctx = yield from HybridContext.create(comm)
    buf = yield from ctx.allgather_buffer(COUNT * 8)

    # Write my contribution through my local pointer (no messages).
    mine = buf.local_view(np.float64)
    mine[:] = comm.rank * 100 + np.arange(COUNT)

    t0 = mpi.now
    yield from ctx.allgather(buf)       # barrier + leader exchange + barrier
    elapsed = mpi.now - t0

    # Every rank now reads the whole result in place.
    full = buf.node_view(np.float64).reshape(comm.size, COUNT)
    assert np.allclose(full[:, 0], np.arange(comm.size) * 100)
    return elapsed


def pure_program(mpi):
    """The naive pure-MPI rank program for comparison."""
    comm = mpi.world
    mine = comm.rank * 100 + np.arange(COUNT, dtype=np.float64)
    t0 = mpi.now
    blocks = yield from comm.allgather(mine)
    elapsed = mpi.now - t0
    assert np.allclose(np.asarray(blocks[3])[0], 300.0)
    return elapsed


def main():
    spec = hazel_hen(num_nodes=3)
    hybrid = run_program(spec, nprocs=72, program=hybrid_program)
    pure = run_program(spec, nprocs=72, program=pure_program)
    hy_us = max(hybrid.returns) * 1e6
    pure_us = max(pure.returns) * 1e6
    print(f"simulated cluster : 3 nodes x 24 cores (Cray XC40 preset)")
    print(f"hybrid allgather  : {hy_us:8.2f} us   "
          f"(net messages: {hybrid.network_messages})")
    print(f"pure-MPI allgather: {pure_us:8.2f} us   "
          f"(net messages: {pure.network_messages})")
    print(f"speedup           : {pure_us / hy_us:8.2f} x")
    print(f"on-node copies    : hybrid={hybrid.intra_copies}, "
          f"pure={pure.intra_copies}")


if __name__ == "__main__":
    main()
