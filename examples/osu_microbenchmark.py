#!/usr/bin/env python
"""OSU-style micro-benchmark sweep — a miniature of the paper's Fig 9.

Sweeps ranks-per-node at a fixed node count and prints the latency of
the hybrid vs pure-MPI allgather plus the speedup, on both cluster
presets (Cray MPI on Hazel Hen, Open MPI on Vulcan).

Run:  python examples/osu_microbenchmark.py [elements]
"""

import sys

from repro.bench.osu import osu_allgather_latency
from repro.machine import Placement, hazel_hen, vulcan

NODES = 8


def main():
    elements = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    nbytes = elements * 8
    print(f"allgather of {elements} doubles/rank over {NODES} nodes")
    print(f"{'ppn':>4} | {'cray hy':>10} {'cray pure':>10} {'x':>5} | "
          f"{'ompi hy':>10} {'ompi pure':>10} {'x':>5}")
    for ppn in (2, 4, 8, 16, 24):
        placement = Placement.block(NODES, ppn)
        row = f"{ppn:>4} |"
        for spec in (hazel_hen(NODES), vulcan(NODES)):
            hy = osu_allgather_latency(spec, placement, nbytes, "hybrid")
            pure = osu_allgather_latency(spec, placement, nbytes, "pure")
            row += (f" {hy * 1e6:>9.1f}u {pure * 1e6:>9.1f}u "
                    f"{pure / hy:>5.2f} |")
        print(row)
    print("(x = pure/hybrid speedup; paper Fig 9: grows with ppn)")


if __name__ == "__main__":
    main()
