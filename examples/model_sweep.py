#!/usr/bin/env python
"""Analytic-model crossover sweep — Fig 10 far beyond simulator reach.

Prices the hybrid (shared-window) vs pure-MPI allgatherv with the
closed-form model in :mod:`repro.analysis.model` at 4k, 65k and one
MILLION ranks — populations the discrete-event simulator cannot touch —
and prints the message sizes where the hybrid overtakes the pure
collective, plus the wall-clock the whole sweep took (milliseconds,
which is the point of the fast lane).

Run:  python examples/model_sweep.py [ranks...]
"""

import sys

from repro.bench.model import SWEEP_SIZES, run_sweep

RANKS = (4096, 65_536, 1_000_000)


def main():
    ranks = tuple(int(a) for a in sys.argv[1:]) or RANKS
    sweep = run_sweep(ranks=ranks, sizes=SWEEP_SIZES)
    for nranks, m in sweep["maps"].items():
        print(f"{int(nranks):>9,} ranks on {m['nodes']:>6,} nodes "
              f"({m['op']}):")
        for row in m["rows"]:
            print(f"  {row['nbytes']:>7} B/rank  "
                  f"pure {row['pure_s'] * 1e3:>10.2f} ms "
                  f"({row['pure_algo']:>16})  "
                  f"hybrid {row['hybrid_s'] * 1e3:>10.2f} ms "
                  f"({row['hybrid_algo']:>14})  "
                  f"{row['speedup']:>5.2f}x")
        xs = m["crossover_nbytes"]
        if xs:
            print("  hybrid overtakes pure at: "
                  + ", ".join(f"{x:,.0f} B" for x in xs))
        else:
            print("  no crossover in swept range")
    pts = sum(len(m["rows"]) for m in sweep["maps"].values())
    print(f"priced {pts} points in {sweep['wall_s'] * 1e3:.0f} ms "
          f"wall-clock (no simulation run)")


if __name__ == "__main__":
    main()
