#!/usr/bin/env python
"""Distributed power iteration — allgather-per-step (paper §1 motivation).

Row-partitioned matrix, iterate reassembled with an allgather every
step: the communication pattern the paper's introduction motivates.
Finds the dominant eigenvalue of a planted symmetric matrix; compares
the pure-MPI and hybrid MPI+MPI variants and checks both against
``numpy.linalg.eigvalsh``.

Run:  python examples/power_iteration.py [n]
"""

import sys

import numpy as np

from repro.apps.matvec import (
    MatvecConfig,
    _planted_matrix,
    power_iteration_program,
)
from repro.machine import hazel_hen
from repro.mpi import run_program

RANKS = 24


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    true_lam = float(np.linalg.eigvalsh(_planted_matrix(n, seed=21))[-1])
    print(f"power iteration on {n}x{n} planted matrix, {RANKS} ranks "
          f"(1 node), true dominant eigenvalue {true_lam:.6f}")
    totals = {}
    for variant in ("ori", "hybrid"):
        cfg = MatvecConfig(n=n, iterations=40, variant=variant)
        res = run_program(
            hazel_hen(num_nodes=1), nprocs=RANKS,
            program=power_iteration_program,
            program_kwargs={"config": cfg},
        )
        r = res.returns[0]
        totals[variant] = max(x["total"] for x in res.returns)
        err = abs(r["eigenvalue"] - true_lam) / true_lam
        print(f"{variant:>7}: lambda={r['eigenvalue']:.6f} "
              f"(rel err {err:.2e})  residual={r['residual']:.2e}  "
              f"total={totals[variant] * 1e6:9.1f} us "
              f"(comm {max(x['comm'] for x in res.returns) * 1e6:8.1f} us)")
        assert err < 1e-3, "power iteration failed to converge"
    print(f"speedup Ori/Hy: {totals['ori'] / totals['hybrid']:.2f}x "
          f"(allgather per iteration becomes one barrier on-node)")


if __name__ == "__main__":
    main()
