#!/usr/bin/env python
"""SUMMA distributed matrix multiplication — Ori_ vs Hy_ (paper §5.2.1).

Runs the real (data-mode) SUMMA kernel on a 4x4 process grid spread over
two simulated nodes, verifies the distributed product against a local
``A @ B``, and prints the timing comparison the paper's Fig 11 reports.

Run:  python examples/summa_matmul.py [block_edge]
"""

import sys

from repro.apps.summa import SummaConfig, grid_shape, summa_program, verify_summa
from repro.machine import hazel_hen
from repro.mpi import run_program

CORES = 16


def run_variant(block: int, variant: str):
    cfg = SummaConfig(block=block, variant=variant, verify=True)
    result = run_program(
        hazel_hen(num_nodes=1),
        nprocs=CORES,
        program=summa_program,
        program_kwargs={"config": cfg},
    )
    q = grid_shape(CORES)
    assert verify_summa(result.returns, q, block), "product mismatch!"
    total = max(r["total"] for r in result.returns)
    comm = max(r["comm"] for r in result.returns)
    return total, comm


def main():
    block = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    q = grid_shape(CORES)
    n = q * block
    print(f"SUMMA C = A x B, global {n}x{n}, {q}x{q} grid "
          f"({CORES} ranks on one 24-core node), block {block}x{block}")
    print(f"{'variant':>8} {'total_us':>12} {'comm_us':>12}")
    times = {}
    for variant in ("ori", "hybrid"):
        total, comm = run_variant(block, variant)
        times[variant] = total
        print(f"{variant:>8} {total * 1e6:>12.1f} {comm * 1e6:>12.1f}")
    print(f"ratio Ori/Hy: {times['ori'] / times['hybrid']:.2f} "
          f"(paper Fig 11: consistently > 1)")
    print("distributed product verified against local A @ B on both runs")


if __name__ == "__main__":
    main()
