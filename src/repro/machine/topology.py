"""Inter-node network topologies.

A :class:`Topology` answers one question for the cost model: how many
router-to-router hops separate two nodes?  Three concrete topologies are
provided, matching the evaluation platforms of the paper plus a torus for
ablations:

* :class:`DragonflyTopology` — Cray Aries-style: nodes attach to routers,
  routers form all-to-all *groups*, groups are connected all-to-all by
  global links.  Minimal routing gives 1-5 hops.
* :class:`FatTreeTopology` — InfiniBand-style k-ary fat-tree (2-level:
  leaf and spine).  Same-leaf pairs are 2 hops; otherwise 4.
* :class:`FlatTopology` — uniform hop count; useful for calibration and
  unit tests.
* :class:`TorusTopology` — n-dimensional torus, for ablation studies.

Topologies build an explicit :mod:`networkx` graph so that detailed,
per-link contention simulation (see
:class:`repro.machine.network.NetworkModel` with ``link_contention=True``)
can route messages over real paths.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from functools import lru_cache

import networkx as nx

__all__ = [
    "Topology",
    "FlatTopology",
    "DragonflyTopology",
    "FatTreeTopology",
    "TorusTopology",
]


class Topology(ABC):
    """Abstract base: maps node ids to router graph positions."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self._graph: nx.Graph | None = None

    @property
    def graph(self) -> nx.Graph:
        """The router-level graph (lazily built)."""
        if self._graph is None:
            self._graph = self._build_graph()
        return self._graph

    @abstractmethod
    def _build_graph(self) -> nx.Graph:
        """Construct the router graph; nodes attach via ``attachment``."""

    @abstractmethod
    def attachment(self, node: int) -> object:
        """Router-graph vertex that compute node *node* attaches to."""

    def hops(self, src: int, dst: int) -> int:
        """Router hops between two compute nodes (0 if same node)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        return self._router_hops(self.attachment(src), self.attachment(dst))

    def path(self, src: int, dst: int) -> list[tuple[object, object]]:
        """Sequence of router-graph edges a minimally-routed message uses."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return []
        nodes = nx.shortest_path(self.graph, self.attachment(src), self.attachment(dst))
        return list(itertools.pairwise(nodes))

    @lru_cache(maxsize=65536)
    def _router_hops(self, a: object, b: object) -> int:
        if a == b:
            # Same router: one hop up and down through it, counted as 1.
            return 1
        return nx.shortest_path_length(self.graph, a, b) + 1

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range for {self.num_nodes}-node topology"
            )

    def diameter_hops(self) -> int:
        """Maximum hop count over all node pairs (router diameter + 1)."""
        if self.num_nodes == 1:
            return 0
        return nx.diameter(self.graph) + 1


class FlatTopology(Topology):
    """Every distinct pair of nodes is exactly ``uniform_hops`` apart."""

    def __init__(self, num_nodes: int, uniform_hops: int = 2):
        super().__init__(num_nodes)
        if uniform_hops < 1:
            raise ValueError("uniform_hops must be >= 1")
        self.uniform_hops = uniform_hops

    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_node("switch")
        return g

    def attachment(self, node: int) -> object:
        return "switch"

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return 0 if src == dst else self.uniform_hops

    def path(self, src: int, dst: int) -> list[tuple[object, object]]:
        return []  # single switch: no router-router edges


class DragonflyTopology(Topology):
    """Aries-like dragonfly: all-to-all router groups, all-to-all groups.

    Parameters
    ----------
    num_nodes:
        Compute nodes in the system.
    nodes_per_router:
        Compute nodes attached to each router (Aries: 4).
    routers_per_group:
        Routers forming one all-to-all group (Aries: 96; smaller values
        keep test graphs tiny while preserving the 1/3/5-hop structure).
    """

    def __init__(
        self,
        num_nodes: int,
        nodes_per_router: int = 4,
        routers_per_group: int = 16,
    ):
        super().__init__(num_nodes)
        if nodes_per_router < 1 or routers_per_group < 1:
            raise ValueError("nodes_per_router/routers_per_group must be >= 1")
        self.nodes_per_router = nodes_per_router
        self.routers_per_group = routers_per_group

    def _router_of(self, node: int) -> int:
        return node // self.nodes_per_router

    def _group_of_router(self, router: int) -> int:
        return router // self.routers_per_group

    @property
    def num_routers(self) -> int:
        return -(-self.num_nodes // self.nodes_per_router)

    @property
    def num_groups(self) -> int:
        return -(-self.num_routers // self.routers_per_group)

    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        routers = range(self.num_routers)
        g.add_nodes_from(routers)
        # Intra-group all-to-all (local links).
        for grp in range(self.num_groups):
            members = [
                r
                for r in routers
                if self._group_of_router(r) == grp
            ]
            for a, b in itertools.combinations(members, 2):
                g.add_edge(a, b, kind="local")
        # Inter-group: connect group g1<->g2 via one deterministic global
        # link between low-indexed routers of each group.
        for g1, g2 in itertools.combinations(range(self.num_groups), 2):
            r1 = min(
                r for r in routers if self._group_of_router(r) == g1
            )
            r2 = min(
                r for r in routers if self._group_of_router(r) == g2
            )
            g.add_edge(r1, r2, kind="global")
        return g

    def attachment(self, node: int) -> object:
        return self._router_of(node)


class FatTreeTopology(Topology):
    """Two-level fat tree: leaf switches + fully-connected spine layer."""

    def __init__(self, num_nodes: int, leaf_radix: int = 24, num_spines: int = 4):
        super().__init__(num_nodes)
        if leaf_radix < 1 or num_spines < 1:
            raise ValueError("leaf_radix/num_spines must be >= 1")
        self.leaf_radix = leaf_radix
        self.num_spines = num_spines

    @property
    def num_leaves(self) -> int:
        return -(-self.num_nodes // self.leaf_radix)

    def _build_graph(self) -> nx.Graph:
        g = nx.Graph()
        leaves = [("leaf", i) for i in range(self.num_leaves)]
        spines = [("spine", i) for i in range(self.num_spines)]
        g.add_nodes_from(leaves)
        g.add_nodes_from(spines)
        for leaf in leaves:
            for spine in spines:
                g.add_edge(leaf, spine, kind="uplink")
        return g

    def attachment(self, node: int) -> object:
        return ("leaf", node // self.leaf_radix)


class TorusTopology(Topology):
    """N-dimensional torus with dimension-ordered shortest-path hops."""

    def __init__(self, dims: tuple[int, ...]):
        self.dims = tuple(int(d) for d in dims)
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError("dims must be non-empty positive integers")
        num_nodes = 1
        for d in self.dims:
            num_nodes *= d
        super().__init__(num_nodes)

    def coords(self, node: int) -> tuple[int, ...]:
        """Multi-dimensional coordinates of *node*."""
        self._check(node)
        out = []
        rem = node
        for d in reversed(self.dims):
            out.append(rem % d)
            rem //= d
        return tuple(reversed(out))

    def _build_graph(self) -> nx.Graph:
        g: nx.Graph = nx.grid_graph(dim=list(reversed(self.dims)), periodic=True)
        return g

    def attachment(self, node: int) -> object:
        # networkx grid_graph uses reversed coordinate order.
        return tuple(reversed(self.coords(node)))

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        a, b = self.coords(src), self.coords(dst)
        total = 0
        for x, y, d in zip(a, b, self.dims):
            delta = abs(x - y)
            total += min(delta, d - delta)
        return total + 1  # +1 for the injection hop
