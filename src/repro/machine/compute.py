"""Per-core computation cost model.

Application kernels (SUMMA's local GEMM, BPMF's Gibbs updates) advance
virtual time according to a simple throughput model:

* floating-point work: ``flops / (peak_flops * efficiency(kind))``
* memory-touch work: ``bytes / stream_bandwidth``

Efficiency factors differ per kernel class because real codes achieve a
kernel-dependent fraction of peak (dense GEMM ≈ 80-90 %, bandwidth-bound
sweeps ≪ that).  The model intentionally charges *per core*: the paper's
node has 24 cores at 2.5 GHz with AVX2 FMA (16 DP flops/cycle peak).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComputeModel"]

_DEFAULT_EFFICIENCY = {
    "gemm": 0.85,       # dense matrix multiply, BLAS-3
    "blas2": 0.30,      # matrix-vector
    "blas1": 0.10,      # vector ops, bandwidth bound
    "scalar": 0.05,     # irregular scalar code (Gibbs sampling bookkeeping)
    "default": 0.25,
}


@dataclass(frozen=True)
class ComputeModel:
    """Time model for on-core computation.

    Attributes
    ----------
    core_peak_flops:
        Peak double-precision flops/second of one core.
    core_mem_bandwidth:
        Per-core streaming bandwidth, bytes/second (for memory-bound
        estimates).
    efficiency:
        Map kernel-kind → achieved fraction of peak.
    """

    core_peak_flops: float = 40.0e9  # 2.5 GHz * 16 DP flops/cycle
    core_mem_bandwidth: float = 5.0e9
    efficiency: dict = field(default_factory=lambda: dict(_DEFAULT_EFFICIENCY))

    def flops_time(self, flops: float, kind: str = "default") -> float:
        """Virtual seconds to execute *flops* of kernel class *kind*."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        eff = self.efficiency.get(kind, self.efficiency["default"])
        return flops / (self.core_peak_flops * eff)

    def memory_time(self, nbytes: float) -> float:
        """Virtual seconds to stream *nbytes* through one core."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.core_mem_bandwidth

    def gemm_time(self, m: int, n: int, k: int, dtype_bytes: int = 8) -> float:
        """Time of a local dense ``m×k @ k×n`` multiply-accumulate."""
        flops = 2.0 * m * n * k
        # Small blocks never reach asymptotic GEMM efficiency; damp by a
        # size-dependent factor so tiny SUMMA blocks stay latency-bound.
        smallest = min(m, n, k)
        eff_kind = "gemm" if smallest >= 64 else "blas2" if smallest >= 16 else "blas1"
        return self.flops_time(flops, eff_kind)

    def with_efficiency(self, **overrides: float) -> "ComputeModel":
        """Copy of this model with some efficiency entries replaced."""
        eff = dict(self.efficiency)
        eff.update(overrides)
        return ComputeModel(self.core_peak_flops, self.core_mem_bandwidth, eff)
