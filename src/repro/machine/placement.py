"""Rank-to-node placement maps.

The paper assumes *SMP-style* placement (consecutive world ranks fill a
node before spilling to the next — MPI's "block" mapping) for its main
algorithms, discusses round-robin placement in §6, and evaluates an
*irregular* population (42 nodes with 24 ranks, 1 node with 16 ranks) in
§5.1.3 / Fig 10.  :class:`Placement` captures all three.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["Placement"]


class Placement:
    """Immutable map from world rank to (node, slot-on-node).

    Construct via one of the classmethods:

    * :meth:`block` — SMP-style: ranks 0..ppn-1 on node 0, etc.
    * :meth:`round_robin` — rank r on node ``r % num_nodes``.
    * :meth:`irregular` — explicit per-node rank counts, block-ordered.
    * :meth:`explicit` — arbitrary rank→node list.
    """

    #: Valid slot→socket mapping modes (only meaningful on machines
    #: whose nodes declare ``sockets > 1``):
    #:
    #: * ``"compact"`` — fill socket 0 before socket 1 (the OS default
    #:   of ``--map-by socket:SPAN=no``); slot s lands on socket
    #:   ``s // cores_per_socket``.
    #: * ``"scatter"`` — alternate sockets (``s % sockets``), spreading
    #:   consecutive ranks across memory domains.
    #: * ``"balanced"`` — split the node's ranks evenly across sockets
    #:   while keeping consecutive ranks together
    #:   (``s * sockets // ppn``), even for partially filled nodes.
    SOCKET_MODES = ("compact", "scatter", "balanced")

    def __init__(
        self,
        node_of_rank: Sequence[int],
        num_nodes: int,
        kind: str,
        socket_mode: str = "compact",
    ):
        node_of = list(int(n) for n in node_of_rank)
        if not node_of:
            raise ValueError("placement must contain at least one rank")
        if any(n < 0 or n >= num_nodes for n in node_of):
            raise ValueError("rank mapped to node outside the machine")
        if socket_mode not in self.SOCKET_MODES:
            raise ValueError(
                f"unknown socket_mode {socket_mode!r} "
                f"(have: {', '.join(self.SOCKET_MODES)})"
            )
        self._node_of = node_of
        self.num_nodes = int(num_nodes)
        self.kind = kind
        self.socket_mode = socket_mode
        self._ranks_on: list[list[int]] = [[] for _ in range(num_nodes)]
        for rank, node in enumerate(node_of):
            self._ranks_on[node].append(rank)
        self._slot_of = [0] * len(node_of)
        for node_ranks in self._ranks_on:
            for slot, rank in enumerate(node_ranks):
                self._slot_of[rank] = slot
        if any(not r for r in self._ranks_on):
            raise ValueError("every node must host at least one rank")

    # -- constructors ------------------------------------------------------
    @classmethod
    def block(cls, num_nodes: int, ranks_per_node: int) -> "Placement":
        """SMP-style placement: node i hosts ranks [i*ppn, (i+1)*ppn)."""
        if num_nodes < 1 or ranks_per_node < 1:
            raise ValueError("num_nodes and ranks_per_node must be >= 1")
        node_of = [r // ranks_per_node for r in range(num_nodes * ranks_per_node)]
        return cls(node_of, num_nodes, "block")

    @classmethod
    def round_robin(cls, num_nodes: int, ranks_per_node: int) -> "Placement":
        """Cyclic placement: rank r lives on node ``r % num_nodes``."""
        if num_nodes < 1 or ranks_per_node < 1:
            raise ValueError("num_nodes and ranks_per_node must be >= 1")
        node_of = [r % num_nodes for r in range(num_nodes * ranks_per_node)]
        return cls(node_of, num_nodes, "round_robin")

    @classmethod
    def irregular(cls, counts: Sequence[int]) -> "Placement":
        """Block placement with a distinct rank count per node."""
        counts = [int(c) for c in counts]
        if not counts or any(c < 1 for c in counts):
            raise ValueError("counts must be non-empty positive integers")
        node_of: list[int] = []
        for node, c in enumerate(counts):
            node_of.extend([node] * c)
        return cls(node_of, len(counts), "irregular")

    @classmethod
    def explicit(cls, node_of_rank: Sequence[int]) -> "Placement":
        """Arbitrary placement from an explicit rank→node list."""
        num_nodes = max(node_of_rank) + 1
        return cls(node_of_rank, num_nodes, "explicit")

    # -- queries -------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        """Total world size."""
        return len(self._node_of)

    def node_of(self, rank: int) -> int:
        """Node hosting *rank*."""
        return self._node_of[rank]

    def slot_of(self, rank: int) -> int:
        """Position of *rank* among the ranks of its node (0-based)."""
        return self._slot_of[rank]

    def ranks_on(self, node: int) -> list[int]:
        """World ranks hosted on *node*, ascending."""
        return list(self._ranks_on[node])

    def leader_of(self, node: int) -> int:
        """Lowest world rank on *node* — the paper's leader convention."""
        return self._ranks_on[node][0]

    def leaders(self) -> list[int]:
        """All node leaders in node order (the bridge communicator)."""
        return [ranks[0] for ranks in self._ranks_on]

    def is_leader(self, rank: int) -> bool:
        """True if *rank* is its node's leader."""
        return self.leader_of(self.node_of(rank)) == rank

    def same_node(self, a: int, b: int) -> bool:
        """True if ranks *a* and *b* share a node."""
        return self._node_of[a] == self._node_of[b]

    def counts(self) -> list[int]:
        """Number of ranks per node, in node order."""
        return [len(r) for r in self._ranks_on]

    def is_smp_style(self) -> bool:
        """True if world ranks are contiguous within each node and node
        order follows rank order (the paper's SMP-style assumption)."""
        expected = 0
        for node_ranks in self._ranks_on:
            for r in node_ranks:
                if r != expected:
                    return False
                expected += 1
        return True

    # -- socket tier ---------------------------------------------------------
    def with_socket_mode(self, socket_mode: str) -> "Placement":
        """A copy of this placement using *socket_mode* for the
        slot→socket map (see :data:`SOCKET_MODES`)."""
        return Placement(
            self._node_of, self.num_nodes, self.kind, socket_mode=socket_mode
        )

    def socket_of(self, rank: int, node_spec) -> int:
        """Socket domain hosting *rank* on a node shaped like
        *node_spec* (a :class:`~repro.machine.model.NodeSpec`).

        Flat nodes (``sockets == 1``) always answer 0.  Otherwise the
        rank's on-node slot is mapped per :attr:`socket_mode`.
        """
        sockets = node_spec.sockets
        if sockets <= 1:
            return 0
        slot = self._slot_of[rank]
        if self.socket_mode == "compact":
            return min(slot // node_spec.cores_per_socket, sockets - 1)
        if self.socket_mode == "scatter":
            return slot % sockets
        # balanced
        ppn = len(self._ranks_on[self._node_of[rank]])
        return min(slot * sockets // ppn, sockets - 1)

    def socket_ranks_on(self, node: int, socket: int, node_spec) -> list[int]:
        """World ranks of *node* living on *socket*, ascending."""
        return [
            r
            for r in self._ranks_on[node]
            if self.socket_of(r, node_spec) == socket
        ]

    def node_sorted_ranks(self) -> list[int]:
        """The node-sorted global rank array of paper §6.

        Lists world ranks grouped by node (node order, then rank order
        within the node).  For SMP-style placement this is the identity;
        for other placements it tells each process where its block lands
        in a node-major shared receive buffer.
        """
        out: list[int] = []
        for node_ranks in self._ranks_on:
            out.extend(node_ranks)
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Placement)
            and self._node_of == other._node_of
            and self.socket_mode == other.socket_mode
        )

    def __hash__(self) -> int:
        return hash((tuple(self._node_of), self.socket_mode))

    def __repr__(self) -> str:
        return (
            f"Placement(kind={self.kind!r}, nodes={self.num_nodes}, "
            f"ranks={self.num_ranks}, socket_mode={self.socket_mode!r})"
        )
