"""OS-noise / performance-variability injection.

Real clusters are not noiseless: OS daemons, network interrupts and
frequency jitter stretch compute phases unpredictably, and collectives
*amplify* that noise (every barrier waits for the unluckiest rank —
Hoefler et al., "Characterizing the influence of system noise on
large-scale applications", SC'10).  The paper's measurements average
10000 repetitions precisely to tame this.

:class:`NoiseModel` injects deterministic, seeded pseudo-noise into the
compute charges of a job, enabling two kinds of study:

* robustness of the reproduction's *conclusions* to perturbation (the
  benchmark suite's claims still hold under noise);
* comparison of the hybrid vs pure designs' noise sensitivity
  (`repro-bench --figure abl_noise`): the hybrid's critical path has
  fewer synchronization stages, so its slowdown factor under identical
  noise is smaller.

The model is a standard two-component one:

* **jitter** — every compute charge is multiplied by ``1 + X`` with
  ``X ~ |N(0, jitter²)|`` (frequency/cache variability);
* **detours** — with probability ``detour_rate`` per compute charge, a
  fixed ``detour_seconds`` preemption is added (daemon wake-ups).

Noise draws come from a dedicated, seeded generator: runs remain fully
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Deterministic pseudo-noise parameters.

    Attributes
    ----------
    jitter:
        Relative magnitude of the multiplicative component (e.g. 0.02
        for ~2 % typical stretch).
    detour_rate:
        Probability that one compute charge suffers a preemption.
    detour_seconds:
        Length of one preemption (typical OS daemon: 10-100 µs).
    seed:
        Base seed; each rank derives an independent stream.
    """

    jitter: float = 0.02
    detour_rate: float = 0.001
    detour_seconds: float = 25.0e-6
    seed: int = 999

    def __post_init__(self) -> None:
        if self.jitter < 0 or not 0 <= self.detour_rate <= 1:
            raise ValueError("invalid noise parameters")
        if self.detour_seconds < 0:
            raise ValueError("detour_seconds must be non-negative")

    def stream_for(self, rank: int) -> np.random.Generator:
        """Independent per-rank noise stream (deterministic)."""
        return np.random.default_rng((self.seed, rank))

    def perturb(self, seconds: float, rng: np.random.Generator) -> float:
        """Noisy duration of a nominal *seconds* compute charge."""
        if seconds <= 0:
            return seconds
        stretched = seconds * (1.0 + abs(rng.normal(0.0, self.jitter)))
        if self.detour_rate and rng.random() < self.detour_rate:
            stretched += self.detour_seconds
        return stretched
