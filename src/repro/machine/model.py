"""Node and machine models.

A :class:`MachineSpec` declares the cluster; :class:`Machine` instantiates
it on a simulation :class:`~repro.simulator.Engine`, creating the
contended per-node resources:

* a **memory system** (:class:`~repro.simulator.BandwidthChannel`): every
  intra-node message copy and every shared-memory touch moves bytes
  through it, so on-node copy cost grows once concurrent copies exceed
  the sustainable stream count — the contention effect that motivates the
  paper;
* a **NIC** pair (owned by the :class:`~repro.machine.network.NetworkModel`).

Intra-node point-to-point transport is modelled as the classic
CICO (copy-in/copy-out) double copy through a shared-memory staging
buffer, with a per-message latency ``shm_latency`` — this is how MPICH,
Open MPI and Cray MPI move on-node messages, and it is precisely the
traffic the hybrid MPI+MPI collectives eliminate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.machine.compute import ComputeModel
from repro.machine.network import NetworkModel, NetworkSpec
from repro.machine.placement import Placement
from repro.machine.topology import Topology
from repro.machine.transport import Transport, get_transport
from repro.simulator import BandwidthChannel, Engine

__all__ = ["NodeSpec", "MachineSpec", "Machine"]


@dataclass(frozen=True)
class NodeSpec:
    """Single-node hardware description.

    Attributes
    ----------
    cores:
        Cores per node (Hazel Hen / Vulcan: 24).
    mem_bandwidth:
        Sustainable memory bandwidth *per socket*, bytes/second.  With
        the default ``sockets=1`` this is the whole node's pool, exactly
        as before the socket tier existed.
    mem_streams:
        Concurrent memory streams at full per-stream rate *per socket*;
        beyond this, copies queue.  Models channel/LLC contention.
    shm_latency:
        Per-message latency of one intra-node (shared-memory transport)
        hop, seconds.
    cache_line:
        Cache-line size in bytes (used for false-sharing diagnostics in
        the shared-flag synchronization model).
    sockets:
        NUMA/socket domains per node.  ``1`` (default) keeps the flat
        node model; ``>1`` gives each socket its own memory channel and
        adds a cross-socket interconnect.
    xsocket_bandwidth:
        Bandwidth of the cross-socket interconnect (QPI/UPI-like),
        bytes/second.  Only meaningful when ``sockets > 1``.
    xsocket_streams:
        Concurrent full-rate streams on the cross-socket link.
    xsocket_latency:
        Extra per-message latency of one cross-socket hop, seconds
        (added on top of ``shm_latency`` for cross-socket messages).
    transport:
        On-node transport name (see :mod:`repro.machine.transport`):
        ``shm_two_copy`` (default, today's CICO), ``cma_single_copy``
        or ``pip_direct``.
    """

    cores: int = 24
    mem_bandwidth: float = 60.0e9
    mem_streams: int = 6
    shm_latency: float = 3.0e-7
    cache_line: int = 64
    sockets: int = 1
    xsocket_bandwidth: float = 19.2e9
    xsocket_streams: int = 2
    xsocket_latency: float = 1.0e-7
    transport: str = "shm_two_copy"

    @property
    def copy_beta(self) -> float:
        """Seconds/byte of one staged shared-memory copy on an
        otherwise idle socket: each copy streams ``2n`` bytes (read +
        write) through one of the ``mem_streams`` full-rate streams.
        This is the shm beta term of the analytic model
        (:mod:`repro.analysis.model`)."""
        return 2.0 * self.mem_streams / self.mem_bandwidth

    @property
    def xsocket_beta(self) -> float:
        """Seconds/byte of one staged copy over the cross-socket link
        on an otherwise idle node (read + write = ``2n`` bytes through
        one of the ``xsocket_streams`` full-rate streams)."""
        return 2.0 * self.xsocket_streams / self.xsocket_bandwidth

    @property
    def cores_per_socket(self) -> int:
        """Cores in each socket domain (``cores / sockets``)."""
        return self.cores // self.sockets

    @property
    def transport_spec(self) -> Transport:
        """The resolved :class:`~repro.machine.transport.Transport`."""
        return get_transport(self.transport)

    def validate(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if self.mem_bandwidth <= 0:
            raise ValueError("mem_bandwidth must be positive")
        if self.mem_streams < 1:
            raise ValueError("mem_streams must be >= 1")
        if self.shm_latency < 0:
            raise ValueError("shm_latency must be non-negative")
        if self.sockets < 1:
            raise ValueError("sockets must be >= 1")
        if self.sockets > 1:
            if self.cores % self.sockets != 0:
                raise ValueError(
                    f"cores ({self.cores}) must divide evenly into "
                    f"{self.sockets} sockets"
                )
            if self.xsocket_bandwidth <= 0:
                raise ValueError("xsocket_bandwidth must be positive")
            if self.xsocket_streams < 1:
                raise ValueError("xsocket_streams must be >= 1")
            if self.xsocket_latency < 0:
                raise ValueError("xsocket_latency must be non-negative")
        get_transport(self.transport).validate()


@dataclass(frozen=True)
class MachineSpec:
    """Declarative cluster description.

    ``topology_kind`` selects the default topology built by
    :class:`Machine` when none is passed explicitly: ``"flat"``,
    ``"dragonfly"`` (Aries-like) or ``"fattree"`` (InfiniBand-like).
    """

    name: str
    num_nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    compute: ComputeModel = field(default_factory=ComputeModel)
    topology_kind: str = "flat"

    def validate(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.topology_kind not in ("flat", "dragonfly", "fattree"):
            raise ValueError(f"unknown topology_kind {self.topology_kind!r}")
        self.node.validate()
        self.network.validate()

    def describe(self) -> dict:
        """JSON-serializable description of every constant in the spec.

        Covers the node (sockets, transport, memory system), network,
        compute model and topology kind — anything that can change a
        simulated or modelled latency.  This is the canonical form the
        sweep result cache (:mod:`repro.bench.sweep`) hashes, so two
        specs with equal ``describe()`` output are interchangeable for
        caching purposes.

        >>> hazel = MachineSpec("hh", 4)
        >>> hazel.describe()["num_nodes"]
        4
        >>> hazel.describe()["node"]["transport"]
        'shm_two_copy'
        """
        return asdict(self)

    def fingerprint(self) -> str:
        """Stable SHA-256 hex digest over :meth:`describe`.

        Equal for equal specs, different whenever any hardware constant
        — including sockets, transport, or topology kind — differs.

        >>> a, b = MachineSpec("m", 2), MachineSpec("m", 2)
        >>> a.fingerprint() == b.fingerprint()
        True
        >>> a.fingerprint() != MachineSpec("m", 3).fingerprint()
        True
        """
        blob = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def build_topology(self) -> Topology:
        """Construct the default topology for this spec."""
        from repro.machine.topology import (
            DragonflyTopology,
            FatTreeTopology,
            FlatTopology,
        )

        if self.topology_kind == "dragonfly":
            return DragonflyTopology(self.num_nodes)
        if self.topology_kind == "fattree":
            return FatTreeTopology(self.num_nodes)
        return FlatTopology(self.num_nodes)


class Machine:
    """Runtime cluster bound to an engine.

    Parameters
    ----------
    engine:
        Simulation engine driving virtual time.
    spec:
        Cluster description.
    topology:
        Optional explicit topology; defaults to the spec-appropriate flat
        topology inside :class:`NetworkModel`.
    link_contention:
        Forwarded to :class:`NetworkModel`.
    """

    def __init__(
        self,
        engine: Engine,
        spec: MachineSpec,
        topology: Topology | None = None,
        link_contention: bool = False,
    ):
        spec.validate()
        self.engine = engine
        self.spec = spec
        self.network = NetworkModel(
            engine,
            spec.network,
            num_nodes=spec.num_nodes,
            topology=topology or spec.build_topology(),
            link_contention=link_contention,
        )
        node = spec.node
        self.transport = get_transport(node.transport)
        #: True when the on-node path is exactly the pre-socket-tier
        #: model (one memory pool, two-copy CICO).  ``mpi.p2p`` keeps
        #: its original inline fast path when this holds, which is what
        #: makes ``sockets=1`` + ``shm_two_copy`` bit-identical.
        self.flat_intra = node.sockets == 1 and node.transport == "shm_two_copy"
        if node.sockets == 1:
            self._memory = [
                BandwidthChannel(
                    engine,
                    node.mem_bandwidth,
                    node.mem_streams,
                    name=f"node{i}.mem",
                )
                for i in range(spec.num_nodes)
            ]
            self._socket_mem = [[chan] for chan in self._memory]
            self._xsocket: list[BandwidthChannel] | None = None
        else:
            self._socket_mem = [
                [
                    BandwidthChannel(
                        engine,
                        node.mem_bandwidth,
                        node.mem_streams,
                        name=f"node{i}.s{s}.mem",
                    )
                    for s in range(node.sockets)
                ]
                for i in range(spec.num_nodes)
            ]
            # Legacy alias used by socket-oblivious charging (e.g. the
            # per-node shared window): socket 0's channel.
            self._memory = [row[0] for row in self._socket_mem]
            self._xsocket = [
                BandwidthChannel(
                    engine,
                    node.xsocket_bandwidth,
                    node.xsocket_streams,
                    name=f"node{i}.xlink",
                )
                for i in range(spec.num_nodes)
            ]
        self.intra_copies = 0
        self.intra_bytes = 0.0
        self._placement: Placement | None = None

    def bind_placement(self, placement: Placement) -> None:
        """Attach the rank→node map (done once by the MPI job runner)."""
        if placement.num_nodes > self.num_nodes:
            raise ValueError(
                f"placement uses {placement.num_nodes} nodes, machine has "
                f"{self.num_nodes}"
            )
        self._placement = placement

    @property
    def placement(self) -> Placement:
        """The bound rank→node map."""
        if self._placement is None:
            raise RuntimeError("no placement bound to this machine yet")
        return self._placement

    # -- intra-node traffic ---------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Nodes in the machine."""
        return self.spec.num_nodes

    def memory(self, node: int) -> BandwidthChannel:
        """The contended memory system of *node* (socket 0 when the
        node has several sockets)."""
        return self._memory[node]

    # -- socket tier -----------------------------------------------------
    @property
    def num_sockets(self) -> int:
        """Socket domains per node (1 for flat nodes)."""
        return self.spec.node.sockets

    def socket_of(self, rank: int) -> int:
        """Socket domain hosting *rank* (0 on flat nodes)."""
        if self.spec.node.sockets == 1:
            return 0
        return self.placement.socket_of(rank, self.spec.node)

    def socket_memory(self, node: int, socket: int) -> BandwidthChannel:
        """The contended memory system of one socket of *node*."""
        return self._socket_mem[node][socket]

    def xsocket_link(self, node: int) -> BandwidthChannel:
        """The cross-socket interconnect of *node* (sockets > 1 only)."""
        if self._xsocket is None:
            raise RuntimeError("machine has flat nodes (sockets=1)")
        return self._xsocket[node]

    def staged_copy(self, node: int, socket: int, nbytes: float):
        """Coroutine: one staged copy (``2n`` bytes) on a socket channel."""
        self.intra_copies += 1
        self.intra_bytes += nbytes
        yield self._socket_mem[node][socket].transfer(2.0 * nbytes)
        return nbytes

    def xsocket_copy(self, node: int, nbytes: float):
        """Coroutine: one staged copy (``2n`` bytes) over the
        cross-socket link of *node*."""
        self.intra_copies += 1
        self.intra_bytes += nbytes
        yield self.xsocket_link(node).transfer(2.0 * nbytes)
        return nbytes

    def memory_copy(self, node: int, nbytes: float, copies: int = 1):
        """Coroutine: perform *copies* sequential memory copies of *nbytes*.

        Each copy reads and writes the data once, so it moves
        ``2 * nbytes`` through the node memory system.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.intra_copies += copies
        self.intra_bytes += nbytes * copies
        for _ in range(copies):
            yield self._memory[node].transfer(2.0 * nbytes)
        return nbytes

    def intra_message(self, node: int, nbytes: float):
        """Coroutine: one on-node MPI message (CICO through shared staging).

        Cost = per-message latency + two memory copies (sender copies into
        the staging buffer, receiver copies out), both contended.
        """
        yield self.engine.pause(self.spec.node.shm_latency)
        yield from self.memory_copy(node, nbytes, copies=2)
        return nbytes

    def shared_touch(self, node: int, nbytes: float, socket: int = 0):
        """Coroutine: direct load/store access to shared memory.

        One pass over the data (no staging copy) — the hybrid model's
        cost for a process reading its neighbours' contribution in
        place.  *socket* selects which socket's memory channel is
        charged (the toucher's socket; 0 on flat nodes).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        yield self._socket_mem[node][socket].transfer(nbytes)
        return nbytes

    # -- convenience -----------------------------------------------------
    def default_placement(self, num_ranks: int) -> Placement:
        """Block (SMP-style) placement of *num_ranks* over the machine."""
        cores = self.spec.node.cores
        if num_ranks > self.num_nodes * cores:
            raise ValueError(
                f"{num_ranks} ranks exceed machine capacity "
                f"{self.num_nodes * cores}"
            )
        full, rem = divmod(num_ranks, cores)
        counts = [cores] * full + ([rem] if rem else [])
        if not counts:
            raise ValueError("num_ranks must be >= 1")
        return Placement.irregular(counts)

    def __repr__(self) -> str:
        return f"Machine({self.spec.name!r}, nodes={self.num_nodes})"
