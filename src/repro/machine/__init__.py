"""Cluster machine model: nodes, memory systems, NICs, networks, placement.

This package models the two clusters used in the paper's evaluation —
Cray XC40 "Hazel Hen" (Aries dragonfly, Cray MPI tuning) and NEC "Vulcan"
(InfiniBand fat-tree, OpenMPI tuning) — as parameterized cost models on
top of :mod:`repro.simulator`.

The central classes are:

* :class:`MachineSpec` — a declarative description (nodes, cores/node,
  memory bandwidth, NIC, network parameters).
* :class:`Machine` — the runtime instantiation bound to an
  :class:`~repro.simulator.Engine`, holding the contended resources.
* :class:`Placement` — the rank→(node, core) map (SMP/block, round-robin,
  or irregular per-node counts).
* :class:`NetworkModel` / :class:`Topology` — inter-node latency,
  bandwidth, and hop counts (dragonfly / fat-tree / torus via networkx).

Presets live in :mod:`repro.machine.presets`; use
:func:`~repro.machine.presets.hazel_hen` or
:func:`~repro.machine.presets.vulcan`.
"""

from repro.machine.compute import ComputeModel
from repro.machine.model import Machine, MachineSpec, NodeSpec
from repro.machine.network import NetworkModel, NetworkSpec
from repro.machine.placement import Placement
from repro.machine.presets import (
    hazel_hen,
    hazel_hen_2s,
    hazel_hen_flat,
    testing_machine,
    vulcan,
)
from repro.machine.topology import (
    DragonflyTopology,
    FatTreeTopology,
    FlatTopology,
    Topology,
    TorusTopology,
)
from repro.machine.transport import TRANSPORTS, Transport, get_transport

__all__ = [
    "ComputeModel",
    "DragonflyTopology",
    "FatTreeTopology",
    "FlatTopology",
    "Machine",
    "MachineSpec",
    "NetworkModel",
    "NetworkSpec",
    "NodeSpec",
    "Placement",
    "TRANSPORTS",
    "Topology",
    "TorusTopology",
    "Transport",
    "get_transport",
    "hazel_hen",
    "hazel_hen_2s",
    "hazel_hen_flat",
    "testing_machine",
    "vulcan",
]
