"""Pluggable on-node transports.

The cost of an intra-node MPI message depends on *how* the bytes move
between the two private address spaces:

* ``shm_two_copy`` — classic CICO through a shared staging buffer
  (MPICH/Open MPI/Cray MPI default): the sender copies into the staging
  buffer and the receiver copies out, so every eager message pays two
  staged copies.  Rendezvous (LMT) transfers pay one copy once matched.
* ``cma_single_copy`` — Cross Memory Attach (``process_vm_readv``) or
  XPMEM: the kernel moves the bytes directly between the two address
  spaces in a single copy, at the price of a per-message syscall that
  roughly doubles the transport latency.
* ``pip_direct`` — Process-in-Process (Hou et al., PAPERS.md): ranks
  share one address space, so a message is a plain ``memcpy`` (one
  copy, no syscall) and reductions can stream the peer's buffer
  directly (one pass instead of copy + reduce).

A :class:`Transport` is a bag of multipliers consumed by
:mod:`repro.mpi.p2p`, :mod:`repro.mpi.shm` and the analytic model
(:mod:`repro.analysis.model`); it never touches the engine itself, so
transports stay trivially deterministic.

>>> get_transport("shm_two_copy").eager_copies
2
>>> get_transport("pip_direct").reduce_passes
1
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Transport", "TRANSPORTS", "get_transport"]


@dataclass(frozen=True)
class Transport:
    """On-node data-path description.

    Attributes
    ----------
    name:
        Registry key (``shm_two_copy``, ``cma_single_copy``,
        ``pip_direct``).
    eager_copies:
        Staged copies per eager message (each moves ``2n`` bytes through
        the memory system: one read + one write pass).
    rdv_copies:
        Staged copies per rendezvous (LMT) message once matched.
    latency_scale:
        Multiplier on ``NodeSpec.shm_latency`` per message (CMA pays a
        syscall per message, so ~2x).
    reduce_passes:
        Memory passes a leader needs to fold one remote contribution
        into its accumulator: 2 for copy-then-reduce, 1 when the
        transport can stream the peer buffer directly (PiP).
    """

    name: str
    eager_copies: int = 2
    rdv_copies: int = 1
    latency_scale: float = 1.0
    reduce_passes: int = 2

    def validate(self) -> None:
        if self.eager_copies < 1:
            raise ValueError("eager_copies must be >= 1")
        if self.rdv_copies < 1:
            raise ValueError("rdv_copies must be >= 1")
        if self.latency_scale <= 0:
            raise ValueError("latency_scale must be positive")
        if self.reduce_passes < 1:
            raise ValueError("reduce_passes must be >= 1")


#: Registered transports, keyed by name.
TRANSPORTS: dict[str, Transport] = {
    t.name: t
    for t in (
        Transport("shm_two_copy", eager_copies=2, rdv_copies=1,
                  latency_scale=1.0, reduce_passes=2),
        Transport("cma_single_copy", eager_copies=1, rdv_copies=1,
                  latency_scale=2.0, reduce_passes=2),
        Transport("pip_direct", eager_copies=1, rdv_copies=1,
                  latency_scale=1.0, reduce_passes=1),
    )
}


def get_transport(name: str) -> Transport:
    """Look up a registered transport by name.

    >>> get_transport("cma_single_copy").latency_scale
    2.0
    >>> get_transport("nope")
    Traceback (most recent call last):
        ...
    ValueError: unknown transport 'nope' (have: cma_single_copy, pip_direct, shm_two_copy)
    """
    try:
        return TRANSPORTS[name]
    except KeyError:
        have = ", ".join(sorted(TRANSPORTS))
        raise ValueError(f"unknown transport {name!r} (have: {have})") from None
