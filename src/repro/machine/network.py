"""Inter-node network cost model.

The model is a Hockney (alpha-beta) formulation extended with per-hop
router latency and endpoint NIC contention:

.. math::

    T(n, h) = \\alpha + h \\cdot t_{hop} + n / B

where ``alpha`` is the software/injection latency, ``h`` the router hop
count from the :class:`~repro.machine.topology.Topology`, and ``B`` the
point-to-point bandwidth.  The bandwidth term is *contended*: each
endpoint NIC is a :class:`~repro.simulator.BandwidthChannel`, so a node
sending to (or receiving from) many peers serializes — which is exactly
what penalizes flat (non-hierarchical) collectives at scale and what the
paper's leader-based designs avoid.

Optionally (``link_contention=True``) messages additionally occupy the
router-graph links along their path, modelling bisection pressure.  This
costs more events; the default endpoint-contention model is used by the
paper-scale benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.topology import FlatTopology, Topology
from repro.simulator import AllOf, BandwidthChannel, Engine

__all__ = ["NetworkSpec", "NetworkModel"]


@dataclass(frozen=True)
class NetworkSpec:
    """Declarative network parameters.

    Attributes
    ----------
    alpha:
        Base one-way latency in seconds (software + injection).
    hop_latency:
        Additional latency per router hop, seconds.
    bandwidth:
        Point-to-point sustainable bandwidth, bytes/second.
    nic_streams:
        Concurrent full-rate streams one NIC sustains (Aries: ~2).
    eager_threshold:
        Messages at or below this many bytes use the eager protocol (no
        rendezvous round-trip).
    rendezvous_overhead:
        Extra latency, seconds, for the rendezvous handshake of large
        messages (one extra round trip: ~2*alpha by default at build
        time if left at 0 and the caller doesn't override).
    per_byte_packing:
        Per-byte CPU cost of non-contiguous datatype packing (used by the
        derived-datatype placement fallback, paper §6).
    """

    alpha: float = 1.5e-6
    hop_latency: float = 1.0e-7
    bandwidth: float = 8.0e9
    nic_streams: int = 2
    eager_threshold: int = 8192
    rendezvous_overhead: float = 0.0
    per_byte_packing: float = 2.5e-11

    @property
    def beta(self) -> float:
        """Seconds/byte of point-to-point serialization
        (``1 / bandwidth``) — the link beta term of the analytic model
        (:mod:`repro.analysis.model`)."""
        return 1.0 / self.bandwidth

    def one_way_latency(self, hops: int = 0) -> float:
        """One-way message latency over *hops* router hops
        (``alpha + hops * hop_latency``) — the model's ``L`` term,
        mirroring :meth:`NetworkModel.latency`."""
        return self.alpha + hops * self.hop_latency

    def rendezvous_latency_for(self, hops: int = 0) -> float:
        """Handshake cost of one rendezvous transfer over *hops* hops,
        mirroring :meth:`NetworkModel.rendezvous_latency`."""
        if self.rendezvous_overhead > 0:
            return self.rendezvous_overhead
        return 2.0 * self.one_way_latency(hops)

    def validate(self) -> None:
        if self.alpha < 0 or self.hop_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.nic_streams < 1:
            raise ValueError("nic_streams must be >= 1")
        if self.eager_threshold < 0:
            raise ValueError("eager_threshold must be non-negative")


@dataclass
class NetworkStats:
    """Aggregate counters maintained by :class:`NetworkModel`."""

    messages: int = 0
    bytes: float = 0.0
    max_hops: int = 0
    rendezvous_messages: int = 0
    per_pair: dict = field(default_factory=dict)

    def record(self, src_node: int, dst_node: int, nbytes: float, hops: int,
               rendezvous: bool) -> None:
        self.messages += 1
        self.bytes += nbytes
        self.max_hops = max(self.max_hops, hops)
        if rendezvous:
            self.rendezvous_messages += 1
        key = (src_node, dst_node)
        cnt, byt = self.per_pair.get(key, (0, 0.0))
        self.per_pair[key] = (cnt + 1, byt + nbytes)


class NetworkModel:
    """Runtime network: owns NIC channels and (optionally) link channels.

    Parameters
    ----------
    engine:
        The simulation engine.
    spec:
        Static parameters.
    topology:
        Hop-count provider; defaults to a 2-hop :class:`FlatTopology`.
    num_nodes:
        Number of compute nodes (NIC endpoints to create).
    link_contention:
        If True, transfers also occupy every router-graph link on their
        path (detailed mode).
    """

    def __init__(
        self,
        engine: Engine,
        spec: NetworkSpec,
        num_nodes: int,
        topology: Topology | None = None,
        link_contention: bool = False,
    ):
        spec.validate()
        self.engine = engine
        self.spec = spec
        self.topology = topology or FlatTopology(num_nodes)
        if self.topology.num_nodes < num_nodes:
            raise ValueError(
                f"topology supports {self.topology.num_nodes} nodes, "
                f"machine has {num_nodes}"
            )
        self.num_nodes = num_nodes
        self.link_contention = link_contention
        # spec.bandwidth is the point-to-point per-stream rate; the NIC
        # sustains nic_streams such streams before transfers queue.
        nic_aggregate = spec.bandwidth * spec.nic_streams
        self._tx = [
            BandwidthChannel(
                engine, nic_aggregate, spec.nic_streams, name=f"nic{t}.tx"
            )
            for t in range(num_nodes)
        ]
        self._rx = [
            BandwidthChannel(
                engine, nic_aggregate, spec.nic_streams, name=f"nic{t}.rx"
            )
            for t in range(num_nodes)
        ]
        self._links: dict[frozenset, BandwidthChannel] = {}
        if link_contention:
            for a, b, _data in self.topology.graph.edges(data=True):
                self._links[frozenset((a, b))] = BandwidthChannel(
                    engine, nic_aggregate, spec.nic_streams,
                    name=f"link{a}-{b}",
                )
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    def latency(self, src_node: int, dst_node: int) -> float:
        """Pure latency component between two nodes."""
        hops = self.topology.hops(src_node, dst_node)
        return self.spec.alpha + hops * self.spec.hop_latency

    def uncontended_time(self, src_node: int, dst_node: int, nbytes: float) -> float:
        """Analytic transfer time ignoring contention (for assertions)."""
        t = self.latency(src_node, dst_node)
        if nbytes > self.spec.eager_threshold:
            t += self.rendezvous_latency(src_node, dst_node)
        return t + nbytes / self.spec.bandwidth

    def rendezvous_latency(self, src_node: int, dst_node: int) -> float:
        """Handshake cost for a rendezvous (large-message) transfer."""
        if self.spec.rendezvous_overhead > 0:
            return self.spec.rendezvous_overhead
        return 2.0 * self.latency(src_node, dst_node)

    def transmit(self, src_node: int, dst_node: int, nbytes: float):
        """Coroutine: move *nbytes* between nodes; completes at delivery.

        Must be driven with ``yield from`` (or spawned).  Occupies the
        source TX NIC and destination RX NIC for the serialization time,
        then waits the propagation latency.
        """
        if src_node == dst_node:
            raise ValueError("transmit() is for inter-node traffic only")
        spec = self.spec
        hops = self.topology.hops(src_node, dst_node)
        rendezvous = nbytes > spec.eager_threshold
        self.stats.record(src_node, dst_node, nbytes, hops, rendezvous)
        if rendezvous:
            yield self.engine.pause(self.rendezvous_latency(src_node, dst_node))
        # Serialization: both endpoint NICs held concurrently.
        holds = [
            self._tx[src_node].transfer(nbytes),
            self._rx[dst_node].transfer(nbytes),
        ]
        if self.link_contention:
            for edge in self.topology.path(src_node, dst_node):
                holds.append(self._links[frozenset(edge)].transfer(nbytes))
        yield AllOf(holds)
        # Propagation.
        yield self.engine.pause(spec.alpha + hops * spec.hop_latency)
        return nbytes

    def nic_tx(self, node: int) -> BandwidthChannel:
        """The transmit channel of *node* (for instrumentation/tests)."""
        return self._tx[node]

    def nic_rx(self, node: int) -> BandwidthChannel:
        """The receive channel of *node* (for instrumentation/tests)."""
        return self._rx[node]
