"""Calibrated machine presets for the two evaluation clusters.

The paper evaluates on:

* **Hazel Hen** — Cray XC40: 2× Intel Haswell E5-2680v3 per node
  (24 cores @ 2.5 GHz), 128 GB DDR4, Cray Aries dragonfly, Cray MPI.
* **Vulcan** — NEC cluster with the identical node architecture but an
  InfiniBand network and Open MPI.

The node-side parameters are therefore shared; the presets differ in
network latency/bandwidth, eager thresholds and (through
:mod:`repro.mpi.collectives.tuning`) collective selection — mirroring how
Cray MPI and Open MPI behave differently on the same silicon in Figs 7-10.

Absolute values are order-of-magnitude calibrations from public
Aries/FDR-InfiniBand measurements, NOT fits to the paper's plots; the
reproduction targets curve *shapes* and crossovers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import replace

from repro.machine.compute import ComputeModel
from repro.machine.model import MachineSpec, NodeSpec
from repro.machine.network import NetworkSpec

__all__ = [
    "hazel_hen",
    "hazel_hen_2s",
    "hazel_hen_flat",
    "vulcan",
    "testing_machine",
]

#: Shared Haswell node calibration (both clusters use identical nodes).
#:
#: This is the *flat* (single memory pool) stand-in: the real node is
#: 2× E5-2680v3, i.e. two sockets of ~30 GB/s sustained each, and this
#: spec folds them into one 60 GB/s aggregate pool with no cross-socket
#: penalty.  :data:`_HASWELL_NODE_2S` is the honest per-socket version
#: with the same aggregate bandwidth.
_HASWELL_NODE = NodeSpec(
    cores=24,
    mem_bandwidth=60.0e9,   # aggregate of both sockets (2 x ~30 GB/s)
    mem_streams=6,          # sustained full-rate copy streams per node
    shm_latency=0.45e-6,    # one CICO hop, on-node
    cache_line=64,
)

#: Honest 2-socket Haswell node: per-socket bandwidth/streams are half
#: the flat aggregate (2 x 30 GB/s = 60 GB/s, 2 x 3 = 6 streams), plus
#: a QPI-like cross-socket link (9.6 GT/s x 2 links ~ 19.2 GB/s) with
#: its own latency hop.
_HASWELL_NODE_2S = NodeSpec(
    cores=24,
    mem_bandwidth=30.0e9,   # per socket; aggregate matches the flat 60 GB/s
    mem_streams=3,          # per socket; aggregate matches the flat 6
    shm_latency=0.45e-6,
    cache_line=64,
    sockets=2,
    xsocket_bandwidth=19.2e9,  # QPI 9.6 GT/s, both directions
    xsocket_streams=2,
    xsocket_latency=1.0e-7,    # extra hop for a remote-socket access
)

_HASWELL_COMPUTE = ComputeModel(
    core_peak_flops=40.0e9,  # 2.5 GHz * 16 DP flops/cycle (AVX2 FMA)
    core_mem_bandwidth=5.0e9,
)


def hazel_hen(num_nodes: int) -> MachineSpec:
    """Cray XC40 'Hazel Hen' preset (Aries dragonfly, Cray-MPI-like).

    Cray MPI on Aries: low injection latency (~1.3 µs), ~10 GB/s
    point-to-point, aggressive eager threshold.
    """
    return MachineSpec(
        name="hazel_hen",
        num_nodes=num_nodes,
        node=_HASWELL_NODE,
        network=NetworkSpec(
            alpha=1.3e-6,
            hop_latency=1.0e-7,
            bandwidth=10.0e9,
            nic_streams=2,
            eager_threshold=8192,
        ),
        compute=_HASWELL_COMPUTE,
        topology_kind="dragonfly",
    )


def hazel_hen_flat(num_nodes: int) -> MachineSpec:
    """Single-socket alias of :func:`hazel_hen` (the historical flat
    node model), kept verbatim so existing sweeps stay reproducible."""
    return hazel_hen(num_nodes)


def hazel_hen_2s(
    num_nodes: int, transport: str = "shm_two_copy"
) -> MachineSpec:
    """Hazel Hen with the honest 2-socket node model.

    Same network/compute calibration as :func:`hazel_hen`; the node is
    expressed as two 30 GB/s sockets joined by a QPI-like link instead
    of one 60 GB/s pool.  *transport* selects the on-node data path
    (see :mod:`repro.machine.transport`).
    """
    flat = hazel_hen(num_nodes)
    return replace(
        flat,
        name="hazel_hen_2s",
        node=replace(_HASWELL_NODE_2S, transport=transport),
    )


def vulcan(num_nodes: int) -> MachineSpec:
    """NEC 'Vulcan' preset (InfiniBand fat-tree, Open-MPI-like).

    Open MPI over FDR InfiniBand: higher injection latency (~1.9 µs),
    ~6 GB/s point-to-point, smaller eager threshold (btl/openib default
    ~12 KB but with higher rendezvous cost).
    """
    return MachineSpec(
        name="vulcan",
        num_nodes=num_nodes,
        node=_HASWELL_NODE,
        network=NetworkSpec(
            alpha=1.9e-6,
            hop_latency=1.5e-7,
            bandwidth=6.0e9,
            nic_streams=2,
            eager_threshold=12288,
        ),
        compute=_HASWELL_COMPUTE,
        topology_kind="fattree",
    )


def testing_machine(
    num_nodes: int = 2,
    cores: int = 4,
    *,
    alpha: float = 1.0e-6,
    bandwidth: float = 1.0e9,
    mem_bandwidth: float = 10.0e9,
    shm_latency: float = 1.0e-7,
    eager_threshold: int = 4096,
    sockets: int = 1,
    xsocket_bandwidth: float = 5.0e9,
    xsocket_latency: float = 5.0e-8,
    transport: str = "shm_two_copy",
) -> MachineSpec:
    """Small, round-number machine for unit tests.

    Parameters are chosen so hand-computed expected times are exact
    binary floats (powers of ten divided by powers of two).  With
    ``sockets > 1`` the given ``mem_bandwidth`` is interpreted per
    socket (as in :class:`~repro.machine.model.NodeSpec`).
    """
    return MachineSpec(
        name="testing",
        num_nodes=num_nodes,
        node=NodeSpec(
            cores=cores,
            mem_bandwidth=mem_bandwidth,
            mem_streams=2,
            shm_latency=shm_latency,
            sockets=sockets,
            xsocket_bandwidth=xsocket_bandwidth,
            xsocket_streams=1,
            xsocket_latency=xsocket_latency,
            transport=transport,
        ),
        network=NetworkSpec(
            alpha=alpha,
            hop_latency=0.0,
            bandwidth=bandwidth,
            nic_streams=1,
            eager_threshold=eager_threshold,
        ),
        compute=ComputeModel(core_peak_flops=1.0e9, core_mem_bandwidth=1.0e9),
        topology_kind="flat",
    )
