"""Machine-model self-calibration probes.

Runs micro-probes *on the simulated machine* and reports the effective
parameters a benchmarker would measure (ping-pong latency/bandwidth,
on-node copy bandwidth, barrier cost).  Two uses:

* **model validation** — tests assert that measured values equal the
  analytic expectations from the spec (catching accidental
  double-charging in the protocol paths);
* **documentation** — ``probe_report`` prints the table we quote in
  README/EXPERIMENTS when describing the simulated clusters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.model import MachineSpec
from repro.machine.placement import Placement
from repro.mpi import run_program
from repro.mpi.datatypes import Bytes

__all__ = ["ProbeResult", "probe_machine", "probe_report"]


@dataclass(frozen=True)
class ProbeResult:
    """Measured effective machine parameters (all SI units)."""

    internode_latency: float        # 0-byte one-way, seconds
    internode_bandwidth: float      # large-message bytes/second
    intranode_latency: float        # 0-byte one-way, CICO path
    intranode_copy_bandwidth: float  # large-message effective B/s
    shm_barrier_24: float           # barrier cost over one full node
    allgather_1rpn_8nodes: float    # small allgather across 8 nodes


def _pingpong(spec: MachineSpec, placement: Placement, nbytes: int,
              reps: int = 3) -> float:
    """One-way time of an nbytes message between ranks 0 and 1."""

    def prog(mpi):
        comm = mpi.world
        payload = Bytes(nbytes)
        yield from comm.barrier()
        t0 = mpi.now
        for _ in range(reps):
            if comm.rank == 0:
                yield from comm.send(payload, 1, tag=1)
                yield from comm.recv(source=1, tag=2)
            elif comm.rank == 1:
                yield from comm.recv(source=0, tag=1)
                yield from comm.send(payload, 0, tag=2)
        return (mpi.now - t0) / (2 * reps)

    result = run_program(
        spec, None, prog, placement=placement, payload_mode="model"
    )
    return max(r for r in result.returns if r is not None)


def probe_machine(spec_factory) -> ProbeResult:
    """Run the probe suite against a preset factory (e.g. hazel_hen)."""
    two_nodes = spec_factory(2)
    inter = Placement.irregular([1, 1])
    lat_net = _pingpong(two_nodes, inter, 0)
    big = 8 * 1024 * 1024
    bw_net = big / max(
        _pingpong(two_nodes, inter, big) - lat_net, 1e-12
    )

    one_node = spec_factory(1)
    intra = Placement.block(1, 2)
    lat_shm = _pingpong(one_node, intra, 0)
    bw_shm = big / max(_pingpong(one_node, intra, big) - lat_shm, 1e-12)

    def barrier_prog(mpi):
        comm = mpi.world
        yield from comm.barrier()
        t0 = mpi.now
        yield from comm.barrier()
        return mpi.now - t0

    barrier = max(
        run_program(
            one_node, None, barrier_prog,
            placement=Placement.block(1, one_node.node.cores),
            payload_mode="model",
        ).returns
    )

    from repro.bench.osu import osu_allgather_latency

    ag = osu_allgather_latency(
        spec_factory(8), Placement.irregular([1] * 8), 8 * 8, "pure"
    )
    return ProbeResult(
        internode_latency=lat_net,
        internode_bandwidth=bw_net,
        intranode_latency=lat_shm,
        intranode_copy_bandwidth=bw_shm,
        shm_barrier_24=barrier,
        allgather_1rpn_8nodes=ag,
    )


def probe_report(spec_factory, name: str | None = None) -> str:
    """Human-readable calibration table for one preset."""
    probe = probe_machine(spec_factory)
    label = name or spec_factory(1).name
    return "\n".join(
        [
            f"calibration probes — {label}",
            f"  inter-node 0B latency : {probe.internode_latency * 1e6:8.2f} us",
            f"  inter-node bandwidth  : {probe.internode_bandwidth / 1e9:8.2f} GB/s",
            f"  intra-node 0B latency : {probe.intranode_latency * 1e6:8.2f} us",
            f"  intra-node copy bw    : {probe.intranode_copy_bandwidth / 1e9:8.2f} GB/s",
            f"  full-node barrier     : {probe.shm_barrier_24 * 1e6:8.2f} us",
            f"  8-node small allgather: {probe.allgather_1rpn_8nodes * 1e6:8.2f} us",
        ]
    )
