"""Counters and histograms over a job result, exportable as JSON or
Prometheus text exposition format.

Complements the raw span stream (:mod:`repro.trace`) and the
critical-path decomposition (:mod:`repro.analysis.critical_path`) with
the aggregate view monitoring systems expect:

* **counters** — ranks, virtual elapsed time, messages/bytes by layer
  (total, intra-node, network);
* **per-(op, algo) series** — call counts, byte totals and a latency
  histogram of the dispatch-span durations;
* **queue-wait histogram** — receive matching delays (only populated at
  trace detail ``"p2p"``);
* **profile** — the per-op communication summary of
  :meth:`~repro.mpi.runtime.JobResult.comm_summary` (bytes follow the
  conventions of :mod:`repro.mpi.profiler`).

All times are **virtual seconds** (the simulator's clock); histogram
buckets are fixed log-spaced bounds so runs are comparable.

Example
-------
>>> m = {"counters": {"ranks": 4}, "ops": {}, "queue_wait": None,
...      "profile": {}}
>>> print(to_prometheus(m).splitlines()[1])
repro_ranks 4
"""

from __future__ import annotations

import json

__all__ = [
    "LATENCY_BUCKETS",
    "collect_metrics",
    "sweep_metrics",
    "to_prometheus",
    "save_metrics",
]

#: Histogram bucket upper bounds, seconds (log-spaced; +Inf implied).
LATENCY_BUCKETS = (
    1e-7, 3e-7, 1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1,
)


def _histogram(values: list[float]) -> dict:
    """Cumulative bucket counts plus sum/count (Prometheus semantics)."""
    buckets = []
    for bound in LATENCY_BUCKETS:
        buckets.append([bound, sum(1 for v in values if v <= bound)])
    return {
        "buckets": buckets,
        "count": len(values),
        "sum": sum(values),
    }


def collect_metrics(result) -> dict:
    """Aggregate a :class:`~repro.mpi.runtime.JobResult` into metrics.

    Works with or without a trace: without one, the per-op series and
    queue-wait histogram are empty and only counters/profile remain.
    """
    counters = {
        "ranks": len(result.finish_times),
        "elapsed_seconds": result.elapsed,
        "events_processed": result.events_processed,
        "sent_messages": result.sent_messages,
        "sent_bytes": result.sent_bytes,
        "intra_copies": result.intra_copies,
        "intra_bytes": result.intra_bytes,
        "network_messages": result.network_messages,
        "network_bytes": result.network_bytes,
    }
    ops: dict[str, dict] = {}
    waits: list[float] = []
    for rec in result.trace or []:
        kind = rec.get("kind", "dispatch")
        if kind == "dispatch":
            key = f"{rec['op']}:{rec['algo']}"
            series = ops.setdefault(
                key, {"calls": 0, "bytes": 0, "latencies": []}
            )
            series["calls"] += 1
            series["bytes"] += rec.get("nbytes", 0)
            if rec.get("dur") is not None:
                series["latencies"].append(rec["dur"])
        elif kind == "queue_wait":
            waits.append(rec["wait"])
    for series in ops.values():
        series["latency"] = _histogram(series.pop("latencies"))
    return {
        "counters": counters,
        "ops": ops,
        "queue_wait": _histogram(waits) if waits else None,
        "profile": result.comm_summary(),
    }


def sweep_metrics(report: dict) -> dict:
    """Aggregate a :func:`repro.bench.sweep.run_sweep` report into the
    same metrics shape :func:`collect_metrics` produces, so sweep runs
    export through the existing :func:`to_prometheus` /
    :func:`save_metrics` plumbing.

    Counters carry the orchestrator's observability signals — points
    answered, cache hits/misses, computed/failed/retried counts, worker
    count and wall seconds — prefixed ``sweep_`` so they never collide
    with the per-job simulator counters.

    >>> report = {"counters": {"points": 4, "hits": 3, "misses": 1,
    ...                        "computed": 1, "failed": 0, "retried": 0},
    ...           "workers": 2, "wall_s": 0.25}
    >>> m = sweep_metrics(report)
    >>> m["counters"]["sweep_cache_hits"]
    3
    >>> "repro_sweep_points 4" in to_prometheus(m)
    True
    """
    c = report.get("counters", {})
    counters = {
        "sweep_points": c.get("points", 0),
        "sweep_cache_hits": c.get("hits", 0),
        "sweep_cache_misses": c.get("misses", 0),
        "sweep_computed": c.get("computed", 0),
        "sweep_failed": c.get("failed", 0),
        "sweep_retried": c.get("retried", 0),
        "sweep_workers": report.get("workers", 0),
        "sweep_wall_seconds": report.get("wall_s", 0.0),
    }
    return {"counters": counters, "ops": {}, "queue_wait": None,
            "profile": {}}


def _prom_hist(lines: list[str], name: str, labels: str, hist: dict) -> None:
    for bound, count in hist["buckets"]:
        sep = "," if labels else ""
        lines.append(f'{name}_bucket{{{labels}{sep}le="{bound:g}"}} {count}')
    sep = "," if labels else ""
    lines.append(f'{name}_bucket{{{labels}{sep}le="+Inf"}} {hist["count"]}')
    brace = f"{{{labels}}}" if labels else ""
    lines.append(f"{name}_sum{brace} {hist['sum']:.12g}")
    lines.append(f"{name}_count{brace} {hist['count']}")


def to_prometheus(metrics: dict) -> str:
    """Render :func:`collect_metrics` output as Prometheus text format.

    Metric names are prefixed ``repro_``; per-op series carry ``op`` and
    ``algo`` labels; times are seconds (Prometheus convention).
    """
    lines: list[str] = []
    lines.append("# TYPE repro_ranks gauge")
    for key, value in metrics["counters"].items():
        fmt = f"{value:.12g}" if isinstance(value, float) else str(value)
        lines.append(f"repro_{key} {fmt}")
    lines.append("# TYPE repro_collective_latency_seconds histogram")
    for key in sorted(metrics["ops"]):
        series = metrics["ops"][key]
        op, _, algo = key.partition(":")
        labels = f'op="{op}",algo="{algo}"'
        lines.append(f"repro_collective_calls_total{{{labels}}} "
                     f"{series['calls']}")
        lines.append(f"repro_collective_bytes_total{{{labels}}} "
                     f"{series['bytes']}")
        _prom_hist(lines, "repro_collective_latency_seconds", labels,
                   series["latency"])
    if metrics.get("queue_wait"):
        lines.append("# TYPE repro_queue_wait_seconds histogram")
        _prom_hist(lines, "repro_queue_wait_seconds", "", metrics["queue_wait"])
    for op in sorted(metrics.get("profile", {})):
        s = metrics["profile"][op]
        labels = f'op="{op}"'
        lines.append(f"repro_profile_calls_total{{{labels}}} {s['calls']}")
        lines.append(f"repro_profile_bytes_total{{{labels}}} {s['bytes']}")
        lines.append(f"repro_profile_time_seconds{{{labels}}} "
                     f"{s['time']:.12g}")
    return "\n".join(lines) + "\n"


def save_metrics(metrics: dict, path: str) -> None:
    """Write metrics to *path*: ``.json`` → JSON, anything else →
    Prometheus text format (``.prom``/``.txt``)."""
    if path.endswith(".json"):
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(metrics, fh, indent=2, sort_keys=True)
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(to_prometheus(metrics))
