"""Critical-path attribution over a span trace.

Answers the question behind the paper's Figs 9/11/12: *which operations
and phases dominate end-to-end virtual time?*  The end-to-end time of a
bulk-synchronous MPI job equals the time of its slowest rank, so the
analysis:

1. picks the **critical rank** — the rank whose last span ends latest
   (ties break toward the lower rank, deterministically);
2. walks that rank's span tree (dispatch spans with their nested phase
   children, linked by ``sid``/``parent``) and attributes each span's
   **self time** — its duration minus the duration of its child spans —
   to a category labelled by the name chain, e.g.
   ``allgather:hier_leader/bridge_exchange``;
3. charges whatever the spans do not cover (compute, setup, gaps between
   collectives) to the ``(outside spans)`` category.

Convention: the per-category times of the report **sum exactly to the
end-to-end virtual time** (``total``) by construction — the gap category
is defined as the remainder.  Float addition makes "exactly" a relative
tolerance of a few ulps in practice, which is what the tests assert.

The decomposition assumes spans on one rank nest.  Blocking collectives
always do; non-blocking collectives run in their own tracer context, so
their spans nest correctly *within* each collective, but two concurrent
collectives' top-level spans can overlap in time — summing their
durations then over-counts ``covered`` and may drive the gap negative.
The report carries on (it is attribution, not accounting); for overlap
questions use :func:`overlap_report`, which measures the *union* of
communication intervals against the union of compute intervals (traced
with ``trace="dispatch+compute"``) and splits communication into the
**hidden** part (concurrent with compute) and the **exposed** remainder
that actually extends the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CriticalPathReport", "critical_path_report", "format_report",
    "OverlapReport", "overlap_report", "format_overlap_report",
]

#: Category charged with time not covered by any top-level span.
OUTSIDE = "(outside spans)"

#: Record kinds that participate in the decomposition (p2p waits and
#: queue-wait instants are diagnostics, already contained in phases).
_TREE_KINDS = ("dispatch", "phase")


def _span_name(rec: dict) -> str:
    if rec.get("kind", "dispatch") == "phase":
        return rec["phase"]
    return f"{rec['op']}:{rec['algo']}"


@dataclass
class CriticalPathReport:
    """Per-category decomposition of the critical rank's virtual time."""

    rank: int
    total: float
    categories: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)

    def sorted_categories(self) -> list[tuple[str, float]]:
        """Categories by descending time (``(outside spans)`` included)."""
        return sorted(
            self.categories.items(), key=lambda kv: (-kv[1], kv[0])
        )

    def top(self, n: int = 5) -> list[tuple[str, float]]:
        """The *n* most expensive categories."""
        return self.sorted_categories()[:n]


def critical_path_report(trace: list[dict],
                         total_time: float | None = None) -> CriticalPathReport:
    """Decompose end-to-end time into per-op/per-phase categories.

    *trace* is a job's span stream (``JobResult.trace``); *total_time*
    overrides the end-to-end time (pass ``result.elapsed`` to charge
    trailing non-span work to ``(outside spans)``; default is the latest
    span end seen in the trace).

    Instant records (no ``dur``) and open spans are skipped; so are p2p
    and queue-wait records — their time is already inside the enclosing
    phase span.
    """
    spans = [
        rec for rec in trace
        if rec.get("kind", "dispatch") in _TREE_KINDS
        and rec.get("dur") is not None
    ]
    if not spans:
        return CriticalPathReport(
            rank=-1,
            total=total_time or 0.0,
            categories={OUTSIDE: total_time or 0.0} if total_time else {},
        )

    # 1. critical rank: latest span end wins; tie -> lowest rank.
    end_of: dict[int, float] = {}
    for rec in spans:
        end = rec["t"] + rec["dur"]
        rank = rec["rank"]
        if rank not in end_of or end > end_of[rank]:
            end_of[rank] = end
    crit = min(r for r, e in end_of.items() if e == max(end_of.values()))
    total = total_time if total_time is not None else end_of[crit]

    mine = [rec for rec in spans if rec["rank"] == crit]
    by_sid = {rec["sid"]: rec for rec in mine}
    child_time: dict[int, float] = {}
    for rec in mine:
        parent = rec.get("parent")
        if parent in by_sid:
            child_time[parent] = child_time.get(parent, 0.0) + rec["dur"]

    # 2. self time per label chain.
    categories: dict[str, float] = {}
    calls: dict[str, int] = {}
    covered = 0.0
    for rec in mine:
        chain = [_span_name(rec)]
        parent = rec.get("parent")
        while parent in by_sid:
            chain.append(_span_name(by_sid[parent]))
            parent = by_sid[parent].get("parent")
        label = "/".join(reversed(chain))
        self_time = rec["dur"] - child_time.get(rec["sid"], 0.0)
        categories[label] = categories.get(label, 0.0) + self_time
        calls[label] = calls.get(label, 0) + 1
        if rec.get("parent") not in by_sid:  # top-level span
            covered += rec["dur"]

    # 3. the remainder: compute, setup, inter-collective gaps.
    categories[OUTSIDE] = total - covered
    return CriticalPathReport(
        rank=crit, total=total, categories=categories, calls=calls
    )


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge possibly-overlapping ``(start, end)`` intervals."""
    merged: list[list[float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(s, e) for s, e in merged]


def _measure(intervals: list[tuple[float, float]]) -> float:
    return sum(e - s for s, e in intervals)


def _intersect(a: list[tuple[float, float]],
               b: list[tuple[float, float]]) -> float:
    """Total measure of the intersection of two merged interval lists."""
    i = j = 0
    out = 0.0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            out += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


@dataclass
class OverlapReport:
    """Hidden- vs exposed-communication decomposition of a traced run.

    All times are virtual seconds on the **critical rank** (the rank
    whose last span ends latest); ``per_rank`` carries the same numbers
    for every rank.
    """

    rank: int
    total: float
    comm: float
    compute: float
    hidden: float
    exposed: float
    per_rank: dict[int, dict[str, float]] = field(default_factory=dict)

    @property
    def overlap_pct(self) -> float:
        """Hidden communication as a percentage of all communication."""
        return 100.0 * self.hidden / self.comm if self.comm > 0 else 0.0


def overlap_report(trace: list[dict],
                   total_time: float | None = None) -> OverlapReport:
    """Measure hidden vs exposed communication time per rank.

    Communication is the union of each rank's *top-level* ``dispatch``
    spans (nested phase/sub-collective spans are already inside them);
    compute is the union of its ``kind="compute"`` spans (present when
    the job was traced with ``trace="dispatch+compute"``).  Hidden is
    the measure of their intersection — communication that ran while
    the rank computed — and exposed is the rest, the part that actually
    extended the rank's timeline.  Without compute spans everything is
    exposed (the blocking baseline).
    """
    comm_iv: dict[int, list[tuple[float, float]]] = {}
    compute_iv: dict[int, list[tuple[float, float]]] = {}
    sids: dict[int, set] = {}
    last_end: dict[int, float] = {}
    for rec in trace:
        if rec.get("dur") is None:
            continue
        rank = rec["rank"]
        kind = rec.get("kind", "dispatch")
        span = (rec["t"], rec["t"] + rec["dur"])
        last_end[rank] = max(last_end.get(rank, 0.0), span[1])
        if kind == "compute":
            compute_iv.setdefault(rank, []).append(span)
        elif kind == "dispatch":
            if rec.get("parent") not in sids.setdefault(rank, set()):
                comm_iv.setdefault(rank, []).append(span)
            sids[rank].add(rec["sid"])
    if not last_end:
        return OverlapReport(rank=-1, total=total_time or 0.0,
                             comm=0.0, compute=0.0, hidden=0.0, exposed=0.0)

    per_rank: dict[int, dict[str, float]] = {}
    for rank in sorted(last_end):
        comm = _union(comm_iv.get(rank, []))
        compute = _union(compute_iv.get(rank, []))
        hidden = _intersect(comm, compute)
        comm_t = _measure(comm)
        per_rank[rank] = {
            "comm": comm_t,
            "compute": _measure(compute),
            "hidden": hidden,
            "exposed": comm_t - hidden,
        }
    crit = min(r for r, e in last_end.items() if e == max(last_end.values()))
    total = total_time if total_time is not None else last_end[crit]
    stats = per_rank[crit]
    return OverlapReport(
        rank=crit, total=total, comm=stats["comm"],
        compute=stats["compute"], hidden=stats["hidden"],
        exposed=stats["exposed"], per_rank=per_rank,
    )


def format_overlap_report(report: OverlapReport) -> str:
    """Render an overlap report as an aligned text table (µs)."""
    lines = [
        f"critical rank: {report.rank}   "
        f"end-to-end: {report.total * 1e6:.2f} us   "
        f"overlap: {report.overlap_pct:.1f}%",
        f"{'rank':>5} {'comm(us)':>10} {'compute(us)':>12} "
        f"{'hidden(us)':>11} {'exposed(us)':>12}",
    ]
    for rank, st in report.per_rank.items():
        mark = " *" if rank == report.rank else ""
        lines.append(
            f"{rank:>5} {st['comm'] * 1e6:>10.2f} "
            f"{st['compute'] * 1e6:>12.2f} {st['hidden'] * 1e6:>11.2f} "
            f"{st['exposed'] * 1e6:>12.2f}{mark}"
        )
    return "\n".join(lines)


def format_report(report: CriticalPathReport, max_rows: int = 20) -> str:
    """Render a report as an aligned text table (times in µs, percents
    of end-to-end virtual time)."""
    lines = [
        f"critical rank: {report.rank}   "
        f"end-to-end: {report.total * 1e6:.2f} us",
        f"{'category':<48} {'calls':>6} {'time(us)':>10} {'%':>6}",
    ]
    rows = report.sorted_categories()
    for label, t in rows[:max_rows]:
        pct = 100.0 * t / report.total if report.total else 0.0
        n = report.calls.get(label, 0)
        n_s = str(n) if n else "-"
        lines.append(f"{label:<48} {n_s:>6} {t * 1e6:>10.2f} {pct:>5.1f}%")
    if len(rows) > max_rows:
        lines.append(f"... (+{len(rows) - max_rows} more categories)")
    return "\n".join(lines)
