"""Post-run analyses over job results and trace streams."""

from repro.analysis.critical_path import (
    CriticalPathReport,
    critical_path_report,
    format_report,
)

__all__ = ["CriticalPathReport", "critical_path_report", "format_report"]
