"""Post-run analyses over job results and trace streams."""

from repro.analysis.critical_path import (
    CriticalPathReport,
    critical_path_report,
    format_report,
)
from repro.analysis.model import (
    MODEL_FORMS,
    CostModel,
    crossover_points,
    model_for_comm,
    predict,
    predict_comm,
)

__all__ = [
    "CriticalPathReport",
    "critical_path_report",
    "format_report",
    "MODEL_FORMS",
    "CostModel",
    "crossover_points",
    "model_for_comm",
    "predict",
    "predict_comm",
]
