"""Post-run analyses over job results and trace streams."""

from repro.analysis.critical_path import (
    CriticalPathReport,
    OverlapReport,
    critical_path_report,
    format_overlap_report,
    format_report,
    overlap_report,
)
from repro.analysis.model import (
    MODEL_FORMS,
    CostModel,
    crossover_points,
    model_for_comm,
    predict,
    predict_comm,
    predict_overlap,
)

__all__ = [
    "CriticalPathReport",
    "OverlapReport",
    "critical_path_report",
    "format_overlap_report",
    "format_report",
    "overlap_report",
    "MODEL_FORMS",
    "CostModel",
    "crossover_points",
    "model_for_comm",
    "predict",
    "predict_comm",
    "predict_overlap",
]
