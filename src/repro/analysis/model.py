"""Analytic closed-form latency model — the "fast lane" beside the DES.

The discrete-event simulator prices a collective by running it; this
module prices the same collective with closed-form alpha-beta/hop-latency
arithmetic ("A Model for Communication in Clusters of Multi-core
Machines" formulation), reusing the exact protocol rules the simulator
implements:

* inter-node messages pay ``L = alpha + hops * hop_latency`` plus
  serialization ``n/B`` on the endpoint NICs (``nic_streams`` concurrent
  transfers before FIFO queueing); rendezvous messages
  (``n > eager_threshold``) pay an extra ``2L`` handshake;
* intra-node messages pay ``shm_latency`` (scaled by the transport's
  ``latency_scale``) plus the transport's staged memory copies — two
  for the eager CICO path of ``shm_two_copy``, one for ``cma_single_copy``
  / ``pip_direct`` and for every rendezvous (LMT) path — each copy
  moving ``2n`` bytes through a socket memory channel (``mem_streams``
  concurrent copies per socket before queueing); on multi-socket nodes
  exactly one copy of a cross-socket message crosses the xsocket link
  (``xsocket_streams`` concurrent transfers) and the message pays an
  extra ``xsocket_latency``;
* concurrent same-shaped transfers on one channel complete in FIFO
  waves: ``k`` transfers on ``s`` slots finish after ``ceil(k/s)``
  transfer times.

Per-algorithm evaluators compose these primitives into the round
structure of every registered collective algorithm, including the
leader-based hierarchical stages (on-node funnel → inter-leader bridge
→ on-node release) and the hybrid ``hy_*`` shared-window exchanges.
For small communicators (``p <= exact_limit``) per-round send/recv
censuses over the actual rank→node map are used, so irregular
placements are priced exactly; larger communicators fall back to O(ppn)
arithmetic, which is what makes a 1M-rank sweep take microseconds per
point instead of hours of simulation.

The conformance suite (``tests/analysis/test_model_conformance.py``)
asserts model-vs-DES divergence bounds for every registered (op, algo)
pair; see ``docs/modeling.md`` for the formulas and tolerance table.

>>> t = predict("testing", None, "bcast", "binomial", 8, 8, 1024)
>>> 0.0 < t < 1.0
True
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Iterable, Mapping, Sequence

from repro.mpi.collectives.tuning import CollectiveTuning, tuning_for_machine

__all__ = [
    "CostModel",
    "MODEL_VERSION",
    "predict",
    "predict_overlap",
    "predict_comm",
    "model_for_comm",
    "crossover_points",
    "MODEL_FORMS",
]

#: Version of the closed-form model's *predictions*.  Bump whenever a
#: formula change alters any predicted latency — the content-addressed
#: result cache (:mod:`repro.bench.sweep`) folds this into the cache key
#: of every model-engine point, so cached predictions invalidate
#: automatically when the formulas move.
MODEL_VERSION = "7.0"


# ---------------------------------------------------------------------------
# Representative hop counts
# ---------------------------------------------------------------------------

def _rep_hops_kind(kind: str, num_nodes: int) -> int:
    """Representative (worst-pair) router hop count for *num_nodes* of a
    topology family, mirroring the constructions in
    :mod:`repro.machine.topology`."""
    if num_nodes <= 1:
        return 0
    if kind == "dragonfly":
        if num_nodes <= 4:       # one router (nodes_per_router=4)
            return 1
        if num_nodes <= 64:      # one group (16 routers/group)
            return 2
        return 4                 # cross-group via gateways
    if kind == "fattree":
        return 1 if num_nodes <= 24 else 3   # same leaf : via spine
    return 2                     # flat (uniform_hops)


def _rep_hops(topology, kind: str, node_ids: Sequence[int]) -> int:
    """Worst pairwise hops over *node_ids* (exact for small sets)."""
    n = len(node_ids)
    if n <= 1:
        return 0
    if topology is not None and not isinstance(topology, str) and n <= 64:
        worst = 0
        for i in range(n):
            for j in range(i + 1, n):
                worst = max(worst, topology.hops(node_ids[i], node_ids[j]))
        return worst
    return _rep_hops_kind(kind, max(node_ids) + 1 if node_ids else n)


def _is_pof2(n: int) -> bool:
    return n > 0 and n & (n - 1) == 0


def _ceil_log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


# ---------------------------------------------------------------------------
# The model
# ---------------------------------------------------------------------------

class CostModel:
    """Closed-form latency evaluator for one (machine, placement) pair.

    Parameters
    ----------
    spec:
        :class:`~repro.machine.model.MachineSpec` supplying link
        alpha/beta, NIC streams, eager threshold and node memory costs.
    counts:
        Per-node rank counts in block order (``Placement.irregular``
        semantics); an int means one node with that many ranks.
    tuning:
        :class:`CollectiveTuning` personality; defaults to the spec's
        machine personality.
    topology:
        Hop-count provider — a Topology instance (exact pairwise hops
        for small node sets), a kind string, or None for the spec's
        ``topology_kind``.
    node_ids:
        Machine node indices hosting the ranks (default ``0..N-1``).
    exact_limit:
        Communicator sizes up to this bound use exact per-round
        send/recv censuses; larger ones use O(ppn) arithmetic.
    socket_mode:
        Slot→socket mapping of the placement being priced (one of
        :attr:`~repro.machine.placement.Placement.SOCKET_MODES`); only
        meaningful when the node spec declares ``sockets > 1``.
    """

    def __init__(self, spec, counts, tuning: CollectiveTuning | None = None,
                 topology=None, node_ids: Sequence[int] | None = None,
                 exact_limit: int = 256, socket_mode: str = "compact"):
        if isinstance(counts, int):
            counts = (counts,)
        self.counts = tuple(int(c) for c in counts)
        if not self.counts or min(self.counts) < 1:
            raise ValueError("counts must be non-empty positive ints")
        self.spec = spec
        self.p = sum(self.counts)
        self.N = len(self.counts)
        self.q = max(self.counts)
        self.tuning = tuning or tuning_for_machine(spec.name)
        node = spec.node
        net = spec.network
        #: On-node transport (copy counts + latency scale); for the
        #: default ``shm_two_copy`` every formula below reduces exactly
        #: to the pre-transport model.
        self.tp = node.transport_spec
        self.shm_lat = node.shm_latency * self.tp.latency_scale
        #: Seconds per byte of one staged copy (reads + writes the data).
        self.copy_beta = node.copy_beta
        #: Per-socket memory streams (the census unit) and their pooled
        #: node-wide count (the arithmetic-mode unit; equal on flat nodes).
        self.mem_streams = node.mem_streams
        self.sockets = node.sockets
        self.pool_streams = node.mem_streams * node.sockets
        self.socket_mode = socket_mode
        self.cores_per_socket = node.cores_per_socket
        self.x_lat = node.xsocket_latency if node.sockets > 1 else 0.0
        #: Seconds per byte of one staged copy over the xsocket link.
        self.x_beta = node.xsocket_beta
        self.x_streams = node.xsocket_streams
        self.alpha = net.alpha
        self.B = net.bandwidth
        self.nic_streams = net.nic_streams
        self.eager = net.eager_threshold
        ids = tuple(node_ids) if node_ids is not None else tuple(range(self.N))
        kind = topology if isinstance(topology, str) else spec.topology_kind
        hops = _rep_hops(None if isinstance(topology, str) else topology,
                         kind, ids)
        self.hops = hops
        #: One-way message latency (software + routing).
        self.L = net.one_way_latency(hops)
        self.rdv = net.rendezvous_latency_for(hops)
        self.exact_limit = exact_limit
        self.exact = self.p <= exact_limit
        if self.exact:
            node_of = []
            sock_of = []
            for n_idx, c in enumerate(self.counts):
                node_of.extend([n_idx] * c)
                sock_of.extend(self._sock_slot(s, c) for s in range(c))
            self._node_of = node_of
            self._sock_of = sock_of
        else:
            self._node_of = None
            self._sock_of = None
        self._memo: dict = {}

    # -- socket census -----------------------------------------------------

    def _sock_slot(self, slot: int, ppn: int) -> int:
        """Socket of on-node *slot* under :attr:`socket_mode` (mirrors
        :meth:`repro.machine.placement.Placement.socket_of`)."""
        s = self.sockets
        if s <= 1:
            return 0
        if self.socket_mode == "compact":
            return min(slot // self.cores_per_socket, s - 1)
        if self.socket_mode == "scatter":
            return slot % s
        return min(slot * s // max(ppn, 1), s - 1)

    def _ncross(self, pairs: Iterable[tuple[int, int]], q: int) -> int:
        """Cross-socket pair count among on-node slot *pairs* of a
        node hosting *q* ranks."""
        if self.sockets <= 1:
            return 0
        return sum(
            1 for a, b in pairs
            if self._sock_slot(a, q) != self._sock_slot(b, q)
        )

    # -- primitives -------------------------------------------------------

    def copy(self, m: float) -> float:
        """One staged memory copy of *m* bytes (uncontended)."""
        return m * self.copy_beta

    def xcopy(self, m: float) -> float:
        """One staged copy of *m* bytes over the xsocket link."""
        return m * self.x_beta

    def _k_of(self, m: float) -> int:
        """Staged copies per on-node message of *m* bytes under the
        node's transport (eager vs rendezvous path)."""
        return (self.tp.eager_copies if m <= self.eager
                else self.tp.rdv_copies)

    def shm_round(self, m: float, conc: int, ncross: int = 0) -> float:
        """Completion time of *conc* concurrent on-node messages of *m*
        bytes each, started together on one node's memory system.
        *ncross* of them cross sockets: their first staged copy moves
        over the xsocket link and they pay ``xsocket_latency`` extra."""
        if conc <= 0:
            return 0.0
        k = self._k_of(m)
        c = self.copy(m)
        if ncross <= 0:
            # Same-domain round: copies refill freed slots, so the last
            # completion is governed by total copy count, floored by the
            # k sequential per-message hops.
            s = self.pool_streams
            waves = max(k, math.ceil(k * conc / s))
            return self.shm_lat + waves * c
        lat = self.shm_lat + self.x_lat
        # First copies: crossing messages queue on the xsocket link
        # while same-socket ones start on the memory channels.
        nloc = conc - ncross
        t = math.ceil(ncross / self.x_streams) * self.xcopy(m)
        if nloc > 0:
            t = max(t, math.ceil(nloc / self.pool_streams) * c)
        if k > 1:
            # Remaining copies all land on the socket memory channels.
            t += max(k - 1,
                     math.ceil((k - 1) * conc / self.pool_streams)) * c
        return lat + t

    def net_round(self, m: float, conc: int) -> float:
        """Completion (at the receiver) of *conc* concurrent inter-node
        messages of *m* bytes per endpoint NIC."""
        if conc <= 0:
            return 0.0
        waves = max(1, math.ceil(conc / self.nic_streams))
        t = waves * (m / self.B) + self.L
        if m > self.eager:
            t += self.rdv
        return t

    # -- dependency-graph primitives --------------------------------------
    #
    # Round-sum forms overcharge algorithms whose messages pipeline: an
    # eager sender is free after injecting its payload, so consecutive
    # tree levels or ring hops pay the one-way latency once per
    # dependency chain, not once per round.  The evaluators below walk
    # the actual send/recv dependency structure with per-message
    # protocol costs (contention appears as channel-throughput floors).

    def _send_pair(self, intra: bool, m: float, start: float,
                   recv_post: float,
                   cross: bool = False) -> tuple[float, float]:
        """(sender-free, receiver-done) absolute times of one message
        whose send starts at *start* with the recv posted at
        *recv_post*.  *cross* marks an intra-node pair living on
        different sockets (its first copy crosses the xsocket link)."""
        if intra:
            lat = self.shm_lat + (self.x_lat if cross else 0.0)
            c = self.copy(m)
            first = self.xcopy(m) if cross else c
            if m <= self.eager:
                k = self.tp.eager_copies
                if k >= 2:
                    # Sender stages k-1 copies (the first may cross);
                    # the receiver pays the final copy-out.
                    avail = start + lat + first + (k - 2) * c
                    return (avail, max(avail, recv_post) + c)
                # Single-copy transport: the sender is free after the
                # latency hop; the receiver's one copy moves the data.
                avail = start + lat
                return (avail, max(avail, recv_post) + first)
            k = self.tp.rdv_copies                     # LMT direct copy
            match = max(start, recv_post)
            done = match + lat + first + (k - 1) * c
            return (done, done)
        if m <= self.eager:
            avail = start + m / self.B + self.L
            return (start + m / self.B, max(avail, recv_post))
        match = max(start, recv_post)                  # rendezvous
        done = match + self.rdv + self.L + m / self.B
        return (done, done)

    def _edge_cost(self, intra: bool, m: float,
                   cross: bool = False) -> float:
        """Store-and-forward cost of one pipelined hop (recv pre-posted)."""
        if intra:
            k = self._k_of(m)
            first = self.xcopy(m) if cross else self.copy(m)
            return (self.shm_lat + (self.x_lat if cross else 0.0)
                    + first + (k - 1) * self.copy(m))
        t = m / self.B + self.L
        if m > self.eager:
            t += self.rdv
        return t

    def _pair_cross(self, sock_of, node_of, a: int, b: int) -> bool:
        """Whether vranks *a*, *b* form a cross-socket intra-node pair."""
        return (sock_of is not None and node_of[a] == node_of[b]
                and sock_of[a] != sock_of[b])

    def _dp_down_tree(self, node_of: Sequence[int],
                      m_of: Callable[[int], float],
                      sock_of: Sequence[int] | None = None) -> float:
        """Binomial top-down tree rooted at vrank 0 (bcast/scatter):
        completion time.  ``m_of(cnt)`` is the bytes sent to a subtree
        of *cnt* ranks."""
        p = len(node_of)
        if p <= 1:
            return 0.0
        free = [0.0] * p
        ready = [math.inf] * p
        ready[0] = 0.0
        masks = []
        mask = 1
        while mask < p:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            for r in range(0, p, 2 * mask):
                dst = r + mask
                if dst >= p or ready[r] == math.inf:
                    continue
                start = max(free[r], ready[r])
                cnt = min(mask, p - dst)
                sf, rd = self._send_pair(
                    node_of[r] == node_of[dst], m_of(cnt), start, 0.0,
                    cross=self._pair_cross(sock_of, node_of, r, dst),
                )
                free[r] = sf
                ready[dst] = rd
        return max(max(ready), max(free))

    def _dp_up_tree(self, node_of: Sequence[int],
                    m_of: Callable[[int], float],
                    sock_of: Sequence[int] | None = None) -> float:
        """Binomial bottom-up tree rooted at vrank 0 (gather/reduce):
        root completion.  ``m_of(cnt)`` is the bytes a sender holding
        *cnt* blocks forwards."""
        p = len(node_of)
        if p <= 1:
            return 0.0
        t = [0.0] * p
        mask = 1
        while mask < p:
            for r in range(0, p, 2 * mask):
                src = r + mask
                if src >= p:
                    continue
                cnt = min(mask, p - src)
                sf, rd = self._send_pair(
                    node_of[r] == node_of[src], m_of(cnt), t[src], t[r],
                    cross=self._pair_cross(sock_of, node_of, r, src),
                )
                t[r] = rd
                t[src] = sf
            mask <<= 1
        return t[0]

    def _dp_shift(self, node_of: Sequence[int], dists: Iterable[int],
                  m: float, wrap: bool = False,
                  sock_of: Sequence[int] | None = None) -> float:
        """Rounds where rank ``r`` sends to ``r + d`` and receives from
        ``r - d`` (Hillis-Steele scan shape), honoring per-rank
        dependencies between rounds.  Concurrent inter-node sends from
        one node queue on its NIC FIFO: the j-th transfer (in sender
        start order) pays ``(j // nic_streams + 1)`` bandwidth terms."""
        p = len(node_of)
        t = [0.0] * p
        for d in dists:
            msgs = []
            for r in range(p):
                dst = r + d
                if dst >= p:
                    if not wrap:
                        continue
                    dst %= p
                msgs.append((r, dst, node_of[r] == node_of[dst],
                             self._pair_cross(sock_of, node_of, r, dst)))
            k = self._k_of(m)
            order: dict[tuple[int, int], int] = {}
            seen: Counter = Counter()
            for r, dst, intra, cross in sorted(
                    msgs, key=lambda e: t[e[0]]):
                node = node_of[r]
                key = (2, node) if cross else \
                    (1, node) if intra else (0, node)
                order[(r, dst)] = seen[key]
                seen[key] += (1 if cross else k) if intra else 1
            nt = list(t)
            for r, dst, intra, cross in msgs:
                sf, rd = self._send_pair(intra, m, t[r], t[dst],
                                         cross=cross)
                if cross:
                    extra = (order[(r, dst)] // self.x_streams) \
                        * self.xcopy(m)
                elif intra:
                    extra = (order[(r, dst)] // self.pool_streams) \
                        * self.copy(m)
                else:
                    extra = (order[(r, dst)] // self.nic_streams) \
                        * (m / self.B)
                sf += extra
                rd += extra
                if sf > nt[r]:
                    nt[r] = sf
                if rd > nt[dst]:
                    nt[dst] = rd
            t = nt
        return max(t)

    def _ring_time(self, node_of: Sequence[int], m: float,
                   phases: int = 1) -> float:
        """Neighbor ring exchange of ``(p - 1) * phases`` rounds with
        per-round blocks of *m* bytes (allgather/allreduce rings).

        The ring is a pipeline, not a sequence of synchronized rounds:
        completion is the worst block's path sum around the ring,
        floored by each memory channel's and NIC's throughput."""
        p = len(node_of)
        if p <= 1 or m < 0:
            return 0.0
        sock_of = self._sock_of if node_of is self._node_of else None
        rounds = (p - 1) * phases
        edges = []
        intra_per_node: Counter = Counter()
        cross_per_node: Counter = Counter()
        has_inter = False
        for r in range(p):
            nxt = (r + 1) % p
            intra = node_of[r] == node_of[nxt]
            cross = self._pair_cross(sock_of, node_of, r, nxt)
            edges.append(self._edge_cost(intra, m, cross=cross))
            if cross:
                cross_per_node[node_of[r]] += 1
            elif intra:
                intra_per_node[node_of[r]] += 1
            else:
                has_inter = True
        path = (sum(edges) - min(edges)) * phases
        k = self._k_of(m)
        c = self.copy(m)
        floor = 0.0
        for cnt in intra_per_node.values():
            f = rounds * cnt * k * c / self.pool_streams + k * c
            if f > floor:
                floor = f
        for cnt in cross_per_node.values():
            f = rounds * cnt * self.xcopy(m) / self.x_streams + self.xcopy(m)
            if f > floor:
                floor = f
        if has_inter:
            f = rounds * (m / self.B) + self.L
            if m > self.eager:
                f += self.rdv
            if f > floor:
                floor = f
        return max(path, floor)

    def _pairwise_time(self, node_of: Sequence[int], m: float,
                       xor: bool = False) -> float:
        """``p - 1`` rounds where rank ``r`` exchanges *m* bytes with
        ``r + s`` (or ``r ^ s``): per-rank uncontended chains, floored
        by channel throughput (rounds desynchronize, so FIFO slots
        pipeline across rounds instead of adding per-round waves)."""
        p = len(node_of)
        if p <= 1:
            return 0.0
        sock_of = self._sock_of if node_of is self._node_of else None
        chains = [0.0] * p
        intra_msgs: Counter = Counter()
        cross_msgs: Counter = Counter()
        nic_tx: Counter = Counter()
        for s in range(1, p):
            # Per-round census of cross-socket sends: concurrent
            # messages wave on each node's xsocket link within the
            # round, so a cross edge in a chain pays the wave factor.
            xconc: Counter = Counter()
            if sock_of is not None:
                for r in range(p):
                    dst = (r ^ s) if xor else (r + s) % p
                    if dst >= p:
                        continue
                    if self._pair_cross(sock_of, node_of, r, dst):
                        xconc[node_of[r]] += 1
            for r in range(p):
                dst = (r ^ s) if xor else (r + s) % p
                if dst >= p:
                    continue
                xw = (math.ceil(xconc[node_of[r]] / self.x_streams) - 1
                      if xconc[node_of[r]] else 0) * self.xcopy(m)
                crossed = self._pair_cross(sock_of, node_of, r, dst)
                send_cost = self._edge_cost(
                    node_of[r] == node_of[dst], m, cross=crossed)
                if crossed:
                    send_cost += xw
                src = (r ^ s) if xor else (r - s) % p
                if src < p:
                    crossed_r = self._pair_cross(sock_of, node_of, r, src)
                    recv_cost = self._edge_cost(
                        node_of[r] == node_of[src], m, cross=crossed_r)
                    if crossed_r:
                        recv_cost += xw
                else:
                    recv_cost = 0.0
                chains[r] += max(send_cost, recv_cost)
                if node_of[r] == node_of[dst]:
                    if self._pair_cross(sock_of, node_of, r, dst):
                        cross_msgs[node_of[r]] += 1
                    else:
                        intra_msgs[node_of[r]] += 1
                else:
                    nic_tx[node_of[r]] += 1
        t = max(chains)
        k = self._k_of(m)
        c = self.copy(m)
        floor = 0.0
        for cnt in intra_msgs.values():
            f = cnt * k * c / self.pool_streams + k * c
            if f > floor:
                floor = f
        for cnt in cross_msgs.values():
            f = cnt * self.xcopy(m) / self.x_streams + self.xcopy(m)
            if f > floor:
                floor = f
        for cnt in nic_tx.values():
            f = cnt * (m / self.B) / self.nic_streams + self.L
            if m > self.eager:
                f += self.rdv
            if f > floor:
                floor = f
        return max(t, floor)

    # -- round censuses ---------------------------------------------------

    def _pairs_round(self, pairs: Iterable[tuple[int, int]],
                     m: float) -> float:
        """Exact completion of one symmetric round given (src, dst) pairs."""
        node_of = self._node_of
        sock_of = self._sock_of
        same: dict[tuple[int, int], int] = {}
        cross: dict[int, int] = {}
        tx: dict[int, int] = {}
        rx: dict[int, int] = {}
        for s_r, d_r in pairs:
            if s_r == d_r:
                continue
            ns, nd = node_of[s_r], node_of[d_r]
            if ns == nd:
                ss, sd = sock_of[s_r], sock_of[d_r]
                if ss == sd:
                    key = (ns, ss)
                    same[key] = same.get(key, 0) + 1
                else:
                    cross[ns] = cross.get(ns, 0) + 1
            else:
                tx[ns] = tx.get(ns, 0) + 1
                rx[nd] = rx.get(nd, 0) + 1
        t = 0.0
        k = self._k_of(m)
        c = self.copy(m)
        for cnt in same.values():
            # All k copies stay on this socket's memory channel.
            waves = max(k, math.ceil(k * cnt / self.mem_streams))
            v = self.shm_lat + waves * c
            if v > t:
                t = v
        for cnt in cross.values():
            # First copies queue on the node's xsocket link; remaining
            # copies spread over the destination sockets' channels.
            v = (self.shm_lat + self.x_lat
                 + math.ceil(cnt / self.x_streams) * self.xcopy(m))
            if k > 1:
                v += max(k - 1,
                         math.ceil((k - 1) * cnt / self.pool_streams)) * c
            if v > t:
                t = v
        conc = 0
        for side in (tx, rx):
            for cnt in side.values():
                if cnt > conc:
                    conc = cnt
        if conc:
            v = self.net_round(m, conc)
            if v > t:
                t = v
        return t

    def xor_round(self, d: int, m: float) -> float:
        """Round where rank ``r`` exchanges *m* bytes with ``r ^ d``."""
        p, q = self.p, self.q
        if d <= 0 or d >= p and self.exact is False:
            pass
        if self.exact:
            pairs = [(r, r ^ d) for r in range(p) if r ^ d < p]
            return self._pairs_round(pairs, m)
        if self.N == 1:
            return self.shm_round(m, p)
        if d >= q:
            return self.net_round(m, q)
        if q % (2 * d) == 0:
            return self.shm_round(m, q)
        # Misaligned node boundary: part of the node crosses over.
        return max(self.shm_round(m, q), self.net_round(m, min(q, 2 * d)))

    def shift_round(self, s: int, m: float, wrap: bool = True) -> float:
        """Round where rank ``r`` sends *m* bytes to ``r + s`` (mod p when
        *wrap*) and receives symmetrically."""
        p, q = self.p, self.q
        k = s % p if wrap else s
        if k == 0:
            return 0.0
        if self.exact:
            if wrap:
                pairs = [(r, (r + k) % p) for r in range(p)]
            else:
                pairs = [(r, r + k) for r in range(p - k)]
            return self._pairs_round(pairs, m)
        k = min(k, p - k) if wrap else k  # census is direction-symmetric
        if self.N == 1:
            return self.shm_round(m, p if wrap else p - k)
        if k >= q:
            return self.net_round(m, q)
        return max(self.shm_round(m, q - k), self.net_round(m, k))

    # -- table-selection mirrors (inner composite stages) ----------------

    def _bridge_agv_algo(self, total: float) -> str:
        return ("bruck_v" if total <= self.tuning.allgatherv_bruck_max_total
                else "ring_v")

    def _bridge_bcast_algo(self, n: float, nnodes: int) -> str:
        t = self.tuning
        if n <= t.bcast_binomial_max or nnodes <= 2:
            return "binomial"
        if n > 8 * t.bcast_pipeline_chunk and nnodes >= 8:
            return "pipeline"
        return "scatter_allgather"

    def _bridge_allreduce_algo(self, n: float, nnodes: int) -> str:
        t = self.tuning
        if n <= t.allreduce_rd_max:
            return "recursive_doubling"
        if _is_pof2(nnodes):
            return "rabenseifner"
        return "ring"

    def _shm_bcast_algo(self, m: float, q: int) -> str:
        # _select_shm_bcast: candidates (binomial, scatter_allgather).
        if m <= self.tuning.bcast_binomial_max or q <= 2:
            return "binomial"
        return "scatter_allgather"

    # -- on-node stage evaluators (over q ranks of one node) --------------

    def _tree_round(self, mask: int, q: int,
                    xfree: bool = False) -> tuple[int, int]:
        """(conc, ncross) of one binomial-tree distance-*mask* round
        over *q* on-node slots.  *xfree* marks a socket-internal domain
        (slots live on one socket, so no edge ever crosses)."""
        if self.sockets == 1:
            return max(1, q // (2 * mask)), 0
        pairs = [(r, r + mask)
                 for r in range(0, q, 2 * mask) if r + mask < q]
        if xfree:
            return max(1, len(pairs)), 0
        return max(1, len(pairs)), self._ncross(pairs, q)

    def _shm_gather_binomial(self, n: float, q: int, mult: int = 1,
                             xfree: bool = False) -> float:
        """gather_binomial on a shared-memory comm: per-rank block *n*.
        *mult* concurrent instances share the node (the per-socket
        gathers of the 3-level forms)."""
        t = 0.0
        mask = 1
        while mask < q:
            m = min(mask, max(1, q - mask)) * n
            conc, ncross = self._tree_round(mask, q, xfree)
            t += self.shm_round(m, conc * mult, ncross * mult)
            mask <<= 1
        return t

    def _shm_reduce_binomial(self, n: float, q: int) -> float:
        t = 0.0
        mask = 1
        while mask < q:
            conc, ncross = self._tree_round(mask, q)
            t += self.shm_round(n, conc, ncross)
            mask <<= 1
        return t

    def _shm_bcast_binomial(self, m: float, q: int, mult: int = 1,
                            xfree: bool = False) -> float:
        t = 0.0
        masks = []
        mask = 1
        while mask < q:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            conc, ncross = self._tree_round(mask, q, xfree)
            t += self.shm_round(m, conc * mult, ncross * mult)
        return t

    def _ring_ncross(self, q: int) -> int:
        """Cross-socket edge count of the on-node neighbor ring."""
        if self.sockets == 1:
            return 0
        return self._ncross([(r, (r + 1) % q) for r in range(q)], q)

    def _shm_allgather_ring(self, block: float, q: int, mult: int = 1,
                            xfree: bool = False) -> float:
        if q <= 1:
            return 0.0
        ncross = 0 if xfree else self._ring_ncross(q)
        return (q - 1) * self.shm_round(block, q * mult, ncross * mult)

    def _shm_bcast_stage(self, m: float, q: int, mult: int = 1,
                         xfree: bool = False) -> float:
        """On-node release broadcast of *m* bytes (policy-selected);
        *mult* concurrent instances share the node."""
        if q <= 1:
            return 0.0
        if self._shm_bcast_algo(m, q) == "binomial":
            return self._shm_bcast_binomial(m, q, mult, xfree)
        # scatter_allgather on-node: binomial scatter + ring allgather.
        block = m / q
        t = 0.0
        masks = []
        mask = 1
        while mask < q:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            bundle = min(mask, max(1, q - mask)) * block
            conc, ncross = self._tree_round(mask, q, xfree)
            t += self.shm_round(bundle, conc * mult, ncross * mult)
        t += self._shm_allgather_ring(block, q, mult, xfree)
        return t

    # -- bridge stage evaluators (N leaders, one per node, all inter) -----

    def _bridge_ring_v(self, blocks: Sequence[float]) -> float:
        """Inter-leader ring allgatherv of per-node *blocks*."""
        n = len(blocks)
        if n <= 1:
            return 0.0
        times = [self.net_round(b, 1) for b in blocks]
        return sum(times) - min(times)

    def _bridge_bruck_v(self, blocks: Sequence[float]) -> float:
        n = len(blocks)
        if n <= 1:
            return 0.0
        avg = sum(blocks) / n
        t = 0.0
        pof = 1
        while pof < n:
            cnt = min(pof, n - pof)
            t += self.net_round(cnt * avg, 1)
            pof <<= 1
        return t

    def _bridge_agv(self, blocks: Sequence[float], total: float) -> float:
        if self._bridge_agv_algo(total) == "bruck_v":
            return self._bridge_bruck_v(blocks)
        return self._bridge_ring_v(blocks)

    def _bridge_bcast(self, n: float, nnodes: int) -> float:
        if nnodes <= 1:
            return 0.0
        algo = self._bridge_bcast_algo(n, nnodes)
        if algo == "binomial":
            if nnodes <= self.exact_limit:
                # Leaders sit on distinct nodes: all-inter DP tree.
                return self._dp_down_tree(list(range(nnodes)),
                                          lambda cnt: n)
            return _ceil_log2(nnodes) * self.net_round(n, 1)
        if algo == "pipeline":
            chunk = max(1, self.tuning.bcast_pipeline_chunk)
            c = min(n, chunk)
            chunks = max(1, math.ceil(n / chunk))
            return ((nnodes - 1) * self.net_round(c, 1)
                    + (chunks - 1) * (c / self.B))
        # scatter_allgather over the bridge.
        block = n / nnodes
        t = 0.0
        masks = []
        mask = 1
        while mask < nnodes:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            bundle = min(mask, max(1, nnodes - mask)) * block
            t += self.net_round(bundle, 1)
        t += (nnodes - 1) * self.net_round(block, 1)
        return t

    def _bridge_allreduce(self, n: float, nnodes: int) -> float:
        if nnodes <= 1:
            return 0.0
        algo = self._bridge_allreduce_algo(n, nnodes)
        if algo == "recursive_doubling":
            return _ceil_log2(nnodes) * self.net_round(n, 1)
        if algo == "rabenseifner":
            t = 0.0
            m = n / 2.0
            d = nnodes // 2
            while d >= 1:
                t += self.net_round(m, 1)
                m /= 2.0
                d //= 2
            m = n / nnodes
            d = 1
            while d < nnodes:
                t += self.net_round(m * d, 1)
                d <<= 1
            return t
        return 2 * (nnodes - 1) * self.net_round(n / nnodes, 1)

    # -- dispatch overheads ----------------------------------------------

    def _dispatch_overhead(self, op: str) -> float:
        if op == "barrier" or op.startswith("hy_"):
            return 0.0  # charged inside the evaluators where applicable
        oh = self.tuning.call_overhead
        if op in ("allgatherv", "gatherv"):
            oh += self.tuning.vector_block_overhead * self.p
        return oh

    # ------------------------------------------------------------------
    # Per-algorithm forms (latency of the dispatched collective, i.e.
    # max completion over ranks from a barrier-aligned start)
    # ------------------------------------------------------------------

    # allgather family ----------------------------------------------------

    def _t_ag_rd(self, n, total, root):
        t = 0.0
        d = 1
        k = 0
        while d < self.p:
            t += self.xor_round(d, n * (1 << k))
            d <<= 1
            k += 1
        return t

    def _t_ag_bruck(self, n, total, root):
        t = 0.0
        pof = 1
        while pof < self.p:
            cnt = min(pof, self.p - pof)
            t += self.shift_round(pof, cnt * n)
            pof <<= 1
        return t

    def _ring_arith(self, m: float, phases: int) -> float:
        """O(1) ring-pipeline form for large uniform placements."""
        p, N, q = self.p, self.N, self.q
        if p <= 1:
            return 0.0
        rounds = (p - 1) * phases
        ei = self._edge_cost(True, m)
        k = self._k_of(m)
        c = self.copy(m)
        if N == 1:
            path = (p * ei - ei) * phases
            floor = rounds * p * k * c / self.pool_streams + k * c
            return max(path, floor)
        ee = self._edge_cost(False, m)
        path = ((p - N) * ei + N * ee - min(ei, ee)) * phases
        floor = rounds * max(0, q - 1) * k * c / self.pool_streams + k * c
        nic = rounds * (m / self.B) + self.L
        if m > self.eager:
            nic += self.rdv
        return max(path, floor, nic)

    def _t_ag_ring(self, n, total, root):
        if self.exact:
            return self._ring_time(self._node_of, n)
        return self._ring_arith(n, 1)

    def _t_agv_gather_bcast(self, n, total, root):
        # gather_binomial then bcast_binomial of the concatenation —
        # direct calls, no inner dispatch overhead.
        t = self._t_gather_binomial(n, total, root)
        t += self._t_bcast_binomial(total, total, root)
        return t

    def _t_ag_smp(self, n, total, root):
        q, N = self.q, self.N
        t = 0.0
        if q > 1:
            t += self._shm_gather_binomial(n, q)
        if N > 1:
            blocks = [c * n for c in self.counts]
            t += self.tuning.vector_block_overhead * N
            t += self._bridge_agv(blocks, total)
        t += self._shm_bcast_stage(total, q)
        return t

    def _t_ag_multileader(self, n, total, root):
        q, N = self.q, self.N
        k = max(1, min(self.tuning.multileader_k, q))
        q_slice = math.ceil(q / k)
        t = 0.0
        if q_slice > 1:
            # k slice gathers run concurrently on each node's memory.
            mask = 1
            while mask < q_slice:
                m = min(mask, max(1, q_slice - mask)) * n
                conc = max(1, q_slice // (2 * mask)) * k
                t += self.shm_round(m, conc)
                mask <<= 1
        if N > 1:
            # k parallel bridges, each moving a slice of the node block.
            blocks = [math.ceil(c / k) * n for c in self.counts]
            t += self.tuning.vector_block_overhead * N
            algo = self._bridge_agv_algo(total)
            if algo == "bruck_v":
                avg = sum(blocks) / N
                pof = 1
                while pof < N:
                    cnt = min(pof, N - pof)
                    t += self.net_round(cnt * avg, k)
                    pof <<= 1
            else:
                times = [self.net_round(b, k) for b in blocks]
                t += sum(times) - min(times)
        if k > 1:
            # Leaders merge their bridge results on-node (ring allgather).
            slots = [min(i * q_slice, q - 1) for i in range(k)]
            ring = [(slots[i], slots[(i + 1) % k]) for i in range(k)]
            t += (k - 1) * self.shm_round(total / k, k,
                                          self._ncross(ring, q))
        t += self._shm_bcast_stage(total, q_slice)
        return t

    def _t_ag_smp3(self, n, total, root):
        """allgather/smp_3level: socket gathers, cross-socket leader
        gather, bridge exchange, cross-socket leader bcast, socket
        bcasts.  The socket-internal stages run ``S`` instances
        concurrently (one per socket); the leader stages move whole
        socket blocks over the xsocket link."""
        q, N, S = self.q, self.N, self.sockets
        qs = max(1, math.ceil(q / S))
        t = 0.0
        if qs > 1:
            t += self._shm_gather_binomial(n, qs, mult=S, xfree=True)
        # Socket leaders gather blocks to the node leader — every edge
        # crosses sockets (one leader per socket).
        mask = 1
        while mask < S:
            m = min(mask, max(1, S - mask)) * qs * n
            conc = max(1, S // (2 * mask))
            t += self.shm_round(m, conc, ncross=conc)
            mask <<= 1
        if N > 1:
            blocks = [c * n for c in self.counts]
            t += self.tuning.vector_block_overhead * N
            t += self._bridge_agv(blocks, total)
        # Node leader releases the full result back across sockets
        # (binomial over the S leaders; S <= 2 in every preset, where
        # the selection mirror always picks binomial).
        masks = []
        mask = 1
        while mask < S:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            conc = max(1, S // (2 * mask))
            t += self.shm_round(total, conc, ncross=conc)
        t += self._shm_bcast_stage(total, qs, mult=S, xfree=True)
        return t

    # bcast ---------------------------------------------------------------

    def _t_bcast_binomial(self, n, total, root):
        p, q, N = self.p, self.q, self.N
        if self.exact:
            return self._dp_down_tree(self._node_of, lambda cnt: n,
                                      sock_of=self._sock_of)
        t = 0.0
        masks = []
        mask = 1
        while mask < p:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            if N > 1 and mask >= q:
                t += self.net_round(n, 1)
            else:
                conc = max(1, min(q, p) // (2 * mask)) if mask < q else 1
                t += self.shm_round(n, conc)
        return t

    def _t_bcast_scatter_allgather(self, n, total, root):
        p, q, N = self.p, self.q, self.N
        block = n / p
        if self.exact:
            return (self._dp_down_tree(self._node_of,
                                       lambda cnt: cnt * block,
                                       sock_of=self._sock_of)
                    + self._ring_time(self._node_of, block))
        t = 0.0
        masks = []
        mask = 1
        while mask < p:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            bundle = min(mask, max(1, p - mask)) * block
            if N > 1 and mask >= q:
                t += self.net_round(bundle, 1)
            else:
                conc = max(1, min(q, p) // (2 * mask)) if mask < q else 1
                t += self.shm_round(bundle, conc)
        t += self._ring_arith(block, 1)
        return t

    def _t_bcast_pipeline(self, n, total, root):
        p, N = self.p, self.N
        chunk = max(1, self.tuning.bcast_pipeline_chunk)
        c = min(n, chunk)
        chunks = max(1, math.ceil(n / chunk))
        # Fill: the first chunk rides the whole chain.
        fill = ((p - N) * self.shm_round(c, 1)
                + (N - 1) * self.net_round(c, 1))
        # Steady state: per-chunk interval of the slowest stage.  On a
        # node hosting q forwarding ranks each chunk transits 2q staged
        # copies through the shared memory system.
        steady_intra = 0.0
        if self.q > 1 or N == 1:
            per_msg = self._k_of(c)
            copies = per_msg * max(1, self.q - (0 if N > 1 else 1))
            waves = max(per_msg, math.ceil(copies / self.pool_streams))
            steady_intra = waves * self.copy(c)
        steady_net = c / self.B if N > 1 else 0.0
        steady = max(steady_intra, steady_net)
        # Zero-byte terminator chases the last chunk down the chain.
        term = self.shm_lat if N == 1 else self.L
        return fill + (chunks - 1) * steady + term

    def _t_bcast_smp(self, n, total, root):
        t = self._bridge_bcast(n, self.N)
        t += self._shm_bcast_stage(n, self.q)
        return t

    # gather / scatter ----------------------------------------------------

    def _t_gather_binomial(self, n, total, root):
        p, q, N = self.p, self.q, self.N
        if self.exact:
            return self._dp_up_tree(self._node_of, lambda cnt: cnt * n,
                                    sock_of=self._sock_of)
        t = 0.0
        mask = 1
        while mask < p:
            m = min(mask, max(1, p - mask)) * n
            if N > 1 and mask >= q:
                t += self.net_round(m, 1)
            else:
                conc = max(1, min(q, p) // (2 * mask)) if mask < q else 1
                t += self.shm_round(m, conc)
            mask <<= 1
        return t

    def _t_gather_linear(self, n, total, root):
        p, N = self.p, self.N
        q_root = self.counts[0]
        t = 0.0
        if q_root > 1:
            xl = self._ncross([(0, s) for s in range(1, q_root)], q_root)
            t = self.shm_round(n, q_root - 1, xl)
        if N > 1:
            t = max(t, self.net_round(n, p - q_root))
        return t

    def _t_scatter_binomial(self, n, total, root):
        p, q, N = self.p, self.q, self.N
        if self.exact:
            return self._dp_down_tree(self._node_of, lambda cnt: cnt * n,
                                      sock_of=self._sock_of)
        t = 0.0
        masks = []
        mask = 1
        while mask < p:
            masks.append(mask)
            mask <<= 1
        for mask in reversed(masks):
            m = min(mask, max(1, p - mask)) * n
            if N > 1 and mask >= q:
                t += self.net_round(m, 1)
            else:
                conc = max(1, min(q, p) // (2 * mask)) if mask < q else 1
                t += self.shm_round(m, conc)
        return t

    def _t_scatter_linear(self, n, total, root):
        return self._t_gather_linear(n, total, root)

    # reductions ----------------------------------------------------------

    def _t_reduce_binomial(self, n, total, root):
        p, q, N = self.p, self.q, self.N
        if self.exact:
            return self._dp_up_tree(self._node_of, lambda cnt: n,
                                    sock_of=self._sock_of)
        t = 0.0
        mask = 1
        while mask < p:
            if N > 1 and mask >= q:
                t += self.net_round(n, 1)
            else:
                conc = max(1, min(q, p) // (2 * mask)) if mask < q else 1
                t += self.shm_round(n, conc)
            mask <<= 1
        return t

    def _t_reduce_smp(self, n, total, root):
        t = self._shm_reduce_binomial(n, self.q)
        if self.N > 1:
            if self.N <= self.exact_limit:
                t += self._dp_up_tree(list(range(self.N)), lambda cnt: n)
            else:
                t += _ceil_log2(self.N) * self.net_round(n, 1)
        return t

    def _t_ar_rd(self, n, total, root):
        p = self.p
        pof2 = 1 << (p.bit_length() - 1)
        rem = p - pof2
        t = 0.0
        if rem:
            if self.exact:
                t += self._pairs_round([(2 * i, 2 * i + 1)
                                        for i in range(rem)], n)
            else:
                t += self.shm_round(n, max(1, min(rem, self.q // 2)))
        if pof2 > 1:
            if self.exact and rem:
                core = ([2 * i + 1 for i in range(rem)]
                        + list(range(2 * rem, p)))
                d = 1
                while d < pof2:
                    pairs = [(core[i], core[i ^ d]) for i in range(pof2)]
                    t += self._pairs_round(pairs, n)
                    d <<= 1
            else:
                d = 1
                while d < pof2:
                    t += self.xor_round(d, n)
                    d <<= 1
        if rem:
            # Unfold mirrors the fold.
            if self.exact:
                t += self._pairs_round([(2 * i + 1, 2 * i)
                                        for i in range(rem)], n)
            else:
                t += self.shm_round(n, max(1, min(rem, self.q // 2)))
        return t

    def _t_ar_rabenseifner(self, n, total, root):
        p = self.p
        if not _is_pof2(p):
            return self._t_ar_rd(n, total, root)
        t = 0.0
        m = n / 2.0
        d = p // 2
        while d >= 1:
            t += self.xor_round(d, m)
            m /= 2.0
            d //= 2
        block = n / p
        d = 1
        while d < p:
            t += self.xor_round(d, block * d)
            d <<= 1
        return t

    def _t_ar_ring(self, n, total, root):
        if self.exact:
            return self._ring_time(self._node_of, n / self.p, phases=2)
        return self._ring_arith(n / self.p, 2)

    def _t_ar_smp(self, n, total, root):
        t = self._shm_reduce_binomial(n, self.q)
        t += self._bridge_allreduce(n, self.N)
        t += self._shm_bcast_stage(n, self.q)
        return t

    def _t_rs_halving(self, n, total, root):
        p = self.p
        if not _is_pof2(p):
            return self._t_rs_pairwise(n, total, root)
        t = 0.0
        m = n / 2.0
        d = p // 2
        while d >= 1:
            t += self.xor_round(d, m)
            m /= 2.0
            d //= 2
        return t

    def _t_rs_pairwise(self, n, total, root):
        p, q = self.p, self.q
        block = n / p
        if self.exact:
            return self._pairwise_time(self._node_of, block)
        if self.N == 1:
            return (p - 1) * self.shm_round(block, p)
        t = 0.0
        for s in range(1, min(q, p)):
            t += max(self.shm_round(block, q - s), self.net_round(block, s))
        if p > q:
            t += (p - q) * self.net_round(block, q)
        return t

    def _t_scan_linear(self, n, total, root):
        if self.exact:
            t = 0.0
            sock_of = self._sock_of
            for r in range(self.p - 1):
                if self._node_of[r] == self._node_of[r + 1]:
                    x = (1 if sock_of is not None
                         and sock_of[r] != sock_of[r + 1] else 0)
                    t += self.shm_round(n, 1, x)
                else:
                    t += self.net_round(n, 1)
            return t
        return ((self.p - self.N) * self.shm_round(n, 1)
                + (self.N - 1) * self.net_round(n, 1))

    def _t_scan_binomial(self, n, total, root):
        dists = []
        d = 1
        while d < self.p:
            dists.append(d)
            d <<= 1
        if self.exact:
            return self._dp_shift(self._node_of, dists, n, wrap=False,
                                  sock_of=self._sock_of)
        return sum(self.shift_round(d, n, wrap=False) for d in dists)

    _t_exscan_binomial = _t_scan_binomial

    # alltoall ------------------------------------------------------------

    def _t_a2a_bruck(self, n, total, root):
        p = self.p
        t = 0.0
        k = 0
        pof = 1
        while pof < p:
            if self.exact:
                cnt = sum((j >> k) & 1 for j in range(p))
            else:
                cnt = p // 2
            t += self.shift_round(pof, cnt * n)
            pof <<= 1
            k += 1
        return t

    def _t_a2a_pairwise(self, n, total, root):
        p, q = self.p, self.q
        if self.exact:
            return self._pairwise_time(self._node_of, n, xor=_is_pof2(p))
        if _is_pof2(p):
            if self.N == 1:
                return (p - 1) * self.shm_round(n, p)
            intra_shifts = min(q, p) - 1
            return (intra_shifts * self.shm_round(n, q)
                    + (p - 1 - intra_shifts) * self.net_round(n, q))
        if self.N == 1:
            return (p - 1) * self.shm_round(n, p)
        t = 0.0
        for s in range(1, min(q, p)):
            t += max(self.shm_round(n, q - s), self.net_round(n, s))
        if p > q:
            t += (p - q) * self.net_round(n, q)
        return t

    # barrier -------------------------------------------------------------

    def _shm_flags(self, q: int) -> float:
        t = self.tuning
        rounds = max(1, math.ceil(math.log2(max(q, 2))))
        return t.shm_barrier_base + rounds * t.shm_barrier_flag

    def _t_barrier_shm_flags(self, n, total, root):
        return self._shm_flags(self.p)

    def _t_barrier_dissemination(self, n, total, root):
        t = self.tuning.call_overhead
        if self.p == 1:
            return t
        dists = []
        d = 1
        while d < self.p:
            dists.append(d)
            d <<= 1
        if self.exact:
            return t + self._dp_shift(self._node_of, dists, 0.0,
                                      wrap=True, sock_of=self._sock_of)
        return t + sum(self.shift_round(d, 0.0) for d in dists)

    def _t_barrier_smp(self, n, total, root):
        t = 0.0
        if self.q > 1:
            t += self._shm_flags(self.q)
        if self.N > 1:
            d = 1
            while d < self.N:
                t += self.net_round(0.0, 1)
                d <<= 1
        if self.q > 1:
            t += self.tuning.shm_barrier_flag  # release flag store
        return t

    # hybrid MPI+MPI ------------------------------------------------------

    def _t_hy_ag_shared_window(self, n, total, root):
        if self.N == 1:
            return self._shm_flags(self.q)
        t = 2 * self._shm_flags(self.q)
        blocks = [c * n for c in self.counts]
        t += self.tuning.call_overhead
        t += self.tuning.vector_block_overhead * self.N
        t += self._bridge_agv(blocks, total)
        return t

    def _t_hy_ag_pipelined(self, n, total, root):
        if self.N == 1:
            return self._shm_flags(self.q)
        t = 2 * self._shm_flags(self.q)
        chunk = 128 * 1024
        blocks = [c * n for c in self.counts]
        chunk_counts = [max(1, math.ceil(b / chunk)) for b in blocks]
        c = min(max(blocks), chunk)
        tot_chunks = sum(chunk_counts)
        fill = (self.N - 1) * self.net_round(c, 1)
        steady = max(0, tot_chunks - min(chunk_counts) - (self.N - 2)) \
            * (c / self.B)
        return t + fill + steady

    def _t_hy_bcast_shared_window(self, n, total, root):
        t = 0.0
        if self.N > 1:
            t += self.tuning.call_overhead
            t += self._bridge_bcast(n, self.N)
        t += self._shm_flags(self.q)
        return t

    def _t_hy_ag_shared_window_3l(self, n, total, root):
        """hy_allgather/shared_window_3l: the two-level sync envelope
        plus ``S`` per-socket bridges exchanging socket blocks in
        parallel (sharing the NIC), closed by the socket-leader
        completion round."""
        if self.N == 1:
            return self._shm_flags(self.q)
        S = max(1, self.sockets)
        t = 2 * self._shm_flags(self.q)
        t += self.tuning.call_overhead
        t += self.tuning.vector_block_overhead * self.N
        blocks = [math.ceil(c / S) * n for c in self.counts]
        if self._bridge_agv_algo(total / S) == "bruck_v":
            avg = sum(blocks) / self.N
            pof = 1
            while pof < self.N:
                cnt = min(pof, self.N - pof)
                t += self.net_round(cnt * avg, S)
                pof <<= 1
        else:
            times = [self.net_round(b, S) for b in blocks]
            t += sum(times) - min(times)
        if S > 1:
            # Socket leaders report completion to the node leader.
            t += self.shm_round(0.0, S - 1, ncross=S - 1)
        return t


#: (op, algo) -> evaluator method name.  Every registered algorithm of
#: the collective registry has an entry; the conformance suite asserts
#: this stays true.
MODEL_FORMS: Mapping[tuple[str, str], str] = {
    ("allgather", "recursive_doubling"): "_t_ag_rd",
    ("allgather", "bruck"): "_t_ag_bruck",
    ("allgather", "ring"): "_t_ag_ring",
    ("allgather", "smp_hierarchical"): "_t_ag_smp",
    ("allgather", "multileader"): "_t_ag_multileader",
    ("allgather", "smp_3level"): "_t_ag_smp3",
    ("allgatherv", "bruck_v"): "_t_ag_bruck",
    ("allgatherv", "ring_v"): "_t_ag_ring",
    ("allgatherv", "gather_bcast"): "_t_agv_gather_bcast",
    ("allgatherv", "smp_hierarchical"): "_t_ag_smp",
    ("bcast", "binomial"): "_t_bcast_binomial",
    ("bcast", "scatter_allgather"): "_t_bcast_scatter_allgather",
    ("bcast", "pipeline"): "_t_bcast_pipeline",
    ("bcast", "smp_hierarchical"): "_t_bcast_smp",
    ("gather", "binomial"): "_t_gather_binomial",
    ("gather", "linear"): "_t_gather_linear",
    ("gatherv", "binomial"): "_t_gather_binomial",
    ("gatherv", "linear"): "_t_gather_linear",
    ("scatter", "binomial"): "_t_scatter_binomial",
    ("scatter", "linear"): "_t_scatter_linear",
    ("reduce", "binomial"): "_t_reduce_binomial",
    ("reduce", "smp_hierarchical"): "_t_reduce_smp",
    ("allreduce", "recursive_doubling"): "_t_ar_rd",
    ("allreduce", "rabenseifner"): "_t_ar_rabenseifner",
    ("allreduce", "ring"): "_t_ar_ring",
    ("allreduce", "smp_hierarchical"): "_t_ar_smp",
    ("reduce_scatter", "recursive_halving"): "_t_rs_halving",
    ("reduce_scatter", "pairwise"): "_t_rs_pairwise",
    ("scan", "linear"): "_t_scan_linear",
    ("scan", "binomial"): "_t_scan_binomial",
    ("exscan", "binomial"): "_t_exscan_binomial",
    ("alltoall", "bruck"): "_t_a2a_bruck",
    ("alltoall", "pairwise"): "_t_a2a_pairwise",
    ("barrier", "shm_flags"): "_t_barrier_shm_flags",
    ("barrier", "smp_hierarchical"): "_t_barrier_smp",
    ("barrier", "dissemination"): "_t_barrier_dissemination",
    ("hy_allgather", "shared_window"): "_t_hy_ag_shared_window",
    ("hy_allgather", "pipelined_ring"): "_t_hy_ag_pipelined",
    ("hy_allgather", "shared_window_3l"): "_t_hy_ag_shared_window_3l",
    ("hy_bcast", "shared_window"): "_t_hy_bcast_shared_window",
}

_ALLGATHER_FAMILY = frozenset({"allgather", "allgatherv", "hy_allgather"})


def _predict_impl(model: CostModel, op: str, algo: str, nbytes: float,
                  total: float | None, root: int) -> float:
    try:
        method = MODEL_FORMS[(op, algo)]
    except KeyError:
        raise KeyError(
            f"no analytic form for ({op!r}, {algo!r}); known ops: "
            f"{sorted({o for o, _a in MODEL_FORMS})}"
        ) from None
    n = float(nbytes)
    if total is None:
        total = n * model.p if op in _ALLGATHER_FAMILY else n
    t = getattr(model, method)(n, float(total), root)
    return t + model._dispatch_overhead(op)


def _model_predict(self: CostModel, op: str, algo: str, nbytes: float,
                   total: float | None = None, root: int = 0) -> float:
    """Latency (seconds) of one dispatched (op, algo) collective call."""
    key = (op, algo, float(nbytes), total, root)
    hit = self._memo.get(key)
    if hit is None:
        hit = self._memo[key] = _predict_impl(self, op, algo, nbytes,
                                              total, root)
    return hit


CostModel.predict = _model_predict


# ---------------------------------------------------------------------------
# Convenience entry points
# ---------------------------------------------------------------------------

def _resolve_spec(machine, num_nodes: int):
    """Accept a MachineSpec, a Machine, or a preset name."""
    if isinstance(machine, str):
        from repro.machine import presets, testing_machine

        if machine == "testing":
            return testing_machine(num_nodes=num_nodes)
        factory = getattr(presets, machine, None)
        if factory is None:
            raise ValueError(f"unknown machine preset {machine!r}")
        return factory(num_nodes)
    spec = getattr(machine, "spec", machine)
    return spec


def _counts_of(nranks: int, ppn) -> tuple[int, ...]:
    if not isinstance(ppn, int):
        counts = tuple(int(c) for c in ppn)
        if sum(counts) != nranks:
            raise ValueError(
                f"per-node counts {counts} sum to {sum(counts)}, "
                f"expected nranks={nranks}"
            )
        return counts
    if ppn < 1 or nranks < 1:
        raise ValueError("nranks and ppn must be >= 1")
    full, rem = divmod(nranks, ppn)
    return tuple([ppn] * full + ([rem] if rem else []))


def predict(machine, topology, op: str, algo: str, nranks: int, ppn,
            nbytes: float, *, tuning: CollectiveTuning | None = None,
            root: int = 0, socket_mode: str = "compact") -> float:
    """Closed-form latency (seconds) of one collective call.

    Parameters mirror the simulator's configuration: *machine* is a
    :class:`~repro.machine.model.MachineSpec` (or Machine, or preset
    name ``"hazel_hen"``/``"vulcan"``/``"testing"``), *topology* a
    Topology instance, kind string, or None for the spec default, *ppn*
    either a uniform ranks-per-node int or explicit per-node counts, and
    *nbytes* the per-rank payload (the rooted message size for rooted
    collectives, the per-rank block for the allgather family).
    """
    counts = _counts_of(nranks, ppn)
    spec = _resolve_spec(machine, len(counts))
    model = CostModel(spec, counts, tuning=tuning, topology=topology,
                      socket_mode=socket_mode)
    return model.predict(op, algo, nbytes, root=root)


def predict_overlap(machine, topology, op: str, algo: str, nranks: int, ppn,
                    nbytes: float, *, compute_s: float | None = None,
                    tuning: CollectiveTuning | None = None,
                    root: int = 0,
                    socket_mode: str = "compact") -> dict[str, float]:
    """Overlap-aware effective latency of a *non-blocking* collective.

    The simulator's progress model lets a posted collective advance in
    virtual time while the issuing rank computes; the closed-form
    equivalent splits the blocking prediction ``t_coll`` into an
    **α-floor** — the latency at a minimal (1-byte) payload, the
    issue/synchronization portion a rank cannot hide — and a hideable
    bandwidth part.  With a compute grain of ``compute_s`` seconds
    (default ``t_coll``, the OSU overlap-benchmark protocol)::

        exposed = floor + max(0, (t_coll - floor) - compute_s)
        hidden  = t_coll - exposed

    Returns ``{"total_s", "exposed_s", "hidden_s", "compute_s",
    "overlap_pct"}``.  The floor makes the model slightly conservative
    versus the simulator (which hides even the α term when the grain is
    large enough); the conformance suite therefore pins only blocking
    predictions.

    >>> out = predict_overlap("testing", None, "allgather", "ring",
    ...                       8, 8, 64 * 1024)
    >>> 0.0 <= out["exposed_s"] <= out["total_s"]
    True
    >>> out["overlap_pct"] > 0
    True
    """
    t_coll = predict(machine, topology, op, algo, nranks, ppn, nbytes,
                     tuning=tuning, root=root, socket_mode=socket_mode)
    floor = predict(machine, topology, op, algo, nranks, ppn, 1.0,
                    tuning=tuning, root=root, socket_mode=socket_mode)
    floor = min(floor, t_coll)
    grain = t_coll if compute_s is None else compute_s
    exposed = floor + max(0.0, (t_coll - floor) - grain)
    hidden = t_coll - exposed
    return {
        "total_s": t_coll,
        "exposed_s": exposed,
        "hidden_s": hidden,
        "compute_s": grain,
        "overlap_pct": 100.0 * hidden / t_coll if t_coll > 0 else 0.0,
    }


def model_for_comm(comm) -> CostModel:
    """The (cached) :class:`CostModel` matching *comm*'s machine,
    placement, and tuning."""
    cache = comm.shared_cache
    model = cache.get("_cost_model")
    if model is None:
        placement = comm.ctx.placement
        by_node: dict[int, int] = {}
        for w in comm.group.world_ranks():
            node = placement.node_of(w)
            by_node[node] = by_node.get(node, 0) + 1
        node_ids = sorted(by_node)
        counts = tuple(by_node[n] for n in node_ids)
        machine = comm.ctx.machine
        model = cache["_cost_model"] = CostModel(
            machine.spec, counts, tuning=comm.ctx.tuning,
            topology=machine.network.topology, node_ids=node_ids,
            socket_mode=placement.socket_mode,
        )
    return model


def predict_comm(comm, req, algo_name: str) -> float:
    """Registry hook: model latency of *algo_name* answering *req* on
    *comm* (used by ``Algorithm.cost`` / :class:`CostModelSelection`)."""
    model = model_for_comm(comm)
    op = req.op
    if op in _ALLGATHER_FAMILY:
        n = req.total / max(model.p, 1)
        total = req.total
    else:
        n = req.nbytes
        total = req.total if req.total else req.nbytes
    return model.predict(op, algo_name, n, total=total,
                         root=req.root or 0)


def crossover_points(xs: Sequence[float], ya: Sequence[float],
                     yb: Sequence[float]) -> list[float]:
    """X positions where series *ya* and *yb* cross (log-linear
    interpolation between samples) — e.g. message sizes where the hybrid
    allgather overtakes the pure-MPI one in a Fig 7/9/10-style sweep."""
    if not (len(xs) == len(ya) == len(yb)):
        raise ValueError("xs, ya, yb must have equal length")
    crossings: list[float] = []
    for i in range(1, len(xs)):
        d0 = ya[i - 1] - yb[i - 1]
        d1 = ya[i] - yb[i]
        if d0 == 0.0:
            crossings.append(xs[i - 1])
            continue
        if d0 * d1 < 0.0:
            x0, x1 = xs[i - 1], xs[i]
            if x0 > 0 and x1 > 0:
                lx0, lx1 = math.log(x0), math.log(x1)
                frac = d0 / (d0 - d1)
                crossings.append(math.exp(lx0 + frac * (lx1 - lx0)))
            else:
                crossings.append(x0 + (x1 - x0) * d0 / (d0 - d1))
    return crossings
