"""Hybrid gather / scatter — extensions in the paper's style.

* **hy_gather** — children store into the node window (no messages);
  leaders gatherv contiguous node blocks to the root's leader on the
  bridge; ranks on the root's node read the full result in place.
* **hy_scatter** — the root stores the full send buffer into its node
  window; its leader scattervs node blocks to the other leaders; every
  rank reads its slot in place.

Both keep one buffer copy per node and move each byte across the wire
exactly once.
"""

from __future__ import annotations

from repro.core.shared_buffer import SharedBuffer
from repro.core.sync import SyncPolicy

__all__ = ["hy_gather", "hy_scatter"]


def hy_gather(ctx, buf: SharedBuffer, root: int = 0,
              sync: SyncPolicy | None = None):
    """Coroutine: hybrid gather of per-rank slots to *root*'s node.

    Each rank must have stored its contribution via
    ``buf.local_view()``.  After completion ranks on the root's node can
    read the full result from ``buf.node_view()``; the buffer contents
    on other nodes cover only their own region.
    """
    sync = sync or ctx.default_sync
    placement = ctx.comm.ctx.placement
    root_world = ctx.comm.world_rank_of(root)
    root_node = placement.node_of(root_world)

    if not ctx.multi_node:
        yield from sync.single(ctx)
        return

    yield from sync.pre_exchange(ctx)
    if ctx.is_leader:
        root_bridge = ctx.bridge_rank_of_node(root_node)
        gathered = yield from ctx.bridge.gatherv(
            buf.node_payload(), root=root_bridge
        )
        if ctx.node == root_node:
            # Root's leader received every other node's block.
            for bridge_rank, block in enumerate(gathered):
                node = ctx.node_of_bridge_rank(bridge_rank)
                if node == ctx.node:
                    continue
                offset, _n = buf.node_region(node)
                buf.write_region(offset, block)
    yield from sync.post_exchange(ctx)


def hy_scatter(ctx, buf: SharedBuffer, root: int = 0,
               sync: SyncPolicy | None = None):
    """Coroutine: hybrid scatter from *root* to per-rank shared slots.

    The root must have stored the full send buffer into
    ``buf.node_view()`` (its node's window).  After completion each rank
    reads its own slot via ``buf.local_view()``.
    """
    sync = sync or ctx.default_sync
    placement = ctx.comm.ctx.placement
    root_world = ctx.comm.world_rank_of(root)
    root_node = placement.node_of(root_world)
    root_is_leader = placement.leader_of(root_node) == root_world

    if not ctx.multi_node:
        yield from sync.single(ctx)
        return

    if not root_is_leader:
        yield from sync.pre_exchange(ctx)

    if ctx.is_leader:
        root_bridge = ctx.bridge_rank_of_node(root_node)
        if ctx.node == root_node:
            payloads = []
            for brank in range(ctx.bridge.size):
                node = ctx.node_of_bridge_rank(brank)
                off, nbytes = buf.node_region(node)
                payloads.append(buf.region_payload(off, nbytes))
            yield from ctx.bridge.scatter(payloads, root=root_bridge)
        else:
            block = yield from ctx.bridge.scatter(None, root=root_bridge)
            offset, _n = buf.node_region(ctx.node)
            buf.write_region(offset, block)
    yield from sync.single(ctx)
