"""Chunked pipelined ring allgatherv for large node blocks (paper §7).

The paper stops its evaluation at 256 kB and notes that beyond that "a
pipeline method could be applied", citing Träff et al. 2008 ("A simple,
pipelined algorithm for large, irregular all-gather problems", the
paper's [30]).  That algorithm runs the classic ring, but splits every
block into chunks so an intermediate rank forwards chunk *c* while still
receiving chunk *c+1* — steady-state link utilization becomes
independent of the block's size skew.

:func:`pipelined_ring_allgatherv` is a drop-in replacement for the
bridge exchange in :func:`repro.core.allgather.hy_allgather`
(``pipelined=True``); the ablation benchmark ``test_abl_pipeline``
compares it against the plain ring.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.collectives.blocks import BlockSet
from repro.mpi.datatypes import Bytes, nbytes_of

__all__ = ["pipelined_ring_allgatherv"]


def _chunks_of(payload: Any, chunk_bytes: int) -> list[Any]:
    total = nbytes_of(payload)
    if total == 0:
        return [payload if payload is not None else Bytes(0)]
    n = max(1, -(-total // chunk_bytes))
    if isinstance(payload, np.ndarray):
        return list(np.array_split(payload.reshape(-1), n))
    base, rem = divmod(total, n)
    return [Bytes(base + (1 if i < rem else 0)) for i in range(n)]


def _reassemble(chunks: list[Any]) -> Any:
    if all(isinstance(c, Bytes) for c in chunks):
        return Bytes(sum(c.nbytes for c in chunks))
    return np.concatenate([np.asarray(c).reshape(-1) for c in chunks])


def pipelined_ring_allgatherv(comm, payload: Any, chunk_bytes: int,
                              tag: int = 2**27):
    """Coroutine: ring allgatherv with per-block chunk pipelining.

    Returns the list of per-rank payloads (comm-rank order), like
    ``Comm.allgatherv``.  Requires every rank to pass a payload (sizes
    may differ arbitrarily; chunk counts are derived per block and
    travel in-band via the chunk header).
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return [payload]
    right = (rank + 1) % size
    left = (rank - 1) % size
    results: list[Any] = [None] * size
    results[rank] = payload

    # Step s forwards the block of rank (rank - s) mod size.  Chunks of
    # one block are sent in order; the receiver forwards each chunk as
    # soon as it arrives (isend) while waiting for the next one.
    pending = []
    for step in range(size - 1):
        send_owner = (rank - step) % size
        recv_owner = (rank - step - 1) % size
        if step == 0:
            out_chunks = _chunks_of(payload, chunk_bytes)
            for idx, chunk in enumerate(out_chunks):
                last = idx == len(out_chunks) - 1
                pending.append(
                    comm.isend(
                        BlockSet(
                            {send_owner: chunk},
                            meta={"idx": idx, "last": last},
                        ),
                        right,
                        tag=tag + step,
                    )
                )
        # Receive the incoming block chunk-by-chunk, forwarding eagerly.
        in_chunks: list[Any] = []
        while True:
            block = yield from comm.recv(source=left, tag=tag + step)
            in_chunks.append(block[recv_owner])
            if step + 1 < size - 1:
                fwd = BlockSet(
                    {recv_owner: block[recv_owner]}, meta=block.meta
                )
                pending.append(comm.isend(fwd, right, tag=tag + step + 1))
            if block.meta["last"]:
                break
        results[recv_owner] = _reassemble(in_chunks)
    if pending:
        yield from comm.waitall(pending)
    return results
