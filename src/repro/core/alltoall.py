"""Hybrid all-to-all — extension in the paper's style.

The node-shared window holds an *outgoing* matrix (each on-node rank
writes one block per destination rank) and an *incoming* matrix (one
block per source rank for each on-node rank).  Leaders exchange
node-pair super-blocks pairwise on the bridge: the message from node A
to node B carries the ``ppn_A × ppn_B`` blocks in one transfer, so the
wire sees ``nodes²`` large messages instead of ``P²`` small ones, and
on-node traffic is plain shared-memory stores/loads.
"""

from __future__ import annotations

import numpy as np

from repro.core.sync import SyncPolicy
from repro.mpi.datatypes import Bytes
from repro.simulator import AllOf

__all__ = ["hy_alltoall", "AlltoallBuffers"]


class AlltoallBuffers:
    """Paired outgoing/incoming shared buffers for hybrid all-to-all.

    Created via :func:`alloc_alltoall_buffers`.  Block (i, j) of the
    outgoing matrix is rank i's message to comm rank j; block (j, i) of
    the incoming matrix is what rank i received from comm rank j.
    """

    __slots__ = ("out_win", "in_win", "block", "ctx")

    def __init__(self, out_win, in_win, block: int, ctx):
        self.out_win = out_win
        self.in_win = in_win
        self.block = block
        self.ctx = ctx

    def _matrix(self, win) -> np.ndarray | None:
        raw = win.whole(np.uint8)
        if raw is None:
            return None
        size = self.ctx.comm.size
        ppn = self.ctx.shm.size
        return raw.reshape(ppn, size, self.block)

    def out_matrix(self) -> np.ndarray | None:
        """(ppn, comm_size, block) outgoing view — row = on-node rank."""
        return self._matrix(self.out_win)

    def in_matrix(self) -> np.ndarray | None:
        """(ppn, comm_size, block) incoming view — row = on-node rank."""
        return self._matrix(self.in_win)

    def my_out_row(self) -> np.ndarray | None:
        """This rank's outgoing blocks (comm_size, block)."""
        m = self.out_matrix()
        return None if m is None else m[self.ctx.shm.rank]

    def my_in_row(self) -> np.ndarray | None:
        """This rank's received blocks (comm_size, block)."""
        m = self.in_matrix()
        return None if m is None else m[self.ctx.shm.rank]


def alloc_alltoall_buffers(ctx, block_bytes: int):
    """Coroutine: allocate the all-to-all window pair (one-off)."""
    from repro.mpi.shm import win_allocate_shared

    ppn = ctx.shm.size
    size = ctx.comm.size
    total = ppn * size * block_bytes
    out_win = yield from win_allocate_shared(
        ctx.shm, total if ctx.is_leader else 0
    )
    in_win = yield from win_allocate_shared(
        ctx.shm, total if ctx.is_leader else 0
    )
    return AlltoallBuffers(out_win, in_win, block_bytes, ctx)


def hy_alltoall(ctx, bufs: AlltoallBuffers, sync: SyncPolicy | None = None):
    """Coroutine: hybrid all-to-all over pre-filled outgoing buffers.

    Every rank must have written its outgoing row
    (``bufs.my_out_row()``).  After completion each rank reads its
    incoming row (``bufs.my_in_row()``).
    """
    sync = sync or ctx.default_sync
    comm = ctx.comm
    block = bufs.block
    yield from sync.pre_exchange(ctx)
    if ctx.is_leader:
        placement = comm.ctx.placement
        my_node = ctx.node
        out = bufs.out_matrix()
        inc = bufs.in_matrix()
        nodes = ctx.layout.nodes
        # Local (same-node) blocks: copy out→in within shared memory.
        my_ranks = [
            comm.group.rank_of(w)
            for w in comm.group.world_ranks()
            if placement.node_of(w) == my_node
        ]
        if out is not None:
            for si, src in enumerate(my_ranks):
                for di, dst in enumerate(my_ranks):
                    inc[di, src] = out[si, dst]
        yield from comm.ctx.touch(len(my_ranks) * len(my_ranks) * block)
        # Remote node-pair super-blocks, pairwise schedule.
        reqs = []
        for peer_bridge in range(ctx.bridge.size):
            peer_node = ctx.node_of_bridge_rank(peer_bridge)
            if peer_node == my_node:
                continue
            peer_ranks = [
                comm.group.rank_of(w)
                for w in comm.group.world_ranks()
                if placement.node_of(w) == peer_node
            ]
            if out is None:
                payload = Bytes(len(my_ranks) * len(peer_ranks) * block)
            else:
                payload = np.ascontiguousarray(
                    out[np.ix_(range(len(my_ranks)), peer_ranks)]
                )
            reqs.append(ctx.bridge.isend(payload, peer_bridge, tag=99))
            reqs.append(ctx.bridge.irecv(source=peer_bridge, tag=99))
        results = yield AllOf([r.event for r in reqs])
        # Write received super-blocks into the incoming matrix.
        recv_iter = iter(
            [r for r in results if isinstance(r, tuple)]
        )
        for peer_bridge in range(ctx.bridge.size):
            peer_node = ctx.node_of_bridge_rank(peer_bridge)
            if peer_node == my_node:
                continue
            payload, _status = next(recv_iter)
            if inc is None or isinstance(payload, Bytes):
                continue
            peer_ranks = [
                comm.group.rank_of(w)
                for w in comm.group.world_ranks()
                if placement.node_of(w) == peer_node
            ]
            cube = np.asarray(payload).reshape(
                len(peer_ranks), len(my_ranks), block
            )
            # cube[pi, mi] = peer rank pi's message to my rank mi.
            for pi, src in enumerate(peer_ranks):
                for mi in range(len(my_ranks)):
                    inc[mi, src] = cube[pi, mi]
    yield from sync.post_exchange(ctx)
