"""Node-shared result buffers for the hybrid collectives.

A :class:`SharedBuffer` is the "one copy per node" of the paper: an
MPI-3 shared window (allocated entirely by the node leader, children
contribute zero bytes — paper Fig 4 line 13) plus the slot bookkeeping
that gives every rank a *local pointer* to its own partition (Fig 4
line 21) and zero-copy read access to everyone else's.

Slots are laid out node-major according to a
:class:`~repro.core.placement.NodeSortedLayout`, which is the identity
for SMP-style placement and the §6 node-sorted permutation otherwise, so
a node's contribution is always one contiguous region — the precondition
for the leader's single ``MPI_Allgatherv`` on the bridge communicator.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.placement import NodeSortedLayout
from repro.mpi.datatypes import Bytes
from repro.mpi.shm import SharedWindow

__all__ = ["SharedBuffer"]


class SharedBuffer:
    """One node-shared buffer with per-rank slots.

    Parameters
    ----------
    win:
        The node's shared window (full global size at the leader).
    layout:
        Node-major slot layout of the parent communicator.
    slot_sizes:
        Bytes per slot, indexed by *slot* (node-major order).
    my_rank:
        This rank's parent-comm rank.
    node:
        This rank's node id.
    data_mode:
        Whether the window carries real memory.
    """

    __slots__ = (
        "win", "layout", "slot_sizes", "slot_offsets", "my_rank", "node",
        "data_mode", "total_nbytes",
    )

    def __init__(
        self,
        win: SharedWindow,
        layout: NodeSortedLayout,
        slot_sizes: list[int],
        my_rank: int,
        node: int,
        data_mode: bool,
    ):
        if len(slot_sizes) != layout.size:
            raise ValueError("one slot size per rank required")
        self.win = win
        self.layout = layout
        self.slot_sizes = list(slot_sizes)
        self.slot_offsets: list[int] = []
        off = 0
        for s in self.slot_sizes:
            self.slot_offsets.append(off)
            off += s
        self.total_nbytes = off
        self.my_rank = my_rank
        self.node = node
        self.data_mode = data_mode

    # -- geometry ---------------------------------------------------------
    @property
    def my_slot(self) -> int:
        """This rank's slot index."""
        return self.layout.slot_of_rank(self.my_rank)

    def slot_of_rank(self, comm_rank: int) -> int:
        """Slot index of any parent-comm rank."""
        return self.layout.slot_of_rank(comm_rank)

    def offset_of_rank(self, comm_rank: int) -> int:
        """Byte offset of *comm_rank*'s slot."""
        return self.slot_offsets[self.layout.slot_of_rank(comm_rank)]

    def size_of_rank(self, comm_rank: int) -> int:
        """Bytes owned by *comm_rank*."""
        return self.slot_sizes[self.layout.slot_of_rank(comm_rank)]

    def node_region(self, node: int) -> tuple[int, int]:
        """(offset, nbytes) of *node*'s contiguous slot region."""
        start_slot = self.layout.node_slot_start(node)
        count = self.layout.node_count(node)
        off = self.slot_offsets[start_slot]
        nbytes = sum(self.slot_sizes[start_slot : start_slot + count])
        return off, nbytes

    @property
    def my_node_region(self) -> tuple[int, int]:
        """(offset, nbytes) of this node's contribution."""
        return self.node_region(self.node)

    # -- views (data mode) ----------------------------------------------------
    def _raw(self) -> np.ndarray | None:
        return self.win.whole(np.uint8)

    def node_view(self, dtype: Any = np.uint8) -> np.ndarray | None:
        """The entire shared result buffer (None in model mode).

        Every on-node rank sees the same storage — reading a neighbour's
        slot is a plain load, not a message."""
        raw = self._raw()
        if raw is None:
            return None
        return raw[: self.total_nbytes].view(dtype)

    def slot_view(self, comm_rank: int, dtype: Any = np.uint8) -> np.ndarray | None:
        """View of one rank's slot (None in model mode)."""
        raw = self._raw()
        if raw is None:
            return None
        off = self.offset_of_rank(comm_rank)
        n = self.size_of_rank(comm_rank)
        return raw[off : off + n].view(dtype)

    def local_view(self, dtype: Any = np.uint8) -> np.ndarray | None:
        """This rank's own slot — the paper's 'local pointer' (Fig 4
        line 21).  Only this rank may write here between syncs."""
        return self.slot_view(self.my_rank, dtype)

    def region_view(self, offset: int, nbytes: int, dtype: Any = np.uint8):
        """Arbitrary byte-region view (used by exchange write-back)."""
        raw = self._raw()
        if raw is None:
            return None
        return raw[offset : offset + nbytes].view(dtype)

    # -- exchange payloads -------------------------------------------------
    def node_payload(self) -> Any:
        """This node's contiguous contribution as a message payload
        (ndarray view in data mode, :class:`Bytes` in model mode)."""
        off, nbytes = self.my_node_region
        raw = self._raw()
        if raw is None:
            return Bytes(nbytes)
        return raw[off : off + nbytes]

    def region_payload(self, offset: int, nbytes: int) -> Any:
        """An arbitrary region as a message payload."""
        raw = self._raw()
        if raw is None:
            return Bytes(nbytes)
        return raw[offset : offset + nbytes]

    def write_region(self, offset: int, payload: Any) -> None:
        """Store a received payload into the window (leader write-back).

        In the real implementation the receive lands directly in the
        window (``recvbuf = r_buf``), so this is bookkeeping, not an
        extra timed copy."""
        raw = self._raw()
        if raw is None or isinstance(payload, Bytes):
            return
        flat = np.asarray(payload).reshape(-1).view(np.uint8)
        raw[offset : offset + flat.size] = flat

    def __repr__(self) -> str:
        return (
            f"SharedBuffer(total={self.total_nbytes}B, slots={len(self.slot_sizes)}, "
            f"node={self.node}, mode={'data' if self.data_mode else 'model'})"
        )
