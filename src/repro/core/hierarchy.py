"""Hybrid MPI+MPI context: communicator splitting and window allocation.

This is the one-off setup of paper Fig 4, lines 2-20:

1. ``MPI_Comm_split_type(MPI_COMM_TYPE_SHARED)`` → the per-node
   *shared-memory communicator* (Fig 1a);
2. ``MPI_Comm_split`` keeping only each node's lowest rank → the
   *bridge communicator* of leaders (Fig 2);
3. ``MPI_Win_allocate_shared`` with the whole size at the leader and
   zero at children, plus ``MPI_Win_shared_query`` for the children's
   base pointer (Fig 1b / Fig 4 lines 13-20).

The paper stresses these are amortized one-offs; benchmarks therefore
construct the context outside the timed region, exactly as §5 excludes
"extra one-off activities".
"""

from __future__ import annotations

from typing import Any

from repro.core.placement import NodeSortedLayout
from repro.core.shared_buffer import SharedBuffer
from repro.core.sync import BarrierSync, SyncPolicy
from repro.mpi.constants import UNDEFINED
from repro.mpi.shm import win_allocate_shared

__all__ = ["HybridContext"]


class HybridContext:
    """Per-rank handle on the hybrid MPI+MPI hierarchy of one communicator.

    Build collectively::

        ctx = yield from HybridContext.create(mpi.world)

    Attributes
    ----------
    comm:
        The parent communicator.
    shm:
        This node's shared-memory communicator.
    bridge:
        The leaders' bridge communicator (None on children).
    layout:
        Node-major slot layout of the parent comm (identity for
        SMP-style placement; the §6 node-sorted array otherwise).
    """

    __slots__ = (
        "comm", "shm", "bridge", "layout", "default_sync", "_buffers",
        "_socket_tier",
    )

    def __init__(self, comm, shm, bridge, layout: NodeSortedLayout,
                 default_sync: SyncPolicy):
        self.comm = comm
        self.shm = shm
        self.bridge = bridge
        self.layout = layout
        self.default_sync = default_sync
        self._buffers: dict[Any, SharedBuffer] = {}
        self._socket_tier = None

    # -- construction ---------------------------------------------------------
    @classmethod
    def create(cls, comm, default_sync: SyncPolicy | None = None):
        """Coroutine: collectively build the hybrid hierarchy (Fig 4)."""
        shm = yield from comm.split_type_shared()
        is_leader = shm.rank == 0
        bridge = yield from comm.split(
            color=0 if is_leader else UNDEFINED, key=0
        )
        # The layout is a pure function of group + placement; build it
        # once per communicator (it is O(p), and every rank needs one).
        cache = comm.shared_cache
        layout = cache.get("_node_layout")
        if layout is None:
            layout = cache["_node_layout"] = NodeSortedLayout(
                comm.group.world_ranks(), comm.ctx.placement
            )
        return cls(comm, shm, bridge, layout, default_sync or BarrierSync())

    # -- identity ---------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        """True on each node's lowest-ranked process."""
        return self.shm.rank == 0

    @property
    def node(self) -> int:
        """This rank's node id."""
        return self.comm.ctx.placement.node_of(self.comm.ctx.world_rank)

    @property
    def num_nodes(self) -> int:
        """Nodes spanned by the parent communicator."""
        return len(self.layout.nodes)

    @property
    def multi_node(self) -> bool:
        """True when the bridge exchange is non-trivial (Fig 4 line 24)."""
        return self.num_nodes > 1

    def socket_comms(self):
        """Coroutine: lazily build (and cache) the socket tier.

        Returns ``(sock, sleaders, sbridge, socket_id, sbridge_nodes,
        by_sock)``:

        * *sock* — this rank's socket-domain communicator (members of
          its node sharing its socket);
        * *sleaders* — this node's socket leaders (None off-leaders);
        * *sbridge* — the ``socket_id``-th socket leaders of every node
          hosting that socket (None off-leaders) — the parallel bridge
          of the 3-level exchange;
        * *sbridge_nodes* — node id per *sbridge* rank;
        * *by_sock* — ``(node, socket) -> comm ranks``.

        Built from globally-known placement via the deterministic-child
        registry (no rendezvous), and only on demand, so two-level runs
        never pay for (or even create) the extra communicators.
        """
        if self._socket_tier is not None:
            return self._socket_tier
        comm = self.comm
        rctx = comm.ctx
        placement = rctx.placement
        node_spec = rctx.machine.spec.node
        shared = comm.shared_cache
        by_sock = shared.get("_hy_by_socket")
        if by_sock is None:
            by_sock = {}
            for r in range(comm.size):
                w = comm.world_rank_of(r)
                key = (
                    placement.node_of(w),
                    placement.socket_of(w, node_spec),
                )
                by_sock.setdefault(key, []).append(r)
            shared["_hy_by_socket"] = by_sock
        w = rctx.world_rank
        my_node = placement.node_of(w)
        my_sock = placement.socket_of(w, node_spec)
        sock = comm.subcomm(
            ("hy_sock", my_node, my_sock), by_sock[(my_node, my_sock)]
        )
        is_sock_leader = sock.rank == 0
        sleaders = None
        sbridge = None
        sbridge_nodes: list[int] = []
        if is_sock_leader:
            node_sleaders = [
                ranks[0]
                for (n, _s), ranks in sorted(by_sock.items())
                if n == my_node
            ]
            sleaders = comm.subcomm(("hy_sleaders", my_node), node_sleaders)
            members = []
            for (n, s), ranks in sorted(by_sock.items()):
                if s == my_sock:
                    members.append(ranks[0])
                    sbridge_nodes.append(n)
            sbridge = comm.subcomm(("hy_sbridge", my_sock), members)
        self._socket_tier = (
            sock, sleaders, sbridge, my_sock, sbridge_nodes, by_sock
        )
        if False:  # pragma: no cover - keeps this a generator function
            yield None
        return self._socket_tier

    def bridge_rank_of_node(self, node: int) -> int:
        """Bridge-comm rank of *node*'s leader (nodes ascend in bridge)."""
        return self.layout.nodes.index(node)

    def node_of_bridge_rank(self, bridge_rank: int) -> int:
        """Node id of a bridge-comm rank."""
        return self.layout.nodes[bridge_rank]

    # -- buffer factories --------------------------------------------------------
    def _alloc(self, slot_sizes: list[int], cache_key: Any = None):
        """Coroutine: allocate a node-shared buffer with the given
        node-major *slot_sizes* (leader allocates all; children zero)."""
        if cache_key is not None and cache_key in self._buffers:
            return self._buffers[cache_key]
        total = sum(slot_sizes)
        win = yield from win_allocate_shared(
            self.shm, total if self.is_leader else 0
        )
        buf = SharedBuffer(
            win=win,
            layout=self.layout,
            slot_sizes=slot_sizes,
            my_rank=self.comm.rank,
            node=self.node,
            data_mode=self.comm.ctx.data_mode,
        )
        if cache_key is not None:
            self._buffers[cache_key] = buf
        return buf

    def allgather_buffer(self, nbytes_per_rank: int, cache: bool = True):
        """Coroutine: buffer for a *regular* allgather — one
        ``nbytes_per_rank`` slot per comm rank, one copy per node."""
        sizes = [int(nbytes_per_rank)] * self.comm.size
        key = ("ag", nbytes_per_rank) if cache else None
        buf = yield from self._alloc(sizes, key)
        return buf

    def allgatherv_buffer(self, nbytes_by_rank: list[int], cache: bool = True):
        """Coroutine: buffer for an *irregular* allgather — per-rank slot
        sizes (indexed by comm rank, reordered node-major internally)."""
        if len(nbytes_by_rank) != self.comm.size:
            raise ValueError("one size per comm rank required")
        sizes = [0] * self.comm.size
        for rank, nb in enumerate(nbytes_by_rank):
            sizes[self.layout.slot_of_rank(rank)] = int(nb)
        key = ("agv", tuple(nbytes_by_rank)) if cache else None
        buf = yield from self._alloc(sizes, key)
        return buf

    def bcast_buffer(self, nbytes: int, cache: bool = True):
        """Coroutine: buffer for broadcast — a single shared region per
        node (every rank reads the same storage via ``node_view``).

        Internally the whole size sits in slot 0 so the buffer machinery
        (regions, payloads) applies unchanged."""
        sizes = [0] * self.comm.size
        sizes[0] = int(nbytes)
        key = ("bc", nbytes) if cache else None
        buf = yield from self._alloc(sizes, key)
        return buf

    # -- collective operations (delegates) --------------------------------------
    def _replayed(self, op: str, sig, inner):
        """Route a hybrid collective through the job's replay session.

        The i-variants bypass this (they run as background processes and
        veto replay via the non-blocking counter instead)."""
        sess = self.comm.ctx.job.replay
        if sess is None:
            result = yield from inner()
            return result
        result = yield from sess.run(self.comm, op, sig, inner)
        return result

    def allgather(self, buf: SharedBuffer, sync: SyncPolicy | None = None,
                  pipelined: bool | None = None,
                  chunk_bytes: int = 128 * 1024,
                  pack_datatypes: bool = False):
        """Coroutine: hybrid allgather over *buf* (paper Fig 4).

        ``pipelined=True`` forces the chunked bridge exchange; ``None``
        (default) lets the rank's selection policy pick the variant."""
        from repro.core.allgather import hy_allgather
        from repro.mpi.collectives.replay import sync_signature

        sd = sync_signature(sync or self.default_sync)
        sig = None if sd is None else (
            "hyag", tuple(buf.slot_sizes), sd, pipelined, chunk_bytes,
            pack_datatypes,
        )
        yield from self._replayed(
            "hy_allgather", sig,
            lambda: hy_allgather(
                self, buf, sync=sync, pipelined=pipelined,
                chunk_bytes=chunk_bytes, pack_datatypes=pack_datatypes,
            ),
        )

    def bcast(self, buf: SharedBuffer, root: int = 0,
              sync: SyncPolicy | None = None):
        """Coroutine: hybrid broadcast over *buf* (paper Fig 6)."""
        from repro.core.bcast import hy_bcast
        from repro.mpi.collectives.replay import sync_signature

        sd = sync_signature(sync or self.default_sync)
        sig = None if sd is None else (
            "hybc", tuple(buf.slot_sizes), sd, root,
        )
        yield from self._replayed(
            "hy_bcast", sig,
            lambda: hy_bcast(self, buf, root=root, sync=sync),
        )

    def allreduce(self, contribution, nbytes: int,
                  op=None, sync: SyncPolicy | None = None):
        """Coroutine: hybrid allreduce extension; returns result payload."""
        from repro.core.reduce import hy_allreduce
        from repro.mpi.collectives.replay import (
            payload_signature,
            sync_signature,
        )
        from repro.mpi.constants import ReduceOp

        rop = op or ReduceOp.SUM
        sd = sync_signature(sync or self.default_sync)
        psig = payload_signature(contribution)
        sig = None if sd is None or psig is None else (
            "hyar", sd, psig, int(nbytes), rop,
        )
        result = yield from self._replayed(
            "hy_allreduce", sig,
            lambda: hy_allreduce(self, contribution, nbytes, rop, sync=sync),
        )
        return result

    # -- immediate (non-blocking) variants ---------------------------------
    def _ihy(self, op: str, nbytes: int, gen):
        """Post a hybrid collective as a background process.

        The returned :class:`~repro.mpi.nonblocking.CollRequest`
        completes when the collective does; meanwhile the bridge
        exchange (and the on-node syncs) progress in virtual time while
        this rank computes — each rank's share of the collective runs in
        its own background process, so children overlap their compute
        with the leaders' bridge exchange.  Profiled under *op* with
        issue-to-completion timing."""
        from repro.mpi.nonblocking import spawn_collective

        comm = self.comm
        return spawn_collective(comm, op, comm._collective(op, nbytes, gen))

    def iallgather(self, buf: SharedBuffer, sync: SyncPolicy | None = None,
                   pipelined: bool | None = None,
                   chunk_bytes: int = 128 * 1024,
                   pack_datatypes: bool = False):
        """Immediate hybrid allgather; wait on the returned request
        before reading ``buf.node_view()``."""
        from repro.core.allgather import hy_allgather

        return self._ihy(
            "hy_iallgather", buf.total_nbytes,
            hy_allgather(
                self, buf, sync=sync, pipelined=pipelined,
                chunk_bytes=chunk_bytes, pack_datatypes=pack_datatypes,
            ),
        )

    def ibcast(self, buf: SharedBuffer, root: int = 0,
               sync: SyncPolicy | None = None):
        """Immediate hybrid broadcast (the root must have stored its
        message into ``buf`` *before* posting); wait on the returned
        request before reading ``buf.node_view()``."""
        from repro.core.bcast import hy_bcast

        return self._ihy(
            "hy_ibcast", buf.total_nbytes,
            hy_bcast(self, buf, root=root, sync=sync),
        )

    def iallreduce(self, contribution, nbytes: int,
                   op=None, sync: SyncPolicy | None = None):
        """Immediate hybrid allreduce; the request's value is the result
        payload."""
        from repro.core.reduce import hy_allreduce
        from repro.mpi.constants import ReduceOp

        return self._ihy(
            "hy_iallreduce", nbytes,
            hy_allreduce(
                self, contribution, nbytes, op or ReduceOp.SUM, sync=sync
            ),
        )

    def __repr__(self) -> str:
        return (
            f"HybridContext(nodes={self.num_nodes}, "
            f"leader={self.is_leader}, comm={self.comm.name!r})"
        )

