"""Hybrid allgather / allgatherv (paper §4.1, Fig 3b and Fig 4).

The data to be gathered lives in a node-shared :class:`SharedBuffer`;
each rank has already stored its contribution through its local pointer
(``buf.local_view()``).  The operation is then:

* **multi-node** — pre-sync (children publish their partitions), leaders
  run ``MPI_Allgatherv`` of contiguous *node blocks* on the bridge
  communicator, post-sync (children wait for the exchanged data);
* **single node** — one sync; the shared buffer is already the result.

No on-node aggregation or broadcast stages exist — those intra-node
copies are exactly what the pure-MPI baseline pays and the hybrid
approach removes.

The bridge exchange may optionally use the chunked pipelined ring of
:mod:`repro.core.pipeline` for very large node blocks (paper §7, [30]).
"""

from __future__ import annotations

import numpy as np

from repro.core.shared_buffer import SharedBuffer
from repro.core.sync import SyncPolicy
from repro.mpi.collectives.registry import (
    CollRequest,
    phase_begin,
    phase_end,
    policy_of,
    trace_begin,
    trace_end,
)
from repro.mpi.datatypes import Bytes

__all__ = ["hy_allgather", "hy_allgatherv"]


def _select_hy_allgather(ctx, buf, pipelined):
    """Pick the bridge-exchange variant and open its dispatch span.

    ``pipelined=True`` is a caller-forced choice (the ablation knob
    predating the registry); ``False``/``None`` delegates to the rank's
    selection policy — the ``shared_window`` descriptor under the
    default tables, ``pipelined_ring`` / ``shared_window_3l`` when
    forced via ``REPRO_COLL_HY_ALLGATHER`` or preferred by the cost
    model.

    Returns ``(algo_name, span)``; the caller closes the span when the
    collective completes."""
    total = buf.total_nbytes
    comm = ctx.comm
    if pipelined:
        name, policy_name = "pipelined_ring", "caller"
    else:
        policy = policy_of(comm)
        req = CollRequest(
            op="hy_allgather", nbytes=total // max(comm.size, 1), total=total
        )
        name, policy_name = policy.select(comm, req).name, policy.name
    span = trace_begin(comm, "hy_allgather", name, total, policy_name)
    return name, span


def _socket_payload(buf: SharedBuffer, members: list[int]):
    """The concatenated contributions of *members* (comm ranks) as one
    message payload (``Bytes`` in model mode)."""
    total = sum(buf.size_of_rank(r) for r in members)
    parts = [
        buf.region_payload(buf.offset_of_rank(r), buf.size_of_rank(r))
        for r in members
    ]
    if not parts or any(isinstance(p, Bytes) for p in parts):
        return Bytes(total)
    return np.concatenate(
        [np.asarray(p).reshape(-1).view(np.uint8) for p in parts]
    )


def _write_socket_blocks(buf: SharedBuffer, members: list[int], block):
    """Write one received socket block back into the window, member by
    member (bookkeeping — the real receive lands in the window)."""
    if isinstance(block, Bytes):
        return
    flat = np.asarray(block).reshape(-1).view(np.uint8)
    pos = 0
    for r in members:
        size = buf.size_of_rank(r)
        buf.write_region(buf.offset_of_rank(r), flat[pos:pos + size])
        pos += size


def _hy_allgather_3l(ctx, buf: SharedBuffer, sync: SyncPolicy, span):
    """Three-level bridge exchange: each socket leader runs a parallel
    allgatherv of its socket's blocks on its own bridge communicator
    (the s-th socket leaders of every node).

    With ``nic_streams >= sockets`` the per-socket bridges move their
    (smaller) node blocks concurrently, cutting the bandwidth term of
    the exchange; the price is one extra on-node completion round —
    socket leaders must report to the node leader before it may release
    the post-sync — so small messages favour the two-level variant.
    """
    comm = ctx.comm
    (sock, sleaders, sbridge, socket_id, sbridge_nodes, by_sock) = (
        yield from ctx.socket_comms()
    )
    ph = phase_begin(comm, "pre_sync", level="node")
    yield from sync.pre_exchange(ctx)
    phase_end(comm, ph)

    if sock.rank == 0:
        if sbridge.size > 1:
            members = by_sock[(ctx.node, socket_id)]
            ph = phase_begin(comm, "bridge_exchange", buf.total_nbytes,
                             level="socket")
            payload = _socket_payload(buf, members)
            blocks = yield from sbridge.allgatherv(payload)
            for brank, block in enumerate(blocks):
                node = sbridge_nodes[brank]
                if node == ctx.node:
                    continue
                _write_socket_blocks(
                    buf, by_sock[(node, socket_id)], block
                )
            phase_end(comm, ph)
        # Completion round: every socket leader reports to the node
        # leader so the post-sync release cannot overtake a still-running
        # parallel bridge.
        if sleaders.size > 1:
            ph = phase_begin(comm, "leader_gather", 0, level="node")
            if sleaders.rank == 0:
                for src in range(1, sleaders.size):
                    yield from sleaders.recv(source=src, tag=0)
            else:
                yield from sleaders.send(Bytes(0), 0, tag=0)
            phase_end(comm, ph)

    ph = phase_begin(comm, "post_sync", level="node")
    yield from sync.post_exchange(ctx)
    phase_end(comm, ph)
    trace_end(comm, span)


def hy_allgather(
    ctx,
    buf: SharedBuffer,
    sync: SyncPolicy | None = None,
    pipelined: bool | None = None,
    chunk_bytes: int = 128 * 1024,
    pack_datatypes: bool = False,
):
    """Coroutine: hybrid allgather over *buf* (regular or irregular alike
    — the bridge exchange is always the v-variant, as in Fig 4 line 26).

    After completion every rank on every node can read the full result
    from ``buf.node_view()`` with plain loads.

    ``pipelined=True`` forces the chunked pipelined-ring bridge exchange;
    ``False``/``None`` lets the selection policy choose (the plain
    shared-window exchange under the default tables).

    ``pack_datatypes`` selects the §6 *derived-datatype* fallback for
    non-SMP rank placements: instead of the node-sorted buffer layout,
    the leader packs its node's (conceptually non-contiguous) blocks
    before sending and unpacks received data into rank order, paying the
    per-byte packing cost the paper warns about.  With the default
    node-sorted layout no packing is ever needed.
    """
    sync = sync or ctx.default_sync
    algo, span = _select_hy_allgather(ctx, buf, pipelined)
    comm = ctx.comm
    if algo == "shared_window_3l" and ctx.multi_node:
        yield from _hy_allgather_3l(ctx, buf, sync, span)
        return
    pipelined = algo == "pipelined_ring"
    if not ctx.multi_node:
        # Fig 4 lines 29-30 / 37-38: single node → a single barrier makes
        # the buffer consistent.
        ph = phase_begin(comm, "sync")
        yield from sync.single(ctx)
        phase_end(comm, ph)
        trace_end(comm, span)
        return

    # Fig 4 line 25 / 34: every on-node rank enters the pre-sync; leaders
    # thereby observe all partitions initialized.
    ph = phase_begin(comm, "pre_sync")
    yield from sync.pre_exchange(ctx)
    phase_end(comm, ph)

    if ctx.is_leader:
        ph = phase_begin(comm, "bridge_exchange", buf.total_nbytes)
        payload = buf.node_payload()
        if pack_datatypes and not ctx.layout.is_identity:
            # Pack my node's blocks (one pass) before the exchange.
            per_byte = ctx.comm.ctx.machine.spec.network.per_byte_packing
            _off, mine = buf.my_node_region
            yield ctx.comm.ctx.engine.timeout(per_byte * mine)
        if pipelined:
            from repro.core.pipeline import pipelined_ring_allgatherv

            blocks = yield from pipelined_ring_allgatherv(
                ctx.bridge, payload, chunk_bytes=chunk_bytes
            )
        else:
            blocks = yield from ctx.bridge.allgatherv(payload)
        # Write-back: received node blocks land at their regions (in the
        # real code the window *is* the recvbuf; this is bookkeeping).
        received = 0
        for bridge_rank, block in enumerate(blocks):
            node = ctx.node_of_bridge_rank(bridge_rank)
            if node == ctx.node:
                continue
            offset, nbytes = buf.node_region(node)
            received += nbytes
            buf.write_region(offset, block)
        if pack_datatypes and not ctx.layout.is_identity:
            # Unpack everything received into rank order (one pass).
            per_byte = ctx.comm.ctx.machine.spec.network.per_byte_packing
            yield ctx.comm.ctx.engine.timeout(per_byte * received)
        phase_end(comm, ph)

    # Fig 4 line 27 / 35: children wait until leaders finished exchanging.
    ph = phase_begin(comm, "post_sync")
    yield from sync.post_exchange(ctx)
    phase_end(comm, ph)
    trace_end(comm, span)


def hy_allgatherv(
    ctx,
    buf: SharedBuffer,
    sync: SyncPolicy | None = None,
    pipelined: bool | None = None,
    chunk_bytes: int = 128 * 1024,
):
    """Coroutine: hybrid irregular allgather.

    Identical control flow to :func:`hy_allgather` — the irregularity is
    entirely captured by the buffer's per-slot sizes (built with
    :meth:`HybridContext.allgatherv_buffer`)."""
    yield from hy_allgather(
        ctx, buf, sync=sync, pipelined=pipelined, chunk_bytes=chunk_bytes
    )
