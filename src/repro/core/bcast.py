"""Hybrid broadcast (paper §4.2, Figs 5 and 6).

One shared region per node holds the broadcast message.  The root stores
its data directly into its node's region (a plain write — no message);
leaders broadcast across nodes on the bridge communicator; a single
post-sync releases the on-node readers (Fig 6: one barrier in every
branch).

When the root is not its node's leader an additional pre-sync on the
root's node is required so the leader observes the root's stores before
sending; the paper's pseudo-code assumes root 0 (a leader) and therefore
shows no pre-sync.  We insert it only in the non-leader-root case, and
on *all* nodes (the sync policy is collective over each node's shm
communicator, matching how such codes are written in practice).
"""

from __future__ import annotations

from repro.core.shared_buffer import SharedBuffer
from repro.core.sync import SyncPolicy
from repro.mpi.collectives.registry import (
    CollRequest,
    phase_begin,
    phase_end,
    policy_of,
    trace_begin,
    trace_end,
)

__all__ = ["hy_bcast"]


def hy_bcast(ctx, buf: SharedBuffer, root: int = 0,
             sync: SyncPolicy | None = None):
    """Coroutine: hybrid broadcast of ``buf``'s region from comm rank
    *root*.

    The root must have stored the message into ``buf.node_view()``
    before calling.  Afterwards every rank on every node reads the
    message from ``buf.node_view()``.
    """
    sync = sync or ctx.default_sync
    policy = policy_of(ctx.comm)
    algo = policy.select(
        ctx.comm,
        CollRequest(op="hy_bcast", nbytes=buf.total_nbytes,
                    total=buf.total_nbytes, root=root),
    )
    comm = ctx.comm
    span = trace_begin(comm, "hy_bcast", algo.name, buf.total_nbytes,
                       policy.name)
    placement = comm.ctx.placement
    root_world = comm.world_rank_of(root)
    root_node = placement.node_of(root_world)
    root_is_leader = placement.leader_of(root_node) == root_world

    if not root_is_leader:
        # Leader must observe the root's stores before transmitting.
        ph = phase_begin(comm, "pre_sync")
        yield from sync.pre_exchange(ctx)
        phase_end(comm, ph)

    if ctx.multi_node and ctx.is_leader:
        nbytes = buf.total_nbytes
        ph = phase_begin(comm, "bridge_exchange", nbytes)
        payload = buf.region_payload(0, nbytes)
        root_bridge = ctx.bridge_rank_of_node(root_node)
        result = yield from ctx.bridge.bcast(payload, root=root_bridge)
        if ctx.node != root_node:
            buf.write_region(0, result)
        phase_end(comm, ph)

    # Fig 6 lines 7/10/13: exactly one sync releases the readers.
    ph = phase_begin(comm, "release_sync")
    yield from sync.single(ctx)
    phase_end(comm, ph)
    trace_end(comm, span)
