"""Rank-placement handling for the hybrid collectives (paper §6).

The paper's algorithms assume *SMP-style* placement: consecutive global
ranks fill each node, so a node's contribution to an allgather result is
one contiguous region of the shared buffer.  §6 discusses two remedies
for other placements:

1. **Derived datatypes** — pack/unpack non-contiguous blocks (always
   costs packing time; modelled via ``NetworkSpec.per_byte_packing``).
2. **Node-sorted global rank array** — precompute, once, the permutation
   that lists ranks grouped by node; lay the shared buffer out in that
   *node-major* order, and translate slot indices through the
   permutation when readers want rank-ordered access.

:class:`NodeSortedLayout` implements remedy 2 (the paper's preferred
one); the layout degenerates to the identity for SMP-style placement.
"""

from __future__ import annotations

from repro.machine.placement import Placement

__all__ = ["NodeSortedLayout"]


class NodeSortedLayout:
    """Node-major slot layout of a communicator's ranks.

    Slot *s* of the conceptual global buffer belongs to the rank
    ``rank_of_slot(s)``; rank *r* writes at ``slot_of_rank(r)``.  All
    members of one node occupy consecutive slots, so each node's
    contribution is contiguous — a requirement for the leader's single
    ``MPI_Allgatherv`` in the hybrid exchange.

    Parameters
    ----------
    comm_world_ranks:
        The communicator's members as world ranks, in comm-rank order.
    placement:
        The machine placement mapping world ranks to nodes.
    """

    def __init__(self, comm_world_ranks: tuple[int, ...], placement: Placement):
        self._placement = placement
        n = len(comm_world_ranks)
        # Group comm ranks by node, preserving comm-rank order inside a
        # node; nodes ordered by first appearance in comm-rank order is
        # NOT deterministic across ranks if computed differently -- use
        # ascending node id, which every rank derives identically.
        by_node: dict[int, list[int]] = {}
        for comm_rank, world in enumerate(comm_world_ranks):
            by_node.setdefault(placement.node_of(world), []).append(comm_rank)
        self._nodes = sorted(by_node)
        self._slot_of_rank = [0] * n
        self._rank_of_slot = [0] * n
        slot = 0
        self._node_slot_start: dict[int, int] = {}
        self._node_counts: dict[int, int] = {}
        for node in self._nodes:
            self._node_slot_start[node] = slot
            self._node_counts[node] = len(by_node[node])
            for comm_rank in by_node[node]:
                self._slot_of_rank[comm_rank] = slot
                self._rank_of_slot[slot] = comm_rank
                slot += 1
        self._identity = self._slot_of_rank == list(range(n))

    @property
    def size(self) -> int:
        """Number of ranks in the layout."""
        return len(self._slot_of_rank)

    @property
    def nodes(self) -> list[int]:
        """Participating node ids, ascending (= bridge comm order)."""
        return list(self._nodes)

    @property
    def is_identity(self) -> bool:
        """True for SMP-style placement (slot == rank)."""
        return self._identity

    def slot_of_rank(self, comm_rank: int) -> int:
        """Node-major slot index of *comm_rank*."""
        return self._slot_of_rank[comm_rank]

    def rank_of_slot(self, slot: int) -> int:
        """Comm rank occupying *slot*."""
        return self._rank_of_slot[slot]

    def node_slot_start(self, node: int) -> int:
        """First slot of *node*'s contiguous region."""
        return self._node_slot_start[node]

    def node_count(self, node: int) -> int:
        """Number of ranks of *node* in this layout."""
        return self._node_counts[node]

    def node_counts_in_order(self) -> list[int]:
        """Per-node rank counts in node (bridge) order."""
        return [self._node_counts[n] for n in self._nodes]

    def __repr__(self) -> str:
        kind = "identity" if self._identity else "permuted"
        return f"NodeSortedLayout(size={self.size}, {kind})"
