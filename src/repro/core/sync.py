"""On-node synchronization policies for the hybrid collectives.

The paper (§4, §6) inserts explicit synchronization around the bridge
exchange to guarantee data integrity of the shared window:

* a *pre* sync — leaders wait until all children initialized their
  partitions;
* a *post* sync — children wait until leaders finished the inter-node
  exchange;
* for single-node runs only one sync is needed (the buffer is complete
  once everyone wrote).

Two mechanisms are modelled:

* :class:`BarrierSync` — ``MPI_Barrier`` on the shared-memory
  communicator (the paper's *heavy-weight* default: log2(ppn)
  dissemination rounds of on-node latency).
* :class:`FlagSync` — the *light-weight* shared-flag scheme sketched in
  §6/§7 ([8]): children store to a counter cache line that the leader
  watches; the leader stores an epoch number children wait on.  Cost is
  a couple of cache-line transfers, independent of message size and only
  weakly dependent on ppn.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from repro.simulator import Event

__all__ = ["SyncPolicy", "BarrierSync", "FlagSync"]


class SyncPolicy(ABC):
    """Strategy object: how on-node processes synchronize an epoch."""

    @abstractmethod
    def pre_exchange(self, hybrid):
        """Coroutine run *before* the bridge exchange (all node ranks)."""

    @abstractmethod
    def post_exchange(self, hybrid):
        """Coroutine run *after* the bridge exchange (all node ranks)."""

    @abstractmethod
    def single(self, hybrid):
        """Coroutine for the single-sync cases (one node, or broadcast)."""


class BarrierSync(SyncPolicy):
    """Heavy-weight: MPI_Barrier over the shared-memory communicator."""

    name = "barrier"

    def pre_exchange(self, hybrid):
        yield from hybrid.shm.barrier()

    def post_exchange(self, hybrid):
        yield from hybrid.shm.barrier()

    def single(self, hybrid):
        yield from hybrid.shm.barrier()


class _FlagCell:
    """A shared counter cell with event-based waiters (one per node)."""

    __slots__ = ("value", "waiters")

    def __init__(self) -> None:
        self.value = 0
        self.waiters: list[tuple[int, Event]] = []

    def add(self, delta: int) -> int:
        self.value += delta
        self._wake()
        return self.value

    def store(self, value: int) -> None:
        self.value = value
        self._wake()

    def _wake(self) -> None:
        still = []
        for threshold, ev in self.waiters:
            if self.value >= threshold:
                ev.succeed(self.value)
            else:
                still.append((threshold, ev))
        self.waiters = still

    def reached(self, engine, threshold: int) -> Event:
        ev = Event(engine, name=f"flag>={threshold}")
        if self.value >= threshold:
            ev.succeed(self.value)
        else:
            self.waiters.append((threshold, ev))
        return ev


class FlagSync(SyncPolicy):
    """Light-weight: shared-flag signalling (paper §6 'light-weight means').

    Cost model: every flag store/observed-update is one cache-line
    transfer (``flag_latency`` seconds, default 60 ns on-node).  Children
    increment an arrival counter; the leader waits for ``ppn-1`` arrivals,
    performs the exchange, then stores the epoch number that releases the
    children.  There is no log-factor: pre-sync costs one line transfer
    per child (overlapped), post-sync one leader store observed by each
    child.
    """

    name = "flags"

    def __init__(self, flag_latency: float = 6.0e-8):
        if flag_latency < 0:
            raise ValueError("flag_latency must be non-negative")
        self.flag_latency = flag_latency
        self._cells: dict[Any, dict[str, _FlagCell]] = {}
        self._epochs: dict[Any, int] = {}

    # Each HybridContext gets its own cell namespace, keyed by the shm
    # communicator's shared identity.
    def _cell(self, hybrid, name: str) -> _FlagCell:
        key = hybrid.shm.id
        cells = self._cells.setdefault(key, {})
        cell = cells.get(name)
        if cell is None:
            cell = cells[name] = _FlagCell()
        return cell

    def _next_epoch(self, hybrid, phase: str) -> int:
        key = (hybrid.shm.id, phase, hybrid.shm.rank)
        # Per-rank epoch counters advance in lock-step because every rank
        # executes the same sequence of collective calls.
        mine = self._epochs.get(key, 0) + 1
        self._epochs[key] = mine
        return mine

    def pre_exchange(self, hybrid):
        engine = hybrid.shm.ctx.engine
        epoch = self._next_epoch(hybrid, "pre")
        arrive = self._cell(hybrid, "arrive")
        ppn = hybrid.shm.size
        yield engine.timeout(self.flag_latency)  # publish my write
        if hybrid.is_leader:
            yield arrive.reached(engine, (ppn - 1) * epoch)
        else:
            arrive.add(1)

    def post_exchange(self, hybrid):
        engine = hybrid.shm.ctx.engine
        epoch = self._next_epoch(hybrid, "post")
        release = self._cell(hybrid, "release")
        if hybrid.is_leader:
            yield engine.timeout(self.flag_latency)
            release.store(epoch)
        else:
            yield release.reached(engine, epoch)
            yield engine.timeout(self.flag_latency)  # observe the line

    def single(self, hybrid):
        # One full arrive+release round trip: everyone signals readiness,
        # leader releases.
        yield from self.pre_exchange(hybrid)
        yield from self.post_exchange(hybrid)
