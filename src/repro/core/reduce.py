"""Hybrid allreduce / reduce — extensions in the paper's style.

The paper implements allgather and broadcast and names allreduce among
the "important" collectives (§1); the same one-copy-per-node recipe
applies directly:

1. every rank stores its contribution into a per-rank scratch slot of a
   node-shared window (plain stores, no messages);
2. pre-sync;
3. the leader reduces the node's scratch slots locally (a streaming pass
   over ``ppn·n`` bytes plus the arithmetic — charged through the memory
   and compute models);
4. leaders run the (pure-MPI, tuned) allreduce on the bridge
   communicator;
5. the leader stores the result into the shared result region;
6. post-sync; every rank reads the result in place.

Compared to pure MPI this removes the on-node copy cascade and keeps
one result copy per node; compared to hybrid allgather it adds the
leader-side local reduction, which is why its advantage profile is
flatter (see the ablation benchmark).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.sync import SyncPolicy
from repro.mpi.collectives.reduce import combine
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes, nbytes_of

__all__ = ["hy_allreduce", "hy_reduce"]


def _fold_factor(ctx) -> float:
    """Memory-pass multiplier for the leader's local fold.

    The baseline charge (one contended streaming pass over ``ppn*n``
    bytes) models the classic copy-then-reduce fold, i.e. the
    ``reduce_passes=2`` transports.  A transport that can stream the
    peers' buffers straight through the reduction (PiP direct
    load/store, ``reduce_passes=1``) halves the traffic.
    """
    return ctx.comm.ctx.machine.transport.reduce_passes / 2.0


def _scratch_buffer(ctx, nbytes: int):
    """Coroutine: (cached) scratch window — ppn contribution slots plus
    one result region, all node-local."""
    sizes = [nbytes] * ctx.comm.size
    buf = yield from ctx._alloc(sizes, cache_key=("ar_scratch", nbytes))
    result_buf = yield from ctx._alloc(
        [nbytes] + [0] * (ctx.comm.size - 1),
        cache_key=("ar_result", nbytes),
    )
    return buf, result_buf


def _node_partial(ctx, scratch, nbytes: int, op: ReduceOp) -> Any:
    """Leader-side local reduction over this node's scratch slots."""
    start_slot = scratch.layout.node_slot_start(ctx.node)
    count = scratch.layout.node_count(ctx.node)
    raw = scratch.node_view(np.uint8)
    if raw is None:
        return Bytes(nbytes)
    acc = None
    for slot in range(start_slot, start_slot + count):
        rank = scratch.layout.rank_of_slot(slot)
        seg = scratch.slot_view(rank, np.uint8).view(np.float64)
        acc = seg.copy() if acc is None else combine(acc, seg, op)
    return acc


def hy_allreduce(ctx, contribution: Any, nbytes: int,
                 op: ReduceOp = ReduceOp.SUM,
                 sync: SyncPolicy | None = None) -> Any:
    """Coroutine: hybrid allreduce; returns the result payload.

    *contribution* is this rank's vector (float64 ndarray in data mode,
    anything sized `nbytes` in model mode).  The returned value is the
    node-shared result (ndarray view / :class:`Bytes`).
    """
    if nbytes_of(contribution) != nbytes:
        raise ValueError(
            f"contribution is {nbytes_of(contribution)} B, declared {nbytes} B"
        )
    sync = sync or ctx.default_sync
    scratch, result_buf = yield from _scratch_buffer(ctx, nbytes)

    # Stage 1: store my contribution (plain write into shared memory).
    local = scratch.local_view(np.float64)
    if local is not None and isinstance(contribution, np.ndarray):
        local[:] = np.asarray(contribution, dtype=np.float64).reshape(-1)
    yield from sync.pre_exchange(ctx)

    partial = None
    if ctx.is_leader:
        # Stage 2: local reduction (stream ppn slots through memory).
        ppn = scratch.layout.node_count(ctx.node)
        yield from ctx.comm.ctx.touch(ppn * nbytes * _fold_factor(ctx))
        yield ctx.comm.ctx.compute_flops(ppn * nbytes / 8.0, kind="blas1")
        partial = _node_partial(ctx, scratch, nbytes, op)
        # Stage 3: bridge allreduce among leaders.
        if ctx.multi_node:
            partial = yield from ctx.bridge.allreduce(partial, op)
        # Stage 4: publish the result.
        if isinstance(partial, np.ndarray):
            result_buf.write_region(0, partial.view(np.uint8))
    yield from sync.post_exchange(ctx)
    view = result_buf.region_view(0, nbytes, np.float64)
    if view is not None:
        return view
    return Bytes(nbytes)


def hy_reduce(ctx, contribution: Any, nbytes: int,
              op: ReduceOp = ReduceOp.SUM, root: int = 0,
              sync: SyncPolicy | None = None) -> Any:
    """Coroutine: hybrid reduce to comm rank *root*.

    Same staging as :func:`hy_allreduce` with the bridge step replaced
    by a rooted reduce toward the root's node leader.  Returns the
    result on ranks of the root's node (shared view); None elsewhere.
    """
    if nbytes_of(contribution) != nbytes:
        raise ValueError(
            f"contribution is {nbytes_of(contribution)} B, declared {nbytes} B"
        )
    sync = sync or ctx.default_sync
    placement = ctx.comm.ctx.placement
    root_world = ctx.comm.world_rank_of(root)
    root_node = placement.node_of(root_world)
    scratch, result_buf = yield from _scratch_buffer(ctx, nbytes)

    local = scratch.local_view(np.float64)
    if local is not None and isinstance(contribution, np.ndarray):
        local[:] = np.asarray(contribution, dtype=np.float64).reshape(-1)
    yield from sync.pre_exchange(ctx)

    if ctx.is_leader:
        ppn = scratch.layout.node_count(ctx.node)
        yield from ctx.comm.ctx.touch(ppn * nbytes * _fold_factor(ctx))
        yield ctx.comm.ctx.compute_flops(ppn * nbytes / 8.0, kind="blas1")
        partial = _node_partial(ctx, scratch, nbytes, op)
        if ctx.multi_node:
            root_bridge = ctx.bridge_rank_of_node(root_node)
            partial = yield from ctx.bridge.reduce(partial, op, root=root_bridge)
        if ctx.node == root_node and isinstance(partial, np.ndarray):
            result_buf.write_region(0, partial.view(np.uint8))
    yield from sync.post_exchange(ctx)
    if ctx.node != root_node:
        return None
    view = result_buf.region_view(0, nbytes, np.float64)
    if view is not None:
        return view
    return Bytes(nbytes)
