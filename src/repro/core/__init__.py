"""Hybrid MPI+MPI collectives — the paper's contribution.

This package implements the ICPP'19 approach: collectives that keep
**one copy of replicated data per node** in an MPI-3 shared-memory
window, exchange data across nodes only between per-node *leaders* over
a *bridge communicator*, and synchronize on-node readers with explicit
barriers (or light-weight shared flags).

Public API
----------

* :class:`HybridContext` — one-off setup (paper Fig 4 lines 2-20):
  shared-memory + bridge communicator splitting, window allocation with
  caching.  Build with ``ctx = yield from HybridContext.create(comm)``.
* ``ctx.allgather_buffer(nbytes)`` / ``yield from ctx.allgather(buf)`` —
  hybrid allgather(v) (Fig 4 lines 21-40).
* ``ctx.bcast_buffer(nbytes)`` / ``yield from ctx.bcast(buf, root)`` —
  hybrid broadcast (Fig 6).
* Extensions in the same style: ``allreduce``, ``gather``, ``scatter``,
  ``alltoall``; pipelined large-message bridge exchange
  (:mod:`repro.core.pipeline`, paper §7); non-SMP rank placement support
  via the node-sorted rank array (:mod:`repro.core.placement`, §6).
* Synchronization policies (:mod:`repro.core.sync`): heavy-weight
  :class:`BarrierSync` (the paper's default) and light-weight
  :class:`FlagSync` (§6/§7 discussion).

Example
-------
::

    def program(mpi):
        ctx = yield from HybridContext.create(mpi.world)
        buf = yield from ctx.allgather_buffer(8 * COUNT)
        local = buf.local_view(np.float64)   # my slot, shared storage
        if local is not None:
            local[:] = mpi.world.rank
        yield from ctx.allgather(buf)
        full = buf.node_view(np.float64)     # whole result, zero copies
"""

from repro.core.allgather import hy_allgather, hy_allgatherv
from repro.core.alltoall import hy_alltoall
from repro.core.bcast import hy_bcast
from repro.core.gather import hy_gather, hy_scatter
from repro.core.hierarchy import HybridContext
from repro.core.placement import NodeSortedLayout
from repro.core.reduce import hy_allreduce, hy_reduce
from repro.core.shared_buffer import SharedBuffer
from repro.core.sync import BarrierSync, FlagSync, SyncPolicy

__all__ = [
    "BarrierSync",
    "FlagSync",
    "HybridContext",
    "NodeSortedLayout",
    "SharedBuffer",
    "SyncPolicy",
    "hy_allgather",
    "hy_allgatherv",
    "hy_allreduce",
    "hy_alltoall",
    "hy_bcast",
    "hy_gather",
    "hy_reduce",
    "hy_scatter",
]
