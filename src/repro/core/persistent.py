"""Persistent hybrid collectives (MPI-4-style plans).

The paper stresses that hierarchy splitting, window allocation, and the
displacement bookkeeping of the bridge ``MPI_Allgatherv`` are *one-offs*
amortized across repeated invocations (Fig 4's commentary).  MPI-4
formalizes exactly this with persistent collectives
(``MPI_Allgatherv_init`` + ``MPI_Start``).  :class:`AllgatherPlan` and
:class:`BcastPlan` package the hybrid equivalents: construction does all
the one-off work; :meth:`~AllgatherPlan.start` is the cheap repeated
part.

Example
-------
::

    ctx = yield from HybridContext.create(comm)
    plan = yield from AllgatherPlan.build(ctx, nbytes_per_rank=4096)
    for _ in range(iterations):
        write_my_slot(plan.buf)
        yield from plan.start()
        consume(plan.buf.node_view(np.float64))
"""

from __future__ import annotations

from repro.core.allgather import hy_allgather
from repro.core.bcast import hy_bcast
from repro.core.shared_buffer import SharedBuffer
from repro.core.sync import SyncPolicy

__all__ = ["AllgatherPlan", "BcastPlan"]


class AllgatherPlan:
    """A prepared hybrid allgather: fixed buffer, sync policy, options."""

    __slots__ = ("ctx", "buf", "sync", "pipelined", "chunk_bytes", "starts")

    def __init__(self, ctx, buf: SharedBuffer, sync: SyncPolicy | None,
                 pipelined: bool, chunk_bytes: int):
        self.ctx = ctx
        self.buf = buf
        self.sync = sync
        self.pipelined = pipelined
        self.chunk_bytes = chunk_bytes
        self.starts = 0

    @classmethod
    def build(cls, ctx, nbytes_per_rank: int | None = None,
              nbytes_by_rank: list[int] | None = None,
              sync: SyncPolicy | None = None,
              pipelined: bool = False,
              chunk_bytes: int = 128 * 1024):
        """Coroutine: perform all one-off work and return the plan.

        Pass either ``nbytes_per_rank`` (regular) or ``nbytes_by_rank``
        (irregular).
        """
        if (nbytes_per_rank is None) == (nbytes_by_rank is None):
            raise ValueError(
                "pass exactly one of nbytes_per_rank / nbytes_by_rank"
            )
        if nbytes_per_rank is not None:
            buf = yield from ctx.allgather_buffer(nbytes_per_rank)
        else:
            buf = yield from ctx.allgatherv_buffer(nbytes_by_rank)
        return cls(ctx, buf, sync, pipelined, chunk_bytes)

    def start(self):
        """Coroutine: one execution of the planned allgather."""
        self.starts += 1
        yield from hy_allgather(
            self.ctx, self.buf, sync=self.sync,
            pipelined=self.pipelined, chunk_bytes=self.chunk_bytes,
        )

    def __repr__(self) -> str:
        return (
            f"AllgatherPlan(total={self.buf.total_nbytes}B, "
            f"starts={self.starts})"
        )


class BcastPlan:
    """A prepared hybrid broadcast: fixed buffer/root/sync."""

    __slots__ = ("ctx", "buf", "root", "sync", "starts")

    def __init__(self, ctx, buf: SharedBuffer, root: int,
                 sync: SyncPolicy | None):
        self.ctx = ctx
        self.buf = buf
        self.root = root
        self.sync = sync
        self.starts = 0

    @classmethod
    def build(cls, ctx, nbytes: int, root: int = 0,
              sync: SyncPolicy | None = None):
        """Coroutine: allocate the shared region and return the plan."""
        buf = yield from ctx.bcast_buffer(nbytes)
        return cls(ctx, buf, root, sync)

    def start(self):
        """Coroutine: one execution of the planned broadcast."""
        self.starts += 1
        yield from hy_bcast(self.ctx, self.buf, root=self.root,
                            sync=self.sync)

    def __repr__(self) -> str:
        return (
            f"BcastPlan(total={self.buf.total_nbytes}B, root={self.root}, "
            f"starts={self.starts})"
        )
