"""Contended resources for the simulation engine.

Three primitives cover everything the machine model needs:

* :class:`Resource` — a counting semaphore with FIFO queuing.  Used for
  NIC injection slots and memory-stream slots.
* :class:`BandwidthChannel` — a pipe with finite aggregate bandwidth and a
  bounded number of concurrent streams.  A transfer of ``n`` bytes holds a
  stream slot for ``n / stream_bw`` seconds; when all slots are busy,
  transfers queue FIFO.  This is a deterministic approximation of
  processor-sharing that still produces the right qualitative behaviour:
  throughput degrades once concurrency exceeds the sustainable stream
  count (e.g. on-node memory contention growing with ranks-per-node,
  which is the effect the ICPP'19 paper exploits).
* :class:`TokenBucket` — a rate limiter used by injection-rate models.
"""

from __future__ import annotations

from collections import deque

from repro.simulator.engine import Engine, Event, SimulationError

__all__ = ["Resource", "BandwidthChannel", "TokenBucket"]


class Resource:
    """Counting semaphore with strict FIFO grant order.

    Usage from a process::

        grant = yield res.acquire()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[tuple[Event, int]] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of acquire requests waiting."""
        return len(self._waiters)

    def acquire(self, amount: int = 1) -> Event:
        """Request *amount* units; the returned event fires on grant."""
        if amount < 1 or amount > self.capacity:
            raise ValueError(
                f"acquire({amount}) invalid for capacity {self.capacity}"
            )
        ev = Event(self.engine, name=f"{self.name}.acquire")
        if not self._waiters and self._in_use + amount <= self.capacity:
            self._in_use += amount
            ev.succeed(amount)
        else:
            self._waiters.append((ev, amount))
        return ev

    def release(self, amount: int = 1) -> None:
        """Return *amount* units and grant queued requests FIFO."""
        if amount < 1 or amount > self._in_use:
            raise SimulationError(
                f"release({amount}) with only {self._in_use} in use"
            )
        self._in_use -= amount
        while self._waiters:
            ev, want = self._waiters[0]
            if self._in_use + want > self.capacity:
                break
            self._waiters.popleft()
            self._in_use += want
            ev.succeed(want)


class BandwidthChannel:
    """A shared pipe: aggregate bandwidth split into fixed stream slots.

    Parameters
    ----------
    bandwidth:
        Aggregate bytes/second the channel sustains.
    streams:
        Number of transfers that can proceed concurrently at full
        per-stream rate (``bandwidth / streams``).  Additional transfers
        queue.  ``streams=1`` gives a fully serialized link (a NIC);
        larger values model multi-channel memory systems.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth: float,
        streams: int = 1,
        name: str = "channel",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.streams = int(streams)
        self.name = name
        self._slots = Resource(engine, self.streams, name=f"{name}.slots")
        self.bytes_moved = 0.0
        self.busy_time = 0.0

    @property
    def stream_bandwidth(self) -> float:
        """Bytes/second available to a single transfer."""
        return self.bandwidth / self.streams

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended duration of a transfer of *nbytes*."""
        return nbytes / self.stream_bandwidth

    def transfer(self, nbytes: float) -> "Event":
        """Move *nbytes* through the channel; returns a completion event.

        Implemented as a helper process so callers simply
        ``yield channel.transfer(n)``.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")

        def _xfer():
            yield self._slots.acquire()
            try:
                duration = self.transfer_time(nbytes)
                self.bytes_moved += nbytes
                self.busy_time += duration
                if duration > 0:
                    yield self.engine.timeout(duration)
            finally:
                self._slots.release()
            return nbytes

        return self.engine.spawn(_xfer(), name=f"{self.name}.xfer")

    @property
    def queued(self) -> int:
        """Transfers waiting for a slot."""
        return self._slots.queued

    @property
    def active(self) -> int:
        """Transfers currently in flight."""
        return self._slots.in_use


class TokenBucket:
    """Deterministic token-bucket rate limiter.

    Grants *tokens* at a fixed ``rate`` with burst capacity ``capacity``.
    Used for modelling NIC injection-rate limits on small messages.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        capacity: float,
        name: str = "bucket",
    ):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.engine = engine
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.name = name
        self._tokens = float(capacity)
        self._last = 0.0
        self._queue_release_time = 0.0

    def _refill(self) -> None:
        now = self.engine.now
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def take(self, amount: float = 1.0) -> Event:
        """Consume *amount* tokens, waiting for refill if necessary."""
        if amount <= 0 or amount > self.capacity:
            raise ValueError(f"take({amount}) invalid for capacity {self.capacity}")

        def _take():
            self._refill()
            if self._tokens >= amount:
                self._tokens -= amount
                return 0.0
            deficit = amount - self._tokens
            self._tokens = 0.0
            wait = deficit / self.rate
            # Serialize queued takers deterministically.
            start = max(self.engine.now, self._queue_release_time)
            release = start + wait
            self._queue_release_time = release
            yield self.engine.timeout(release - self.engine.now)
            self._last = self.engine.now
            return wait

        return self.engine.spawn(_take(), name=f"{self.name}.take")
