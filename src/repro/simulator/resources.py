"""Contended resources for the simulation engine.

Three primitives cover everything the machine model needs:

* :class:`Resource` — a counting semaphore with FIFO queuing.  Used for
  NIC injection slots and memory-stream slots.
* :class:`BandwidthChannel` — a pipe with finite aggregate bandwidth and a
  bounded number of concurrent streams.  A transfer of ``n`` bytes holds a
  stream slot for ``n / stream_bw`` seconds; when all slots are busy,
  transfers queue FIFO.  This is a deterministic approximation of
  processor-sharing that still produces the right qualitative behaviour:
  throughput degrades once concurrency exceeds the sustainable stream
  count (e.g. on-node memory contention growing with ranks-per-node,
  which is the effect the ICPP'19 paper exploits).
* :class:`TokenBucket` — a rate limiter used by injection-rate models.
"""

from __future__ import annotations

from collections import deque

from repro.simulator.engine import (
    _TRIGGERED,
    Engine,
    Event,
    Process,
    SimulationError,
)

__all__ = ["Resource", "BandwidthChannel", "TokenBucket"]


class Resource:
    """Counting semaphore with strict FIFO grant order.

    Usage from a process::

        grant = yield res.acquire()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, engine: Engine, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._acquire_name = name + ".acquire"
        self._in_use = 0
        self._waiters: deque[tuple[Event, int]] = deque()

    @property
    def in_use(self) -> int:
        """Units currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of acquire requests waiting."""
        return len(self._waiters)

    def acquire(self, amount: int = 1) -> Event:
        """Request *amount* units; the returned event fires on grant."""
        if amount < 1 or amount > self.capacity:
            raise ValueError(
                f"acquire({amount}) invalid for capacity {self.capacity}"
            )
        engine = self.engine
        ev = Event(engine, name=self._acquire_name)
        if not self._waiters and self._in_use + amount <= self.capacity:
            self._in_use += amount
            # Inlined Event.succeed (the event is fresh, so the
            # already-triggered check cannot fire) — one grant per
            # simulated transfer makes this a hot path.
            ev._state = _TRIGGERED
            ev._value = amount
            if engine.fast_path:
                engine._deferred.append(ev)
            else:
                engine._push(engine.now, ev)
        else:
            self._waiters.append((ev, amount))
        return ev

    def release(self, amount: int = 1) -> None:
        """Return *amount* units and grant queued requests FIFO."""
        if amount < 1 or amount > self._in_use:
            raise SimulationError(
                f"release({amount}) with only {self._in_use} in use"
            )
        self._in_use -= amount
        waiters = self._waiters
        while waiters:
            ev, want = waiters[0]
            if self._in_use + want > self.capacity:
                break
            waiters.popleft()
            self._in_use += want
            ev._state = _TRIGGERED
            ev._value = want
            engine = self.engine
            if engine.fast_path:
                engine._deferred.append(ev)
            else:
                engine._push(engine.now, ev)


class BandwidthChannel:
    """A shared pipe: aggregate bandwidth split into fixed stream slots.

    Parameters
    ----------
    bandwidth:
        Aggregate bytes/second the channel sustains.
    streams:
        Number of transfers that can proceed concurrently at full
        per-stream rate (``bandwidth / streams``).  Additional transfers
        queue.  ``streams=1`` gives a fully serialized link (a NIC);
        larger values model multi-channel memory systems.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth: float,
        streams: int = 1,
        name: str = "channel",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.streams = int(streams)
        self.name = name
        self._slots = Resource(engine, self.streams, name=f"{name}.slots")
        self._xfer_name = name + ".xfer"
        self._stream_bw = self.bandwidth / self.streams
        self.bytes_moved = 0.0
        self.busy_time = 0.0

    @property
    def stream_bandwidth(self) -> float:
        """Bytes/second available to a single transfer."""
        return self._stream_bw

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended duration of a transfer of *nbytes*."""
        return nbytes / self._stream_bw

    def transfer(self, nbytes: float) -> "Event":
        """Move *nbytes* through the channel; returns a completion event.

        Hand-rolled state machine (``yield channel.transfer(n)`` from the
        caller's side, as before).  The queue entries it creates — start
        call, grant event, optional pause, completion event — are exactly
        those the equivalent generator process used to create, in the
        same order, so ``event_count`` and all timings are unchanged;
        only the per-transfer :class:`Process`/generator-frame overhead
        is gone (one transfer per simulated message copy makes this one
        of the hottest allocation sites in the simulator).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        engine = self.engine
        done = Event(engine, self._xfer_name)

        def finished(_ev: Event) -> None:
            self._slots.release()
            done.succeed(nbytes)

        def granted(ev: Event) -> None:
            duration = nbytes / self._stream_bw
            self.bytes_moved += nbytes
            self.busy_time += duration
            if duration > 0:
                # Fresh (or pooled-and-reset) pause events have no
                # callback list yet — install ours directly.
                engine.pause(duration).callbacks = [finished]
            else:
                finished(ev)

        def start() -> None:
            # The grant event was created by acquire() a moment ago: it
            # is pending or just-triggered, never processed, and has no
            # subscribers yet.
            self._slots.acquire().callbacks = [granted]

        engine._schedule_call(start)
        return done

    @property
    def queued(self) -> int:
        """Transfers waiting for a slot."""
        return self._slots.queued

    @property
    def active(self) -> int:
        """Transfers currently in flight."""
        return self._slots.in_use


class TokenBucket:
    """Deterministic token-bucket rate limiter.

    Grants *tokens* at a fixed ``rate`` with burst capacity ``capacity``.
    Used for modelling NIC injection-rate limits on small messages.
    """

    def __init__(
        self,
        engine: Engine,
        rate: float,
        capacity: float,
        name: str = "bucket",
    ):
        if rate <= 0 or capacity <= 0:
            raise ValueError("rate and capacity must be positive")
        self.engine = engine
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.name = name
        self._take_name = name + ".take"
        self._tokens = float(capacity)
        self._last = 0.0
        self._queue_release_time = 0.0

    def _refill(self) -> None:
        now = self.engine.now
        self._tokens = min(
            self.capacity, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def take(self, amount: float = 1.0) -> Event:
        """Consume *amount* tokens, waiting for refill if necessary."""
        if amount <= 0 or amount > self.capacity:
            raise ValueError(f"take({amount}) invalid for capacity {self.capacity}")

        def _take():
            self._refill()
            if self._tokens >= amount:
                self._tokens -= amount
                return 0.0
            deficit = amount - self._tokens
            self._tokens = 0.0
            wait = deficit / self.rate
            # Serialize queued takers deterministically.
            start = max(self.engine.now, self._queue_release_time)
            release = start + wait
            self._queue_release_time = release
            yield self.engine.pause(release - self.engine.now)
            self._last = self.engine.now
            return wait

        return Process(self.engine, _take(), self._take_name)
