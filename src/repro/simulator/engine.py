"""Core discrete-event engine: virtual clock, events, and processes.

The engine executes *processes* — plain Python generators — in virtual
time.  A process suspends by ``yield``-ing a waitable (an :class:`Event`,
another :class:`Process`, or a composite :class:`AllOf`/:class:`AnyOf`)
and is resumed when that waitable triggers.  The value the waitable
carries is sent back into the generator, so simulated blocking calls read
naturally::

    def worker(eng):
        yield eng.timeout(1.5)          # sleep in virtual time
        value = yield some_event        # wait for a signal
        ...

Design notes
------------
* **Determinism.**  The ready queue is a binary heap keyed on
  ``(time, seq)`` where ``seq`` is a global insertion counter, so
  simultaneous events always fire in schedule order.  Re-running the same
  program yields the identical trace — every layer above relies on this,
  up to the observability span streams (:mod:`repro.trace`), which the
  tests require to be *bit-identical* across re-runs.
* **Failure propagation.**  An event may *fail* with an exception; waiting
  processes get the exception thrown at the yield point, which makes
  simulated error paths testable.
* **Deadlock detection.**  :meth:`Engine.run` raises
  :class:`DeadlockError` if live processes remain but no event is
  scheduled — the classic symptom of a mismatched send/recv or a barrier
  that not everyone entered.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from typing import Any, Callable

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlockError",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when live processes remain but no event can ever fire.

    The message lists the stuck processes to aid debugging of mismatched
    communication patterns (e.g. a receive with no matching send).
    """

    def __init__(self, stuck: list["Process"]):
        self.stuck = stuck
        names = ", ".join(p.name for p in stuck[:8])
        more = "" if len(stuck) <= 8 else f" (+{len(stuck) - 8} more)"
        super().__init__(
            f"deadlock: {len(stuck)} process(es) blocked with empty event "
            f"queue: {names}{more}"
        )


class Interrupt(Exception):
    """Thrown into a process that is interrupted via :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled for callback processing
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, after which its callbacks run (at the current virtual
    time) and any process yielding on it resumes.  Events may be waited on
    after they have triggered — the waiter resumes immediately with the
    stored value.
    """

    __slots__ = ("engine", "callbacks", "_state", "_value", "_exc", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._state = _PENDING
        self._value: Any = None
        self._exc: BaseException | None = None
        self.name = name

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (raises if the event failed or is pending)."""
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._state = _TRIGGERED
        self._value = value
        self.engine._queue_triggered(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters get *exc* thrown at them."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._exc = exc
        self.engine._queue_triggered(self)
        return self

    # -- wiring ----------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed.

        If the event has already been processed the callback is queued to
        run at the current virtual time (never synchronously), preserving
        run-to-completion semantics for the caller.
        """
        if self._state == _PROCESSED:
            self.engine._schedule_call(lambda: fn(self))
        else:
            assert self.callbacks is not None
            self.callbacks.append(fn)

    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "done"}
        return f"<Event {self.name!r} {state[self._state]}>"


class AllOf:
    """Composite waitable: resumes when *all* child events have triggered.

    The resume value is the list of child values in input order.  If any
    child fails, the waiter fails with that child's exception (first
    failure wins).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def _subscribe(self, engine: "Engine", done: Event) -> None:
        remaining = len(self.events)
        if remaining == 0:
            done.succeed([])
            return
        state = {"left": remaining, "failed": False}

        def on_child(ev: Event) -> None:
            if state["failed"] or done.triggered:
                return
            if not ev.ok:
                state["failed"] = True
                done.fail(ev._exc)  # type: ignore[arg-type]
                return
            state["left"] -= 1
            if state["left"] == 0:
                done.succeed([e._value for e in self.events])

        for ev in self.events:
            ev.add_callback(on_child)


class AnyOf:
    """Composite waitable: resumes when the *first* child event triggers.

    The resume value is a ``(index, value)`` tuple identifying which child
    fired.  A failing first child propagates its exception.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")

    def _subscribe(self, engine: "Engine", done: Event) -> None:
        def on_child(ev: Event) -> None:
            if done.triggered:
                return
            if not ev.ok:
                done.fail(ev._exc)  # type: ignore[arg-type]
                return
            done.succeed((self.events.index(ev), ev._value))

        for ev in self.events:
            ev.add_callback(on_child)


class Process(Event):
    """A generator-driven simulated process.

    A :class:`Process` is itself an :class:`Event` that triggers when the
    generator returns (success value = the generator's return value) or
    raises (failure).  This lets processes wait on each other::

        child = eng.spawn(worker())
        result = yield child
    """

    __slots__ = ("generator", "_waiting_on", "_alive")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        super().__init__(engine, name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Event | None = None
        self._alive = True
        engine._live_processes.add(self)
        engine._schedule_call(lambda: self._step(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            return
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from whatever we were waiting on; resume with Interrupt.
            self._waiting_on = None
        self.engine._schedule_call(
            lambda: self._step(None, Interrupt(cause)) if self._alive else None
        )

    # -- driver ----------------------------------------------------------
    def _step(self, send_value: Any, throw_exc: BaseException | None) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self.generator.throw(throw_exc)
            else:
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            self._finish_fail(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if isinstance(target, (AllOf, AnyOf)):
            gate = Event(self.engine, name=f"{self.name}:gate")
            target._subscribe(self.engine, gate)
            target = gate
        if not isinstance(target, Event):
            self._finish_fail(
                SimulationError(
                    f"process {self.name!r} yielded non-waitable {target!r}"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume_from)

    def _resume_from(self, ev: Event) -> None:
        if not self._alive or self._waiting_on is not ev:
            return  # stale callback (e.g. after interrupt)
        if ev.ok:
            self._step(ev._value, None)
        else:
            self._step(None, ev._exc)

    def _finish_ok(self, value: Any) -> None:
        self._alive = False
        self.engine._live_processes.discard(self)
        self.succeed(value)

    def _finish_fail(self, exc: BaseException) -> None:
        self._alive = False
        self.engine._live_processes.discard(self)
        self.fail(exc)

    def _process(self) -> None:
        # A failing process with no waiters at processing time is a lost
        # crash — surface it.  (Waiters subscribing between the failure
        # and this tick still count.)
        had_waiters = bool(self.callbacks)
        super()._process()
        if self._exc is not None and not had_waiters:
            self.engine._unhandled.append((self, self._exc))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} alive={self._alive}>"


class Engine:
    """The virtual-time event loop.

    Attributes
    ----------
    now:
        Current virtual time (seconds by convention throughout
        :mod:`repro`; the engine itself is unit-agnostic).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live_processes: set[Process] = set()
        self._unhandled: list[tuple[Process, BaseException]] = []
        self._event_count = 0

    # -- construction helpers -------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that triggers *delay* virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = Event(self, name or f"timeout({delay:g})")
        ev._state = _TRIGGERED
        ev._value = value
        self._push(self.now + delay, ev)
        return ev

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process executing *generator*."""
        if not isinstance(generator, Generator):
            raise TypeError(
                "spawn() expects a generator (did you forget to call the "
                "generator function?)"
            )
        return Process(self, generator, name)

    # -- scheduling internals --------------------------------------------
    def _push(self, time: float, ev: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, ev))

    def _queue_triggered(self, ev: Event) -> None:
        self._push(self.now, ev)

    def _schedule_call(self, fn: Callable[[], None]) -> None:
        ev = Event(self, name="call")
        ev._state = _TRIGGERED
        ev.add_callback(lambda _ev: fn())
        self._push(self.now, ev)

    # -- run loop ----------------------------------------------------------
    def step(self) -> None:
        """Process one scheduled event."""
        time, _seq, ev = heapq.heappop(self._heap)
        if time < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = time
        self._event_count += 1
        ev._process()
        if self._unhandled:
            proc, exc = self._unhandled[0]
            raise SimulationError(
                f"unhandled exception in process {proc.name!r}"
            ) from exc

    def run(self, until: float | None = None) -> None:
        """Run until the event queue drains (or virtual time *until*).

        Raises
        ------
        DeadlockError
            If processes are still alive when the queue drains.
        SimulationError
            If a process with no waiter raises an exception.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until
        if self._live_processes:
            raise DeadlockError(sorted(self._live_processes, key=lambda p: p.name))

    @property
    def event_count(self) -> int:
        """Total number of events processed so far (a determinism probe)."""
        return self._event_count
