"""Core discrete-event engine: virtual clock, events, and processes.

The engine executes *processes* — plain Python generators — in virtual
time.  A process suspends by ``yield``-ing a waitable (an :class:`Event`,
another :class:`Process`, or a composite :class:`AllOf`/:class:`AnyOf`)
and is resumed when that waitable triggers.  The value the waitable
carries is sent back into the generator, so simulated blocking calls read
naturally::

    def worker(eng):
        yield eng.timeout(1.5)          # sleep in virtual time
        value = yield some_event        # wait for a signal
        ...

Design notes
------------
* **Determinism.**  The ready queue is a binary heap keyed on
  ``(time, seq)`` where ``seq`` is a global insertion counter, so
  simultaneous events always fire in schedule order.  Re-running the same
  program yields the identical trace — every layer above relies on this,
  up to the observability span streams (:mod:`repro.trace`), which the
  tests require to be *bit-identical* across re-runs.
* **Tick grid / translation invariance.**  Every scheduled delay is
  snapped to an integer number of :data:`TICK`-second ticks (2**-50 s,
  ~0.9 femtoseconds) and added to the clock in the *tick domain*, where
  float arithmetic is exact for virtual times below eight seconds.  The
  virtual interval consumed by a deterministic program fragment is then
  independent of the absolute time at which it starts — the property the
  collective replay cache (:mod:`repro.mpi.collectives.replay`) relies on
  to re-emit recorded outcomes at a later clock value *bit-identically*.
* **Failure propagation.**  An event may *fail* with an exception; waiting
  processes get the exception thrown at the yield point, which makes
  simulated error paths testable.
* **Deadlock detection.**  :meth:`Engine.run` raises
  :class:`DeadlockError` if live processes remain but no event is
  scheduled — the classic symptom of a mismatched send/recv or a barrier
  that not everyone entered.
"""

from __future__ import annotations

import gc
import heapq
from math import ceil as _ceil
from collections import deque
from collections.abc import Generator, Iterable
from types import GeneratorType
from typing import Any, Callable

__all__ = [
    "AllOf",
    "AnyOf",
    "DeadlockError",
    "ENGINE_VERSION",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "TICK",
]

#: Version of the engine's *virtual-time semantics*.  Bump whenever a
#: change alters event ordering, event counts, or charged latencies —
#: the content-addressed result cache (:mod:`repro.bench.sweep`) folds
#: this into every cache key, so cached simulation results invalidate
#: automatically when the semantics move.  Pure wall-clock optimizations
#: that keep the event stream bit-identical (see docs/performance.md)
#: do NOT bump it.
ENGINE_VERSION = "6.0"

#: Virtual-time grid in seconds.  All scheduled times are integer
#: multiples of this tick; see the "Tick grid" design note above.  At
#: 2**-50 s the grid is ~12 orders of magnitude below a nanosecond, so
#: quantization is far inside the noise floor of any modeled latency,
#: while times up to eight virtual seconds stay exactly representable.
TICK = 2.0 ** -50
_INV_TICK = 2.0 ** 50


class SimulationError(RuntimeError):
    """Base class for errors raised by the simulation engine."""


class DeadlockError(SimulationError):
    """Raised when live processes remain but no event can ever fire.

    The message lists the stuck processes to aid debugging of mismatched
    communication patterns (e.g. a receive with no matching send).
    """

    def __init__(self, stuck: list["Process"]):
        self.stuck = stuck
        names = ", ".join(p.name for p in stuck[:8])
        more = "" if len(stuck) <= 8 else f" (+{len(stuck) - 8} more)"
        super().__init__(
            f"deadlock: {len(stuck)} process(es) blocked with empty event "
            f"queue: {names}{more}"
        )


class Interrupt(Exception):
    """Thrown into a process that is interrupted via :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled for callback processing
_PROCESSED = 2  # callbacks have run
_CANCELLED = 3  # cancelled before processing; drain loops skip it


class Event:
    """A one-shot occurrence in virtual time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it, after which its callbacks run (at the current virtual
    time) and any process yielding on it resumes.  Events may be waited on
    after they have triggered — the waiter resumes immediately with the
    stored value.
    """

    __slots__ = (
        "engine", "callbacks", "_state", "_value", "_exc", "name", "_poolable",
    )

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        # Lazily created: None both before the first subscriber (most
        # events never get more than one, many get none) and after
        # processing.  ``_state`` — not ``callbacks`` — distinguishes
        # the two.
        self.callbacks: list[Callable[[Event], None]] | None = None
        self._state = _PENDING
        self._value: Any = None
        self._exc: BaseException | None = None
        self.name = name
        self._poolable = False

    # -- inspection ------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value (raises if the event failed or is pending)."""
        if not self.triggered:
            raise SimulationError(f"event {self.name!r} has no value yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering *value* to waiters."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._state = _TRIGGERED
        self._value = value
        # Inlined _queue_triggered: succeed() fires once per message event
        # in the hot loops.
        engine = self.engine
        if engine.fast_path:
            engine._defer(self)
        else:
            engine._push(engine.now, self)
        return self

    def cancel(self) -> None:
        """Cancel the event before its callbacks run.

        Intended for scheduled-but-unfired :meth:`Engine.timeout` events
        (e.g. a watchdog that did not trip).  The queue entry is left in
        place but flagged, the drain loops skip it without processing
        (it does not count toward :attr:`Engine.event_count`), and the
        engine compacts the heap once cancelled entries dominate, so
        repeated timeout/cancel cycles keep the heap bounded.  Waiters
        subscribed to a cancelled event are never resumed — cancel only
        events nobody (left) waits on.  No-op once processed.
        """
        state = self._state
        if state == _TRIGGERED:
            self._state = _CANCELLED
            self.engine._note_cancelled()
        elif state == _PENDING:
            self._state = _CANCELLED

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters get *exc* thrown at them."""
        if self._state != _PENDING:
            raise SimulationError(f"event {self.name!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = _TRIGGERED
        self._exc = exc
        engine = self.engine
        if engine.fast_path:
            engine._defer(self)
        else:
            engine._push(engine.now, self)
        return self

    # -- wiring ----------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event is processed.

        If the event has already been processed the callback is queued to
        run at the current virtual time (never synchronously), preserving
        run-to-completion semantics for the caller.
        """
        cbs = self.callbacks
        if cbs is None:
            if self._state != _PROCESSED:
                self.callbacks = [fn]
            else:  # already processed: run at current time, async
                self.engine._schedule_call(lambda: fn(self))
        else:
            cbs.append(fn)

    def _process(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "done"}
        return f"<Event {self.name!r} {state[self._state]}>"


class AllOf:
    """Composite waitable: resumes when *all* child events have triggered.

    The resume value is the list of child values in input order.  If any
    child fails, the waiter fails with that child's exception (first
    failure wins).
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def _subscribe(self, engine: "Engine", done: Event) -> None:
        remaining = len(self.events)
        if remaining == 0:
            done.succeed([])
            return
        left = remaining
        failed = False

        def on_child(ev: Event) -> None:
            nonlocal left, failed
            if failed or done._state != _PENDING:
                return
            if ev._exc is not None:
                failed = True
                done.fail(ev._exc)
                return
            left -= 1
            if left == 0:
                done.succeed([e._value for e in self.events])

        for ev in self.events:
            cbs = ev.callbacks
            if cbs is None:
                if ev._state != _PROCESSED:
                    ev.callbacks = [on_child]
                else:  # already processed
                    ev.add_callback(on_child)
            else:
                cbs.append(on_child)


class AnyOf:
    """Composite waitable: resumes when the *first* child event triggers.

    The resume value is a ``(index, value)`` tuple identifying which child
    fired.  A failing first child propagates its exception.
    """

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")

    def _subscribe(self, engine: "Engine", done: Event) -> None:
        # The winning index is fixed per subscription (one closure per
        # position) rather than recovered via ``events.index(ev)``: the
        # scan was O(n) per wakeup and always reported the *first*
        # occurrence when the same event was listed twice.
        def subscribe_at(index: int, ev: Event) -> None:
            def on_child(ev: Event) -> None:
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev._exc)  # type: ignore[arg-type]
                    return
                done.succeed((index, ev._value))

            ev.add_callback(on_child)

        for index, ev in enumerate(self.events):
            subscribe_at(index, ev)


class Process(Event):
    """A generator-driven simulated process.

    A :class:`Process` is itself an :class:`Event` that triggers when the
    generator returns (success value = the generator's return value) or
    raises (failure).  This lets processes wait on each other::

        child = eng.spawn(worker())
        result = yield child
    """

    __slots__ = ("generator", "_waiting_on", "_alive", "_resume_cb")

    def __init__(self, engine: "Engine", generator: Generator, name: str = ""):
        # Slots are assigned inline (not via Event.__init__): processes are
        # created per message transfer in the hot paths.
        self.engine = engine
        self.callbacks = None
        self._state = _PENDING
        self._value = None
        self._exc = None
        self._poolable = False
        self.name = name or getattr(generator, "__name__", "process")
        self.generator = generator
        self._waiting_on: Event | None = None
        self._alive = True
        # One bound method for the lifetime of the process: registered on
        # every waited-on event and removable by identity on interrupt.
        self._resume_cb = self._resume_from
        engine._live_processes.add(self)
        if engine.fast_path:
            engine._defer(self._first_step)
        else:
            engine._schedule_call(self._first_step)

    def _first_step(self) -> None:
        # Fused initial advance (same shape as _resume_from): one frame
        # for the first generator.send and the first wait subscription.
        # One call per spawned process — at paper scale that is one per
        # simulated message transfer.
        if not self._alive:
            return
        try:
            target = self.generator.send(None)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            self._finish_fail(exc)
            return
        if type(target) is Event or isinstance(target, Event):
            self._waiting_on = target
            cbs = target.callbacks
            if cbs is None:
                if target._state != _PROCESSED:
                    target.callbacks = [self._resume_cb]
                else:  # already processed: resume at current time
                    cb = self._resume_cb
                    self.engine._schedule_call(lambda: cb(target))
            else:
                cbs.append(self._resume_cb)
            return
        self._wait_on(target)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if not self._alive:
            return
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from whatever we were waiting on; resume with Interrupt.
            # The callback must come off the old target's list too, or every
            # interrupt would leave a dead entry behind for the rest of the
            # target's life (unbounded growth on long-lived events).
            self._waiting_on = None
            callbacks = target.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._resume_cb)
                except ValueError:  # pragma: no cover - already detached
                    pass
        self.engine._schedule_call(
            lambda: self._step(None, Interrupt(cause)) if self._alive else None
        )

    # -- driver ----------------------------------------------------------
    def _step(self, send_value: Any, throw_exc: BaseException | None) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        try:
            if throw_exc is not None:
                target = self.generator.throw(throw_exc)
            else:
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            self._finish_fail(exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        # Plain events (and processes) are the overwhelmingly common yield
        # target — test for them first.
        if isinstance(target, Event):
            self._waiting_on = target
            cbs = target.callbacks
            if cbs is None:
                if target._state != _PROCESSED:
                    target.callbacks = [self._resume_cb]
                else:  # already processed: resume at current time
                    cb = self._resume_cb
                    self.engine._schedule_call(lambda: cb(target))
            else:
                cbs.append(self._resume_cb)
            return
        if isinstance(target, (AllOf, AnyOf)):
            gate = Event(self.engine, name="gate")
            target._subscribe(self.engine, gate)
            self._waiting_on = gate
            gate.add_callback(self._resume_cb)
            return
        self._finish_fail(
            SimulationError(
                f"process {self.name!r} yielded non-waitable {target!r}"
            )
        )

    def _resume_from(self, ev: Event) -> None:
        # Fused resume path: the bodies of _step/_wait_on/add_callback in
        # one frame.  One call per processed event with a waiter — the
        # hottest code in the simulator; the general versions above remain
        # for first steps, interrupts, and composite targets.
        if not self._alive or self._waiting_on is not ev:
            return  # stale callback (e.g. after interrupt)
        self._waiting_on = None
        try:
            if ev._exc is None:
                target = self.generator.send(ev._value)
            else:
                target = self.generator.throw(ev._exc)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate into event
            self._finish_fail(exc)
            return
        if type(target) is Event or isinstance(target, Event):
            self._waiting_on = target
            cbs = target.callbacks
            if cbs is None:
                if target._state != _PROCESSED:
                    target.callbacks = [self._resume_cb]
                else:  # already processed: resume at current time
                    cb = self._resume_cb
                    self.engine._schedule_call(lambda: cb(target))
            else:
                cbs.append(self._resume_cb)
            return
        self._wait_on(target)

    def _finish_ok(self, value: Any) -> None:
        self._alive = False
        engine = self.engine
        engine._live_processes.discard(self)
        # Drop the cached bound method: it closes the Process->method->
        # Process reference cycle, letting refcounting (not the cyclic GC)
        # reclaim finished processes.
        self._resume_cb = None
        # Inlined succeed() — the already-triggered check cannot fire (a
        # process event triggers exactly once, here).
        self._state = _TRIGGERED
        self._value = value
        if engine.fast_path:
            engine._defer(self)
        else:
            engine._push(engine.now, self)

    def _finish_fail(self, exc: BaseException) -> None:
        self._alive = False
        engine = self.engine
        engine._live_processes.discard(self)
        self._resume_cb = None
        self._state = _TRIGGERED
        self._exc = exc
        if engine.fast_path:
            engine._defer(self)
        else:
            engine._push(engine.now, self)

    def _process(self) -> None:
        # A failing process with no waiters at processing time is a lost
        # crash — surface it.  (Waiters subscribing between the failure
        # and this tick still count.)  Inlines Event._process.
        self._state = _PROCESSED
        callbacks = self.callbacks
        self.callbacks = None
        if callbacks:
            for fn in callbacks:
                fn(self)
        elif self._exc is not None:
            self.engine._unhandled.append((self, self._exc))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} alive={self._alive}>"


class Engine:
    """The virtual-time event loop.

    Attributes
    ----------
    now:
        Current virtual time (seconds by convention throughout
    :mod:`repro`; the engine itself is unit-agnostic).

    Scheduling has two equivalent implementations selected by
    ``fast_path`` (default on):

    * the *legacy* path keeps every entry — including the throwaway
      ``call`` events behind :meth:`_schedule_call` — on the ``(time,
      seq)`` binary heap;
    * the *fast* path keeps a plain FIFO of everything scheduled *at the
      current time* and only uses the heap for entries in the strict
      future.  Deferred calls are stored as bare callables, so resuming
      a process or running a queued callback allocates no
      :class:`Event` at all.

    The fast path needs no per-entry sequence numbers: virtual time only
    advances (via the heap) once the FIFO is empty, so every heap entry
    that is due at the current time was necessarily scheduled *before*
    any entry currently in the FIFO and therefore always precedes it in
    ``(time, seq)`` order.  Heap entries keep the seq tiebreak among
    themselves.  Both paths process entries in exactly the same
    ``(time, seq)`` order, so :attr:`event_count`, every virtual
    timestamp, and the observability span streams are bit-identical
    between them (the equivalence tests assert this on the paper-figure
    configs).
    """

    def __init__(self, fast_path: bool = True) -> None:
        self.now: float = 0.0
        self.fast_path = fast_path
        self._heap: list[tuple[float, int, Event]] = []
        #: Same-time FIFO (fast path): bare Events or callables.
        #: Invariant: every entry was scheduled at the *current* time, so
        #: the queue must drain before virtual time may advance.
        self._deferred: deque[Any] = deque()
        #: Bound-method cache for the hottest operation in the simulator
        #: (one deque append per scheduled entry).
        self._defer = self._deferred.append
        self._pause_pool: list[Event] = []
        self._seq = 0
        self._live_processes: set[Process] = set()
        self._unhandled: list[tuple[Process, BaseException]] = []
        self._event_count = 0
        #: Cancelled-but-still-heap-resident entries (lazy deletion).
        self._cancelled = 0
        #: One-shot callbacks to run just before virtual time next
        #: advances (or the queue drains).  Identity is stable: the run
        #: loop caches this list object.
        self._advance_hooks: list[Callable[[], None]] = []

    # -- construction helpers -------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def qtime(self, delay: float) -> float:
        """Grid-exact absolute time *delay* seconds from now.

        This is the arithmetic :meth:`timeout`/:meth:`pause` use: the
        delay is rounded *up* to whole ticks (a timeout never fires before
        its nominal delay) and the addition happens in the tick
        domain, so the resulting interval is a pure function of *delay*
        (never of the current absolute time).  Use it when storing an
        absolute deadline that later scheduling must hit exactly.
        """
        return (self.now * _INV_TICK + _ceil(delay * _INV_TICK)) * TICK

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Event:
        """An event that triggers *delay* virtual seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = Event(self, name or f"timeout({delay:g})")
        ev._state = _TRIGGERED
        ev._value = value
        self._push((self.now * _INV_TICK + _ceil(delay * _INV_TICK)) * TICK, ev)
        return ev

    def pause(self, delay: float, value: Any = None) -> Event:
        """A pooled :meth:`timeout` for internal hot loops.

        The returned event MUST be yielded immediately and never stored:
        it is recycled into a free list the moment it is processed, so a
        held reference would observe an unrelated later pause.  Public
        code should keep using :meth:`timeout`, whose events are safe to
        retain (e.g. to read ``.value`` afterwards).
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        pool = self._pause_pool
        if pool:
            ev = pool.pop()
            # callbacks is already None (reset when the event processed)
            ev._state = _TRIGGERED
            ev._value = value
            ev._exc = None
        else:
            ev = Event(self, name="pause")
            ev._state = _TRIGGERED
            ev._value = value
            if self.fast_path:
                ev._poolable = True
        time = (self.now * _INV_TICK + _ceil(delay * _INV_TICK)) * TICK
        if self.fast_path and time <= self.now:
            self._defer(ev)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (time, self._seq, ev))
        return ev

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process executing *generator*."""
        # Exact-type check first: the ABC isinstance goes through
        # __instancecheck__ and is measurably slower in the hot paths.
        if type(generator) is not GeneratorType and not isinstance(
            generator, Generator
        ):
            raise TypeError(
                "spawn() expects a generator (did you forget to call the "
                "generator function?)"
            )
        return Process(self, generator, name)

    # -- scheduling internals --------------------------------------------
    def _push(self, time: float, ev: Event) -> None:
        if self.fast_path and time <= self.now:
            self._defer(ev)
        else:
            self._seq += 1
            heapq.heappush(self._heap, (time, self._seq, ev))

    def _queue_triggered(self, ev: Event) -> None:
        if self.fast_path:
            self._defer(ev)
        else:
            self._push(self.now, ev)

    def _schedule_call(self, fn: Callable[[], None]) -> None:
        if self.fast_path:
            self._defer(fn)
        else:
            ev = Event(self, name="call")
            ev._state = _TRIGGERED
            ev.add_callback(lambda _ev: fn())
            self._push(self.now, ev)

    def _note_cancelled(self) -> None:
        # Lazy deletion bookkeeping: once cancelled entries are the
        # majority of a non-trivial heap, rebuild it in place (the run
        # loop holds the list object in a local).
        self._cancelled += 1
        heap = self._heap
        if self._cancelled >= 64 and self._cancelled * 2 >= len(heap):
            heap[:] = [e for e in heap if e[2]._state != _CANCELLED]
            heapq.heapify(heap)
            self._cancelled = 0

    def on_time_advance(self, fn: Callable[[], None]) -> None:
        """Run *fn* once, just before virtual time next advances.

        The hook fires when every entry scheduled at the current time has
        been processed — either because the next heap entry lies strictly
        in the future or because the queue drained.  It may schedule new
        work at the current time (processed before time moves) or in the
        future.  Hooks are one-shot and run in registration order; a hook
        that re-registers itself without scheduling work is an error (the
        run loop would spin at the same timestamp).

        The collective replay layer uses this as its decision point: all
        ranks that entered a dispatch at the same timestamp have parked
        by the time the hook fires, so arrival offsets are known exactly.
        """
        self._advance_hooks.append(fn)

    def _run_advance_hooks(self) -> None:
        hooks = self._advance_hooks
        todo = list(hooks)
        del hooks[: len(todo)]
        for fn in todo:
            fn()

    # -- run loop ----------------------------------------------------------
    def step(self) -> None:
        """Process one scheduled event (or deferred call).

        Pops the globally next ``(time, seq)`` entry, advancing ``now``.
        Deferred entries are all at the current time; a heap entry due
        now was scheduled before any of them (time could not have
        advanced otherwise) and therefore precedes them.  Cancelled
        entries are discarded unprocessed (and uncounted) on the way.
        """
        while True:
            deferred = self._deferred
            if deferred:
                heap = self._heap
                if heap and heap[0][0] <= self.now:
                    entry = heapq.heappop(heap)
                    self.now = entry[0]
                    item = entry[2]
                else:
                    item = deferred.popleft()
            else:
                heap = self._heap
                if (
                    self._advance_hooks
                    and (not heap or heap[0][0] > self.now)
                ):
                    self._run_advance_hooks()
                    continue
                time, _seq, item = heapq.heappop(heap)
                if time < self.now:  # pragma: no cover - defensive
                    raise SimulationError("time went backwards")
                self.now = time
            if isinstance(item, Event) and item._state == _CANCELLED:
                if self._cancelled:
                    self._cancelled -= 1
                continue
            break
        self._event_count += 1
        # Plain events are processed inline (the _process body), sparing a
        # call per event; Process overrides _process, so subclasses take
        # the virtual dispatch.
        if type(item) is Event:
            item._state = _PROCESSED
            callbacks = item.callbacks
            item.callbacks = None
            if callbacks:
                for fn in callbacks:
                    fn(item)
            if item._poolable:
                self._pause_pool.append(item)
        elif isinstance(item, Event):
            item._process()
        else:
            item()
        if self._unhandled:
            proc, exc = self._unhandled[0]
            raise SimulationError(
                f"unhandled exception in process {proc.name!r}"
            ) from exc

    def run(self, until: float | None = None) -> None:
        """Run until the event queue drains (or virtual time *until*).

        Raises
        ------
        DeadlockError
            If processes are still alive when the queue drains.
        SimulationError
            If a process with no waiter raises an exception.
        """
        # Fully fused event loop: the bodies of step() and Event._process
        # are inlined and ``now``/``event_count`` are carried in locals —
        # per-event attribute traffic is what dominates at paper scale.
        # step() remains the semantic reference for one iteration.
        deferred = self._deferred
        heap = self._heap
        pool = self._pause_pool
        unhandled = self._unhandled
        heappop = heapq.heappop
        hooks = self._advance_hooks
        now = self.now
        count = 0
        # The run loop allocates heavily but — with the Process reference
        # cycle broken at finish — produces almost no cyclic garbage, so
        # the collector only burns time rescanning live objects.  Pause it
        # for the duration (restored even on error).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                if deferred:
                    item = deferred.popleft()
                elif heap:
                    time = heap[0][0]
                    if time < now:  # pragma: no cover - defensive
                        raise SimulationError("time went backwards")
                    if time > now and hooks:
                        # Everything at the current time has been
                        # processed: give the advance hooks (e.g. replay
                        # decisions) a chance to add same-time work
                        # before the clock moves.  Flush the local event
                        # counter first so hooks observe an accurate
                        # ``event_count`` (the replay recorder reads it
                        # to price a dispatch).
                        self._event_count += count
                        count = 0
                        self._run_advance_hooks()
                        continue
                    if until is not None and time > until:
                        # Deferred entries are always at ``now`` <= until;
                        # only a heap advance can cross the boundary.
                        self.now = until
                        return
                    item = heappop(heap)[2]
                    self.now = now = time
                    # Drain every other entry due at this same time into
                    # the FIFO up front.  They were all scheduled before
                    # anything the processing below can enqueue — on the
                    # fast path a push at <= now always goes to the FIFO
                    # (so no new same-time heap entry can appear), and on
                    # the legacy path new same-time pushes carry higher
                    # seqs and correctly sort after the drained batch.
                    # This keeps deferred pops free of any heap check.
                    while heap and heap[0][0] == time:
                        deferred.append(heappop(heap)[2])
                else:
                    if hooks:
                        self._event_count += count
                        count = 0
                        self._run_advance_hooks()
                        if deferred or heap:
                            continue
                    break
                count += 1
                if type(item) is Event:
                    state = item._state
                    if state == _CANCELLED:
                        count -= 1
                        if self._cancelled:
                            self._cancelled -= 1
                        continue
                    item._state = _PROCESSED
                    callbacks = item.callbacks
                    item.callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(item)
                    if item._poolable:
                        pool.append(item)
                elif type(item) is Process:
                    # Inlined Process._process.
                    item._state = _PROCESSED
                    callbacks = item.callbacks
                    item.callbacks = None
                    if callbacks:
                        for fn in callbacks:
                            fn(item)
                    elif item._exc is not None:
                        unhandled.append((item, item._exc))
                elif isinstance(item, Event):
                    item._process()
                else:
                    item()
                if unhandled:
                    proc, exc = unhandled[0]
                    raise SimulationError(
                        f"unhandled exception in process {proc.name!r}"
                    ) from exc
            if until is not None:
                self.now = until
        finally:
            self._event_count += count
            if gc_was_enabled:
                gc.enable()
        if self._live_processes:
            raise DeadlockError(sorted(self._live_processes, key=lambda p: p.name))

    @property
    def event_count(self) -> int:
        """Total number of events processed so far (a determinism probe)."""
        return self._event_count
