"""Deterministic discrete-event simulation engine.

This package provides the substrate on which the simulated MPI runtime
(:mod:`repro.mpi`) executes: a virtual-time event loop (:class:`Engine`),
coroutine-style processes driven by generators (:class:`Process`), one-shot
synchronization events (:class:`Event`), composite wait conditions
(:class:`AllOf`, :class:`AnyOf`) and contended resources
(:class:`Resource`, :class:`BandwidthChannel`).

The engine is fully deterministic: simultaneous events are ordered by a
monotonically increasing sequence number, and nothing inside the engine
consults wall-clock time or random state.

Example
-------
>>> from repro.simulator import Engine
>>> eng = Engine()
>>> log = []
>>> def proc(name, delay):
...     yield eng.timeout(delay)
...     log.append((eng.now, name))
>>> _ = eng.spawn(proc("b", 2.0))
>>> _ = eng.spawn(proc("a", 1.0))
>>> eng.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from repro.simulator.engine import (
    ENGINE_VERSION,
    AllOf,
    AnyOf,
    DeadlockError,
    Engine,
    Event,
    Interrupt,
    Process,
    SimulationError,
)
from repro.simulator.resources import BandwidthChannel, Resource, TokenBucket

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthChannel",
    "DeadlockError",
    "ENGINE_VERSION",
    "Engine",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "TokenBucket",
]
