"""One-sided communication (MPI-3 RMA, passive-target model).

Complements :mod:`repro.mpi.shm` (which models the *shared-memory*
window flavour the paper builds on) with general windows over the
network: ``put``/``get``/``accumulate`` move data to/from a target
rank's exposed region *without the target's participation* — the
communication pattern the MPI-3 SHM model generalizes (Hoefler et al.
2012, the paper's [11]).

Cost model
----------
* local (same-node) access: one pass over the node's contended memory;
* remote access: the network's eager/rendezvous-free one-sided path —
  ``α + hops·t_hop + n/B`` with NIC contention (puts inject at the
  origin TX and land on the target RX; gets pay an extra request
  latency first);
* ``lock``/``unlock``: a request/grant round trip to the target for
  remote locks (exclusive: serialized through a per-target lock
  resource); local locks are flag-cheap;
* ``fence``: a barrier over the window's communicator.

Data semantics: in data mode every rank's region is a real NumPy
buffer; puts/gets/accumulates move real elements (visible at operation
completion), so tests verify one-sided updates exactly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.datatypes import Bytes, nbytes_of
from repro.mpi.errors import WindowError
from repro.simulator import Resource

__all__ = ["RmaWindow", "win_allocate"]


class _RmaShared:
    """Job-wide state of one RMA window."""

    __slots__ = ("sizes", "buffers", "locks", "epoch")

    def __init__(self, sizes: list[int], data_mode: bool, engine):
        self.sizes = sizes
        self.buffers = (
            [np.zeros(s, dtype=np.uint8) for s in sizes]
            if data_mode
            else [None] * len(sizes)
        )
        self.locks = [
            Resource(engine, capacity=1, name=f"rma.lock{r}")
            for r in range(len(sizes))
        ]
        self.epoch = 0


class RmaWindow:
    """Per-rank handle on a one-sided window."""

    __slots__ = ("_shared", "comm", "rank")

    def __init__(self, shared: _RmaShared, comm: Any):
        self._shared = shared
        self.comm = comm
        self.rank = comm.rank

    # -- exposure ---------------------------------------------------------
    def size_of(self, rank: int) -> int:
        """Bytes exposed by *rank*."""
        return self._shared.sizes[rank]

    def local(self, dtype: Any = np.uint8) -> np.ndarray | None:
        """This rank's exposed region (None in model mode)."""
        buf = self._shared.buffers[self.rank]
        return None if buf is None else buf.view(dtype)

    def _region(self, rank: int) -> np.ndarray | None:
        return self._shared.buffers[rank]

    # -- synchronization -------------------------------------------------
    def lock(self, target: int):
        """Coroutine: acquire the exclusive passive-target lock."""
        ctx = self.comm.ctx
        if not self.comm.node_of(target) == ctx.node:
            # Request/grant round trip to the remote target.
            net = ctx.machine.network
            rtt = 2.0 * net.latency(ctx.node, self.comm.node_of(target))
            yield ctx.engine.timeout(rtt)
        yield self._shared.locks[target].acquire()

    def unlock(self, target: int):
        """Coroutine: release the passive-target lock."""
        self._shared.locks[target].release()
        ctx = self.comm.ctx
        if self.comm.node_of(target) != ctx.node:
            net = ctx.machine.network
            yield ctx.engine.timeout(
                net.latency(ctx.node, self.comm.node_of(target))
            )

    def fence(self):
        """Coroutine: collective epoch separation (active target)."""
        self._shared.epoch += 1
        yield from self.comm.barrier()

    # -- transfers --------------------------------------------------------
    def _transfer(self, target: int, nbytes: int, get: bool):
        ctx = self.comm.ctx
        target_node = self.comm.node_of(target)
        if target_node == ctx.node:
            yield from ctx.machine.shared_touch(ctx.node, nbytes, ctx.socket)
            return
        net = ctx.machine.network
        if get:
            # Request latency to the target before data flows back.
            yield ctx.engine.timeout(net.latency(ctx.node, target_node))
            yield from net.transmit(target_node, ctx.node, nbytes)
        else:
            yield from net.transmit(ctx.node, target_node, nbytes)

    def put(self, payload: Any, target: int, offset: int = 0):
        """Coroutine: store *payload* into *target*'s region at *offset*."""
        nbytes = nbytes_of(payload)
        self._check(target, offset, nbytes)
        yield from self._transfer(target, nbytes, get=False)
        region = self._region(target)
        if region is not None and not isinstance(payload, Bytes):
            flat = np.asarray(payload).reshape(-1).view(np.uint8)
            region[offset : offset + flat.size] = flat

    def get(self, nbytes: int, target: int, offset: int = 0):
        """Coroutine: fetch *nbytes* from *target*; returns the payload."""
        self._check(target, offset, nbytes)
        yield from self._transfer(target, nbytes, get=True)
        region = self._region(target)
        if region is None:
            return Bytes(nbytes)
        return region[offset : offset + nbytes].copy()

    def accumulate(self, payload: Any, target: int, offset: int = 0,
                   dtype: Any = np.float64):
        """Coroutine: element-wise add *payload* into the target region."""
        nbytes = nbytes_of(payload)
        self._check(target, offset, nbytes)
        yield from self._transfer(target, nbytes, get=False)
        region = self._region(target)
        if region is not None and not isinstance(payload, Bytes):
            incoming = np.asarray(payload).reshape(-1)
            view = region[offset : offset + nbytes].view(dtype)
            view += incoming.astype(dtype, copy=False)

    # -- internals ------------------------------------------------------------
    def _check(self, target: int, offset: int, nbytes: int) -> None:
        if not 0 <= target < self.comm.size:
            raise WindowError(f"target rank {target} out of range")
        if offset < 0 or offset + nbytes > self._shared.sizes[target]:
            raise WindowError(
                f"access [{offset}, {offset + nbytes}) outside target "
                f"{target}'s {self._shared.sizes[target]}-byte region"
            )

    def __repr__(self) -> str:
        return (
            f"<RmaWindow ranks={self.comm.size} "
            f"mine={self._shared.sizes[self.rank]}B>"
        )


def win_allocate(comm, nbytes: int):
    """Coroutine: collectively create an RMA window (each rank exposes
    *nbytes*; per-rank sizes may differ)."""
    if nbytes < 0:
        raise WindowError("window size must be non-negative")

    def reducer(values: dict[int, int]) -> dict[int, Any]:
        sizes = [int(values[r]) for r in range(len(values))]
        shared = _RmaShared(sizes, comm.ctx.data_mode, comm.ctx.engine)
        sess = comm.ctx.job.replay
        if sess is not None:
            # Replay quiescence: a busy or contended window lock means an
            # RMA epoch is active and parked dispatches must run live.
            sess.rma_windows.append(shared)
        return {r: shared for r in values}

    shared = yield from comm._gate("win_allocate_rma", int(nbytes), reducer)
    return RmaWindow(shared, comm)
