"""Cartesian process topologies (MPI_Cart_create analogue).

SUMMA-style algorithms organize ranks on a logical grid and communicate
along rows/columns.  :func:`cart_create` builds a :class:`CartComm`
wrapper exposing coordinates, neighbour shifts, and cached row/column
(sub-dimension) communicators.
"""

from __future__ import annotations

import math
from typing import Any

from repro.mpi.constants import PROC_NULL
from repro.mpi.errors import MPIError

__all__ = ["CartComm", "cart_create", "dims_create"]


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced dimension factorization (MPI_Dims_create analogue)."""
    if nnodes < 1 or ndims < 1:
        raise ValueError("nnodes and ndims must be >= 1")
    dims = [1] * ndims
    remaining = nnodes
    # Greedy: repeatedly assign the largest prime factor to the smallest
    # dimension.
    factors = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    dims.sort(reverse=True)
    return dims


class CartComm:
    """A communicator with Cartesian coordinates attached.

    Wraps an ordinary :class:`~repro.mpi.comm.Comm` (row-major rank ↔
    coordinate mapping, no reordering) and provides:

    * :meth:`coords` / :meth:`rank_at` — rank↔coordinate translation;
    * :meth:`shift` — displacement neighbours (with wraparound for
      periodic dimensions, ``PROC_NULL`` at open boundaries);
    * :meth:`sub` — cached sub-communicators along one dimension
      (``MPI_Cart_sub``), e.g. process rows and columns.
    """

    def __init__(self, comm: Any, dims: tuple[int, ...],
                 periods: tuple[bool, ...]):
        total = math.prod(dims)
        if total != comm.size:
            raise MPIError(
                f"grid {dims} needs {total} ranks, comm has {comm.size}"
            )
        self.comm = comm
        self.dims = tuple(dims)
        self.periods = tuple(periods)
        self._subs: dict[int, Any] = {}

    # -- delegation ---------------------------------------------------------
    @property
    def rank(self) -> int:
        """Rank in the underlying communicator."""
        return self.comm.rank

    @property
    def size(self) -> int:
        """Total ranks on the grid."""
        return self.comm.size

    def __getattr__(self, name: str) -> Any:
        return getattr(self.comm, name)

    # -- geometry -----------------------------------------------------------
    def coords(self, rank: int | None = None) -> tuple[int, ...]:
        """Coordinates of *rank* (default: mine), row-major."""
        r = self.rank if rank is None else rank
        out = []
        for d in reversed(self.dims):
            out.append(r % d)
            r //= d
        return tuple(reversed(out))

    def rank_at(self, coords: tuple[int, ...]) -> int:
        """Rank at *coords* (periodic dims wrap; open dims must be in
        range)."""
        if len(coords) != len(self.dims):
            raise ValueError("coordinate arity mismatch")
        rank = 0
        for c, d, per in zip(coords, self.dims, self.periods):
            if per:
                c %= d
            elif not 0 <= c < d:
                raise ValueError(f"coordinate {c} outside open dim {d}")
            rank = rank * d + c
        return rank

    def shift(self, dim: int, displacement: int = 1) -> tuple[int, int]:
        """(source, destination) ranks displaced along *dim*
        (``MPI_Cart_shift``); ``PROC_NULL`` past open boundaries."""
        me = list(self.coords())

        def neighbour(delta: int) -> int:
            c = list(me)
            c[dim] += delta
            if self.periods[dim]:
                return self.rank_at(tuple(c))
            if 0 <= c[dim] < self.dims[dim]:
                return self.rank_at(tuple(c))
            return PROC_NULL

        return neighbour(-displacement), neighbour(+displacement)

    # -- sub-communicators ---------------------------------------------------
    def sub(self, keep_dim: int):
        """Coroutine: communicator of all ranks sharing my coordinates in
        every dimension except *keep_dim* (cached).

        For a 2D grid, ``sub(1)`` is my process *row* and ``sub(0)`` my
        process *column*."""
        if keep_dim in self._subs:
            return self._subs[keep_dim]
        me = self.coords()
        color = 0
        for i, c in enumerate(me):
            if i != keep_dim:
                color = color * self.dims[i] + c
        sub = yield from self.comm.split(color=color, key=me[keep_dim])
        self._subs[keep_dim] = sub
        return sub


def cart_create(comm, dims: tuple[int, ...],
                periods: tuple[bool, ...] | None = None) -> CartComm:
    """Attach a Cartesian topology to *comm* (non-collective: pure
    bookkeeping, like MPI's no-reorder mode)."""
    if periods is None:
        periods = tuple(False for _ in dims)
    if len(periods) != len(dims):
        raise ValueError("periods arity must match dims")
    return CartComm(comm, tuple(int(d) for d in dims), tuple(periods))
