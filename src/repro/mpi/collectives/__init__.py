"""Collective dispatch: registry-backed runtime algorithm selection.

Each ``dispatch_*`` coroutine is the entry point :class:`repro.mpi.comm.Comm`
calls.  It charges the per-call software overhead, builds a
:class:`~repro.mpi.collectives.registry.CollRequest`, asks the rank's
:class:`~repro.mpi.collectives.registry.SelectionPolicy` (default: the
MPICH-style :class:`TableSelection` decision tables over the
:class:`~repro.mpi.collectives.tuning.CollectiveTuning` personality) for
an algorithm descriptor, and runs it.

Every dispatch records the decision — operation, algorithm, policy,
bytes — in ``ctx.trace`` (when tracing is enabled) so tests can assert
the decision table.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives import registry
from repro.mpi.collectives.registry import (
    CollRequest,
    bridge_allgatherv as _bridge_allgatherv,
    policy_of,
    trace_begin,
    trace_end,
)
from repro.mpi.collectives.barrier import barrier_shm_flags as _shm_barrier
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import nbytes_of

__all__ = [
    "dispatch_allgather",
    "dispatch_exscan",
    "dispatch_reduce_scatter",
    "dispatch_allgatherv",
    "dispatch_alltoall",
    "dispatch_barrier",
    "dispatch_bcast",
    "dispatch_gather",
    "dispatch_reduce",
    "dispatch_allreduce",
    "dispatch_scan",
    "dispatch_scatter",
    "registry",
]

# Back-compat alias: structural predicate now lives in the registry.
_spans_hierarchy = registry.spans_hierarchy


def _overhead(comm):
    tuning = comm.ctx.tuning
    if tuning.call_overhead > 0:
        yield comm.ctx.engine.timeout(tuning.call_overhead)


def _vector_overhead(comm, blocks: int):
    tuning = comm.ctx.tuning
    cost = tuning.vector_block_overhead * blocks
    if cost > 0:
        yield comm.ctx.engine.timeout(cost)


def _select(comm, req: CollRequest):
    """Pick the algorithm for *req* and open its dispatch span.

    Returns ``(algorithm, span)``; the dispatcher closes the span with
    :func:`~repro.mpi.collectives.registry.trace_end` once the algorithm
    ran, so the trace records a duration (start + elapsed virtual time)
    per call rather than an instant."""
    policy = policy_of(comm)
    algo = policy.select(comm, req)
    span = trace_begin(comm, req.op, algo.name, req.total, policy.name)
    return algo, span


# ---------------------------------------------------------------------------
# allgather family
# ---------------------------------------------------------------------------

def _run_allgather(comm, payload: Any, tag: int):
    """Regular allgather; returns the per-rank payload list."""
    yield from _overhead(comm)
    if comm.size == 1:
        return [payload]
    total = nbytes_of(payload) * comm.size
    algo, span = _select(
        comm, CollRequest(op="allgather", nbytes=nbytes_of(payload),
                          total=total)
    )
    result = yield from algo.fn(comm, payload, tag, total)
    trace_end(comm, span)
    return result.as_list(comm.size)


def _agree_total(comm, nbytes: int, tag: int):
    """Coroutine: total result size of an irregular collective.

    Models the fact that ``MPI_Allgatherv`` callers pass the full
    recvcounts array on every rank — the size knowledge is an argument,
    not something communicated; the gate costs zero virtual time.  The
    gate is keyed by the collective's issue-time tag so concurrent
    non-blocking collectives can never cross-match."""
    results = yield comm._shared.arrive(
        ("agv_total", tag), comm.rank, int(nbytes),
        lambda values: dict.fromkeys(values, sum(values.values())),
    )
    return results[comm.rank]


def _run_allgatherv(comm, payload: Any, tag: int,
                        total: int | None = None):
    """Irregular allgather; returns the per-rank payload list.

    *total* is the agreed full result size; when None (direct callers)
    the size-agreement gate runs here.  :meth:`Comm.allgatherv` runs the
    gate itself so the profiler can charge the actual summed bytes, and
    passes the result through."""
    yield from _overhead(comm)
    yield from _vector_overhead(comm, comm.size)
    if comm.size == 1:
        return [payload]
    if total is None:
        total = yield from _agree_total(comm, nbytes_of(payload), tag)
    algo, span = _select(
        comm, CollRequest(op="allgatherv", nbytes=nbytes_of(payload),
                          total=total)
    )
    result = yield from algo.fn(comm, payload, tag, total)
    trace_end(comm, span)
    return result.as_list(comm.size)


# ---------------------------------------------------------------------------
# bcast
# ---------------------------------------------------------------------------

def _run_bcast(comm, payload: Any, root: int, tag: int):
    """Broadcast; returns the payload on every rank.

    MPI semantics: *every* rank supplies a payload of the message size
    (the root's carries the data; non-roots pass a same-sized receive
    buffer or :class:`~repro.mpi.datatypes.Bytes`), exactly as
    ``MPI_Bcast(buf, count, …)`` requires the count everywhere.  The
    algorithm choice is derived from that locally-known size.
    """
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    recvbuf = payload if comm.rank != root else None
    algo, span = _select(
        comm, CollRequest(op="bcast", nbytes=nbytes, total=nbytes, root=root)
    )
    result = yield from algo.fn(comm, payload, root, tag)
    trace_end(comm, span)
    return _deliver_bcast(recvbuf, result)


def _deliver_bcast(recvbuf: Any, result: Any) -> Any:
    """Copy a broadcast result into the caller's receive buffer."""
    import numpy as np

    from repro.mpi.datatypes import copy_into

    if isinstance(recvbuf, np.ndarray) and isinstance(result, np.ndarray):
        if recvbuf is not result:
            copy_into(recvbuf, result.reshape(-1))
        return recvbuf
    return result


# ---------------------------------------------------------------------------
# gather / scatter
# ---------------------------------------------------------------------------

def _run_gather(comm, payload: Any, root: int, tag: int,
                    irregular: bool = False):
    """Gather to *root*; returns the ordered payload list there."""
    yield from _overhead(comm)
    if irregular:
        yield from _vector_overhead(comm, comm.size)
    if comm.size == 1:
        return [payload]
    nbytes = nbytes_of(payload)
    algo, span = _select(
        comm, CollRequest(op="gatherv" if irregular else "gather",
                          nbytes=nbytes, total=nbytes, root=root)
    )
    result = yield from algo.fn(comm, payload, root, tag)
    trace_end(comm, span)
    if result is None:
        return None
    return result.as_list(comm.size)


def _run_scatter(comm, payloads: list[Any] | None, root: int, tag: int):
    """Scatter from *root*; returns this rank's payload."""
    yield from _overhead(comm)
    if comm.size == 1:
        if payloads is None or len(payloads) != 1:
            raise ValueError("root must supply one payload per rank")
        return payloads[0]
    # Selection must be rank-uniform and only the root holds the payload
    # list, so the request is size-independent (as in the old table).
    algo, span = _select(
        comm, CollRequest(op="scatter", nbytes=0, total=0, root=root)
    )
    result = yield from algo.fn(comm, payloads, root, tag)
    trace_end(comm, span)
    return result


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def _run_reduce(comm, payload: Any, op: ReduceOp, root: int, tag: int):
    """Reduce to *root*."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    algo, span = _select(
        comm, CollRequest(op="reduce", nbytes=nbytes, total=nbytes, root=root)
    )
    result = yield from algo.fn(comm, payload, op, root, tag)
    trace_end(comm, span)
    return result


def _run_allreduce(comm, payload: Any, op: ReduceOp, tag: int):
    """Allreduce on every rank."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    algo, span = _select(
        comm, CollRequest(op="allreduce", nbytes=nbytes, total=nbytes)
    )
    result = yield from algo.fn(comm, payload, op, tag)
    trace_end(comm, span)
    return result


def _run_scan(comm, payload: Any, op: ReduceOp, tag: int):
    """Inclusive prefix scan: linear chain for tiny comms, log-round
    doubling otherwise."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    algo, span = _select(
        comm, CollRequest(op="scan", nbytes=nbytes, total=nbytes)
    )
    result = yield from algo.fn(comm, payload, op, tag)
    trace_end(comm, span)
    return result


def _run_exscan(comm, payload: Any, op: ReduceOp, tag: int):
    """Exclusive prefix scan (rank 0 receives None)."""
    yield from _overhead(comm)
    if comm.size == 1:
        return None
    nbytes = nbytes_of(payload)
    algo, span = _select(
        comm, CollRequest(op="exscan", nbytes=nbytes, total=nbytes)
    )
    result = yield from algo.fn(comm, payload, op, tag)
    trace_end(comm, span)
    return result


def _run_reduce_scatter(comm, payload: Any, op: ReduceOp, tag: int):
    """Block reduce-scatter: rank i receives the reduction of block i."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    algo, span = _select(
        comm, CollRequest(op="reduce_scatter", nbytes=nbytes, total=nbytes)
    )
    result = yield from algo.fn(comm, payload, op, tag)
    trace_end(comm, span)
    return result


# ---------------------------------------------------------------------------
# barrier / alltoall
# ---------------------------------------------------------------------------

def _run_barrier(comm, tag: int):
    """Barrier: shm-flag tree on one node, hierarchical across nodes,
    dissemination otherwise.  (The flat dissemination runner charges the
    per-call software overhead; the shm paths model cheaper entry.)"""
    if comm.size == 1:
        return
    algo, span = _select(comm, CollRequest(op="barrier", nbytes=0, total=0))
    yield from algo.fn(comm, tag)
    trace_end(comm, span)


def _run_alltoall(comm, payloads: list[Any], tag: int):
    """All-to-all personalized exchange."""
    yield from _overhead(comm)
    if comm.size == 1:
        return [payloads[0]]
    per_pair = max(nbytes_of(p) for p in payloads)
    algo, span = _select(
        comm, CollRequest(op="alltoall", nbytes=per_pair, total=per_pair)
    )
    result = yield from algo.fn(comm, payloads, tag)
    trace_end(comm, span)
    return result


# ---------------------------------------------------------------------------
# Replay-aware entry points
# ---------------------------------------------------------------------------
# The public ``dispatch_*`` names wrap the ``_run_*`` bodies above with
# the macro-event replay layer (:mod:`repro.mpi.collectives.replay`):
# when the job carries a ReplaySession, world-covering dispatches park
# until the end of their entry timestep and — if all ranks arrived
# simultaneously on a quiescent engine — are replayed from the record
# cache in O(nranks) instead of simulated.  Everything else (no session,
# sub-communicators, staggered entries, non-replayable payloads) runs
# the body unchanged.

from repro.mpi.collectives.replay import (  # noqa: E402
    payload_signature as _psig,
)


def _dispatch(comm, op, sig, inner):
    sess = comm.ctx.job.replay
    if sess is None:
        result = yield from inner()
        return result
    result = yield from sess.run(comm, op, sig, inner)
    return result


def _sig(kind: str, psig, *rest):
    # A None payload signature (data-carrying payload) vetoes the whole
    # dispatch; the session still parks so the veto is collective.
    return None if psig is None else (kind, psig) + rest


def dispatch_allgather(comm, payload: Any, tag: int):
    """Replay-aware :func:`_run_allgather`."""
    result = yield from _dispatch(
        comm, "allgather", _sig("ag", _psig(payload)),
        lambda: _run_allgather(comm, payload, tag),
    )
    return result


def dispatch_allgatherv(comm, payload: Any, tag: int,
                        total: int | None = None):
    """Replay-aware :func:`_run_allgatherv`."""
    result = yield from _dispatch(
        comm, "allgatherv", _sig("agv", _psig(payload), total),
        lambda: _run_allgatherv(comm, payload, tag, total),
    )
    return result


def dispatch_bcast(comm, payload: Any, root: int, tag: int):
    """Replay-aware :func:`_run_bcast`."""
    result = yield from _dispatch(
        comm, "bcast", _sig("bc", _psig(payload), root),
        lambda: _run_bcast(comm, payload, root, tag),
    )
    return result


def dispatch_gather(comm, payload: Any, root: int, tag: int,
                    irregular: bool = False):
    """Replay-aware :func:`_run_gather`."""
    result = yield from _dispatch(
        comm, "gatherv" if irregular else "gather",
        _sig("ga", _psig(payload), root, irregular),
        lambda: _run_gather(comm, payload, root, tag, irregular),
    )
    return result


def dispatch_scatter(comm, payloads: list[Any] | None, root: int, tag: int):
    """Replay-aware :func:`_run_scatter`."""
    result = yield from _dispatch(
        comm, "scatter", _sig("sc", _psig(payloads), root),
        lambda: _run_scatter(comm, payloads, root, tag),
    )
    return result


def dispatch_reduce(comm, payload: Any, op: ReduceOp, root: int, tag: int):
    """Replay-aware :func:`_run_reduce`."""
    result = yield from _dispatch(
        comm, "reduce", _sig("rd", _psig(payload), op, root),
        lambda: _run_reduce(comm, payload, op, root, tag),
    )
    return result


def dispatch_allreduce(comm, payload: Any, op: ReduceOp, tag: int):
    """Replay-aware :func:`_run_allreduce`."""
    result = yield from _dispatch(
        comm, "allreduce", _sig("ar", _psig(payload), op),
        lambda: _run_allreduce(comm, payload, op, tag),
    )
    return result


def dispatch_scan(comm, payload: Any, op: ReduceOp, tag: int):
    """Replay-aware :func:`_run_scan`."""
    result = yield from _dispatch(
        comm, "scan", _sig("sn", _psig(payload), op),
        lambda: _run_scan(comm, payload, op, tag),
    )
    return result


def dispatch_exscan(comm, payload: Any, op: ReduceOp, tag: int):
    """Replay-aware :func:`_run_exscan`."""
    result = yield from _dispatch(
        comm, "exscan", _sig("ex", _psig(payload), op),
        lambda: _run_exscan(comm, payload, op, tag),
    )
    return result


def dispatch_reduce_scatter(comm, payload: Any, op: ReduceOp, tag: int):
    """Replay-aware :func:`_run_reduce_scatter`."""
    result = yield from _dispatch(
        comm, "reduce_scatter", _sig("rs", _psig(payload), op),
        lambda: _run_reduce_scatter(comm, payload, op, tag),
    )
    return result


def dispatch_barrier(comm, tag: int):
    """Replay-aware :func:`_run_barrier`."""
    result = yield from _dispatch(
        comm, "barrier", ("bar",),
        lambda: _run_barrier(comm, tag),
    )
    return result


def dispatch_alltoall(comm, payloads: list[Any], tag: int):
    """Replay-aware :func:`_run_alltoall`."""
    result = yield from _dispatch(
        comm, "alltoall", _sig("a2a", _psig(payloads)),
        lambda: _run_alltoall(comm, payloads, tag),
    )
    return result
