"""Collective dispatch: runtime algorithm selection (MPICH-style).

Each ``dispatch_*`` coroutine is the entry point :class:`repro.mpi.comm.Comm`
calls.  It charges the per-call software overhead, consults the
:class:`~repro.mpi.collectives.tuning.CollectiveTuning` personality, and
runs the selected algorithm.  Selection inputs are communicator size,
estimated total bytes, power-of-two-ness, and whether the communicator
spans multiple nodes with multiple ranks per node (SMP-aware hierarchical
path, the paper's pure-MPI baseline).

The chosen algorithm name is recorded in ``ctx.trace`` (when tracing is
enabled) so tests can assert the decision table.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives import hierarchical as hier
from repro.mpi.collectives.allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
)
from repro.mpi.collectives.allgatherv import (
    allgatherv_bruck,
    allgatherv_ring,
)
from repro.mpi.collectives.alltoall import alltoall_bruck, alltoall_pairwise
from repro.mpi.collectives.barrier import barrier_dissemination
from repro.mpi.collectives.bcast import (
    bcast_binomial,
    bcast_pipeline,
    bcast_scatter_allgather,
)
from repro.mpi.collectives.gather import (
    gather_binomial,
    gather_linear,
    scatter_binomial,
)
from repro.mpi.collectives.reduce import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    reduce_binomial,
    scan_linear,
)
from repro.mpi.collectives.reduce_scatter import (
    reduce_scatter_halving,
    reduce_scatter_pairwise,
)
from repro.mpi.collectives.scan_ops import exscan_binomial, scan_binomial
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import nbytes_of

__all__ = [
    "dispatch_allgather",
    "dispatch_exscan",
    "dispatch_reduce_scatter",
    "dispatch_allgatherv",
    "dispatch_alltoall",
    "dispatch_barrier",
    "dispatch_bcast",
    "dispatch_gather",
    "dispatch_reduce",
    "dispatch_allreduce",
    "dispatch_scan",
    "dispatch_scatter",
]


def _is_pof2(n: int) -> bool:
    return n & (n - 1) == 0


def _overhead(comm):
    tuning = comm.ctx.tuning
    if tuning.call_overhead > 0:
        yield comm.ctx.engine.timeout(tuning.call_overhead)


def _vector_overhead(comm, blocks: int):
    tuning = comm.ctx.tuning
    cost = tuning.vector_block_overhead * blocks
    if cost > 0:
        yield comm.ctx.engine.timeout(cost)


def _spans_hierarchy(comm) -> bool:
    """True when the communicator covers >1 node and some node hosts >1
    of its ranks — the regime where SMP-aware algorithms apply."""
    placement = comm.ctx.placement
    nodes: dict[int, int] = {}
    for w in comm.group.world_ranks():
        n = placement.node_of(w)
        nodes[n] = nodes.get(n, 0) + 1
    return len(nodes) > 1 and any(c > 1 for c in nodes.values())


def _trace(comm, op: str, algo: str, nbytes: int) -> None:
    tracer = comm.ctx.trace
    if tracer is not None:
        tracer.append(
            {
                "t": comm.ctx.engine.now,
                "rank": comm.ctx.world_rank,
                "comm": comm.name,
                "op": op,
                "algo": algo,
                "nbytes": nbytes,
            }
        )


# ---------------------------------------------------------------------------
# allgather family
# ---------------------------------------------------------------------------

def _select_flat_allgather(comm, total: int):
    tuning = comm.ctx.tuning
    if _is_pof2(comm.size) and total <= tuning.allgather_rd_max_total:
        return "recursive_doubling", allgather_recursive_doubling
    if total <= tuning.allgather_bruck_max_total:
        return "bruck", allgather_bruck
    return "ring", allgather_ring


def _select_flat_allgatherv(comm, total: int):
    tuning = comm.ctx.tuning
    if total <= tuning.allgatherv_bruck_max_total:
        return "bruck_v", allgatherv_bruck
    return "ring_v", allgatherv_ring


def dispatch_allgather(comm, payload: Any, tag: int):
    """Regular allgather; returns the per-rank payload list."""
    yield from _overhead(comm)
    if comm.size == 1:
        return [payload]
    total = nbytes_of(payload) * comm.size
    if comm.ctx.tuning.smp_aware and _spans_hierarchy(comm):
        _trace(comm, "allgather", "smp_hierarchical", total)

        def bridge_xchg(bridge, node_blocks, btag):
            # Node aggregates have equal size only for regular ppn; the
            # v-variant is required in general (paper §4.1).
            result = yield from _bridge_allgatherv(
                bridge, node_blocks, btag, total
            )
            return result

        full = yield from hier.hier_allgather(
            comm, payload, tag, bridge_xchg, total_nbytes=total
        )
        return full.as_list(comm.size)
    name, algo = _select_flat_allgather(comm, total)
    _trace(comm, "allgather", name, total)
    result = yield from algo(comm, payload, tag)
    return result.as_list(comm.size)


def _bridge_allgatherv(bridge, node_blocks, tag, total: int):
    """Inter-leader exchange used inside hierarchical allgather."""
    name, algo = _select_flat_allgatherv(bridge, total)
    yield from _vector_overhead(bridge, bridge.size)
    result = yield from algo(bridge, node_blocks, tag)
    return result


def _agree_total(comm, nbytes: int, tag: int):
    """Coroutine: total result size of an irregular collective.

    Models the fact that ``MPI_Allgatherv`` callers pass the full
    recvcounts array on every rank — the size knowledge is an argument,
    not something communicated; the gate costs zero virtual time.  The
    gate is keyed by the collective's issue-time tag so concurrent
    non-blocking collectives can never cross-match."""
    results = yield comm._shared.arrive(
        ("agv_total", tag), comm.rank, int(nbytes),
        lambda values: dict.fromkeys(values, sum(values.values())),
    )
    return results[comm.rank]


def dispatch_allgatherv(comm, payload: Any, tag: int):
    """Irregular allgather; returns the per-rank payload list."""
    yield from _overhead(comm)
    yield from _vector_overhead(comm, comm.size)
    if comm.size == 1:
        return [payload]
    total = yield from _agree_total(comm, nbytes_of(payload), tag)
    if comm.ctx.tuning.smp_aware and _spans_hierarchy(comm):
        _trace(comm, "allgatherv", "smp_hierarchical", total)

        def bridge_xchg(bridge, node_blocks, btag):
            result = yield from _bridge_allgatherv(
                bridge, node_blocks, btag, total
            )
            return result

        full = yield from hier.hier_allgather(
            comm, payload, tag, bridge_xchg, total_nbytes=total
        )
        return full.as_list(comm.size)
    name, algo = _select_flat_allgatherv(comm, total)
    _trace(comm, "allgatherv", name, total)
    result = yield from algo(comm, payload, tag)
    return result.as_list(comm.size)


# ---------------------------------------------------------------------------
# bcast
# ---------------------------------------------------------------------------

def _select_flat_bcast(comm, nbytes: int):
    tuning = comm.ctx.tuning
    if nbytes <= tuning.bcast_binomial_max or comm.size <= 2:
        return "binomial", bcast_binomial
    if nbytes > 8 * tuning.bcast_pipeline_chunk and comm.size >= 8:
        def piped(c, p, root, t):
            result = yield from bcast_pipeline(
                c, p, root, t, tuning.bcast_pipeline_chunk
            )
            return result

        return "pipeline", piped
    return "scatter_allgather", bcast_scatter_allgather


def dispatch_bcast(comm, payload: Any, root: int, tag: int):
    """Broadcast; returns the payload on every rank.

    MPI semantics: *every* rank supplies a payload of the message size
    (the root's carries the data; non-roots pass a same-sized receive
    buffer or :class:`~repro.mpi.datatypes.Bytes`), exactly as
    ``MPI_Bcast(buf, count, …)`` requires the count everywhere.  The
    algorithm choice is derived from that locally-known size.
    """
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    recvbuf = payload if comm.rank != root else None
    if comm.ctx.tuning.smp_aware and _spans_hierarchy(comm):
        _trace(comm, "bcast", "smp_hierarchical", nbytes)

        def bridge_bc(bridge, p, broot, btag):
            bname, balgo = _select_flat_bcast(bridge, nbytes)
            result = yield from balgo(bridge, p, broot, btag)
            return result

        result = yield from hier.hier_bcast(comm, payload, root, tag, bridge_bc)
        return _deliver_bcast(recvbuf, result)
    name, algo = _select_flat_bcast(comm, nbytes)
    _trace(comm, "bcast", name, nbytes)
    result = yield from algo(comm, payload, root, tag)
    return _deliver_bcast(recvbuf, result)


def _deliver_bcast(recvbuf: Any, result: Any) -> Any:
    """Copy a broadcast result into the caller's receive buffer."""
    import numpy as np

    from repro.mpi.datatypes import copy_into

    if isinstance(recvbuf, np.ndarray) and isinstance(result, np.ndarray):
        if recvbuf is not result:
            copy_into(recvbuf, result.reshape(-1))
        return recvbuf
    return result


# ---------------------------------------------------------------------------
# gather / scatter
# ---------------------------------------------------------------------------

def dispatch_gather(comm, payload: Any, root: int, tag: int,
                    irregular: bool = False):
    """Gather to *root*; returns the ordered payload list there."""
    yield from _overhead(comm)
    if irregular:
        yield from _vector_overhead(comm, comm.size)
    if comm.size == 1:
        return [payload]
    nbytes = nbytes_of(payload)
    if nbytes > comm.ctx.tuning.bcast_binomial_max * 4:
        name, algo = "linear", gather_linear
    else:
        name, algo = "binomial", gather_binomial
    _trace(comm, "gatherv" if irregular else "gather", name, nbytes)
    result = yield from algo(comm, payload, root, tag)
    if result is None:
        return None
    return result.as_list(comm.size)


def dispatch_scatter(comm, payloads: list[Any] | None, root: int, tag: int):
    """Scatter from *root*; returns this rank's payload."""
    yield from _overhead(comm)
    if comm.size == 1:
        if payloads is None or len(payloads) != 1:
            raise ValueError("root must supply one payload per rank")
        return payloads[0]
    _trace(comm, "scatter", "binomial", 0)
    result = yield from scatter_binomial(comm, payloads, root, tag)
    return result


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------

def dispatch_reduce(comm, payload: Any, op: ReduceOp, root: int, tag: int):
    """Reduce to *root*."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    if comm.ctx.tuning.smp_aware and _spans_hierarchy(comm):
        _trace(comm, "reduce", "smp_hierarchical", nbytes)
        result = yield from hier.hier_reduce(comm, payload, op, root, tag)
        return result
    _trace(comm, "reduce", "binomial", nbytes)
    result = yield from reduce_binomial(comm, payload, op, root, tag)
    return result


def dispatch_allreduce(comm, payload: Any, op: ReduceOp, tag: int):
    """Allreduce on every rank."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    tuning = comm.ctx.tuning

    def flat(c, p, o, t):
        if nbytes <= tuning.allreduce_rd_max:
            result = yield from allreduce_recursive_doubling(c, p, o, t)
        elif _is_pof2(c.size):
            result = yield from allreduce_rabenseifner(c, p, o, t)
        else:
            result = yield from allreduce_ring(c, p, o, t)
        return result

    if tuning.smp_aware and _spans_hierarchy(comm):
        _trace(comm, "allreduce", "smp_hierarchical", nbytes)
        result = yield from hier.hier_allreduce(comm, payload, op, tag, flat)
        return result
    name = (
        "recursive_doubling"
        if nbytes <= tuning.allreduce_rd_max
        else ("rabenseifner" if _is_pof2(comm.size) else "ring")
    )
    _trace(comm, "allreduce", name, nbytes)
    result = yield from flat(comm, payload, op, tag)
    return result


def dispatch_scan(comm, payload: Any, op: ReduceOp, tag: int):
    """Inclusive prefix scan: linear chain for tiny comms, log-round
    doubling otherwise."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    if comm.size <= 4:
        _trace(comm, "scan", "linear", nbytes_of(payload))
        result = yield from scan_linear(comm, payload, op, tag)
        return result
    _trace(comm, "scan", "binomial", nbytes_of(payload))
    result = yield from scan_binomial(comm, payload, op, tag)
    return result


def dispatch_exscan(comm, payload: Any, op: ReduceOp, tag: int):
    """Exclusive prefix scan (rank 0 receives None)."""
    yield from _overhead(comm)
    if comm.size == 1:
        return None
    _trace(comm, "exscan", "binomial", nbytes_of(payload))
    result = yield from exscan_binomial(comm, payload, op, tag)
    return result


def dispatch_reduce_scatter(comm, payload: Any, op: ReduceOp, tag: int):
    """Block reduce-scatter: rank i receives the reduction of block i."""
    yield from _overhead(comm)
    if comm.size == 1:
        return payload
    nbytes = nbytes_of(payload)
    if _is_pof2(comm.size) and nbytes > 4096:
        _trace(comm, "reduce_scatter", "recursive_halving", nbytes)
        result = yield from reduce_scatter_halving(comm, payload, op, tag)
        return result
    _trace(comm, "reduce_scatter", "pairwise", nbytes)
    result = yield from reduce_scatter_pairwise(comm, payload, op, tag)
    return result


# ---------------------------------------------------------------------------
# barrier / alltoall
# ---------------------------------------------------------------------------

def _nodes_of(comm) -> set:
    placement = comm.ctx.placement
    return {placement.node_of(w) for w in comm.group.world_ranks()}


def _shm_barrier(comm, tag: int, rounds_cost: float | None = None,
                 phase: str = "arrive"):
    """Coroutine: optimized single-node barrier (shared flags).

    Real MPI libraries implement on-node barriers with shared-memory
    flag trees, not message passing.  Modelled as a zero-time rendezvous
    (everyone leaves together at the last arrival) plus the flag-tree
    cost.  ``rounds_cost`` overrides the charged time (used for the
    cheap release phase of the hierarchical barrier).  The rendezvous is
    keyed by the collective's issue-time *tag*, so concurrent
    non-blocking barriers cannot cross-match."""
    import math

    tuning = comm.ctx.tuning
    if rounds_cost is None:
        rounds = max(1, math.ceil(math.log2(max(comm.size, 2))))
        rounds_cost = tuning.shm_barrier_base + rounds * tuning.shm_barrier_flag
    yield comm._shared.arrive(
        ("shm_barrier", phase, tag), comm.rank, None,
        lambda values: dict.fromkeys(values),
    )
    yield comm.ctx.engine.timeout(rounds_cost)


def dispatch_barrier(comm, tag: int):
    """Barrier: shm-flag tree on one node, hierarchical across nodes,
    dissemination otherwise."""
    if comm.size == 1:
        return
    tuning = comm.ctx.tuning
    if len(_nodes_of(comm)) == 1:
        _trace(comm, "barrier", "shm_flags", 0)
        yield from _shm_barrier(comm, tag)
        return
    if tuning.smp_aware and _spans_hierarchy(comm):
        _trace(comm, "barrier", "smp_hierarchical", 0)
        shm, bridge = yield from hier.hier_comms(comm)
        if shm.size > 1:
            yield from _shm_barrier(shm, tag)
        if bridge is not None and bridge.size > 1:
            yield from barrier_dissemination(bridge, tag)
        if shm.size > 1:
            # Release phase: one flag store observed by each child.
            yield from _shm_barrier(
                shm, tag, rounds_cost=tuning.shm_barrier_flag,
                phase="release",
            )
        return
    yield from _overhead(comm)
    _trace(comm, "barrier", "dissemination", 0)
    yield from barrier_dissemination(comm, tag)


def dispatch_alltoall(comm, payloads: list[Any], tag: int):
    """All-to-all personalized exchange."""
    yield from _overhead(comm)
    if comm.size == 1:
        return [payloads[0]]
    per_pair = max(nbytes_of(p) for p in payloads)
    tuning = comm.ctx.tuning
    if per_pair <= tuning.alltoall_bruck_max:
        name, algo = "bruck", alltoall_bruck
    else:
        name, algo = "pairwise", alltoall_pairwise
    _trace(comm, "alltoall", name, per_pair)
    result = yield from algo(comm, payloads, tag)
    return result
