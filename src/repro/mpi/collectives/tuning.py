"""Collective algorithm selection: the MPI library "personality".

Real MPI libraries choose collective algorithms at runtime from message
size and communicator size (Thakur et al. 2005 for MPICH; Open MPI's
"tuned" component).  :class:`CollectiveTuning` captures those decision
tables plus the per-call constants that differentiate Cray MPI from
Open MPI in the paper's figures.

Two personalities are provided:

* :func:`cray_mpich_tuning` — used with the ``hazel_hen`` preset.
* :func:`openmpi_tuning` — used with the ``vulcan`` preset.

A central honesty rule for the reproduction: the *pure MPI baseline*
gets the best settings we can give it — SMP-aware hierarchical
allgather/bcast (``smp_aware=True``, paper Fig 3a) and size-adaptive
algorithm selection — so the hybrid approach wins only for the paper's
actual reason (eliminating on-node copies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "CollectiveTuning",
    "cray_mpich_tuning",
    "openmpi_tuning",
    "generic_tuning",
    "tuning_for_machine",
]


@dataclass(frozen=True)
class CollectiveTuning:
    """Decision thresholds and per-call constants.

    Size thresholds are in *total receive buffer bytes* for the
    allgather family and in *message bytes* for rooted collectives,
    matching MPICH conventions.
    """

    name: str = "generic"

    #: Software overhead charged once per collective call (seconds).
    call_overhead: float = 8.0e-7

    #: Base cost of the optimized shared-memory (single-node) barrier.
    shm_barrier_base: float = 3.5e-7
    #: Per-round cost of the shm flag barrier (one cache-line bounce);
    #: total = base + ceil(log2 ppn) * flag.  Real libraries implement
    #: on-node MPI_Barrier with shared flags, far cheaper than message
    #: passing — this asymmetry vs. small broadcasts is what the paper's
    #: single-node results (Figs 7 and 11a) exploit.
    shm_barrier_flag: float = 1.2e-7

    #: Per-block bookkeeping cost of vector (v-) collectives — the price
    #: of processing recvcounts/displacements arrays (seconds per block).
    vector_block_overhead: float = 6.0e-8

    #: Use SMP-aware (leader-based hierarchical) allgather/bcast when the
    #: communicator spans several nodes with multiple ranks per node.
    smp_aware: bool = True

    # -- allgather ---------------------------------------------------------
    #: Below this total size, power-of-two comms use recursive doubling.
    allgather_rd_max_total: int = 512 * 1024
    #: Below this total size, non-power-of-two comms use Bruck.
    allgather_bruck_max_total: int = 256 * 1024

    # -- allgatherv ---------------------------------------------------------
    #: Below this total size allgatherv uses Bruck-v; above, ring-v.
    #: (Never recursive doubling — the structural penalty of [29].)
    allgatherv_bruck_max_total: int = 256 * 1024

    # -- bcast --------------------------------------------------------------
    #: Messages up to this size broadcast via binomial tree.
    bcast_binomial_max: int = 12 * 1024
    #: Larger messages use scatter + (ring) allgather.
    #: Chunk size for the pipelined broadcast of very large messages.
    bcast_pipeline_chunk: int = 128 * 1024

    # -- reduce / allreduce ---------------------------------------------------
    #: Up to this size allreduce uses recursive doubling; above,
    #: Rabenseifner (reduce-scatter + allgather).
    allreduce_rd_max: int = 64 * 1024

    # -- reduce_scatter -----------------------------------------------------
    #: Above this size (and power-of-two comms) reduce_scatter uses
    #: recursive halving; otherwise pairwise exchange.
    reduce_scatter_halving_min: int = 4096

    # -- scan ---------------------------------------------------------------
    #: Up to this communicator size scan uses the linear chain.
    scan_linear_max_ranks: int = 4

    # -- alltoall ---------------------------------------------------------
    #: Up to this per-pair size alltoall uses Bruck; above, pairwise.
    alltoall_bruck_max: int = 1024

    # -- hierarchical --------------------------------------------------------
    #: Leaders per node for the multi-leader allgather ablation
    #: (Kandalla et al. 2009, the paper's [14]).
    multileader_k: int = 2

    def with_(self, **overrides) -> "CollectiveTuning":
        """Copy with fields replaced."""
        return replace(self, **overrides)


def cray_mpich_tuning() -> CollectiveTuning:
    """Cray MPI (MPICH-derived) personality: low overheads, aggressive
    recursive-doubling windows, moderate vector penalty."""
    return CollectiveTuning(
        name="cray_mpich",
        call_overhead=1.0e-6,
        shm_barrier_base=3.0e-7,
        shm_barrier_flag=1.2e-7,
        vector_block_overhead=5.0e-8,
        smp_aware=True,
        allgather_rd_max_total=512 * 1024,
        allgather_bruck_max_total=256 * 1024,
        allgatherv_bruck_max_total=256 * 1024,
        bcast_binomial_max=16 * 1024,
        allreduce_rd_max=64 * 1024,
    )


def openmpi_tuning() -> CollectiveTuning:
    """Open MPI 'tuned' personality: slightly higher per-call overhead
    and a larger vector-collective penalty (its allgatherv decision map
    is coarser), smaller binomial window."""
    return CollectiveTuning(
        name="openmpi",
        call_overhead=1.3e-6,
        shm_barrier_base=4.5e-7,
        shm_barrier_flag=1.5e-7,
        vector_block_overhead=9.0e-8,
        smp_aware=True,
        allgather_rd_max_total=256 * 1024,
        allgather_bruck_max_total=128 * 1024,
        allgatherv_bruck_max_total=128 * 1024,
        bcast_binomial_max=8 * 1024,
        allreduce_rd_max=32 * 1024,
    )


def generic_tuning() -> CollectiveTuning:
    """Neutral personality for unit tests and custom machines."""
    return CollectiveTuning()


def tuning_for_machine(machine_name: str) -> CollectiveTuning:
    """Personality matching a machine preset name."""
    if machine_name == "hazel_hen":
        return cray_mpich_tuning()
    if machine_name == "vulcan":
        return openmpi_tuning()
    return generic_tuning()
