"""Macro-event replay cache: memoize repeated collective dispatches.

The benchmark methodology (warmup + repetition loops over the *same*
collective) and the apps (SUMMA panel broadcasts, BPMF allreduces,
stencil halo rounds) dispatch byte-identical collectives hundreds of
times per simulation.  The engine is deterministic, so once one such
dispatch has been simulated its outcome — per-rank virtual-time deltas,
byte/message counter increments, and the span-stream slice — is a pure
function of the *replay key*:

* the job prefix: engine version, machine fingerprint (covers sockets,
  transport, topology), placement (node/socket vectors + socket mode),
  tuning personality, selection policy, link contention, trace detail
  and engine path;
* the operation name and the per-rank payload signatures (sizes/roots/
  reduce ops — the dtype signature);
* the vector of relative per-rank entry-time offsets.

When every rank of a world-covering communicator enters a collective at
the *same* timestep (the all-zero offset vector — the only vector this
implementation replays) and the job is quiescent, the dispatch is not
simulated at all.  Instead its record is applied in O(nranks): one
pre-triggered wake event per rank at ``entry + delta``, bulk counter
increments, and the recorded span slice re-emitted time-shifted with a
``replayed`` tag.  Virtual-time latencies, traffic accounting and span
streams are bit-identical to normal execution (the equivalence suite
asserts this); only the processed-event count drops — that is the point.

Recording — the pocket simulation
---------------------------------
The *first* occurrence of each dispatch shape in a job always executes
live: one-off lazy setup (hierarchy sub-communicators, shared windows,
per-comm caches) must happen in the live job exactly as it would with
replay off, so first-occurrence cost — which includes that setup —
stays bit-identical.  From the second occurrence on, a cache miss
triggers a *pocket simulation* (:meth:`ReplaySession._record`): a
fresh nested :class:`~repro.mpi.runtime.MPIJob` on the same machine
spec rebuilds the dispatch from its signature vector, pays the one-off
setup plus one warm run (mirroring the live job's never-replayed first
execution), parks all ranks quiescently, then re-runs the dispatch
once from a simultaneous release in the live arrival permutation.  The
deltas of that steady-state run — per-rank tick durations, counter and
traffic increments, span templates, profile increments — form the
record, which is applied to the live job immediately (the miss itself
becomes a hit).  Because scheduled delays are translation-invariant on
the engine's tick grid, those deltas replay bit-identically from any
later quiescent entry at any absolute time.  Records are cached
process-globally, so repetitions across jobs in one process (the sweep
service, parameter sweeps) record only once per dispatch shape.

Safety — quiescence and fall-through
------------------------------------
Replay is gated by a quiescence predicate evaluated when all ranks have
parked: no unmatched p2p sends/receives, no outstanding non-blocking
``CollRequest`` (:func:`~repro.mpi.nonblocking.spawn_collective`
maintains the counter), no busy or contended RMA window lock, no live
engine process besides the parked rank programs, and no open trace span.
Anything else — ranks arriving at different timesteps, non-replayable
payloads (real ndarrays), permuted communicators, unknown sync policies
— falls through to normal execution, released *at the entry timestep*,
so misses are unconditionally undistorted.

``REPRO_REPLAY_VERIFY=1`` executes every hit *and* checks it against the
record, asserting bit-identical per-rank latencies, counter deltas and
(shift-normalized) span slices.
"""

from __future__ import annotations

import os
from dataclasses import astuple
from typing import Any, Callable

from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes
from repro.mpi.profiler import OpStats
from repro.simulator.engine import (
    _INV_TICK,
    _TRIGGERED,
    ENGINE_VERSION,
    TICK,
    DeadlockError,
    Event,
)

__all__ = [
    "ReplaySession",
    "ReplayVerifyError",
    "payload_signature",
    "sync_signature",
    "replay_key",
    "cache_stats",
    "clear_cache",
]


class ReplayVerifyError(AssertionError):
    """A replay record disagreed with live execution (verify mode)."""


# ---------------------------------------------------------------------------
# Process-global record cache
# ---------------------------------------------------------------------------

#: FIFO-capped record cache shared by every job in the process (the
#: sweep service's workers warm it across requests).  ``None`` values
#: are negative entries: the dispatch proved unreplayable once and is
#: not re-attempted.
_CACHE: dict[Any, "_Record | None"] = {}
_CACHE_CAP = 4096
_MISSING = object()

#: Per-shape budget of recorded-but-unusable pockets: once a dispatch
#: shape has produced this many records the session's mode could not
#: apply, it stops recording that shape and falls through to live
#: execution (pockets are not free; see ``ReplaySession._decide``).
_UNUSABLE_LIMIT = 3

#: Process-lifetime counters (exposed by the sweep service ``/stats``).
STATS = {"hits": 0, "misses": 0, "records": 0, "evictions": 0,
         "unreplayable": 0}


def cache_stats() -> dict:
    """Snapshot of the process-global replay cache counters."""
    return dict(STATS, entries=len(_CACHE))


def clear_cache() -> None:
    """Drop all cached records (counters are kept — they are
    process-lifetime)."""
    _CACHE.clear()


def _cache_put(key: Any, rec: "_Record | None") -> None:
    if len(_CACHE) >= _CACHE_CAP:
        _CACHE.pop(next(iter(_CACHE)))
        STATS["evictions"] += 1
    _CACHE[key] = rec
    if rec is None:
        STATS["unreplayable"] += 1
    else:
        STATS["records"] += 1


# ---------------------------------------------------------------------------
# Keying
# ---------------------------------------------------------------------------

def payload_signature(payload: Any):
    """Replay-safe signature of one rank's payload, or None.

    Size-only payloads (:class:`Bytes`, None, lists thereof) fully
    determine simulated cost; anything carrying data (ndarrays) returns
    None and vetoes replay for the whole dispatch.
    """
    if payload is None:
        return ("none",)
    if isinstance(payload, Bytes):
        return ("b", payload.nbytes)
    if isinstance(payload, (list, tuple)):
        sizes = []
        for p in payload:
            if isinstance(p, Bytes):
                sizes.append(p.nbytes)
            elif p is None:
                sizes.append(-1)
            else:
                return None
        return ("lb", tuple(sizes))
    return None


def sync_signature(sync: Any):
    """Keyable descriptor of an on-node sync policy, or None.

    Only the two modelled policies are replayable; a user-defined
    subclass could carry hidden state the signature cannot capture, so
    it vetoes replay.
    """
    from repro.core.sync import BarrierSync, FlagSync

    if type(sync) is BarrierSync:
        return ("barrier",)
    if type(sync) is FlagSync:
        return ("flags", sync.flag_latency)
    return None


def _sync_from(desc):
    from repro.core.sync import BarrierSync, FlagSync

    if desc[0] == "barrier":
        return BarrierSync()
    return FlagSync(desc[1])


def replay_key(prefix: tuple, op: str, sigs: tuple, offsets: tuple,
               order: tuple = ()) -> tuple:
    """The full cache key of one dispatch.

    *offsets* is the vector of per-rank entry-time offsets in ticks
    relative to the earliest rank.  The runtime only ever replays the
    all-zero vector (simultaneous entry), but the key is sensitive to it
    by construction — staggered entries must never alias aligned ones.

    *order* is the intra-timestep arrival permutation (ranks in the
    order their entry events processed).  Even from a simultaneous
    entry, order-sensitive resource queues (links, memory channels)
    grant in first-come order, so two aligned entries with different
    arrival permutations assign the contention tail to different ranks;
    they must never share a record.
    """
    return (prefix, op, tuple(sigs), tuple(offsets), tuple(order))


def job_prefix(job) -> tuple:
    """Everything outside the dispatch itself that determines its cost."""
    placement = job.placement
    n = placement.num_ranks
    machine = job.machine
    return (
        ENGINE_VERSION,
        job.spec.fingerprint(),
        n,
        placement.socket_mode,
        tuple(placement.node_of(r) for r in range(n)),
        tuple(machine.socket_of(r) for r in range(n)),
        astuple(job.tuning),
        type(job.policy).__name__,
        job.policy.describe(),
        job.link_contention,
        job.fast_path,
        None if job.tracer is None
        else (job.tracer.detail, job.tracer.compute),
    )


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------

class _Record:
    """Outcome of one dispatch from a quiescent simultaneous entry."""

    __slots__ = (
        "d_ticks", "results", "counters", "per_pair", "max_hops",
        "templates", "events", "exit_order", "profiles",
    )

    def __init__(self, d_ticks, results, counters, per_pair, max_hops,
                 templates, events, exit_order, profiles):
        self.d_ticks = d_ticks        # per-rank duration in whole ticks
        self.results = results        # per-rank return values
        self.counters = counters      # bulk counter deltas (see _snapshot)
        self.per_pair = per_pair      # {(src,dst): (d_count, d_bytes)}
        self.max_hops = max_hops
        self.templates = templates    # span templates (t as relative ticks)
        self.events = events          # engine events one live execution costs
        self.exit_order = exit_order  # ranks in exit-event processing order
        self.profiles = profiles      # per-rank (op, dcalls, dbytes, dtime)

    def result_for(self, rank: int):
        v = self.results[rank]
        # Lists are handed to callers who may mutate them; Bytes/None are
        # value-semantic and safe to share.
        return list(v) if type(v) is list else v


def _snapshot(job):
    """Bulk counters + per-pair traffic of *job*, for window deltas."""
    net = job.machine.network.stats
    return (
        (job.msg_engine.sent_messages, job.msg_engine.sent_bytes,
         job.machine.intra_copies, job.machine.intra_bytes,
         net.messages, net.bytes, net.rendezvous_messages),
        dict(net.per_pair),
        net.max_hops,
    )


class _Pending:
    """Per-(comm, sequence) parking state for one collective entry."""

    __slots__ = ("op", "arrivals", "seen", "decided")

    def __init__(self, op: str):
        self.op = op
        self.arrivals: dict[int, tuple[Any, Event]] = {}
        self.seen = 0
        self.decided: str | None = None


class _MeasureState:
    """Instruments one live, aligned, quiescent execution: every rank
    reports its duration and result; the last report hands the complete
    measurement to :meth:`_finish` (recording or verification)."""

    __slots__ = ("session", "op", "counters_base", "per_pair_base",
                 "trace_base", "prof_base", "t0_ticks", "d_ticks",
                 "results", "nranks")

    def __init__(self, session: "ReplaySession", op: str):
        self.session = session
        self.op = op
        job = session.job
        self.counters_base, self.per_pair_base, _ = _snapshot(job)
        self.trace_base = (
            len(job.tracer.records) if job.tracer is not None else 0
        )
        self.prof_base = [
            {o: (s.calls, s.bytes, s.time)
             for o, s in ctx.profile.ops.items()}
            for ctx in job.contexts
        ]
        self.t0_ticks = round(job.engine.now * _INV_TICK)
        #: Insertion order is the live exit order (reports arrive as
        #: each rank's continuation processes).
        self.d_ticks: dict[int, int] = {}
        self.results: dict[int, Any] = {}
        self.nranks = session.world_size

    def report(self, rank: int, d_ticks: int, result: Any) -> None:
        self.d_ticks[rank] = d_ticks
        self.results[rank] = result
        if len(self.d_ticks) == self.nranks:
            self._finish()

    def _finish(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class _VerifyState(_MeasureState):
    """Collects live measurements of one verified hit and compares them
    against the record when the last rank exits."""

    __slots__ = ("rec", "top")

    def __init__(self, session: "ReplaySession", rec: _Record, op: str):
        super().__init__(session, op)
        self.rec = rec
        #: Per-rank top-level wrapper entries, delivered by
        #: ``Comm._collective`` via the session's ``profile_taps``.
        self.top: dict[int, tuple] = {}

    def _fail(self, what: str, recorded, live) -> None:
        raise ReplayVerifyError(
            f"replay verify failed for {self.op!r}: {what}: "
            f"recorded {recorded!r} != live {live!r}"
        )

    def _finish(self) -> None:
        # The enclosing ``Comm._collective`` wrapper records each rank's
        # top-level profile entry *after* the dispatch returns, so the
        # last reporting rank's profile delta is still incomplete here.
        # Defer the comparison one queue turn: a zero-delay callback
        # runs after every rank continuation has finished its
        # synchronous segment at this timestep.  A verify failure then
        # propagates raw from ``Engine.run`` instead of being wrapped
        # as a rank-process crash.
        self.session.job.engine.timeout(0.0).add_callback(
            lambda _ev: self._compare()
        )

    def _compare(self) -> None:
        rec = self.rec
        live_d = tuple(self.d_ticks[r] for r in range(self.nranks))
        if live_d != rec.d_ticks:
            self._fail("per-rank tick deltas", rec.d_ticks, live_d)
        live_order = tuple(self.d_ticks)
        if live_order != rec.exit_order:
            self._fail("exit order", rec.exit_order, live_order)
        live_res = [self.results[r] for r in range(self.nranks)]
        if live_res != list(rec.results):
            self._fail("results", rec.results, live_res)
        job = self.session.job
        counters, per_pair, _ = _snapshot(job)
        d_counters = tuple(
            a - b for a, b in zip(counters, self.counters_base)
        )
        if d_counters != rec.counters:
            self._fail("counter deltas", rec.counters, d_counters)
        d_pair = _per_pair_delta(per_pair, self.per_pair_base)
        if d_pair != rec.per_pair:
            self._fail("per-pair traffic", rec.per_pair, d_pair)
        if job.tracer is not None and rec.templates is not None:
            live = _normalize_spans(
                job.tracer.records[self.trace_base:], self.t0_ticks
            )
            recd = _normalize_templates(rec.templates)
            if live != recd:
                self._fail("span slice", recd, live)
        # Profile deltas.  The record carries only *nested* wrapped
        # collectives; the live delta additionally contains the
        # top-level ``Comm._collective`` entry, tapped on the way out —
        # fold it into the expectation before comparing.
        live_prof = []
        expect_prof = []
        for rank, (ctx, before) in enumerate(
            zip(job.contexts, self.prof_base)
        ):
            delta = {}
            for o, s in ctx.profile.ops.items():
                c0, b0, t0 = before.get(o, (0, 0.0, 0.0))
                if (s.calls, s.bytes, s.time) != (c0, b0, t0):
                    delta[o] = (s.calls - c0, s.bytes - b0, s.time - t0)
            expect = {
                o: (dc, dby, dt) for o, dc, dby, dt in rec.profiles[rank]
            }
            top = self.top.get(rank)
            if top is not None:
                o, nbytes, dt = top
                dc, dby, dt0 = expect.get(o, (0, 0.0, 0.0))
                expect[o] = (dc + 1, dby + nbytes, dt0 + dt)
            live_prof.append(delta)
            expect_prof.append(expect)
        if live_prof != expect_prof:
            self._fail("profile deltas", expect_prof, live_prof)


def _per_pair_delta(end: dict, base: dict) -> dict:
    out = {}
    for pair, (c, b) in end.items():
        c0, b0 = base.get(pair, (0, 0.0))
        if c != c0 or b != b0:
            out[pair] = (c - c0, b - b0)
    return out


_SPAN_DROP = ("sid", "parent", "replayed")


def _normalize_spans(records: list[dict], t0_ticks: int) -> list[dict]:
    """Shift-normalize a live span slice for comparison: absolute times
    become relative ticks, span ids become slice positions."""
    sid_pos = {}
    out = []
    for i, r in enumerate(records):
        d = {k: v for k, v in r.items() if k not in _SPAN_DROP}
        d["_tt"] = round((d.pop("t") - t0_ticks * TICK) * _INV_TICK)
        sid = r.get("sid")
        if sid is not None:
            sid_pos[sid] = i
            par = r.get("parent")
            d["_par"] = None if par is None else sid_pos.get(par)
        out.append(d)
    return out


def _normalize_templates(templates: list[dict]) -> list[dict]:
    sid_pos = {}
    out = []
    for i, tpl in enumerate(templates):
        d = {k: v for k, v in tpl.items() if k not in _SPAN_DROP}
        sid = tpl.get("sid")
        if sid is not None:
            sid_pos[sid] = i
            par = tpl.get("parent")
            d["_par"] = None if par is None else sid_pos.get(par)
        out.append(d)
    return out


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

class ReplaySession:
    """Per-job replay state: parking, decision, recording, application.

    Created by :class:`~repro.mpi.runtime.MPIJob` when replay is enabled
    and structurally possible (symbolic payload mode, no noise model).
    """

    def __init__(self, job, verify: bool = False, loop: bool = False):
        self.job = job
        self.engine = job.engine
        self.verify = verify
        #: Loop mode: apply records whose ranks exit at *different*
        #: timesteps.  While such a replay's window [entry, last exit]
        #: passes, the simulator's resources sit idle even though the
        #: recorded execution kept them busy — so any live op released
        #: inside the window would see contention-free resources and
        #: diverge from unreplayed execution.  Parking (an align gate or
        #: an eligible dispatch entry) is the only activity that can
        #: safely overlap a window; loop mode is therefore reserved for
        #: align-disciplined programs (the benchmark harnesses), whose
        #: ranks go straight from each collective into ``Comm.align()``.
        #: The default mode only applies uniform-exit records — an
        #: atomic time jump with an empty window, unconditionally exact
        #: for arbitrary programs.
        self.loop = loop
        self.world_size = job.placement.num_ranks
        self.hits = 0
        self.misses = 0
        self.events_saved = 0
        #: Outstanding non-blocking collectives (any rank) — maintained
        #: by :func:`repro.mpi.nonblocking.spawn_collective`.
        self.pending_icolls = 0
        #: RMA window states registered by ``win_allocate`` for the
        #: lock-idle quiescence check.
        self.rma_windows: list[Any] = []
        self._identity = tuple(range(self.world_size))
        #: Verify-mode taps: world rank -> the :class:`_VerifyState`
        #: awaiting that rank's enclosing ``Comm._collective`` top-level
        #: profile entry, which the pocket (whose bodies call the
        #: unwrapped ``_run_*`` dispatchers) never records.
        self.profile_taps: dict[int, Any] = {}
        #: Dispatch shapes ``(op, sigs)`` that have executed live at
        #: least once in this job — replay only applies after that.
        self._warm: set[tuple] = set()
        self._unusable: dict[tuple, int] = {}
        self._idok: dict[int, bool] = {}
        self._seq: dict[tuple[int, int], int] = {}
        self._pending: dict[tuple[int, int], _Pending] = {}
        self._prefix: tuple | None = None

    @property
    def prefix(self) -> tuple:
        if self._prefix is None:
            self._prefix = job_prefix(self.job)
        return self._prefix

    # -- entry ----------------------------------------------------------
    def run(self, comm, op: str, sig, inner: Callable[[], Any]):
        """Coroutine: route one dispatch through the replay layer.

        *inner* builds the normal execution coroutine; *sig* is this
        rank's payload/shape signature (None vetoes — the decision is
        still collective, so every rank parks either way).
        """
        n = self.world_size
        if comm.size != n or not self._identity_group(comm):
            result = yield from inner()
            return result
        eng = self.engine
        skey = (comm._shared.id, comm.rank)
        seq = self._seq.get(skey, 0) + 1
        self._seq[skey] = seq
        pkey = (comm._shared.id, seq)
        pend = self._pending.get(pkey)
        if pend is None:
            pend = self._pending[pkey] = _Pending(op)
            eng.on_time_advance(lambda: self._decide(pkey))
        pend.seen += 1
        if pend.decided is not None:
            # Earlier ranks were already released for live execution;
            # this rank arrived at a later timestep and runs directly.
            if pend.seen == n:
                self._pending.pop(pkey, None)
            result = yield from inner()
            return result
        ev = Event(eng, "replay.park")
        pend.arrivals[comm.rank] = (sig, ev)
        verdict, value = yield ev
        if verdict == "done":
            return value
        if verdict == "measure":
            # Live execution instrumented for recording or verification.
            t0 = eng.now
            result = yield from inner()
            value.report(
                comm.rank, round((eng.now - t0) * _INV_TICK), result
            )
            # The enclosing wrapper's top-level profile entry (recorded
            # after this return) belongs to the verified delta too.
            self.profile_taps[comm._ctx.world_rank] = value
            return result
        result = yield from inner()
        return result

    def _identity_group(self, comm) -> bool:
        ok = self._idok.get(comm._shared.id)
        if ok is None:
            ok = tuple(comm.group.world_ranks()) == self._identity
            self._idok[comm._shared.id] = ok
        return ok

    # -- decision -------------------------------------------------------
    def _decide(self, pkey) -> None:
        pend = self._pending.get(pkey)
        if pend is None or pend.decided is not None:
            return
        n = self.world_size
        if len(pend.arrivals) < n:
            # Staggered entry: release the parked ranks in the same
            # timestep they arrived — zero virtual-time distortion.
            self._release(pend, "live", None)
            return
        self._pending.pop(pkey, None)
        sigs = tuple(pend.arrivals[r][0] for r in range(n))
        if any(s is None for s in sigs) or not self.quiescent():
            self._release(pend, "live", None)
            return
        wkey = (pend.op, sigs)
        if wkey not in self._warm:
            # First execution of this dispatch shape in the job: run it
            # live so one-off lazy setup (sub-comms, windows, caches)
            # lands in the live job exactly as it would with replay off.
            # Records are steady-state and apply from the second
            # occurrence on.
            self._warm.add(wkey)
            self.misses += 1
            STATS["misses"] += 1
            self._release(pend, "live", None)
            return
        order = tuple(pend.arrivals)
        key = replay_key(self.prefix, pend.op, sigs, (0,) * n, order)
        rec = _CACHE.get(key, _MISSING)
        if rec is _MISSING:
            if self._unusable.get(wkey, 0) >= _UNUSABLE_LIMIT:
                # This shape keeps producing records this mode cannot
                # apply (non-uniform exits in default mode, rotating
                # entry permutations): stop paying for pockets it will
                # only throw away.
                self.misses += 1
                STATS["misses"] += 1
                self._release(pend, "live", None)
                return
            rec = self._record(pend.op, sigs, key, order)
        if rec is None or (
            not self.loop and any(d != rec.d_ticks[0] for d in rec.d_ticks)
        ):
            self._unusable[wkey] = self._unusable.get(wkey, 0) + 1
            self.misses += 1
            STATS["misses"] += 1
            self._release(pend, "live", None)
            return
        self.hits += 1
        STATS["hits"] += 1
        if self.verify:
            self._release(
                pend, "measure", _VerifyState(self, rec, pend.op)
            )
        else:
            self._apply(rec, pend)

    def _release(self, pend: _Pending, verdict: str, value) -> None:
        # Arrival order (dict insertion order), NOT rank order: released
        # ranks re-execute their entry actions in the same relative
        # order they would have run unparked, so order-sensitive
        # resource queues (links, memory channels) grant identically.
        pend.decided = verdict
        for _sig, ev in pend.arrivals.values():
            ev.succeed((verdict, value))

    def quiescent(self) -> bool:
        """True when replay cannot interact with anything in flight."""
        if self.pending_icolls:
            return False
        eng = self.engine
        # Only the parked rank programs may be live: an in-flight message
        # transfer, delivery, or background process vetoes.
        if len(eng._live_processes) != self.world_size:
            return False
        if self.job.msg_engine.pending_total:
            return False
        for shared in self.rma_windows:
            for lock in shared.locks:
                if lock.in_use or lock.queued:
                    return False
        tracer = self.job.tracer
        if tracer is not None:
            # An open span would become the replayed slice's silent
            # parent; the recorded parents would no longer match.
            for stack in tracer._open.values():
                if stack:
                    return False
        return True

    # -- recording (the pocket simulation) ------------------------------
    def _record(self, op: str, sigs: tuple, key, order: tuple
                ) -> _Record | None:
        builders = _POCKET.get(op)
        if builders is None:
            _cache_put(key, None)
            return None
        setup, body = builders
        job = self.job
        from repro.mpi.runtime import MPIJob
        from repro.trace import Tracer

        n = self.world_size
        state: dict[str, Any] = {"exit": {}}
        park: dict[int, Event] = {}

        def program(mpi):
            comm = mpi.world
            st = None
            if setup is not None:
                st = yield from setup(comm, sigs)
            # Warm run: pays the pocket's one-off lazy setup (mirroring
            # the live job's first, never-replayed execution) so the
            # parked second run below is steady-state.
            yield comm._shared.arrive(
                ("replay_warm",), comm.rank, None,
                lambda values: dict.fromkeys(values),
            )
            yield from body(comm, st, sigs)
            # Park: the engine runs dry here (phase one below returns),
            # the recorder snapshots the quiescent baseline, then wakes
            # every rank at one timestep in the live job's arrival
            # permutation.
            ev = Event(mpi.engine, "replay.pocket")
            park[comm.rank] = ev
            yield ev
            result = yield from body(comm, st, sigs)
            state["exit"][comm.rank] = (mpi.engine.now, result)

        trace = (
            Tracer(detail=job.tracer.detail, compute=job.tracer.compute)
            if job.tracer is not None else False
        )
        try:
            pocket = MPIJob(
                job.spec, program,
                placement=job.placement,
                payload="model",
                tuning=job.tuning,
                policy=job.policy,
                trace=trace,
                link_contention=job.link_contention,
                seed=job.seed,
                fast_path=job.fast_path,
                replay=False,
            )
            # Phase one: setup + warm run; the engine runs dry with all
            # ranks parked, which its deadlock detector reports — that
            # *is* the expected phase boundary.
            try:
                pocket.run()
            except DeadlockError:
                pass
            if len(park) != n:
                _cache_put(key, None)
                return None
            # Quiescent baseline, read between engine runs so the event
            # count is exact.
            t0 = pocket.engine.now
            base = _snapshot(pocket)
            events0 = pocket.engine.event_count
            rec0 = (
                len(pocket.tracer.records)
                if pocket.tracer is not None else 0
            )
            prof0 = [
                {o: (s.calls, s.bytes, s.time)
                 for o, s in ctx.profile.ops.items()}
                for ctx in pocket.contexts
            ]
            # Phase two: simultaneous release in arrival order — the
            # same entry state the live dispatch would replay from.
            for r in order:
                park[r].succeed(None)
            pocket.engine.run()
        except Exception:
            if os.environ.get("REPRO_REPLAY_DEBUG"):
                raise
            _cache_put(key, None)
            return None

        exits = state["exit"]
        if len(exits) != n:
            _cache_put(key, None)
            return None
        t0_ticks = round(t0 * _INV_TICK)
        d_ticks = tuple(
            round(exits[r][0] * _INV_TICK) - t0_ticks for r in range(n)
        )
        results = [exits[r][1] for r in range(n)]
        base_counters, base_pairs, _ = base
        end_counters, end_pairs, end_max_hops = _snapshot(pocket)
        counters = tuple(
            a - b for a, b in zip(end_counters, base_counters)
        )
        per_pair = _per_pair_delta(end_pairs, base_pairs)
        # The n release events above are parking overhead, not part of
        # the dispatch.
        events = pocket.engine.event_count - events0 - n

        templates = None
        if pocket.tracer is not None:
            templates = []
            sids = set()
            for r in pocket.tracer.records[rec0:]:
                tpl = dict(r)
                sid = tpl.get("sid")
                if sid is not None:
                    if tpl.get("dur") is None:
                        _cache_put(key, None)
                        return None
                    par = tpl.get("parent")
                    if par is not None and par not in sids:
                        _cache_put(key, None)
                        return None
                    sids.add(sid)
                tpl["_tt"] = round(tpl.pop("t") * _INV_TICK) - t0_ticks
                templates.append(tpl)

        # Per-rank profiler increments.  Every quantity on the tick grid
        # at benchmark magnitudes sums exactly in binary floating point,
        # so plain deltas reproduce live accumulation bit-for-bit.
        profiles = []
        for ctx, before in zip(pocket.contexts, prof0):
            delta = []
            for o, s in ctx.profile.ops.items():
                c0, b0, t0_ = before.get(o, (0, 0.0, 0.0))
                if (s.calls, s.bytes, s.time) != (c0, b0, t0_):
                    delta.append((o, s.calls - c0, s.bytes - b0,
                                  s.time - t0_))
            profiles.append(tuple(sorted(delta)))

        rec = _Record(d_ticks, results, counters, per_pair, end_max_hops,
                      templates, events, tuple(exits), tuple(profiles))
        _cache_put(key, rec)
        return rec

    # -- application ----------------------------------------------------
    def _apply(self, rec: _Record, pend: _Pending) -> None:
        eng = self.engine
        job = self.job
        base_ticks = eng.now * _INV_TICK
        me = job.msg_engine
        mach = job.machine
        net = mach.network.stats
        dm, db, dic, dib, dnm, dnb, drv = rec.counters
        me.sent_messages += dm
        me.sent_bytes += db
        mach.intra_copies += dic
        mach.intra_bytes += dib
        net.messages += dnm
        net.bytes += dnb
        net.rendezvous_messages += drv
        if rec.max_hops > net.max_hops:
            net.max_hops = rec.max_hops
        for pair, (dc, dby) in rec.per_pair.items():
            cur = net.per_pair.get(pair)
            net.per_pair[pair] = (
                (dc, dby) if cur is None else (cur[0] + dc, cur[1] + dby)
            )
        if job.tracer is not None and rec.templates is not None:
            job.tracer.emit_replayed(rec.templates, base_ticks)
        for rank, delta in enumerate(rec.profiles):
            prof = job.contexts[rank].profile
            if not prof.enabled:
                continue
            for o, dc, dby, dt in delta:
                stats = prof.ops.get(o)
                if stats is None:
                    stats = prof.ops[o] = OpStats()
                stats.calls += dc
                stats.bytes += dby
                stats.time += dt
        # Relative to replay-off execution: the dispatch would have cost
        # rec.events; replay costs the n wake events below instead.
        self.events_saved += rec.events - self.world_size
        # Push wakes in recorded exit order: ranks leaving at the same
        # tick resume in the same relative order as live execution, so
        # the *next* dispatch sees an identical entry permutation.
        for rank in rec.exit_order:
            ev = pend.arrivals[rank][1]
            # Mimic Engine.timeout(): pre-trigger and schedule at the
            # recorded wake time — one event per rank, O(nranks) total.
            ev._state = _TRIGGERED
            ev._value = ("done", rec.result_for(rank))
            eng._push((base_ticks + rec.d_ticks[rank]) * TICK, ev)


# ---------------------------------------------------------------------------
# Pocket builders: reconstruct one dispatch from its signature vector
# ---------------------------------------------------------------------------

def _pl(psig):
    """Rebuild a payload from its signature."""
    kind = psig[0]
    if kind == "none":
        return None
    if kind == "b":
        return Bytes(psig[1])
    return [None if s < 0 else Bytes(s) for s in psig[1]]


def _rop(value) -> ReduceOp:
    return ReduceOp(value)


def _body_flat(call):
    """Flat dispatch body: rebuild args from this rank's signature and
    run the (unwrapped) dispatcher with a pocket-drawn tag."""

    def body(comm, st, sigs):
        result = yield from call(comm, sigs[comm.rank], comm._next_coll_tag())
        return result

    return body


def _run(name):
    from repro.mpi import collectives as disp

    return getattr(disp, name)


def _b_allgather(comm, sig, tag):
    result = yield from _run("_run_allgather")(comm, _pl(sig[1]), tag)
    return result


def _b_allgatherv(comm, sig, tag):
    result = yield from _run("_run_allgatherv")(
        comm, _pl(sig[1]), tag, sig[2]
    )
    return result


def _b_bcast(comm, sig, tag):
    result = yield from _run("_run_bcast")(comm, _pl(sig[1]), sig[2], tag)
    return result


def _b_gather(comm, sig, tag):
    result = yield from _run("_run_gather")(
        comm, _pl(sig[1]), sig[2], tag, sig[3]
    )
    return result


def _b_scatter(comm, sig, tag):
    result = yield from _run("_run_scatter")(comm, _pl(sig[1]), sig[2], tag)
    return result


def _b_reduce(comm, sig, tag):
    result = yield from _run("_run_reduce")(
        comm, _pl(sig[1]), _rop(sig[2]), sig[3], tag
    )
    return result


def _reduce_family(runner):
    def b(comm, sig, tag, _runner=runner):
        result = yield from _run(_runner)(
            comm, _pl(sig[1]), _rop(sig[2]), tag
        )
        return result

    return b


def _b_barrier(comm, sig, tag):
    result = yield from _run("_run_barrier")(comm, tag)
    return result


def _b_alltoall(comm, sig, tag):
    result = yield from _run("_run_alltoall")(comm, _pl(sig[1]), tag)
    return result


# -- hybrid builders --------------------------------------------------------

def _setup_hybrid_buf(comm, sigs):
    """Pre-gate setup for buffer-based hybrid ops: rebuild the context
    and the shared buffer (one-off activities, excluded from timing
    exactly as the paper's §5 excludes them)."""
    from repro.core.hierarchy import HybridContext

    sig = sigs[comm.rank]
    hctx = yield from HybridContext.create(
        comm, default_sync=_sync_from(sig[2])
    )
    buf = yield from hctx._alloc(list(sig[1]))
    return (hctx, buf)


def _setup_hybrid_ctx(comm, sigs):
    from repro.core.hierarchy import HybridContext

    sig = sigs[comm.rank]
    hctx = yield from HybridContext.create(
        comm, default_sync=_sync_from(sig[1])
    )
    return hctx


def _body_hy_allgather(comm, st, sigs):
    from repro.core.allgather import hy_allgather

    sig = sigs[comm.rank]
    hctx, buf = st
    yield from hy_allgather(
        hctx, buf, sync=None, pipelined=sig[3], chunk_bytes=sig[4],
        pack_datatypes=sig[5],
    )
    return None


def _body_hy_bcast(comm, st, sigs):
    from repro.core.bcast import hy_bcast

    sig = sigs[comm.rank]
    hctx, buf = st
    yield from hy_bcast(hctx, buf, root=sig[3], sync=None)
    return None


def _body_hy_allreduce(comm, st, sigs):
    from repro.core.reduce import hy_allreduce

    sig = sigs[comm.rank]
    result = yield from hy_allreduce(
        st, _pl(sig[2]), sig[3], _rop(sig[4]), sync=None
    )
    return result


#: op -> (pre-gate setup | None, post-gate body).
_POCKET: dict[str, tuple[Any, Any]] = {
    "allgather": (None, _body_flat(_b_allgather)),
    "allgatherv": (None, _body_flat(_b_allgatherv)),
    "bcast": (None, _body_flat(_b_bcast)),
    "gather": (None, _body_flat(_b_gather)),
    "gatherv": (None, _body_flat(_b_gather)),
    "scatter": (None, _body_flat(_b_scatter)),
    "reduce": (None, _body_flat(_b_reduce)),
    "allreduce": (None, _body_flat(_reduce_family("_run_allreduce"))),
    "scan": (None, _body_flat(_reduce_family("_run_scan"))),
    "exscan": (None, _body_flat(_reduce_family("_run_exscan"))),
    "reduce_scatter": (
        None, _body_flat(_reduce_family("_run_reduce_scatter"))
    ),
    "barrier": (None, _body_flat(_b_barrier)),
    "alltoall": (None, _body_flat(_b_alltoall)),
    "hy_allgather": (_setup_hybrid_buf, _body_hy_allgather),
    "hy_bcast": (_setup_hybrid_buf, _body_hy_bcast),
    "hy_allreduce": (_setup_hybrid_ctx, _body_hy_allreduce),
}
