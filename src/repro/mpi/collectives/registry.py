"""Collective-algorithm registry and pluggable selection policies.

Real MPI libraries treat algorithm selection as a first-class, swappable
layer: MPICH ships the Thakur et al. decision tables, Open MPI's "tuned"
component exposes forced-algorithm MCA parameters, and both let a cost
model override the static tables.  This module gives the simulated
runtime the same structure:

* every algorithm — flat, hierarchical, multi-leader, and the hybrid
  shared-window exchanges — registers an :class:`Algorithm` descriptor
  (operation, name, applicability predicate, α-β cost estimator);
* a :class:`SelectionPolicy` decides, per call, which registered
  descriptor runs.  Three implementations are provided:

  - :class:`TableSelection` — the MPICH-style decision tables driven by
    :class:`~repro.mpi.collectives.tuning.CollectiveTuning` thresholds
    (the behavior-preserving default);
  - :class:`CostModelSelection` — picks the applicable candidate with
    the lowest α-β cost estimate for the current communicator/machine;
  - :class:`ForcedSelection` — per-operation overrides (from config or
    ``REPRO_COLL_<OP>`` environment variables), falling back to a base
    policy for unlisted operations and inapplicable forces.

The policy travels on the rank context (``ctx.policy``, threaded through
:class:`~repro.mpi.runtime.MPIJob`); the ``dispatch_*`` entry points in
:mod:`repro.mpi.collectives` consult it for every call and record the
decision — operation, algorithm, policy, bytes — in the job trace.

Descriptor calling conventions (per operation)
----------------------------------------------

``Algorithm.fn`` is a generator coroutine with the operation's native
signature:

==================  ====================================================
op                  ``fn`` signature
==================  ====================================================
allgather(v)        ``fn(comm, payload, tag, total)`` → BlockSet
bcast               ``fn(comm, payload, root, tag)`` → payload
gather(v)           ``fn(comm, payload, root, tag)`` → BlockSet | None
scatter             ``fn(comm, payloads, root, tag)`` → payload
reduce              ``fn(comm, payload, op, root, tag)``
allreduce &c.       ``fn(comm, payload, op, tag)``
alltoall            ``fn(comm, payloads, tag)`` → list
barrier             ``fn(comm, tag)``
hy_*                not runnable here — executed by ``repro.core``
==================  ====================================================

Cost estimators are *estimates*: simple Hockney (α-β) critical-path
formulas over the communicator's dominant transport.  They exist to
rank candidates, not to predict the simulator's exact charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.mpi.collectives import hierarchical as hier
from repro.mpi.collectives.allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
)
from repro.mpi.collectives.allgatherv import (
    allgatherv_bruck,
    allgatherv_gather_bcast,
    allgatherv_ring,
)
from repro.mpi.collectives.alltoall import alltoall_bruck, alltoall_pairwise
from repro.mpi.collectives.barrier import (
    barrier_dissemination,
    barrier_shm_flags,
)
from repro.mpi.collectives.bcast import (
    bcast_binomial,
    bcast_pipeline,
    bcast_scatter_allgather,
)
from repro.mpi.collectives.gather import (
    gather_binomial,
    gather_linear,
    scatter_binomial,
    scatter_linear,
)
from repro.mpi.collectives.reduce import (
    allreduce_rabenseifner,
    allreduce_recursive_doubling,
    allreduce_ring,
    reduce_binomial,
    scan_linear,
)
from repro.mpi.collectives.reduce_scatter import (
    reduce_scatter_halving,
    reduce_scatter_pairwise,
)
from repro.mpi.collectives.scan_ops import exscan_binomial, scan_binomial
from repro.mpi.datatypes import nbytes_of
from repro.mpi.errors import MPIError

__all__ = [
    "CollRequest",
    "Algorithm",
    "register",
    "algorithms_for",
    "get_algorithm",
    "ops",
    "spans_hierarchy",
    "comm_shape",
    "SelectionPolicy",
    "TableSelection",
    "CostModelSelection",
    "ForcedSelection",
    "resolve_policy",
    "policy_of",
    "trace_event",
    "trace_begin",
    "trace_end",
    "phase_begin",
    "phase_end",
    "bridge_allgatherv",
    "ENV_POLICY",
    "ENV_OP_PREFIX",
]

ENV_POLICY = "REPRO_COLL_POLICY"
ENV_OP_PREFIX = "REPRO_COLL_"


# ---------------------------------------------------------------------------
# Requests and descriptors
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CollRequest:
    """Per-call selection inputs.

    Attributes
    ----------
    op:
        Operation name (``"allgather"``, ``"bcast"``, …).
    nbytes:
        Per-rank message bytes (the rooted/vector message size).
    total:
        Total result bytes — for the allgather family this is the full
        receive-buffer size (the MPICH threshold convention); for other
        operations it equals ``nbytes``.
    root:
        Root rank for rooted collectives, else None.
    """

    op: str
    nbytes: int
    total: int
    root: int | None = None


@dataclass(frozen=True)
class Algorithm:
    """One registered collective algorithm.

    ``applicable(comm, req)`` is a *structural* predicate (communicator
    shape, power-of-two-ness) — policy preferences such as
    ``tuning.smp_aware`` belong to the policies, not to the descriptor.
    """

    op: str
    name: str
    fn: Callable[..., Any]
    applicable: Callable[[Any, CollRequest], bool]
    cost: Callable[[Any, CollRequest], float]
    kind: str = "flat"  # "flat" | "hierarchical" | "hybrid"

    def __repr__(self) -> str:
        return f"<Algorithm {self.op}:{self.name} [{self.kind}]>"


_REGISTRY: dict[str, dict[str, Algorithm]] = {}


def register(algorithm: Algorithm) -> Algorithm:
    """Add *algorithm* to the registry (op+name must be unique)."""
    by_name = _REGISTRY.setdefault(algorithm.op, {})
    if algorithm.name in by_name:
        raise ValueError(
            f"algorithm {algorithm.name!r} already registered for "
            f"op {algorithm.op!r}"
        )
    by_name[algorithm.name] = algorithm
    return algorithm


def algorithms_for(op: str) -> list[Algorithm]:
    """All registered algorithms of *op*, in registration order."""
    return list(_REGISTRY.get(op, {}).values())


def get_algorithm(op: str, name: str) -> Algorithm:
    """Descriptor by (op, name); raises KeyError listing known names."""
    by_name = _REGISTRY.get(op)
    if by_name is None:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown collective op {op!r}; known: {known}")
    try:
        return by_name[name]
    except KeyError:
        known = ", ".join(sorted(by_name))
        raise KeyError(
            f"unknown algorithm {name!r} for op {op!r}; known: {known}"
        ) from None


def ops() -> list[str]:
    """All operations with registered algorithms."""
    return list(_REGISTRY)


# ---------------------------------------------------------------------------
# Communicator shape (cached — selection runs on every collective call)
# ---------------------------------------------------------------------------

def comm_shape(comm) -> tuple[int, int]:
    """``(num_nodes, max_ranks_per_node)`` of *comm*.

    Cached on the communicator's *shared* state: the shape is a pure
    function of group + placement, so one O(p) scan serves every rank
    (a per-rank cache would redo it p times — O(p^2) per job)."""
    cache = comm.shared_cache
    shape = cache.get("_shape")
    if shape is None:
        placement = comm.ctx.placement
        per_node: dict[int, int] = {}
        for w in comm.group.world_ranks():
            n = placement.node_of(w)
            per_node[n] = per_node.get(n, 0) + 1
        shape = cache["_shape"] = (
            len(per_node), max(per_node.values(), default=1)
        )
    return shape


def spans_hierarchy(comm) -> bool:
    """True when *comm* covers >1 node and some node hosts >1 of its
    ranks — the regime where SMP-aware algorithms apply."""
    nodes, max_ppn = comm_shape(comm)
    return nodes > 1 and max_ppn > 1


def _single_node(comm) -> bool:
    return comm_shape(comm)[0] == 1


def _is_pof2(n: int) -> bool:
    return n & (n - 1) == 0


# ---------------------------------------------------------------------------
# Selection policies
# ---------------------------------------------------------------------------

class SelectionPolicy:
    """Chooses one registered algorithm per collective call.

    ``select`` filters the registry down to structurally-applicable
    candidates (optionally restricted to an explicit *candidates* name
    set — used by composite algorithms for their internal stages) and
    delegates the choice to :meth:`choose`.
    """

    name = "base"

    def select(self, comm, req: CollRequest,
               candidates: Iterable[str] | None = None) -> Algorithm:
        allowed = None if candidates is None else set(candidates)
        cands = [
            d for d in algorithms_for(req.op)
            if (allowed is None or d.name in allowed)
            and d.applicable(comm, req)
        ]
        if not cands:
            raise MPIError(
                f"no applicable algorithm for op {req.op!r} on "
                f"{comm.name!r} (size {comm.size})"
            )
        return self.choose(comm, req, cands)

    def choose(self, comm, req: CollRequest,
               cands: list[Algorithm]) -> Algorithm:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human description (shown by the bench CLI)."""
        return self.name


class TableSelection(SelectionPolicy):
    """MPICH-style decision tables driven by ``comm.ctx.tuning``.

    This reproduces the pre-registry hardcoded selection logic exactly:
    the thresholds come from the :class:`CollectiveTuning` personality,
    hierarchical variants are preferred when ``tuning.smp_aware`` and
    the communicator spans several multi-rank nodes.
    """

    name = "table"

    def choose(self, comm, req, cands):
        prefs = self._prefs(comm, req)
        by_name = {d.name: d for d in cands}
        for name in prefs:
            if name in by_name:
                return by_name[name]
        return cands[0]

    def _prefs(self, comm, req: CollRequest) -> list[str]:
        """Ordered algorithm preference for this call."""
        tuning = comm.ctx.tuning
        smp = tuning.smp_aware and spans_hierarchy(comm)
        table = getattr(self, f"_{req.op}", None)
        if table is None:
            return []
        return table(comm, req, tuning, smp)

    # -- per-op tables (mirroring the historical _select_* helpers) --------
    def _allgather(self, comm, req, tuning, smp):
        if smp:
            return ["smp_hierarchical"]
        if _is_pof2(comm.size) and req.total <= tuning.allgather_rd_max_total:
            return ["recursive_doubling"]
        if req.total <= tuning.allgather_bruck_max_total:
            return ["bruck"]
        return ["ring"]

    def _allgatherv(self, comm, req, tuning, smp):
        if smp:
            return ["smp_hierarchical"]
        # Never recursive doubling — the structural penalty of [29].
        if req.total <= tuning.allgatherv_bruck_max_total:
            return ["bruck_v"]
        return ["ring_v"]

    def _bcast(self, comm, req, tuning, smp):
        if smp:
            return ["smp_hierarchical"]
        if req.nbytes <= tuning.bcast_binomial_max or comm.size <= 2:
            return ["binomial"]
        if (req.nbytes > 8 * tuning.bcast_pipeline_chunk
                and comm.size >= 8):
            return ["pipeline", "scatter_allgather"]
        return ["scatter_allgather"]

    def _gather(self, comm, req, tuning, smp):
        if req.nbytes > tuning.bcast_binomial_max * 4:
            return ["linear"]
        return ["binomial"]

    _gatherv = _gather

    def _scatter(self, comm, req, tuning, smp):
        return ["binomial"]

    def _reduce(self, comm, req, tuning, smp):
        if smp:
            return ["smp_hierarchical"]
        return ["binomial"]

    def _allreduce(self, comm, req, tuning, smp):
        if smp:
            return ["smp_hierarchical"]
        if req.nbytes <= tuning.allreduce_rd_max:
            return ["recursive_doubling"]
        if _is_pof2(comm.size):
            return ["rabenseifner"]
        return ["ring"]

    def _reduce_scatter(self, comm, req, tuning, smp):
        if (_is_pof2(comm.size)
                and req.nbytes > tuning.reduce_scatter_halving_min):
            return ["recursive_halving"]
        return ["pairwise"]

    def _scan(self, comm, req, tuning, smp):
        if comm.size <= tuning.scan_linear_max_ranks:
            return ["linear"]
        return ["binomial"]

    def _exscan(self, comm, req, tuning, smp):
        return ["binomial"]

    def _alltoall(self, comm, req, tuning, smp):
        if req.nbytes <= tuning.alltoall_bruck_max:
            return ["bruck"]
        return ["pairwise"]

    def _barrier(self, comm, req, tuning, smp):
        if _single_node(comm):
            return ["shm_flags"]
        if smp:
            return ["smp_hierarchical"]
        return ["dissemination"]

    def _hy_allgather(self, comm, req, tuning, smp):
        return ["shared_window"]

    def _hy_bcast(self, comm, req, tuning, smp):
        return ["shared_window"]


class CostModelSelection(SelectionPolicy):
    """Pick the applicable candidate with the lowest α-β cost estimate.

    Deterministic: ties break toward earlier registration order."""

    name = "cost_model"

    def choose(self, comm, req, cands):
        return min(cands, key=lambda d: d.cost(comm, req))


class ForcedSelection(SelectionPolicy):
    """Per-operation algorithm overrides (Open MPI's forced-algorithm
    MCA parameters, ``REPRO_COLL_<OP>`` in this runtime).

    Overrides map op → algorithm name.  Operations without an override
    — or calls where the forced algorithm is structurally inapplicable
    (e.g. a hierarchical variant on a single-node communicator, or a
    stage whose candidate set excludes it) — fall back to *base*.
    """

    name = "forced"

    def __init__(self, overrides: Mapping[str, str],
                 base: SelectionPolicy | None = None):
        self.base = base or TableSelection()
        self.overrides = dict(overrides)
        for op, algo_name in self.overrides.items():
            get_algorithm(op, algo_name)  # raises on typos, eagerly

    def choose(self, comm, req, cands):
        forced = self.overrides.get(req.op)
        if forced is not None:
            for d in cands:
                if d.name == forced:
                    return d
        return self.base.choose(comm, req, cands)

    def describe(self) -> str:
        forced = ", ".join(f"{op}={name}" for op, name
                           in sorted(self.overrides.items()))
        return f"forced({forced}) over {self.base.describe()}"


#: Fallback policy for contexts that carry none.
DEFAULT_POLICY = TableSelection()

_POLICY_NAMES: dict[str, Callable[[], SelectionPolicy]] = {
    "table": TableSelection,
    "cost_model": CostModelSelection,
    "costmodel": CostModelSelection,
}


def resolve_policy(policy: SelectionPolicy | str | None,
                   env: Mapping[str, str] | None = None) -> SelectionPolicy:
    """Resolve a job's selection policy.

    *policy* may be a :class:`SelectionPolicy` instance (used as-is), a
    name (``"table"`` / ``"cost_model"``), or None — in which case the
    environment decides: ``REPRO_COLL_POLICY`` names the base policy and
    any ``REPRO_COLL_<OP>=<algorithm>`` variables wrap it in a
    :class:`ForcedSelection`.
    """
    if isinstance(policy, SelectionPolicy):
        return policy
    if isinstance(policy, str):
        try:
            return _POLICY_NAMES[policy]()
        except KeyError:
            known = ", ".join(sorted(_POLICY_NAMES))
            raise ValueError(
                f"unknown selection policy {policy!r}; known: {known}"
            ) from None
    if env is None:
        import os

        env = os.environ
    base_name = env.get(ENV_POLICY, "table")
    base = resolve_policy(base_name)
    overrides: dict[str, str] = {}
    for key, value in env.items():
        if not key.startswith(ENV_OP_PREFIX) or key == ENV_POLICY:
            continue
        op = key[len(ENV_OP_PREFIX):].lower()
        if op not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(
                f"{key}: unknown collective op {op!r}; known: {known}"
            )
        get_algorithm(op, value)  # raises on unknown algorithm names
        overrides[op] = value
    if overrides:
        return ForcedSelection(overrides, base=base)
    return base


def policy_of(comm) -> SelectionPolicy:
    """The selection policy governing *comm* (rank-context attribute)."""
    return getattr(comm.ctx, "policy", None) or DEFAULT_POLICY


def _dispatch_record(comm, op: str, algo: str, nbytes: int,
                     policy: str | None) -> dict:
    rec = {
        "t": comm.ctx.engine.now,
        "rank": comm.ctx.world_rank,
        "comm": comm.name,
        "op": op,
        "algo": algo,
        "nbytes": nbytes,
    }
    if policy is not None:
        rec["policy"] = policy
    rec["kind"] = "dispatch"
    return rec


def trace_event(comm, op: str, algo: str, nbytes: int,
                policy: str | None = None) -> None:
    """Record one dispatch decision as an instant event (when enabled).

    Kept for backward compatibility; the dispatch layer now records
    duration spans via :func:`trace_begin`/:func:`trace_end`."""
    tracer = comm.ctx.trace
    if tracer is not None:
        tracer.append(_dispatch_record(comm, op, algo, nbytes, policy))


def trace_begin(comm, op: str, algo: str, nbytes: int,
                policy: str | None = None) -> dict | None:
    """Open the dispatch span of one collective call (when enabled).

    Returns the span record to pass to :func:`trace_end` after the
    algorithm ran, or None when tracing is off."""
    tracer = comm.ctx.trace
    if tracer is None:
        return None
    return tracer.begin(_dispatch_record(comm, op, algo, nbytes, policy))


def trace_end(comm, span: dict | None) -> None:
    """Close a span opened by :func:`trace_begin`/:func:`phase_begin`."""
    if span is not None:
        comm.ctx.trace.end(span, comm.ctx.engine.now)


def phase_begin(
    comm, phase: str, nbytes: int = 0, level: str | None = None
) -> dict | None:
    """Open a nested phase span of a composite collective.

    Recorded only at trace detail ``"phase"`` or finer; the tracer links
    it to the innermost open span of the same rank (normally the
    dispatch span of the enclosing collective).  *level* tags the
    hierarchy tier of socket-aware phases (``"socket"`` / ``"node"`` /
    ``"bridge"``); flat and two-level phases omit it, keeping their
    records unchanged."""
    tracer = comm.ctx.trace
    if tracer is None or not tracer.wants("phase"):
        return None
    rec = {
        "t": comm.ctx.engine.now,
        "rank": comm.ctx.world_rank,
        "comm": comm.name,
        "kind": "phase",
        "phase": phase,
        "nbytes": nbytes,
    }
    if level is not None:
        rec["level"] = level
    return tracer.begin(rec)


#: Closing a phase span is identical to closing a dispatch span.
phase_end = trace_end


# ---------------------------------------------------------------------------
# Stage helpers used by composite (hierarchical / hybrid) algorithms
# ---------------------------------------------------------------------------

def _vector_overhead(comm, blocks: int):
    tuning = comm.ctx.tuning
    cost = tuning.vector_block_overhead * blocks
    if cost > 0:
        yield comm.ctx.engine.timeout(cost)


def bridge_allgatherv(bridge, node_blocks, tag: int, total: int):
    """Coroutine: inter-leader exchange used inside hierarchical
    allgathers — a flat v-variant selected by the bridge's policy.

    Node aggregates have equal size only for regular ppn; the v-variant
    is required in general (paper §4.1)."""
    req = CollRequest(op="allgatherv", nbytes=total // max(bridge.size, 1),
                      total=total)
    algo = policy_of(bridge).select(
        bridge, req, candidates=("bruck_v", "ring_v")
    )
    yield from _vector_overhead(bridge, bridge.size)
    result = yield from algo.fn(bridge, node_blocks, tag, total)
    return result


def _bridge_bcast(bridge, payload, root: int, tag: int, nbytes: int):
    """Coroutine: inter-leader broadcast stage (flat algorithm chosen by
    the bridge's policy from the top-level message size)."""
    req = CollRequest(op="bcast", nbytes=nbytes, total=nbytes, root=root)
    algo = policy_of(bridge).select(
        bridge, req,
        candidates=("binomial", "scatter_allgather", "pipeline"),
    )
    result = yield from algo.fn(bridge, payload, root, tag)
    return result


def _bridge_allreduce(bridge, payload, op, tag: int, nbytes: int):
    """Coroutine: inter-leader allreduce stage (flat algorithm chosen by
    the bridge's policy from the top-level message size)."""
    req = CollRequest(op="allreduce", nbytes=nbytes, total=nbytes)
    algo = policy_of(bridge).select(
        bridge, req,
        candidates=("recursive_doubling", "rabenseifner", "ring"),
    )
    result = yield from algo.fn(bridge, payload, op, tag)
    return result


# ---------------------------------------------------------------------------
# Runners: adapt algorithms to the per-op descriptor conventions
# ---------------------------------------------------------------------------

def _ignore_total(algo):
    """Adapt a flat ``fn(comm, payload, tag)`` allgather to the
    ``fn(comm, payload, tag, total)`` registry convention."""

    def run(comm, payload, tag, total):
        result = yield from algo(comm, payload, tag)
        return result

    return run


def _run_gather_bcast_v(comm, payload, tag, total):
    result = yield from allgatherv_gather_bcast(comm, payload, tag)
    return result


def _run_smp_allgather(comm, payload, tag, total):
    def bridge_xchg(bridge, node_blocks, btag):
        result = yield from bridge_allgatherv(bridge, node_blocks, btag, total)
        return result

    full = yield from hier.hier_allgather(
        comm, payload, tag, bridge_xchg, total_nbytes=total
    )
    return full


def _run_smp3_allgather(comm, payload, tag, total):
    def bridge_xchg(bridge, node_blocks, btag):
        result = yield from bridge_allgatherv(bridge, node_blocks, btag, total)
        return result

    full = yield from hier.smp_3level_allgather(
        comm, payload, tag, bridge_xchg, total_nbytes=total
    )
    return full


def _run_multileader_allgather(comm, payload, tag, total):
    k = max(1, comm.ctx.tuning.multileader_k)

    def bridge_xchg(bridge, node_blocks, btag):
        result = yield from bridge_allgatherv(bridge, node_blocks, btag, total)
        return result

    full = yield from hier.multileader_allgather(
        comm, payload, tag, k, bridge_xchg
    )
    return full


def _run_bcast_pipeline(comm, payload, root, tag):
    result = yield from bcast_pipeline(
        comm, payload, root, tag, comm.ctx.tuning.bcast_pipeline_chunk
    )
    return result


def _run_smp_bcast(comm, payload, root, tag):
    nbytes = nbytes_of(payload)

    def bridge_bc(bridge, p, broot, btag):
        result = yield from _bridge_bcast(bridge, p, broot, btag, nbytes)
        return result

    result = yield from hier.hier_bcast(comm, payload, root, tag, bridge_bc)
    return result


def _run_smp_reduce(comm, payload, op, root, tag):
    result = yield from hier.hier_reduce(comm, payload, op, root, tag)
    return result


def _run_smp_allreduce(comm, payload, op, tag):
    nbytes = nbytes_of(payload)

    def bridge_ar(bridge, p, o, btag):
        result = yield from _bridge_allreduce(bridge, p, o, btag, nbytes)
        return result

    result = yield from hier.hier_allreduce(comm, payload, op, tag, bridge_ar)
    return result


def _run_barrier_shm_flags(comm, tag):
    yield from barrier_shm_flags(comm, tag)


def _run_barrier_smp(comm, tag):
    tuning = comm.ctx.tuning
    shm, bridge = yield from hier.hier_comms(comm)
    if shm.size > 1:
        span = phase_begin(comm, "on_node_arrive")
        yield from barrier_shm_flags(shm, tag)
        phase_end(comm, span)
    if bridge is not None and bridge.size > 1:
        span = phase_begin(comm, "bridge_exchange")
        yield from barrier_dissemination(bridge, tag)
        phase_end(comm, span)
    if shm.size > 1:
        # Release phase: one flag store observed by each child.
        span = phase_begin(comm, "on_node_release")
        yield from barrier_shm_flags(
            shm, tag, rounds_cost=tuning.shm_barrier_flag, phase="release"
        )
        phase_end(comm, span)


def _run_barrier_dissemination(comm, tag):
    # The flat path (and only it) pays the per-call software overhead,
    # matching the historical dispatcher.
    tuning = comm.ctx.tuning
    if tuning.call_overhead > 0:
        yield comm.ctx.engine.timeout(tuning.call_overhead)
    yield from barrier_dissemination(comm, tag)


def _not_runnable(*_args, **_kwargs):
    raise MPIError(
        "hybrid descriptors are executed by repro.core, not dispatched "
        "through repro.mpi.collectives"
    )


# ---------------------------------------------------------------------------
# Applicability predicates
# ---------------------------------------------------------------------------

def _always(comm, req) -> bool:
    return True


def _pof2_only(comm, req) -> bool:
    return _is_pof2(comm.size)


def _hier_only(comm, req) -> bool:
    return spans_hierarchy(comm)


def _shm_only(comm, req) -> bool:
    return _single_node(comm)


def _multinode_only(comm, req) -> bool:
    return comm_shape(comm)[0] > 1


def _multi_socket(comm) -> bool:
    return comm.ctx.machine.spec.node.sockets > 1


def _socket_hier_only(comm, req) -> bool:
    """3-level hierarchical forms: need both tiers to be non-trivial."""
    return spans_hierarchy(comm) and _multi_socket(comm)


def _socket_multinode_only(comm, req) -> bool:
    """3-level hybrid forms: need a bridge and a socket tier."""
    return comm_shape(comm)[0] > 1 and _multi_socket(comm)


# ---------------------------------------------------------------------------
# Cost estimators
# ---------------------------------------------------------------------------
#
# ``Algorithm.cost`` used to carry hand-written alpha-beta scores with
# ad-hoc fudge factors; they disagreed with simulated seconds by large
# factors and were only usable for ranking.  Every registration now
# delegates to :mod:`repro.analysis.model`, which prices the call in
# SECONDS with the same protocol rules the simulator implements (the
# conformance suite in ``tests/analysis/`` bounds the divergence), so
# :class:`CostModelSelection` compares real latencies and costs share a
# unit with ``TimedResult``/trace timestamps.

def _model_cost(op: str, name: str):
    def cost(comm, req: CollRequest) -> float:
        from repro.analysis.model import predict_comm

        return predict_comm(comm, req, name)

    return cost


# ---------------------------------------------------------------------------
# Registrations
# ---------------------------------------------------------------------------

def _reg(op, name, fn, applicable=_always, kind="flat"):
    register(Algorithm(
        op=op, name=name, fn=fn, applicable=applicable,
        cost=_model_cost(op, name), kind=kind,
    ))


# allgather family ----------------------------------------------------------
_reg("allgather", "recursive_doubling",
     _ignore_total(allgather_recursive_doubling),
     applicable=_pof2_only)
_reg("allgather", "bruck", _ignore_total(allgather_bruck))
_reg("allgather", "ring", _ignore_total(allgather_ring))
_reg("allgather", "smp_hierarchical", _run_smp_allgather,
     applicable=_hier_only, kind="hierarchical")
_reg("allgather", "multileader", _run_multileader_allgather,
     applicable=_hier_only, kind="hierarchical")
_reg("allgather", "smp_3level", _run_smp3_allgather,
     applicable=_socket_hier_only, kind="hierarchical")

_reg("allgatherv", "bruck_v", _ignore_total(allgatherv_bruck))
_reg("allgatherv", "ring_v", _ignore_total(allgatherv_ring))
_reg("allgatherv", "gather_bcast", _run_gather_bcast_v)
_reg("allgatherv", "smp_hierarchical", _run_smp_allgather,
     applicable=_hier_only, kind="hierarchical")

# bcast ---------------------------------------------------------------------
_reg("bcast", "binomial", bcast_binomial)
_reg("bcast", "scatter_allgather", bcast_scatter_allgather)
_reg("bcast", "pipeline", _run_bcast_pipeline)
_reg("bcast", "smp_hierarchical", _run_smp_bcast,
     applicable=_hier_only, kind="hierarchical")

# gather / scatter ----------------------------------------------------------
_reg("gather", "binomial", gather_binomial)
_reg("gather", "linear", gather_linear)
_reg("gatherv", "binomial", gather_binomial)
_reg("gatherv", "linear", gather_linear)
_reg("scatter", "binomial", scatter_binomial)
_reg("scatter", "linear", scatter_linear)

# reductions ----------------------------------------------------------------
_reg("reduce", "binomial", reduce_binomial)
_reg("reduce", "smp_hierarchical", _run_smp_reduce,
     applicable=_hier_only, kind="hierarchical")

_reg("allreduce", "recursive_doubling", allreduce_recursive_doubling)
_reg("allreduce", "rabenseifner", allreduce_rabenseifner,
     applicable=_pof2_only)
_reg("allreduce", "ring", allreduce_ring)
_reg("allreduce", "smp_hierarchical", _run_smp_allreduce,
     applicable=_hier_only, kind="hierarchical")

_reg("reduce_scatter", "recursive_halving", reduce_scatter_halving,
     applicable=_pof2_only)
_reg("reduce_scatter", "pairwise", reduce_scatter_pairwise)

_reg("scan", "linear", scan_linear)
_reg("scan", "binomial", scan_binomial)
_reg("exscan", "binomial", exscan_binomial)

# alltoall ------------------------------------------------------------------
_reg("alltoall", "bruck", alltoall_bruck)
_reg("alltoall", "pairwise", alltoall_pairwise)

# barrier -------------------------------------------------------------------
_reg("barrier", "shm_flags", _run_barrier_shm_flags,
     applicable=_shm_only)
_reg("barrier", "smp_hierarchical", _run_barrier_smp,
     applicable=_hier_only, kind="hierarchical")
_reg("barrier", "dissemination", _run_barrier_dissemination)

# hybrid MPI+MPI (executed by repro.core; registered for selection,
# forcing, and the cost model) ---------------------------------------------
_reg("hy_allgather", "shared_window", _not_runnable, kind="hybrid")
_reg("hy_allgather", "pipelined_ring", _not_runnable,
     applicable=_multinode_only, kind="hybrid")
_reg("hy_allgather", "shared_window_3l", _not_runnable,
     applicable=_socket_multinode_only, kind="hybrid")
_reg("hy_bcast", "shared_window", _not_runnable, kind="hybrid")
