"""Irregular allgather (MPI_Allgatherv) algorithms: Bruck-v and ring-v.

Unlike ``MPI_Allgather``, real allgatherv implementations never use
recursive doubling (the per-rank counts break its index arithmetic), and
they pay extra bookkeeping for the recvcounts/displacements vectors.
Träff 2009 ("Relationships between regular and irregular collective
communication operations…", the paper's [29]) documents the resulting
performance gap; it is the reason the hybrid approach loses slightly in
the paper's one-process-per-node extreme case (Fig 8), and the dispatcher
(:mod:`repro.mpi.collectives`) charges the vector overhead explicitly.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.allgather import allgather_bruck, allgather_ring
from repro.mpi.collectives.blocks import BlockSet

__all__ = ["allgatherv_bruck", "allgatherv_ring", "allgatherv_gather_bcast"]


def allgatherv_bruck(comm, payload: Any, tag: int):
    """Bruck exchange with per-rank block sizes (small total sizes)."""
    result = yield from allgather_bruck(comm, payload, tag)
    return result


def allgatherv_ring(comm, payload: Any, tag: int):
    """Ring exchange with per-rank block sizes (large total sizes)."""
    result = yield from allgather_ring(comm, payload, tag)
    return result


def allgatherv_gather_bcast(comm, payload: Any, tag: int, root: int = 0):
    """Gatherv to *root* then broadcast of the concatenated buffer.

    Used by some libraries for very irregular distributions; provided for
    ablation studies (it sends ``2·total`` bytes through the root).
    """
    from repro.mpi.collectives.bcast import bcast_binomial
    from repro.mpi.collectives.gather import gather_binomial

    gathered = yield from gather_binomial(comm, payload, root, tag)
    if comm.rank == root:
        full = gathered
    else:
        full = None
    full = yield from bcast_binomial(comm, full, root, tag + 1)
    if not isinstance(full, BlockSet):
        raise AssertionError("gather+bcast allgatherv lost its block set")
    return full
