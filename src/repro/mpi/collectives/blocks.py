"""Block container used by multi-block collective algorithms.

Allgather-family algorithms move *sets of per-rank blocks* between
processes (recursive doubling doubles the number of blocks carried per
message; ring forwards one block at a time).  :class:`BlockSet` is the
wire format: an immutable-ish map ``owner_rank → payload`` whose
``nbytes`` is the sum of its members — which is exactly what the message
cost model needs in both data and model payload modes.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mpi.datatypes import clone, nbytes_of

__all__ = ["BlockSet"]


class BlockSet:
    """A set of per-rank blocks travelling as one message.

    ``meta`` is an optional small side-channel dict (e.g. origin-rank
    bookkeeping in Bruck all-to-all); it is copied on clone but does not
    contribute to ``nbytes``.
    """

    __slots__ = ("blocks", "meta")

    def __init__(
        self,
        blocks: dict[int, Any] | None = None,
        meta: dict | None = None,
    ):
        self.blocks: dict[int, Any] = dict(blocks) if blocks else {}
        self.meta: dict = dict(meta) if meta else {}

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all blocks."""
        return sum(nbytes_of(p) for p in self.blocks.values())

    def sim_clone(self) -> "BlockSet":
        """Deep snapshot (value semantics at send time)."""
        return BlockSet(
            {r: clone(p) for r, p in self.blocks.items()}, meta=self.meta
        )

    def add(self, owner: int, payload: Any) -> None:
        """Insert a block, refusing silent overwrite of a different one."""
        if owner in self.blocks:
            raise KeyError(f"block for rank {owner} already present")
        self.blocks[owner] = payload

    def merge(self, other: "BlockSet") -> None:
        """Union another block set into this one."""
        for owner, payload in other.blocks.items():
            if owner not in self.blocks:
                self.blocks[owner] = payload

    def subset(self, owners: list[int]) -> "BlockSet":
        """New :class:`BlockSet` holding only *owners* (must be present)."""
        return BlockSet({o: self.blocks[o] for o in owners})

    def owners(self) -> list[int]:
        """Owner ranks present, ascending."""
        return sorted(self.blocks)

    def __contains__(self, owner: int) -> bool:
        return owner in self.blocks

    def __getitem__(self, owner: int) -> Any:
        return self.blocks[owner]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.blocks))

    def as_list(self, size: int) -> list[Any]:
        """Blocks ordered 0..size-1 (all must be present)."""
        missing = [r for r in range(size) if r not in self.blocks]
        if missing:
            raise KeyError(f"missing blocks for ranks {missing[:8]}")
        return [self.blocks[r] for r in range(size)]

    def __repr__(self) -> str:
        return f"BlockSet(owners={self.owners()[:8]}, nbytes={self.nbytes})"
