"""Block container used by multi-block collective algorithms.

Allgather-family algorithms move *sets of per-rank blocks* between
processes (recursive doubling doubles the number of blocks carried per
message; ring forwards one block at a time).  :class:`BlockSet` is the
wire format: an immutable-ish map ``owner_rank → payload`` whose
``nbytes`` is the sum of its members — which is exactly what the message
cost model needs in both data and model payload modes.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.mpi.datatypes import Bytes, clone, nbytes_of

__all__ = ["BlockSet"]


class BlockSet:
    """A set of per-rank blocks travelling as one message.

    ``meta`` is an optional small side-channel dict (e.g. origin-rank
    bookkeeping in Bruck all-to-all); it is copied on clone but does not
    contribute to ``nbytes``.

    ``nbytes`` is maintained incrementally: blocks only ever enter via
    the constructor, :meth:`add` or :meth:`merge` (never mutate
    ``blocks`` directly), so the total never needs a rescan — at paper
    scale the allgather algorithms consult it millions of times.
    """

    __slots__ = ("blocks", "meta", "nbytes")

    def __init__(
        self,
        blocks: dict[int, Any] | None = None,
        meta: dict | None = None,
    ):
        self.blocks: dict[int, Any] = dict(blocks) if blocks else {}
        self.meta: dict = dict(meta) if meta else {}
        total = 0
        for p in self.blocks.values():
            total += p.nbytes if type(p) is Bytes else nbytes_of(p)
        #: Total payload bytes across all blocks — a plain slot (not a
        #: property) because the size oracle reads it millions of times.
        self.nbytes = total

    @classmethod
    def single(cls, owner: int, payload: Any) -> "BlockSet":
        """One-block set without the constructor's copy/rescan (the
        shape every ring/doubling round starts from)."""
        new = cls.__new__(cls)
        new.blocks = {owner: payload}
        new.meta = {}
        new.nbytes = (
            payload.nbytes if type(payload) is Bytes else nbytes_of(payload)
        )
        return new

    def sim_clone(self) -> "BlockSet":
        """Deep snapshot (value semantics at send time)."""
        new = BlockSet.__new__(BlockSet)
        # Bytes markers are immutable — share them instead of a per-member
        # clone() dispatch (the dominant cost of model-mode sends).
        new.blocks = {
            r: (p if type(p) is Bytes else clone(p))
            for r, p in self.blocks.items()
        }
        new.meta = dict(self.meta)
        new.nbytes = self.nbytes
        return new

    def sim_snapshot(self) -> "BlockSet":
        """Shallow snapshot for cost-only sends: the member payloads are
        shared, only the owner map is copied (insulating the receiver
        from post-send ``add``/``merge`` on the sender's set)."""
        new = BlockSet.__new__(BlockSet)
        new.blocks = dict(self.blocks)
        new.meta = dict(self.meta)
        new.nbytes = self.nbytes
        return new

    def add(self, owner: int, payload: Any) -> None:
        """Insert a block, refusing silent overwrite of a different one."""
        if owner in self.blocks:
            raise KeyError(f"block for rank {owner} already present")
        self.blocks[owner] = payload
        self.nbytes += nbytes_of(payload)

    def merge(self, other: "BlockSet") -> None:
        """Union another block set into this one."""
        blocks = self.blocks
        others = other.blocks
        # The common case (ring/recursive-doubling rounds) is a disjoint
        # union — one keys-intersection test then a bulk update, reusing
        # the other set's running total instead of per-block sizing.
        if not blocks:
            blocks.update(others)
            self.nbytes = other.nbytes
            return
        if blocks.keys().isdisjoint(others):
            blocks.update(others)
            self.nbytes += other.nbytes
            return
        added = 0
        for owner, payload in others.items():
            if owner not in blocks:
                blocks[owner] = payload
                added += nbytes_of(payload)
        self.nbytes += added

    def subset(self, owners: list[int]) -> "BlockSet":
        """New :class:`BlockSet` holding only *owners* (must be present)."""
        return BlockSet({o: self.blocks[o] for o in owners})

    def owners(self) -> list[int]:
        """Owner ranks present, ascending."""
        return sorted(self.blocks)

    def __contains__(self, owner: int) -> bool:
        return owner in self.blocks

    def __getitem__(self, owner: int) -> Any:
        return self.blocks[owner]

    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self.blocks))

    def as_list(self, size: int) -> list[Any]:
        """Blocks ordered 0..size-1 (all must be present)."""
        blocks = self.blocks
        try:
            return [blocks[r] for r in range(size)]
        except KeyError:
            missing = [r for r in range(size) if r not in blocks]
            raise KeyError(
                f"missing blocks for ranks {missing[:8]}"
            ) from None

    def __repr__(self) -> str:
        return f"BlockSet(owners={self.owners()[:8]}, nbytes={self.nbytes})"
