"""Neighborhood collectives over Cartesian topologies (MPI-3 style).

``MPI_Neighbor_alltoall`` on a :class:`~repro.mpi.cart.CartComm`: each
rank exchanges one payload with every grid neighbour (2·ndims of them,
``PROC_NULL`` at open boundaries).  This packages the halo-exchange
pattern of :mod:`repro.apps.stencil2d` as a single collective, the way
modern stencil codes write it.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.constants import PROC_NULL
from repro.simulator import AllOf

__all__ = ["neighbor_list", "neighbor_alltoall"]

_BASE_TAG = 2**27 + 9000


def neighbor_list(cart) -> list[int]:
    """Neighbour ranks in MPI's fixed order: for each dimension, the
    negative-displacement source then the positive-displacement
    destination.  Entries may be ``PROC_NULL``."""
    out: list[int] = []
    for dim in range(len(cart.dims)):
        lo, hi = cart.shift(dim, 1)
        out.extend([lo, hi])
    return out


def neighbor_alltoall(cart, payloads: list[Any], tag: int | None = None):
    """Coroutine: exchange ``payloads[i]`` with the i-th neighbour.

    *payloads* follows :func:`neighbor_list` order; entries toward
    ``PROC_NULL`` neighbours are ignored.  Returns the received
    payloads in the same order (None at ``PROC_NULL`` slots).
    """
    neighbours = neighbor_list(cart)
    if len(payloads) != len(neighbours):
        raise ValueError(
            f"need {len(neighbours)} payloads (2 per dimension), "
            f"got {len(payloads)}"
        )
    base = _BASE_TAG if tag is None else tag
    comm = cart.comm
    reqs = []
    recv_slots: list[int] = []
    for i, peer in enumerate(neighbours):
        if peer == PROC_NULL:
            continue
        # Tag by direction so opposing streams can't cross: my send in
        # slot i is the peer's receive in the opposite slot i^1.
        reqs.append(comm.isend(payloads[i], peer, tag=base + i))
        reqs.append(comm.irecv(source=peer, tag=base + (i ^ 1)))
        recv_slots.append(i)
    results: list[Any] = [None] * len(neighbours)
    if reqs:
        values = yield AllOf([r.event for r in reqs])
        received = [v[0] for v in values if isinstance(v, tuple)]
        for slot, payload in zip(recv_slots, received):
            results[slot] = payload
    return results
