"""Gather and scatter algorithms (binomial trees and linear fallbacks)."""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.blocks import BlockSet

__all__ = [
    "gather_binomial",
    "gather_linear",
    "scatter_binomial",
    "scatter_linear",
]


def gather_binomial(comm, payload: Any, root: int, tag: int):
    """Binomial-tree gather: leaves push up, subtree roots aggregate.

    Returns the full :class:`BlockSet` at *root*, None elsewhere.
    Handles irregular (per-rank size) payloads naturally, so it doubles
    as gatherv.
    """
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    carried = BlockSet({rank: payload})
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield from comm.send(carried, parent, tag=tag)
            return None
        child_v = vrank + mask
        if child_v < size:
            child = (child_v + root) % size
            incoming = yield from comm.recv(source=child, tag=tag)
            carried.merge(incoming)
        mask <<= 1
    return carried


def gather_linear(comm, payload: Any, root: int, tag: int):
    """Linear gather: every rank sends directly to the root.

    Used by real libraries for small comms or very large messages (avoids
    intermediate staging at subtree roots).
    """
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm.send(BlockSet({rank: payload}), root, tag=tag)
        return None
    carried = BlockSet({rank: payload})
    reqs = [
        comm.irecv(source=peer, tag=tag) for peer in range(size) if peer != root
    ]
    results = yield from comm.waitall(reqs)
    for incoming, _status in results:
        carried.merge(incoming)
    return carried


def scatter_binomial(comm, payloads: list[Any] | None, root: int, tag: int):
    """Binomial-tree scatter: root pushes subtree bundles down the tree.

    *payloads* (significant at root) lists one payload per rank.
    Returns this rank's payload.
    """
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    if vrank == 0:
        if payloads is None or len(payloads) != size:
            raise ValueError("root must supply one payload per rank")
        carried = {v: payloads[(v + root) % size] for v in range(size)}
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1
    else:
        mask = 1
        while not vrank & mask:
            mask <<= 1
        parent = ((vrank - mask) + root) % size
        incoming = yield from comm.recv(source=parent, tag=tag)
        carried = dict(incoming.blocks)
        mask >>= 1
    while mask:
        child_v = vrank + mask
        if child_v < size:
            child = (child_v + root) % size
            subtree = range(child_v, min(child_v + mask, size))
            bundle = BlockSet({v: carried[v] for v in subtree if v in carried})
            for v in subtree:
                carried.pop(v, None)
            yield from comm.send(bundle, child, tag=tag)
        mask >>= 1
    return carried[vrank]


def scatter_linear(comm, payloads: list[Any] | None, root: int, tag: int):
    """Linear scatter: root sends each rank its payload directly."""
    size, rank = comm.size, comm.rank
    if rank == root:
        if payloads is None or len(payloads) != size:
            raise ValueError("root must supply one payload per rank")
        reqs = []
        for peer in range(size):
            if peer == root:
                continue
            reqs.append(comm.isend(BlockSet({peer: payloads[peer]}), peer, tag=tag))
        yield from comm.waitall(reqs)
        return payloads[root]
    incoming = yield from comm.recv(source=root, tag=tag)
    return incoming[rank]
