"""Reduce-scatter algorithms (MPI_Reduce_scatter_block analogue).

Each rank contributes a vector of ``p`` equal blocks; rank *i* receives
the reduction of everyone's block *i*.  This is the first half of
Rabenseifner's allreduce and a building block of ring allreduce.

* :func:`reduce_scatter_halving` — recursive halving, power-of-two only;
  log2(p) rounds, bandwidth-optimal.
* :func:`reduce_scatter_pairwise` — p-1 rounds of pairwise exchange;
  any communicator size.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.collectives.reduce import combine
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes
from repro.simulator import AllOf

__all__ = ["reduce_scatter_halving", "reduce_scatter_pairwise"]


def _split_blocks(payload: Any, parts: int) -> list[Any]:
    if isinstance(payload, Bytes):
        base, rem = divmod(payload.nbytes, parts)
        return [Bytes(base + (1 if i < rem else 0)) for i in range(parts)]
    arr = np.asarray(payload).reshape(-1)
    return list(np.array_split(arr, parts))


def _pack(blocks: list[Any]) -> Any:
    if all(isinstance(b, Bytes) for b in blocks):
        return Bytes(sum(b.nbytes for b in blocks))
    return np.concatenate([np.asarray(b).reshape(-1) for b in blocks])


def reduce_scatter_halving(comm, payload: Any, op: ReduceOp, tag: int):
    """Recursive-halving reduce-scatter (power-of-two sizes).

    Returns this rank's reduced block.
    """
    size, rank = comm.size, comm.rank
    if size & (size - 1):
        raise ValueError("recursive halving requires power-of-two size")
    blocks = _split_blocks(payload, size)
    if size == 1:
        return blocks[0]
    lo, hi = 0, size
    mask = size // 2
    while mask >= 1:
        mid = lo + (hi - lo) // 2
        peer = rank ^ mask
        if rank & mask:
            send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
        else:
            send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
        outgoing = _pack(blocks[send_lo:send_hi])
        rreq = comm.irecv(source=peer, tag=tag)
        sreq = comm.isend(outgoing, peer, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        if not isinstance(incoming, Bytes):
            flat = np.asarray(incoming).reshape(-1)
            off = 0
            for i in range(keep_lo, keep_hi):
                seg = np.asarray(blocks[i]).reshape(-1)
                blocks[i] = combine(seg, flat[off : off + seg.size], op)
                off += seg.size
        lo, hi = keep_lo, keep_hi
        mask //= 2
    return blocks[rank]


def reduce_scatter_pairwise(comm, payload: Any, op: ReduceOp, tag: int):
    """Pairwise-exchange reduce-scatter (any size): p-1 rounds, in round
    *s* exchange your block for rank (rank+s) against theirs for you."""
    size, rank = comm.size, comm.rank
    blocks = _split_blocks(payload, size)
    acc = blocks[rank]
    for step in range(1, size):
        to = (rank + step) % size
        frm = (rank - step) % size
        rreq = comm.irecv(source=frm, tag=tag)
        sreq = comm.isend(blocks[to], to, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        acc = combine(acc, incoming, op)
    return acc
