"""Broadcast algorithms: binomial tree, scatter+allgather, pipelined chain.

* :func:`bcast_binomial` — log2(p) rounds; best for short messages.
* :func:`bcast_scatter_allgather` — van de Geijn: scatter the message,
  then ring-allgather the pieces; bandwidth-optimal for long messages.
* :func:`bcast_pipeline` — chunked chain pipeline for very long messages
  (the paper's §7 pointer to Träff et al. [30]).
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.blocks import BlockSet
from repro.mpi.datatypes import Bytes, nbytes_of
from repro.simulator import AllOf

import numpy as np

__all__ = ["bcast_binomial", "bcast_scatter_allgather", "bcast_pipeline"]


def bcast_binomial(comm, payload: Any, root: int, tag: int):
    """Binomial-tree broadcast relative to *root*.

    Rank r's virtual rank is ``(r - root) mod p``; virtual rank v receives
    from ``v - 2^k`` (its lowest set bit) and forwards to ``v + 2^k`` for
    growing k.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    vrank = (rank - root) % size
    # Receive phase: non-roots wait for the message from their parent.
    if vrank != 0:
        mask = 1
        while not vrank & mask:
            mask <<= 1
        parent = ((vrank - mask) + root) % size
        payload = yield from comm.recv(source=parent, tag=tag)
        mask >>= 1
    else:
        # Root starts with the highest power of two below size.
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1
    # Send phase: forward to children at decreasing distances.
    while mask:
        if vrank + mask < size:
            child = (vrank + mask + root) % size
            yield from comm.send(payload, child, tag=tag)
        mask >>= 1
    return payload


def _split_chunks(payload: Any, parts: int) -> list[Any]:
    """Split a payload into *parts* nearly equal chunks (dtype preserved).

    Supports ndarrays (element split), :class:`Bytes` (byte split) and
    :class:`BlockSet` (greedy partition of whole blocks by size, so
    hierarchical stages can long-broadcast gathered block sets)."""
    if isinstance(payload, np.ndarray):
        return list(np.array_split(payload.reshape(-1), parts))
    if isinstance(payload, BlockSet):
        owners = payload.owners()
        target = payload.nbytes / parts if parts else 0.0
        out: list[BlockSet] = []
        cur: dict[int, Any] = {}
        cur_bytes = 0.0
        for owner in owners:
            cur[owner] = payload[owner]
            cur_bytes += nbytes_of(payload[owner])
            if len(out) < parts - 1 and cur_bytes >= target:
                out.append(BlockSet(cur))
                cur, cur_bytes = {}, 0.0
        out.append(BlockSet(cur))
        while len(out) < parts:
            out.append(BlockSet())
        return out
    total = nbytes_of(payload)
    base, rem = divmod(total, parts)
    return [Bytes(base + (1 if i < rem else 0)) for i in range(parts)]


def _join_chunks(chunks: list[Any], template: Any) -> Any:
    """Reassemble chunks; returns the template's shape when known,
    otherwise a flat array / merged block set."""
    if all(isinstance(c, Bytes) for c in chunks):
        return Bytes(sum(c.nbytes for c in chunks))
    if any(isinstance(c, BlockSet) for c in chunks):
        merged = BlockSet()
        for c in chunks:
            if isinstance(c, BlockSet):
                merged.merge(c)
        return merged
    flat = np.concatenate([np.asarray(c).reshape(-1) for c in chunks if nbytes_of(c)])
    if isinstance(template, np.ndarray):
        return flat.reshape(template.shape)
    return flat


def bcast_scatter_allgather(comm, payload: Any, root: int, tag: int):
    """van de Geijn broadcast: binomial scatter + ring allgather.

    Moves ~``2·n`` bytes per rank instead of ``n·log p``; the standard
    choice for long messages on power-of-two and general sizes alike.
    """
    from repro.mpi.collectives.allgather import allgather_ring

    size = comm.size
    if size == 1:
        return payload
    # Scatter phase: root splits into p chunks, binomial-scatters them.
    if comm.rank == root:
        chunks = _split_chunks(payload, size)
        template = payload
    else:
        chunks = None
        template = None
    my_chunk = yield from _binomial_scatter(comm, chunks, root, tag)
    # Allgather phase: ring over the chunks.
    gathered = yield from allgather_ring(comm, my_chunk, tag + 1)
    if comm.rank == root:
        return template  # root already holds the message
    return _join_chunks(gathered.as_list(size), None)


def _binomial_scatter(comm, chunks: list[Any] | None, root: int, tag: int):
    """Binomial scatter of per-rank chunks (root holds the list)."""
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size

    def chunk_range_set(base_v: int, mask: int) -> list[int]:
        return [v for v in range(base_v, min(base_v + mask, size))]

    carried: dict[int, Any]
    if vrank == 0:
        assert chunks is not None
        carried = {v: chunks[(v + root) % size] for v in range(size)}
        mask = 1
        while mask < size:
            mask <<= 1
        mask >>= 1
    else:
        mask = 1
        while not vrank & mask:
            mask <<= 1
        parent = ((vrank - mask) + root) % size
        incoming = yield from comm.recv(source=parent, tag=tag)
        carried = dict(incoming.blocks)
        mask >>= 1
    while mask:
        if vrank + mask < size:
            child_v = vrank + mask
            child = (child_v + root) % size
            subtree = chunk_range_set(child_v, mask)
            chunk_set = BlockSet({v: carried[v] for v in subtree if v in carried})
            for v in subtree:
                carried.pop(v, None)
            yield from comm.send(chunk_set, child, tag=tag)
        mask >>= 1
    return carried[vrank]


def bcast_pipeline(comm, payload: Any, root: int, tag: int, chunk_bytes: int):
    """Chain-pipelined broadcast for very large messages (paper §7 / [30]).

    The message is cut into ``chunk_bytes`` pieces streamed down the
    rank-ordered chain; steady-state bandwidth approaches the link rate
    independent of p.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    vrank = (rank - root) % size
    prev = ((vrank - 1) + root) % size
    nxt = ((vrank + 1) + root) % size
    total = nbytes_of(payload) if vrank == 0 else None
    if vrank == 0:
        nchunks = max(1, -(-total // chunk_bytes))
        chunks = _split_chunks(payload, nchunks)
        for i, chunk in enumerate(chunks):
            yield from comm.send(BlockSet({i: chunk}), nxt, tag=tag)
        yield from comm.send(BlockSet({-2: Bytes(0)}), nxt, tag=tag)
        return payload
    received: list[Any] = []
    is_last = vrank == size - 1
    pending_forward = []
    while True:
        block = yield from comm.recv(source=prev, tag=tag)
        if -2 in block.blocks:
            if not is_last:
                yield from comm.send(block, nxt, tag=tag)
            break
        if not is_last:
            req = comm.isend(block, nxt, tag=tag)
            pending_forward.append(req)
        for owner in block.owners():
            if owner >= 0:
                received.append((owner, block[owner]))
    if pending_forward:
        yield AllOf([r.event for r in pending_forward])
    received.sort(key=lambda kv: kv[0])
    parts = [p for _i, p in received]
    return _join_chunks(parts, None)
