"""Reduction collectives: reduce, allreduce, scan.

Value semantics: in data mode the combiner applies real NumPy ufuncs; in
model mode (symbolic :class:`~repro.mpi.datatypes.Bytes` payloads) the
"reduction" preserves the byte count, which is all the cost model needs.

Algorithms:

* :func:`reduce_binomial` — binomial tree, short messages.
* :func:`allreduce_recursive_doubling` — log2(p) exchange of full
  vectors; best for short messages.
* :func:`allreduce_rabenseifner` — reduce-scatter (recursive halving) +
  allgather (recursive doubling); bandwidth-optimal for long messages on
  power-of-two comms.
* :func:`allreduce_ring` — reduce-scatter ring + allgather ring;
  bandwidth-optimal for long messages at *any* communicator size.
* :func:`scan_linear` — inclusive prefix chain.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes
from repro.simulator import AllOf

__all__ = [
    "combine",
    "reduce_binomial",
    "allreduce_recursive_doubling",
    "allreduce_rabenseifner",
    "allreduce_ring",
    "scan_linear",
]

_UFUNC = {
    ReduceOp.SUM: np.add,
    ReduceOp.PROD: np.multiply,
    ReduceOp.MIN: np.minimum,
    ReduceOp.MAX: np.maximum,
    ReduceOp.LAND: np.logical_and,
    ReduceOp.LOR: np.logical_or,
    ReduceOp.BAND: np.bitwise_and,
    ReduceOp.BOR: np.bitwise_or,
}


def combine(a: Any, b: Any, op: ReduceOp) -> Any:
    """Apply reduction *op* to two payloads."""
    if isinstance(a, Bytes) or isinstance(b, Bytes):
        na = a.nbytes if isinstance(a, Bytes) else a.nbytes
        nb = b.nbytes if isinstance(b, Bytes) else b.nbytes
        if na != nb:
            raise ValueError(f"reduction of mismatched sizes {na} != {nb}")
        return Bytes(na)
    ufunc = _UFUNC[op]
    result = ufunc(np.asarray(a), np.asarray(b))
    if result.dtype != np.asarray(a).dtype and op in (
        ReduceOp.LAND,
        ReduceOp.LOR,
    ):
        return result
    return result.astype(np.asarray(a).dtype, copy=False)


def reduce_binomial(comm, payload: Any, op: ReduceOp, root: int, tag: int):
    """Binomial-tree reduce toward *root* (commutative ops).

    Returns the reduced payload at *root*, None elsewhere.
    """
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    acc = payload
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield from comm.send(acc, parent, tag=tag)
            return None
        child_v = vrank + mask
        if child_v < size:
            child = (child_v + root) % size
            incoming = yield from comm.recv(source=child, tag=tag)
            acc = combine(acc, incoming, op)
        mask <<= 1
    return acc


def allreduce_recursive_doubling(comm, payload: Any, op: ReduceOp, tag: int):
    """Recursive-doubling allreduce.

    Non-power-of-two sizes use the standard pre/post folding step: the
    first ``r = p - 2^k`` even ranks fold into their odd neighbours, the
    power-of-two core runs recursive doubling, and results fan back out.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    acc = payload
    new_rank = -1
    # Fold phase: ranks < 2*rem pair up (even sends to odd).
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.send(acc, rank + 1, tag=tag)
            new_rank = -1  # idle during the core exchange
        else:
            incoming = yield from comm.recv(source=rank - 1, tag=tag)
            acc = combine(acc, incoming, op)
            new_rank = rank // 2
    else:
        new_rank = rank - rem
    # Core recursive doubling among pof2 virtual ranks.
    if new_rank >= 0:
        mask = 1
        while mask < pof2:
            peer_v = new_rank ^ mask
            peer = peer_v * 2 + 1 if peer_v < rem else peer_v + rem
            rreq = comm.irecv(source=peer, tag=tag)
            sreq = comm.isend(acc, peer, tag=tag)
            results = yield AllOf([rreq.event, sreq.event])
            incoming, _status = results[0]
            acc = combine(acc, incoming, op)
            mask <<= 1
    # Unfold phase: odd partners push results back to the idle evens.
    if rank < 2 * rem:
        if rank % 2 == 0:
            acc = yield from comm.recv(source=rank + 1, tag=tag)
        else:
            yield from comm.send(acc, rank - 1, tag=tag)
    return acc


def allreduce_rabenseifner(comm, payload: Any, op: ReduceOp, tag: int):
    """Rabenseifner: recursive-halving reduce-scatter + rec-doubling
    allgather.  Falls back to recursive doubling when p is not a power of
    two or the payload cannot be split evenly.
    """
    size = comm.size
    if size == 1:
        return payload
    if size & (size - 1):
        result = yield from allreduce_recursive_doubling(comm, payload, op, tag)
        return result
    rank = comm.rank
    # Split the vector into p segments (by bytes for Bytes payloads,
    # by elements for arrays).
    if isinstance(payload, Bytes):
        base, remb = divmod(payload.nbytes, size)
        seg_sizes = [base + (1 if i < remb else 0) for i in range(size)]
        segments: list[Any] = [Bytes(s) for s in seg_sizes]
    else:
        arr = np.asarray(payload).reshape(-1)
        segments = list(np.array_split(arr, size))
    # Reduce-scatter by recursive halving.
    my_lo, my_hi = 0, size
    mask = size // 2
    while mask >= 1:
        mid = my_lo + (my_hi - my_lo) // 2
        peer = rank ^ mask
        if rank & mask:
            send_lo, send_hi = my_lo, mid
            keep_lo, keep_hi = mid, my_hi
        else:
            send_lo, send_hi = mid, my_hi
            keep_lo, keep_hi = my_lo, mid
        outgoing = _seg_pack(segments, send_lo, send_hi)
        rreq = comm.irecv(source=peer, tag=tag)
        sreq = comm.isend(outgoing, peer, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        _seg_combine(segments, keep_lo, keep_hi, incoming, op)
        my_lo, my_hi = keep_lo, keep_hi
        mask //= 2
    # Allgather of reduced segments by recursive doubling.
    from repro.mpi.collectives.allgather import allgather_recursive_doubling

    gathered = yield from allgather_recursive_doubling(
        comm, segments[rank], tag + 1
    )
    parts = gathered.as_list(size)
    if isinstance(payload, Bytes):
        return Bytes(sum(p.nbytes for p in parts))
    flat = np.concatenate([np.asarray(p).reshape(-1) for p in parts])
    return flat.reshape(np.asarray(payload).shape)


def _seg_pack(segments: list[Any], lo: int, hi: int) -> Any:
    parts = segments[lo:hi]
    if all(isinstance(p, Bytes) for p in parts):
        return Bytes(sum(p.nbytes for p in parts))
    return np.concatenate([np.asarray(p).reshape(-1) for p in parts])


def _seg_combine(
    segments: list[Any], lo: int, hi: int, incoming: Any, op: ReduceOp
) -> None:
    if isinstance(incoming, Bytes):
        return  # sizes unchanged under reduction
    off = 0
    flat = np.asarray(incoming).reshape(-1)
    for i in range(lo, hi):
        seg = np.asarray(segments[i]).reshape(-1)
        segments[i] = combine(seg, flat[off : off + seg.size], op)
        off += seg.size


def allreduce_ring(comm, payload: Any, op: ReduceOp, tag: int):
    """Ring allreduce: reduce-scatter ring + allgather ring.

    2(p-1) steps moving n/p bytes each — bandwidth-optimal for *any*
    communicator size (the algorithm popularized by large-scale ML
    frameworks).  Unlike Rabenseifner's recursive halving it has no
    power-of-two requirement, at the cost of linear latency.
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload
    # Segment the vector into p blocks.
    if isinstance(payload, Bytes):
        base, remb = divmod(payload.nbytes, size)
        segments: list[Any] = [
            Bytes(base + (1 if i < remb else 0)) for i in range(size)
        ]
    else:
        arr = np.asarray(payload).reshape(-1)
        segments = list(np.array_split(arr, size))
    right = (rank + 1) % size
    left = (rank - 1) % size
    # Phase 1: reduce-scatter ring.  In step s, send the running block
    # (rank - s) and fold the incoming block (rank - s - 1).
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        rreq = comm.irecv(source=left, tag=tag)
        sreq = comm.isend(segments[send_idx], right, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        segments[recv_idx] = combine(segments[recv_idx], incoming, op)
    # Phase 2: allgather ring of the fully-reduced blocks.
    for step in range(size - 1):
        send_idx = (rank - step + 1) % size
        recv_idx = (rank - step) % size
        rreq = comm.irecv(source=left, tag=tag + 1)
        sreq = comm.isend(segments[send_idx], right, tag=tag + 1)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        segments[recv_idx] = incoming
    if isinstance(payload, Bytes):
        return Bytes(sum(s.nbytes for s in segments))
    flat = np.concatenate([np.asarray(s).reshape(-1) for s in segments])
    return flat.reshape(np.asarray(payload).shape)


def scan_linear(comm, payload: Any, op: ReduceOp, tag: int):
    """Inclusive prefix scan along the rank chain."""
    rank, size = comm.rank, comm.size
    acc = payload
    if rank > 0:
        incoming = yield from comm.recv(source=rank - 1, tag=tag)
        acc = combine(incoming, acc, op)
    if rank + 1 < size:
        yield from comm.send(acc, rank + 1, tag=tag)
    return acc
