"""All-to-all personalized exchange: Bruck (small) and pairwise (large)."""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.blocks import BlockSet
from repro.simulator import AllOf

__all__ = ["alltoall_pairwise", "alltoall_bruck"]


def alltoall_pairwise(comm, payloads: list[Any], tag: int):
    """Pairwise exchange: p-1 rounds, round i exchanges with rank^i
    (power-of-two sizes) or (rank±i) mod p otherwise.

    Returns the list of received payloads indexed by source rank.
    """
    size, rank = comm.size, comm.rank
    if len(payloads) != size:
        raise ValueError("alltoall needs one payload per rank")
    received: list[Any] = [None] * size
    received[rank] = payloads[rank]
    pof2 = size & (size - 1) == 0
    for step in range(1, size):
        if pof2:
            peer = rank ^ step
        else:
            peer = (rank + step) % size
            recv_peer = (rank - step) % size
        if pof2:
            recv_peer = peer
        rreq = comm.irecv(source=recv_peer, tag=tag)
        sreq = comm.isend(BlockSet({rank: payloads[peer]}), peer, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        received[recv_peer] = incoming[recv_peer]
    return received


def alltoall_bruck(comm, payloads: list[Any], tag: int):
    """Bruck all-to-all: ceil(log2 p) rounds of bundled forwarding.

    Latency-optimal for small blocks at the cost of forwarding each block
    up to log p times.
    """
    size, rank = comm.size, comm.rank
    if len(payloads) != size:
        raise ValueError("alltoall needs one payload per rank")
    # Phase 1 (local rotation): data[i] = payload destined to (rank + i).
    data: dict[int, Any] = {
        i: payloads[(rank + i) % size] for i in range(size)
    }
    origin: dict[int, int] = {i: rank for i in range(size)}
    # Phase 2: for each bit, ship entries whose index has that bit set.
    pof = 1
    while pof < size:
        dst = (rank + pof) % size
        src = (rank - pof) % size
        ship_keys = [i for i in data if i & pof]
        bundle = BlockSet(
            {i: data[i] for i in ship_keys},
            meta={i: origin[i] for i in ship_keys},
        )
        rreq = comm.irecv(source=src, tag=tag)
        sreq = comm.isend(bundle, dst, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        in_bundle, _status = results[0]
        for i, payload in in_bundle.blocks.items():
            data[i] = payload
            origin[i] = in_bundle.meta[i]
        pof <<= 1
    # Phase 3: re-index by true source rank.
    received: list[Any] = [None] * size
    for i, payload in data.items():
        received[origin[i]] = payload
    received[rank] = payloads[rank]
    return received
