"""Allgather algorithms: recursive doubling, Bruck, ring.

All three return a :class:`~repro.mpi.collectives.blocks.BlockSet`
containing one block per communicator rank.  They are *flat* algorithms —
the SMP-aware wrapper in :mod:`repro.mpi.collectives.hierarchical`
composes them across the node hierarchy.

References: Thakur, Rabenseifner, Gropp — "Optimization of collective
communication operations in MPICH", IJHPCA 2005.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.blocks import BlockSet
from repro.simulator import AllOf

__all__ = [
    "allgather_recursive_doubling",
    "allgather_bruck",
    "allgather_ring",
]


def _is_pof2(n: int) -> bool:
    return n & (n - 1) == 0


def allgather_recursive_doubling(comm, payload: Any, tag: int):
    """Recursive doubling: log2(p) rounds, doubling block count each round.

    Requires a power-of-two communicator size.
    """
    size, rank = comm.size, comm.rank
    if not _is_pof2(size):
        raise ValueError("recursive doubling requires power-of-two size")
    mine = BlockSet({rank: payload})
    if size == 1:
        return mine
    distance = 1
    while distance < size:
        peer = rank ^ distance
        rreq = comm.irecv(source=peer, tag=tag)
        sreq = comm.isend(mine, peer, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        mine.merge(incoming)
        distance <<= 1
    return mine


def allgather_bruck(comm, payload: Any, tag: int):
    """Bruck's algorithm: ceil(log2 p) rounds, works for any p.

    Blocks are kept in "distance from me" order during the exchange and
    re-indexed at the end (the final rotation real implementations pay as
    a local copy; the cost model charges it in the dispatcher through the
    vector/bookkeeping overhead).
    """
    size, rank = comm.size, comm.rank
    mine = BlockSet({rank: payload})
    if size == 1:
        return mine
    # ordered[i] = block of rank (rank + i) mod size; grows each round.
    ordered: list[tuple[int, Any]] = [(rank, payload)]
    pof = 1
    while pof < size:
        send_count = min(pof, size - pof)
        dst = (rank - pof) % size
        src = (rank + pof) % size
        chunk = BlockSet(dict(ordered[:send_count]))
        rreq = comm.irecv(source=src, tag=tag)
        sreq = comm.isend(chunk, dst, tag=tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        # Incoming blocks belong to ranks (rank + pof + i) mod size.
        for owner in sorted(
            incoming.blocks, key=lambda o: (o - rank - pof) % size
        ):
            ordered.append((owner, incoming.blocks[owner]))
        pof <<= 1
    result = BlockSet(dict(ordered[:size]))
    return result


def allgather_ring(comm, payload: Any, tag: int):
    """Ring: p-1 rounds, each forwarding one block to the right neighbour.

    Bandwidth-optimal for large messages; latency scales linearly in p.
    """
    size, rank = comm.size, comm.rank
    mine = BlockSet({rank: payload})
    if size == 1:
        return mine
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry_owner = rank
    blocks = mine.blocks
    merge = mine.merge
    isend = comm.isend
    irecv = comm.irecv
    for _step in range(size - 1):
        chunk = BlockSet.single(carry_owner, blocks[carry_owner])
        rreq = irecv(source=left, tag=tag)
        sreq = isend(chunk, right, tag)
        results = yield AllOf([rreq.event, sreq.event])
        incoming, _status = results[0]
        if len(incoming.blocks) != 1:
            raise AssertionError("ring step must carry exactly one block")
        carry_owner = next(iter(incoming.blocks))
        merge(incoming)
    return mine
