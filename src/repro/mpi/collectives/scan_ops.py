"""Prefix reductions: inclusive scan algorithms and exclusive scan.

:mod:`repro.mpi.collectives.reduce` provides the simple linear scan; this
module adds the log-round algorithms real libraries use plus exscan.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.reduce import combine
from repro.mpi.constants import ReduceOp
from repro.simulator import AllOf

__all__ = ["scan_binomial", "exscan_binomial"]


def scan_binomial(comm, payload: Any, op: ReduceOp, tag: int):
    """Inclusive scan via the classic doubling algorithm (Hillis-Steele):
    ceil(log2 p) rounds; round k combines with the partial result of the
    rank 2^k to the left."""
    size, rank = comm.size, comm.rank
    acc = payload        # running inclusive prefix
    carry = payload      # value forwarded to the right
    distance = 1
    while distance < size:
        reqs = []
        if rank + distance < size:
            reqs.append(comm.isend(carry, rank + distance, tag=tag))
        if rank - distance >= 0:
            reqs.append(comm.irecv(source=rank - distance, tag=tag))
        results = yield AllOf([r.event for r in reqs])
        if rank - distance >= 0:
            incoming, _status = results[-1]
            acc = combine(incoming, acc, op)
            carry = combine(incoming, carry, op)
        distance <<= 1
    return acc


def exscan_binomial(comm, payload: Any, op: ReduceOp, tag: int):
    """Exclusive scan: rank r gets the reduction of ranks [0, r).

    Rank 0's result is None (MPI leaves it undefined).  Implemented on
    top of the doubling scan by shifting the carried value."""
    size, rank = comm.size, comm.rank
    acc: Any = None      # exclusive prefix (None = identity/undefined)
    carry = payload
    distance = 1
    while distance < size:
        reqs = []
        if rank + distance < size:
            reqs.append(comm.isend(carry, rank + distance, tag=tag))
        if rank - distance >= 0:
            reqs.append(comm.irecv(source=rank - distance, tag=tag))
        results = yield AllOf([r.event for r in reqs])
        if rank - distance >= 0:
            incoming, _status = results[-1]
            acc = incoming if acc is None else combine(incoming, acc, op)
            carry = combine(incoming, carry, op)
        distance <<= 1
    return acc
