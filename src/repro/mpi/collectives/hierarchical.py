"""SMP-aware (hierarchical, leader-based) collectives — the pure-MPI baseline.

The paper's Fig 3a describes the tuned pure-MPI allgather on multi-core
clusters: (1) on-node ranks *gather* their blocks at the node leader via
shared-memory p2p; (2) leaders exchange aggregated blocks across nodes;
(3) leaders *broadcast* the full result to their on-node children.  Every
process ends up with a private copy of the full result — the per-node
memory copies in stages (1) and (3) are precisely what the hybrid
MPI+MPI approach removes.

The wrappers below build (and cache) internal shared-memory and bridge
sub-communicators using the same ``split``/``split_type`` machinery user
code uses, then compose the flat algorithms from the sibling modules.

A multi-leader variant (Kandalla et al. 2009, the paper's [14]) is
provided for ablation: ``k`` leaders per node each own a slice of the
node's ranks and a parallel bridge communicator, reducing leader-side
serialization at the cost of more inter-node messages.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.collectives.blocks import BlockSet
from repro.mpi.datatypes import nbytes_of

__all__ = [
    "hier_comms",
    "hier_allgather",
    "hier_bcast",
    "hier_reduce",
    "hier_allreduce",
    "multileader_allgather",
    "smp_3level_allgather",
]


def _by_node_map(comm) -> dict[int, list[int]]:
    """``node -> comm ranks`` of *comm*, computed once per communicator.

    Pure function of group + placement, so it lives in the shared cache:
    a per-rank scan would make hierarchy setup O(p^2) per job.
    """
    shared = comm.shared_cache
    by_node = shared.get("_by_node")
    if by_node is None:
        placement = comm.ctx.placement
        by_node = {}
        for r in range(comm.size):
            by_node.setdefault(
                placement.node_of(comm.world_rank_of(r)), []
            ).append(r)
        shared["_by_node"] = by_node
    return by_node


def hier_comms(comm):
    """Build (or fetch cached) the node hierarchy of *comm*.

    Returns ``(shm, bridge)`` where *shm* spans this rank's node members
    and *bridge* spans all node leaders (None on non-leader ranks).

    Membership is a pure function of the globally-known placement, so
    the sub-communicators come from the comm's deterministic-child
    registry — no rendezvous, which keeps this safe under concurrent
    non-blocking collectives.  (A generator for interface symmetry.)
    """
    cache = comm.hier_cache
    if "shm" not in cache:
        by_node = _by_node_map(comm)
        my_node = comm.ctx.placement.node_of(comm.ctx.world_rank)
        shm = comm.subcomm(("hier_shm", my_node), by_node[my_node])
        shared = comm.shared_cache
        leaders = shared.get("_hier_leaders")
        if leaders is None:
            leaders = shared["_hier_leaders"] = [
                ranks[0] for _node, ranks in sorted(by_node.items())
            ]
        bridge = comm.subcomm(("hier_bridge",), leaders)
        cache["shm"] = shm
        cache["bridge"] = bridge
    if False:  # pragma: no cover - keeps this a generator function
        yield None
    return cache["shm"], cache["bridge"]


def _parent_rank_of(comm, shm, sub_rank: int) -> int:
    """Translate a shared-memory comm rank to its parent-comm rank."""
    return comm.group.rank_of(shm.world_rank_of(sub_rank))


def _by_socket_map(comm) -> dict[tuple[int, int], list[int]]:
    """``(node, socket) -> comm ranks`` of *comm*, computed once.

    Like :func:`_by_node_map` but one level deeper: the socket domain is
    a pure function of placement + node shape, so this too lives in the
    shared cache.
    """
    shared = comm.shared_cache
    by_sock = shared.get("_by_socket")
    if by_sock is None:
        placement = comm.ctx.placement
        node_spec = comm.ctx.machine.spec.node
        by_sock = {}
        for r in range(comm.size):
            w = comm.world_rank_of(r)
            key = (placement.node_of(w), placement.socket_of(w, node_spec))
            by_sock.setdefault(key, []).append(r)
        shared["_by_socket"] = by_sock
    return by_sock


def _select_shm_bcast(shm, nbytes: int):
    """Size-appropriate on-node broadcast (binomial vs scatter+allgather).

    Real SMP-aware collectives switch algorithms for the fan-out stage
    just as for top-level broadcasts; without this the baseline would
    move n*log(ppn) bytes through node memory for large results and the
    comparison against the hybrid approach would be a strawman.

    Routed through the rank's selection policy over the registry, with
    the candidate set restricted to the stage-appropriate algorithms
    (no pipelining across shared memory).  Imported lazily: the registry
    imports this module at load time."""
    from repro.mpi.collectives.registry import CollRequest, policy_of

    req = CollRequest(op="bcast", nbytes=nbytes, total=nbytes, root=0)
    algo = policy_of(shm).select(
        shm, req, candidates=("binomial", "scatter_allgather")
    )
    return algo.fn


def hier_allgather(comm, payload: Any, tag: int, select_bridge,
                   total_nbytes: int | None = None) -> Any:
    """Leader-based allgather (paper Fig 3a).  Coroutine.

    ``select_bridge(bridge_comm, payload)`` picks the flat algorithm used
    for the inter-leader exchange (always a *v*-variant when per-node
    totals differ).  ``total_nbytes`` (the full result size, which MPI
    programs know from their recvcounts) drives the algorithm choice of
    the on-node fan-out stage.  Returns the full :class:`BlockSet` keyed
    by parent comm ranks.
    """
    from repro.mpi.collectives.gather import gather_binomial
    from repro.mpi.collectives.registry import phase_begin, phase_end

    shm, bridge = yield from hier_comms(comm)
    # Stage 1: gather blocks at the node leader (shared-memory p2p).
    ph = phase_begin(comm, "on_node_gather", nbytes_of(payload))
    local = yield from gather_binomial(shm, payload, 0, tag)
    phase_end(comm, ph)
    if shm.rank == 0:
        node_blocks = BlockSet(
            {
                _parent_rank_of(comm, shm, sub): blk
                for sub, blk in local.blocks.items()
            }
        )
    else:
        node_blocks = None
    # Stage 2: leaders exchange aggregated node blocks.
    if bridge is not None and bridge.size > 1:
        ph = phase_begin(comm, "bridge_exchange", node_blocks.nbytes)
        exchanged = yield from select_bridge(bridge, node_blocks, tag)
        phase_end(comm, ph)
        full = BlockSet()
        for node_set in exchanged.blocks.values():
            full.merge(node_set)
    elif bridge is not None:
        full = node_blocks
    else:
        full = None
    # Stage 3: leader broadcasts the complete result on-node.
    if total_nbytes is None:
        total_nbytes = nbytes_of(payload) * comm.size
    shm_bcast = _select_shm_bcast(shm, total_nbytes)
    ph = phase_begin(comm, "on_node_bcast", total_nbytes)
    full = yield from shm_bcast(shm, full, 0, tag + 1)
    phase_end(comm, ph)
    return full


def hier_bcast(comm, payload: Any, root: int, tag: int, bridge_bcast) -> Any:
    """Leader-based broadcast: root → its leader → all leaders → children.

    ``bridge_bcast(bridge, payload, root_bridge_rank, tag)`` is the flat
    algorithm for the inter-leader stage.
    """
    from repro.mpi.collectives.registry import phase_begin, phase_end

    shm, bridge = yield from hier_comms(comm)
    placement = comm.ctx.placement
    root_world = comm.world_rank_of(root)
    root_node = placement.node_of(root_world)
    i_am_root = comm.rank == root
    root_shm_rank = shm.group.rank_of(root_world)  # UNDEFINED off-node
    root_on_my_node = shm.group.contains(root_world)

    # Stage 0: root hands the message to its node leader if distinct.
    if i_am_root and shm.rank != 0:
        ph = phase_begin(comm, "root_to_leader", nbytes_of(payload))
        yield from shm.send(payload, 0, tag=tag)
        phase_end(comm, ph)
    if shm.rank == 0 and root_on_my_node and root_shm_rank != 0:
        ph = phase_begin(comm, "root_to_leader")
        payload = yield from shm.recv(source=root_shm_rank, tag=tag)
        phase_end(comm, ph)
    # Stage 1: inter-leader broadcast, rooted at the root-node leader.
    if bridge is not None and bridge.size > 1:
        root_bridge_rank = next(
            bridge.group.rank_of(w)
            for w in bridge.group.world_ranks()
            if placement.node_of(w) == root_node
        )
        ph = phase_begin(comm, "bridge_exchange", nbytes_of(payload))
        payload = yield from bridge_bcast(bridge, payload, root_bridge_rank, tag)
        phase_end(comm, ph)
    # Stage 2: on-node broadcast from the leader (size known locally:
    # every rank passed a same-sized buffer, as MPI_Bcast requires).
    shm_bcast = _select_shm_bcast(shm, nbytes_of(payload))
    ph = phase_begin(comm, "on_node_bcast", nbytes_of(payload))
    payload = yield from shm_bcast(shm, payload, 0, tag + 1)
    phase_end(comm, ph)
    return payload


def hier_reduce(comm, payload: Any, op, root: int, tag: int):
    """Leader-based reduce: on-node reduce → inter-leader reduce → root."""
    from repro.mpi.collectives.reduce import reduce_binomial
    from repro.mpi.collectives.registry import phase_begin, phase_end

    shm, bridge = yield from hier_comms(comm)
    placement = comm.ctx.placement
    root_world = comm.world_rank_of(root)
    root_node = placement.node_of(root_world)
    i_am_root = comm.rank == root
    root_shm_rank = shm.group.rank_of(root_world)  # UNDEFINED off-node
    root_on_my_node = shm.group.contains(root_world)

    # Stage 1: on-node reduce to the shm leader.
    ph = phase_begin(comm, "on_node_reduce", nbytes_of(payload))
    partial = yield from reduce_binomial(shm, payload, op, 0, tag)
    phase_end(comm, ph)
    # Stage 2: inter-leader reduce to the root-node leader.
    result = None
    if bridge is not None:
        if bridge.size > 1:
            root_bridge = next(
                bridge.group.rank_of(w)
                for w in bridge.group.world_ranks()
                if placement.node_of(w) == root_node
            )
            ph = phase_begin(comm, "bridge_exchange", nbytes_of(partial))
            result = yield from reduce_binomial(
                bridge, partial, op, root_bridge, tag
            )
            phase_end(comm, ph)
        else:
            result = partial
    # Stage 3: forward to the true root if it is not its node's leader.
    if root_shm_rank == 0 and root_on_my_node:
        return result if i_am_root else None
    if shm.rank == 0 and root_on_my_node:
        ph = phase_begin(comm, "root_forward", nbytes_of(result))
        yield from shm.send(result, root_shm_rank, tag=tag + 2)
        phase_end(comm, ph)
        return None
    if i_am_root:
        ph = phase_begin(comm, "root_forward")
        result = yield from shm.recv(source=0, tag=tag + 2)
        phase_end(comm, ph)
        return result
    return None


def hier_allreduce(comm, payload: Any, op, tag: int, bridge_allreduce):
    """Leader-based allreduce: on-node reduce → bridge allreduce →
    on-node broadcast."""
    from repro.mpi.collectives.reduce import reduce_binomial
    from repro.mpi.collectives.registry import phase_begin, phase_end

    shm, bridge = yield from hier_comms(comm)
    ph = phase_begin(comm, "on_node_reduce", nbytes_of(payload))
    partial = yield from reduce_binomial(shm, payload, op, 0, tag)
    phase_end(comm, ph)
    if bridge is not None and bridge.size > 1:
        ph = phase_begin(comm, "bridge_exchange", nbytes_of(partial))
        partial = yield from bridge_allreduce(bridge, partial, op, tag)
        phase_end(comm, ph)
    shm_bcast = _select_shm_bcast(shm, nbytes_of(payload))
    ph = phase_begin(comm, "on_node_bcast", nbytes_of(payload))
    result = yield from shm_bcast(shm, partial, 0, tag + 1)
    phase_end(comm, ph)
    return result


def multileader_allgather(comm, payload: Any, tag: int, leaders_per_node: int,
                          select_bridge):
    """Multi-leader allgather (ablation; Kandalla et al. 2009).

    The node's ranks are split round-robin over ``k`` leaders; each leader
    gathers its slice, exchanges on its own bridge communicator, then the
    leaders share results on-node and broadcast to their slices.
    """
    from repro.mpi.collectives.allgather import allgather_ring
    from repro.mpi.collectives.gather import gather_binomial
    from repro.mpi.collectives.registry import phase_begin, phase_end

    cache = comm.hier_cache
    key = f"ml{leaders_per_node}"
    if key not in cache:
        shm, _bridge_unused = yield from hier_comms(comm)
        k = min(leaders_per_node, shm.size)
        slice_id = shm.rank % k
        # Slice members, leader flags, and bridge membership are all
        # derivable from global knowledge -> deterministic children.
        my_node = comm.ctx.placement.node_of(comm.ctx.world_rank)
        slice_members = [r for r in range(shm.size) if r % k == slice_id]
        slice_comm = shm.subcomm(("ml_slice", k, slice_id), slice_members)
        is_leader = slice_comm.rank == 0
        # Bridge s: the s-th leader of every node (if that node has one).
        by_node = _by_node_map(comm)
        bridge_members = []
        for _node, ranks in sorted(by_node.items()):
            kk = min(leaders_per_node, len(ranks))
            if slice_id < kk:
                bridge_members.append(ranks[slice_id])
        bridge = (
            comm.subcomm(("ml_bridge", k, slice_id), bridge_members)
            if is_leader
            else None
        )
        leaders_members = list(range(min(k, shm.size)))
        leaders_comm = (
            shm.subcomm(("ml_leaders", k), leaders_members)
            if is_leader
            else None
        )
        cache[key] = (shm, slice_comm, bridge, leaders_comm, k)
    shm, slice_comm, bridge, leaders_comm, k = cache[key]

    # Stage 1: gather within each slice.
    ph = phase_begin(comm, "on_node_gather", nbytes_of(payload))
    local = yield from gather_binomial(slice_comm, payload, 0, tag)
    phase_end(comm, ph)
    if slice_comm.rank == 0:
        slice_blocks = BlockSet(
            {
                comm.group.rank_of(slice_comm.world_rank_of(sub)): blk
                for sub, blk in local.blocks.items()
            }
        )
    else:
        slice_blocks = None
    # Stage 2: each leader exchanges on its own bridge.
    if bridge is not None and bridge.size > 1:
        ph = phase_begin(comm, "bridge_exchange", slice_blocks.nbytes)
        exchanged = yield from select_bridge(bridge, slice_blocks, tag)
        phase_end(comm, ph)
        part = BlockSet()
        for node_set in exchanged.blocks.values():
            part.merge(node_set)
    elif bridge is not None:
        part = slice_blocks
    else:
        part = None
    # Stage 3: leaders merge partial results on-node.
    if leaders_comm is not None and leaders_comm.size > 1:
        ph = phase_begin(comm, "leader_merge", part.nbytes)
        shared = yield from allgather_ring(leaders_comm, part, tag + 1)
        phase_end(comm, ph)
        part = BlockSet()
        for piece in shared.blocks.values():
            part.merge(piece)
    # Stage 4: each leader broadcasts the full result to its slice.
    # (Children derive the same size from their own block, as MPI's
    # recvcounts make possible in the real code.)
    total = nbytes_of(payload) * comm.size
    shm_bcast = _select_shm_bcast(slice_comm, total)
    ph = phase_begin(comm, "on_node_bcast", total)
    full = yield from shm_bcast(slice_comm, part, 0, tag + 2)
    phase_end(comm, ph)
    return full


def smp_3level_allgather(comm, payload: Any, tag: int, select_bridge,
                         total_nbytes: int | None = None) -> Any:
    """Three-level leader-based allgather for multi-socket nodes.

    Adds a socket tier below the node tier of :func:`hier_allgather`:
    (1) ranks gather at their *socket* leader, (2) socket leaders gather
    at the *node* leader, (3) node leaders exchange on the bridge,
    (4) the node leader broadcasts to its socket leaders, (5) each
    socket leader broadcasts within its socket.  Stages 1/2 and 4/5
    keep p2p traffic inside one memory domain except for the single
    socket-leader hop, which is what a NUMA-aware MPI does and the flat
    two-level gather does not.

    Phase spans carry ``level`` ("socket" / "node" / "bridge") so the
    critical-path decomposition can attribute cross-socket time.
    """
    from repro.mpi.collectives.gather import gather_binomial
    from repro.mpi.collectives.registry import phase_begin, phase_end

    cache = comm.hier_cache
    if "s3l" not in cache:
        _shm, bridge = yield from hier_comms(comm)
        by_sock = _by_socket_map(comm)
        placement = comm.ctx.placement
        node_spec = comm.ctx.machine.spec.node
        w = comm.ctx.world_rank
        my_key = (placement.node_of(w), placement.socket_of(w, node_spec))
        sock = comm.subcomm(("s3l_sock",) + my_key, by_sock[my_key])
        node_sleaders = [
            ranks[0]
            for (n, _s), ranks in sorted(by_sock.items())
            if n == my_key[0]
        ]
        sleaders = (
            comm.subcomm(("s3l_sleaders", my_key[0]), node_sleaders)
            if sock.rank == 0
            else None
        )
        cache["s3l"] = (sock, sleaders, bridge)
    sock, sleaders, bridge = cache["s3l"]

    # Stage 1: gather blocks at the socket leader (intra-socket p2p).
    ph = phase_begin(comm, "socket_gather", nbytes_of(payload),
                     level="socket")
    local = yield from gather_binomial(sock, payload, 0, tag)
    phase_end(comm, ph)
    sock_blocks = None
    if sock.rank == 0:
        sock_blocks = BlockSet(
            {
                comm.group.rank_of(sock.world_rank_of(sub)): blk
                for sub, blk in local.blocks.items()
            }
        )
    # Stage 2: socket leaders gather at the node leader (one
    # cross-socket hop per non-leader socket).
    node_blocks = None
    if sleaders is not None:
        if sleaders.size > 1:
            ph = phase_begin(comm, "node_gather", sock_blocks.nbytes,
                             level="node")
            gathered = yield from gather_binomial(
                sleaders, sock_blocks, 0, tag + 1
            )
            phase_end(comm, ph)
            if sleaders.rank == 0:
                node_blocks = BlockSet()
                for piece in gathered.blocks.values():
                    node_blocks.merge(piece)
        elif sleaders.rank == 0:
            node_blocks = sock_blocks
    # Stage 3: node leaders exchange aggregated node blocks.
    full = None
    if bridge is not None:
        if bridge.size > 1:
            ph = phase_begin(comm, "bridge_exchange", node_blocks.nbytes,
                             level="bridge")
            exchanged = yield from select_bridge(bridge, node_blocks, tag + 2)
            phase_end(comm, ph)
            full = BlockSet()
            for node_set in exchanged.blocks.values():
                full.merge(node_set)
        else:
            full = node_blocks
    if total_nbytes is None:
        total_nbytes = nbytes_of(payload) * comm.size
    # Stage 4: node leader broadcasts the result to its socket leaders.
    if sleaders is not None and sleaders.size > 1:
        shm_bcast = _select_shm_bcast(sleaders, total_nbytes)
        ph = phase_begin(comm, "node_bcast", total_nbytes, level="node")
        full = yield from shm_bcast(sleaders, full, 0, tag + 3)
        phase_end(comm, ph)
    # Stage 5: socket leaders broadcast within their socket.
    shm_bcast = _select_shm_bcast(sock, total_nbytes)
    ph = phase_begin(comm, "socket_bcast", total_nbytes, level="socket")
    full = yield from shm_bcast(sock, full, 0, tag + 4)
    phase_end(comm, ph)
    return full
