"""Barrier algorithms: dissemination and shared-memory flag tree.

Dissemination (Hensgen/Finkel/Manber): ``ceil(log2 p)`` rounds; in round
k each rank sends a zero-byte token to ``(rank + 2^k) mod p`` and waits
for one from ``(rank - 2^k) mod p``.  This is the paper's *heavy-weight*
on-node synchronization primitive (§6): its cost over a shared-memory
communicator is a handful of on-node latency hops, independent of
message size — which is why Hy_Allgather is flat in Fig 7.

The shm flag barrier models the optimized on-node barrier real MPI
libraries implement with shared-memory flag trees rather than message
passing.
"""

from __future__ import annotations

import math

from repro.mpi.datatypes import Bytes
from repro.simulator import AllOf

__all__ = ["barrier_dissemination", "barrier_shm_flags"]


def barrier_dissemination(comm, tag: int):
    """Dissemination barrier over all ranks of *comm* (coroutine)."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    token = Bytes(0)
    distance = 1
    while distance < size:
        to = (rank + distance) % size
        frm = (rank - distance) % size
        rreq = comm.irecv(source=frm, tag=tag)
        sreq = comm.isend(token, to, tag=tag)
        yield AllOf([rreq.event, sreq.event])
        distance <<= 1


def barrier_shm_flags(comm, tag: int, rounds_cost: float | None = None,
                      phase: str = "arrive"):
    """Coroutine: optimized single-node barrier (shared flags).

    Real MPI libraries implement on-node barriers with shared-memory
    flag trees, not message passing.  Modelled as a zero-time rendezvous
    (everyone leaves together at the last arrival) plus the flag-tree
    cost.  ``rounds_cost`` overrides the charged time (used for the
    cheap release phase of the hierarchical barrier).  The rendezvous is
    keyed by the collective's issue-time *tag*, so concurrent
    non-blocking barriers cannot cross-match."""
    tuning = comm.ctx.tuning
    if rounds_cost is None:
        rounds = max(1, math.ceil(math.log2(max(comm.size, 2))))
        rounds_cost = tuning.shm_barrier_base + rounds * tuning.shm_barrier_flag
    yield comm._shared.arrive(
        ("shm_barrier", phase, tag), comm.rank, None,
        lambda values: dict.fromkeys(values),
    )
    yield comm.ctx.engine.timeout(rounds_cost)
