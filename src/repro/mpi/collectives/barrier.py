"""Barrier: dissemination algorithm (Hensgen/Finkel/Manber).

``ceil(log2 p)`` rounds; in round k each rank sends a zero-byte token to
``(rank + 2^k) mod p`` and waits for one from ``(rank - 2^k) mod p``.
This is the paper's *heavy-weight* on-node synchronization primitive
(§6): its cost over a shared-memory communicator is a handful of on-node
latency hops, independent of message size — which is why Hy_Allgather is
flat in Fig 7.
"""

from __future__ import annotations

from repro.mpi.datatypes import Bytes
from repro.simulator import AllOf

__all__ = ["barrier_dissemination"]


def barrier_dissemination(comm, tag: int):
    """Dissemination barrier over all ranks of *comm* (coroutine)."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    token = Bytes(0)
    distance = 1
    while distance < size:
        to = (rank + distance) % size
        frm = (rank - distance) % size
        rreq = comm.irecv(source=frm, tag=tag)
        sreq = comm.isend(token, to, tag=tag)
        yield AllOf([rreq.event, sreq.event])
        distance <<= 1
