"""MPI-style constants used across the simulated runtime."""

from __future__ import annotations

import enum

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "COMM_TYPE_SHARED",
    "UNDEFINED",
    "PROC_NULL",
    "ReduceOp",
    "MAX_INTERNAL_TAG",
]

#: Wildcard source for :meth:`Comm.recv`.
ANY_SOURCE: int = -1

#: Wildcard tag for :meth:`Comm.recv`.
ANY_TAG: int = -1

#: ``split_type`` argument selecting on-node (shared-memory) grouping.
COMM_TYPE_SHARED: int = 1

#: Color value excluding a rank from a :meth:`Comm.split`.
UNDEFINED: int = -32766

#: Null peer: send/recv to PROC_NULL complete immediately, moving no data.
PROC_NULL: int = -2

#: Tags >= this value are reserved for internal collective protocols.
MAX_INTERNAL_TAG: int = 2**28


class ReduceOp(enum.Enum):
    """Reduction operators supported by reduce/allreduce/scan."""

    SUM = "sum"
    PROD = "prod"
    MIN = "min"
    MAX = "max"
    LAND = "land"
    LOR = "lor"
    BAND = "band"
    BOR = "bor"
