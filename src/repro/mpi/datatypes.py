"""Payload handling: real NumPy buffers or symbolic byte counts.

The runtime runs in one of two *payload modes*:

* **data mode** — messages carry real ``numpy.ndarray`` views; receives
  copy bytes into destination buffers.  Used by the test-suite and the
  examples, where results are checked element-for-element.
* **model mode** — messages carry :class:`Bytes` markers (a size, no
  storage).  Timing is identical, memory use is O(1) per message.  Used
  by the paper-scale benchmark sweeps (a 1536-rank allgather of 16 Ki
  doubles would otherwise allocate ~190 MB *per rank*).

:func:`nbytes_of` is the single size oracle used by every cost model, so
both modes are guaranteed to follow the same code paths and charge the
same virtual time.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "Bytes", "nbytes_of", "copy_into", "clone", "snapshot", "slice_payload",
    "concat",
]


class Bytes:
    """A symbolic message payload of a given size in bytes.

    Supports the small algebra collective algorithms need: slicing by
    byte ranges and concatenation, each producing new :class:`Bytes`.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int | float):
        if nbytes < 0:
            raise ValueError("payload size must be non-negative")
        self.nbytes = int(nbytes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bytes) and other.nbytes == self.nbytes

    def __hash__(self) -> int:
        return hash(("Bytes", self.nbytes))

    def __repr__(self) -> str:
        return f"Bytes({self.nbytes})"


def nbytes_of(payload: Any) -> int:
    """Size in bytes of a payload.

    Accepts ``numpy.ndarray``, :class:`Bytes`, ``bytes``-likes, ``None``
    (zero bytes) and any object exposing an integer ``nbytes`` attribute
    (e.g. the block containers used internally by collectives).
    """
    # Every supported type except the raw bytes-likes exposes ``nbytes``,
    # so one getattr replaces an isinstance chain (this is the innermost
    # size oracle of the whole cost model).
    size = getattr(payload, "nbytes", None)
    if size is not None:
        return size if type(size) is int else int(size)
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    raise TypeError(f"unsupported payload type {type(payload).__name__}")


def copy_into(dst: Any, src: Any) -> Any:
    """Copy *src* into *dst*, returning the receive-side payload.

    * ndarray → ndarray: element copy (dtype-safe via ravel views).
    * ``dst is None``: the payload is passed through (zero-copy receive).
    * :class:`Bytes` payloads never copy.

    Raises
    ------
    ValueError
        If a real destination buffer is smaller than the source.
    """
    if dst is None:
        return src
    if isinstance(src, Bytes) or isinstance(dst, Bytes):
        return dst if isinstance(dst, Bytes) else Bytes(nbytes_of(src))
    if isinstance(dst, np.ndarray) and isinstance(src, np.ndarray):
        if dst.nbytes < src.nbytes:
            raise ValueError(
                f"destination buffer ({dst.nbytes} B) smaller than message "
                f"({src.nbytes} B)"
            )
        flat_dst = dst.reshape(-1)
        flat_src = src.reshape(-1).view(flat_dst.dtype) if (
            src.dtype != flat_dst.dtype
        ) else src.reshape(-1)
        flat_dst[: flat_src.size] = flat_src
        return dst
    raise TypeError(
        f"cannot copy {type(src).__name__} into {type(dst).__name__}"
    )


def clone(payload: Any) -> Any:
    """Snapshot a payload at send time (value semantics for sends)."""
    if payload is None or isinstance(payload, Bytes):
        return payload
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (bytes,)):
        return payload
    if isinstance(payload, (bytearray, memoryview)):
        return bytes(payload)
    cloner = getattr(payload, "sim_clone", None)
    if cloner is not None:
        return cloner()
    raise TypeError(f"unsupported payload type {type(payload).__name__}")


def snapshot(payload: Any) -> Any:
    """Send-time snapshot for *cost-only* mode.

    Preserves every size :func:`nbytes_of` would report (so all virtual-
    time charges match :func:`clone` exactly) but never copies storage:
    ndarrays collapse to :class:`Bytes` markers and block containers take
    a shallow ``sim_snapshot`` (their members are immutable size markers
    in this mode).
    """
    # Hook first: block containers dominate send traffic in the
    # collective sweeps, and the other branches are cheap to fall through.
    snap = getattr(payload, "sim_snapshot", None)
    if snap is not None:
        return snap()
    if payload is None or isinstance(payload, Bytes):
        return payload
    if isinstance(payload, np.ndarray):
        return Bytes(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return Bytes(len(payload))
    return clone(payload)


def slice_payload(payload: Any, start: int, stop: int, itemsize: int = 1) -> Any:
    """Sub-range of a payload in *elements* of the given item size."""
    if isinstance(payload, Bytes):
        return Bytes((stop - start) * itemsize)
    if isinstance(payload, np.ndarray):
        flat = payload.reshape(-1)
        return flat[start:stop]
    raise TypeError(f"cannot slice payload of type {type(payload).__name__}")


def concat(parts: list) -> Any:
    """Concatenate payload parts (all ndarray or all :class:`Bytes`)."""
    if not parts:
        raise ValueError("concat of no parts")
    if all(isinstance(p, Bytes) for p in parts):
        return Bytes(sum(p.nbytes for p in parts))
    if all(isinstance(p, np.ndarray) for p in parts):
        return np.concatenate([p.reshape(-1) for p in parts])
    raise TypeError("cannot concat mixed payload kinds")
