"""Non-blocking collectives: request handles and completion helpers.

An ``I``-prefixed collective (``Comm.iallgather``, ``Comm.ibcast``,
``HybridContext.iallgather``, ...) posts the operation as a *background
process* of the simulation engine and returns a :class:`CollRequest`.
The discrete-event engine interleaves all live processes, so a pending
collective makes progress whenever the issuing rank is suspended — in a
compute delay (``yield mpi.compute(...)``), in another collective, or in
a p2p wait.  This models an MPI library with perfect asynchronous
progress (a progress thread): no further library calls are needed for
the operation to advance.

Ordering rules (the MPI ones, enforced only by construction here):

* all ranks must issue non-blocking collectives on one communicator in
  the same order (matching is by issue-order tags);
* a communicator (including the shm/bridge children of a hybrid
  context) should have at most one collective in flight at a time —
  internal sub-collectives of a composite algorithm draw their tags when
  the background process runs, so two in-flight composites on the *same*
  communicator could mismatch.

Completion uses the p2p :class:`~repro.mpi.p2p.Request` machinery
unchanged: the background :class:`~repro.simulator.engine.Process` *is*
an event, so ``yield req.event``, :meth:`~repro.mpi.comm.Comm.waitall`,
:meth:`~repro.mpi.comm.Comm.waitany` and friends all apply.

Tracing: the background process runs in its own tracer *context* (see
:meth:`repro.trace.Tracer.run_in_context`), so its dispatch/phase spans
nest among themselves — covering issue to completion — and never
corrupt the span stack of the rank program that issued them.
"""

from __future__ import annotations

from typing import Any

from repro.mpi.p2p import Request

__all__ = ["CollRequest", "spawn_collective"]


class CollRequest(Request):
    """Handle for a non-blocking collective.

    The wrapped event is the background :class:`Process` running the
    collective; its value is the collective's return value (e.g. the
    gathered list for ``iallgather``).

    >>> from repro.simulator import Engine, Event
    >>> eng = Engine()
    >>> ev = Event(eng, name="coll")
    >>> req = CollRequest(ev, "iallgather")
    >>> req.test()
    False
    >>> _ = ev.succeed(["a", "b"])
    >>> req.test()
    True
    >>> req
    <CollRequest iallgather complete=True>
    """

    __slots__ = ("op",)

    def __init__(self, event: Any, op: str):
        super().__init__(event, op)
        self.op = op

    def wait(self):
        """Coroutine: suspend until completion; returns the result."""
        value = yield self.event
        return value

    def test(self) -> bool:
        """True once the collective has completed (never blocks)."""
        return self.complete

    def __repr__(self) -> str:
        return f"<CollRequest {self.op} complete={self.complete}>"


def spawn_collective(comm, op: str, gen) -> CollRequest:
    """Post *gen* (a collective coroutine over *comm*) as a background
    process and return its :class:`CollRequest`.

    When the job traces, the generator is driven inside a fresh tracer
    context so its spans form their own tree (issue → completion) and
    concurrent spans of the issuing rank program keep correct nesting.
    """
    ctx = comm.ctx
    sess = ctx.job.replay
    if sess is not None:
        # Replay eligibility veto: while any non-blocking collective is
        # outstanding the engine is not quiescent, so parked dispatches
        # fall through to normal execution.
        gen = _counted(sess, gen)
    tracer = ctx.trace
    if tracer is not None:
        gen = tracer.run_in_context(ctx.world_rank, gen)
    proc = ctx.engine.spawn(gen, name=f"{comm.name}.{op}@r{comm.rank}")
    return CollRequest(proc, op)


def _counted(sess, gen):
    """Wrap *gen* so the replay session sees it as in-flight."""
    sess.pending_icolls += 1
    try:
        result = yield from gen
    finally:
        sess.pending_icolls -= 1
    return result
