"""Per-rank communication profiling (PMPI-style interposition).

Every collective — blocking or non-blocking — runs through
:meth:`Comm._collective` and records into the rank's
:class:`CommProfile`; :func:`aggregate_profiles` merges the per-rank
records into a job-wide summary.  The applications use this to report
the communication fraction of their runtime (the quantity the paper's
Figs 11-12 ratios are made of).

Per-op byte conventions (what one call charges on one rank):

=====================  ====================================================
op                     bytes recorded
=====================  ====================================================
barrier / ibarrier     0
bcast / ibcast         message size (same on every rank, as MPI requires)
reduce, allreduce,
scan, exscan,
reduce_scatter         local contribution size
gather / gatherv       this rank's sent contribution
scatter                root: total payload list size; non-roots: 0
allgather/iallgather   ``local_size * comm_size`` (full result, regular)
allgatherv             agreed **sum of actual per-rank sizes** — differs
                       from ``local * size`` exactly when irregular
alltoall               this rank's total send volume (sum over peers)
=====================  ====================================================

Non-blocking collectives record under their own ``i``-prefixed op names;
their time is the issue-to-completion span of the background proc.

The dispatch spans of the trace layer (:mod:`repro.trace`) carry the
same byte conventions — ``repro.trace.summarize`` totals and the
profiler's per-op byte sums agree for every regular collective, which
the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OpStats", "CommProfile", "aggregate_profiles"]


@dataclass
class OpStats:
    """Accumulated statistics of one operation type."""

    calls: int = 0
    bytes: float = 0.0
    time: float = 0.0

    def record(self, nbytes: float, seconds: float) -> None:
        self.calls += 1
        self.bytes += nbytes
        self.time += seconds

    def merged(self, other: "OpStats") -> "OpStats":
        return OpStats(
            calls=self.calls + other.calls,
            bytes=self.bytes + other.bytes,
            time=max(self.time, other.time),  # critical-path convention
        )


class CommProfile:
    """One rank's communication ledger."""

    __slots__ = ("ops", "enabled")

    def __init__(self, enabled: bool = True):
        self.ops: dict[str, OpStats] = {}
        self.enabled = enabled

    def record(self, op: str, nbytes: float, seconds: float) -> None:
        """Add one completed operation."""
        if not self.enabled:
            return
        stats = self.ops.get(op)
        if stats is None:
            stats = self.ops[op] = OpStats()
        stats.record(nbytes, seconds)

    @property
    def total_time(self) -> float:
        """Total time across all recorded operations."""
        return sum(s.time for s in self.ops.values())

    @property
    def total_calls(self) -> int:
        """Total operation count."""
        return sum(s.calls for s in self.ops.values())

    def summary(self) -> dict[str, dict]:
        """Plain-dict rendering for reports."""
        return {
            op: {"calls": s.calls, "bytes": s.bytes, "time": s.time}
            for op, s in sorted(self.ops.items())
        }

    def __repr__(self) -> str:
        return (
            f"CommProfile(ops={len(self.ops)}, calls={self.total_calls}, "
            f"time={self.total_time:.3e}s)"
        )


def aggregate_profiles(profiles: list[CommProfile]) -> dict[str, OpStats]:
    """Merge per-rank profiles: calls/bytes summed, time = max over ranks
    (the critical-path convention for synchronizing collectives)."""
    merged: dict[str, OpStats] = {}
    for profile in profiles:
        for op, stats in profile.ops.items():
            if op in merged:
                merged[op] = merged[op].merged(stats)
            else:
                merged[op] = OpStats(stats.calls, stats.bytes, stats.time)
    return merged
