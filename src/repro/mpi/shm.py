"""MPI-3 shared-memory windows (``MPI_Win_allocate_shared`` model).

A :class:`SharedWindow` is allocated collectively over a *shared-memory
communicator* (every member on one node, as produced by
``Comm.split_type_shared``).  Each rank contributes a size; the segments
are laid out contiguously in allocation-rank order, exactly like the MPI
default.  :meth:`SharedWindow.segment` is the ``MPI_Win_shared_query``
analogue: any member can obtain a direct view of any other member's
segment and read/write it with plain NumPy indexing — no message passing,
no copies.

In *model* payload mode no real memory is allocated; the window keeps
only sizes/offsets (windows at paper scale would need GBs).  Reads and
writes through :meth:`SharedWindow.touch` charge the node's contended
memory system in either mode, which is how the cost of accessing shared
results is accounted in the hybrid collectives.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.mpi.errors import WindowError

__all__ = ["SharedWindow", "win_allocate_shared"]


class _WindowShared:
    """Node-wide state of one shared window."""

    __slots__ = ("node", "sizes", "offsets", "total", "buffer", "flags")

    def __init__(self, node: int, sizes: list[int], data_mode: bool):
        self.node = node
        self.sizes = sizes
        self.offsets = []
        off = 0
        for s in sizes:
            self.offsets.append(off)
            off += s
        self.total = off
        self.buffer = np.zeros(self.total, dtype=np.uint8) if data_mode else None
        # Small out-of-band flag store for light-weight synchronization
        # experiments (shared atomic counters, one cache line each).
        self.flags: dict[str, int] = {}


class SharedWindow:
    """Per-rank handle on a node-shared memory window."""

    __slots__ = ("_shared", "comm", "rank")

    def __init__(self, shared: _WindowShared, comm: Any, rank: int):
        self._shared = shared
        self.comm = comm
        self.rank = rank

    # -- queries (MPI_Win_shared_query) ------------------------------------
    @property
    def node(self) -> int:
        """Node the window lives on."""
        return self._shared.node

    @property
    def total_bytes(self) -> int:
        """Total window size across all contributing ranks."""
        return self._shared.total

    def size_of(self, rank: int) -> int:
        """Bytes contributed by *rank* (comm rank)."""
        return self._shared.sizes[rank]

    def offset_of(self, rank: int) -> int:
        """Byte offset of *rank*'s segment in the contiguous window."""
        return self._shared.offsets[rank]

    def segment(self, rank: int, dtype: Any = np.uint8) -> np.ndarray | None:
        """Direct view of *rank*'s segment (None in model mode).

        This is the load/store access path: mutations are visible to all
        window members immediately (data integrity is the caller's
        problem — that is the paper's synchronization discussion)."""
        buf = self._shared.buffer
        if buf is None:
            return None
        lo = self._shared.offsets[rank]
        hi = lo + self._shared.sizes[rank]
        seg = buf[lo:hi]
        return seg.view(dtype)

    def whole(self, dtype: Any = np.uint8) -> np.ndarray | None:
        """View of the entire contiguous window (leader's perspective)."""
        buf = self._shared.buffer
        if buf is None:
            return None
        return buf.view(dtype)

    # -- cost-model hooks -----------------------------------------------------
    def touch(self, nbytes: int):
        """Coroutine: charge one pass over *nbytes* of the shared window
        through the node's contended memory system (the toucher's
        socket channel on multi-socket nodes)."""
        ctx = self.comm.ctx
        machine = ctx.machine
        result = yield from machine.shared_touch(
            self._shared.node, nbytes, machine.socket_of(ctx.world_rank)
        )
        return result

    # -- flag store (light-weight sync substrate) ------------------------------
    def flag_read(self, name: str) -> int:
        """Read a shared flag (zero when never written)."""
        return self._shared.flags.get(name, 0)

    def flag_write(self, name: str, value: int) -> None:
        """Write a shared flag (a one-cache-line store)."""
        self._shared.flags[name] = value

    def flag_add(self, name: str, delta: int = 1) -> int:
        """Atomically add to a shared flag; returns the new value."""
        new = self._shared.flags.get(name, 0) + delta
        self._shared.flags[name] = new
        return new

    def __repr__(self) -> str:
        return (
            f"<SharedWindow node={self.node} total={self.total_bytes}B "
            f"ranks={len(self._shared.sizes)}>"
        )


def win_allocate_shared(comm, nbytes: int):
    """Coroutine: collectively allocate a shared window over *comm*.

    Every member of *comm* must reside on one node.  Returns the
    per-rank :class:`SharedWindow` handle.
    """
    if nbytes < 0:
        raise WindowError("window size must be non-negative")
    placement = comm.ctx.placement
    nodes = {placement.node_of(w) for w in comm.group.world_ranks()}
    if len(nodes) != 1:
        raise WindowError(
            f"win_allocate_shared requires a single-node communicator; "
            f"got ranks on nodes {sorted(nodes)}"
        )
    node = nodes.pop()
    data_mode = comm.ctx.data_mode

    def reducer(values: dict[int, int]) -> dict[int, Any]:
        sizes = [int(values[r]) for r in range(len(values))]
        shared = _WindowShared(node, sizes, data_mode)
        return {r: shared for r in values}

    # The gate is a rendezvous over all members: at trace detail "p2p"
    # the wait for the slowest member shows up as its own span.
    tracer = comm.ctx.trace
    span = None
    if tracer is not None and tracer.wants("p2p"):
        span = tracer.begin({
            "t": comm.ctx.engine.now,
            "rank": comm.ctx.world_rank,
            "comm": comm.name,
            "kind": "shm",
            "op": "win_allocate",
            "nbytes": int(nbytes),
        })
    shared = yield from comm._gate("win_allocate_shared", int(nbytes), reducer)
    if span is not None:
        tracer.end(span, comm.ctx.engine.now)
    return SharedWindow(shared, comm, comm.rank)
