"""Exception hierarchy of the simulated MPI runtime."""

from __future__ import annotations

__all__ = [
    "MPIError",
    "TruncationError",
    "CommMismatchError",
    "RootMismatchError",
    "WindowError",
]


class MPIError(RuntimeError):
    """Base class for errors raised by the simulated MPI runtime."""


class TruncationError(MPIError):
    """A received message was larger than the posted receive buffer.

    Real MPI flags this as ``MPI_ERR_TRUNCATE``; we raise eagerly because
    it is always a bug in the calling program.
    """


class CommMismatchError(MPIError):
    """A collective was invoked inconsistently across a communicator
    (mismatched counts, different operations, or a rank missing)."""


class RootMismatchError(MPIError):
    """Ranks disagreed about the root of a rooted collective."""


class WindowError(MPIError):
    """Invalid use of a shared-memory window."""
