"""Communicators: per-rank views over a shared group state.

A communicator is split into:

* :class:`_CommShared` — one object per communicator *instance*, shared
  by all member ranks: the group, the id used for message matching, and
  the rendezvous "gates" that implement communicator-creation collectives
  (``split``, ``split_type``, ``dup``) and shared-window allocation.
* :class:`Comm` — the per-rank handle the application holds; it knows its
  own rank and drives coroutines against the shared state.

All blocking methods are generator coroutines: drive them with
``yield from`` inside a rank program.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.mpi import collectives as _coll
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    MAX_INTERNAL_TAG,
    PROC_NULL,
    UNDEFINED,
    ReduceOp,
)
from repro.mpi.datatypes import nbytes_of
from repro.mpi.errors import MPIError
from repro.mpi.group import Group
from repro.mpi.nonblocking import CollRequest, spawn_collective
from repro.mpi.p2p import Request, Status
from repro.simulator import AllOf, AnyOf, Event

__all__ = ["Comm"]


class _CommShared:
    """State shared by every rank's view of one communicator."""

    __slots__ = ("id", "group", "job", "name", "cache", "_gates", "_children")

    def __init__(self, job: Any, group: Group, name: str):
        self.id: int = job.next_comm_id()
        self.group = group
        self.job = job
        self.name = name
        # Communicator-wide cache for data derived purely from globally
        # known state (group + placement): node maps, comm shapes, slot
        # layouts.  Computing these per *rank* is O(p) each and turns the
        # per-job setup O(p^2) at paper scale — one shared copy suffices.
        self.cache: dict[Any, Any] = {}
        self._gates: dict[Any, _GateState] = {}
        # Registry of deterministically-derived child communicators
        # (internal hierarchies): key -> _CommShared.  Membership is a
        # pure function of globally-known state (placement + group), so
        # no rendezvous is needed — whichever rank asks first creates the
        # shared object, later ranks look it up.  This keeps concurrent
        # non-blocking collectives safe: no ordering-sensitive gates.
        self._children: dict[Any, "_CommShared"] = {}

    def deterministic_child(self, key: Any, world_ranks: tuple[int, ...],
                            name: str) -> "_CommShared":
        """Shared state of a child comm derived from global knowledge."""
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = _CommShared(
                self.job, Group(world_ranks), name
            )
        elif child.group.world_ranks() != tuple(world_ranks):
            raise MPIError(
                f"deterministic child {key!r} of {self.name!r} requested "
                f"with inconsistent membership"
            )
        return child

    def arrive(
        self,
        key: Any,
        rank: int,
        value: Any,
        reducer: Callable[[dict[int, Any]], dict[int, Any]],
    ) -> Event:
        """Rendezvous: collect one value per rank; the last arrival runs
        *reducer* over ``{rank: value}`` and the event fires with the
        resulting ``{rank: result}`` map."""
        st = self._gates.get(key)
        if st is None:
            st = self._gates[key] = _GateState(
                Event(self.job.engine, name=f"gate{key}")
            )
        if rank in st.values:
            raise MPIError(f"rank {rank} arrived twice at gate {key!r}")
        st.values[rank] = value
        if len(st.values) == self.group.size:
            del self._gates[key]
            st.event.succeed(reducer(st.values))
        return st.event

    def align_arrive(self, key: Any, rank: int) -> Event:
        """Rendezvous with *rank-order* wakes (see :meth:`Comm.align`).

        Unlike :meth:`arrive` — one shared event whose waiters resume in
        arrival order — every rank gets its own event here, and the last
        arrival succeeds them sorted by rank.  Succeeding queues each
        event at the current timestep in succeed order, so all ranks
        (the last arriver included: its own already-triggered event sits
        in its rank-order queue slot by the time it yields) resume in
        the canonical permutation.
        """
        st = self._gates.get(key)
        if st is None:
            st = self._gates[key] = _GateState(None)
        if rank in st.values:
            raise MPIError(f"rank {rank} arrived twice at gate {key!r}")
        ev = st.values[rank] = Event(self.job.engine, name=f"align{rank}")
        if len(st.values) == self.group.size:
            del self._gates[key]
            for r in sorted(st.values):
                st.values[r].succeed(None)
        return ev


class _GateState:
    __slots__ = ("values", "event")

    def __init__(self, event: Event):
        self.values: dict[int, Any] = {}
        self.event = event


class Comm:
    """A per-rank communicator handle.

    Attributes
    ----------
    rank:
        This process's rank within the communicator.
    size:
        Number of member processes.
    """

    __slots__ = (
        "_shared", "_ctx", "rank", "_coll_seq", "_gate_seq", "_hier",
        "_world_ranks",
    )

    def __init__(self, shared: _CommShared, ctx: Any):
        self._shared = shared
        self._ctx = ctx
        self.rank = shared.group.rank_of(ctx.world_rank)
        if self.rank == UNDEFINED:
            raise MPIError(
                f"world rank {ctx.world_rank} is not in communicator "
                f"{shared.name!r}"
            )
        self._coll_seq = 0
        self._gate_seq = 0
        self._hier: dict[str, Any] = {}
        # comm rank -> world rank, cached for the p2p fast path (the
        # group is immutable).
        self._world_ranks = shared.group.world_ranks()

    @property
    def hier_cache(self) -> dict[str, Any]:
        """Per-rank cache of internal hierarchy sub-communicators."""
        return self._hier

    @property
    def shared_cache(self) -> dict[Any, Any]:
        """Communicator-wide cache for group-pure derived data (shared by
        all ranks — store nothing rank-dependent here)."""
        return self._shared.cache

    # -- basic queries -----------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return self._shared.group.size

    @property
    def name(self) -> str:
        """Communicator debug name."""
        return self._shared.name

    @property
    def group(self) -> Group:
        """The underlying group."""
        return self._shared.group

    @property
    def id(self) -> int:
        """Runtime-unique communicator id (matching namespace)."""
        return self._shared.id

    @property
    def ctx(self) -> Any:
        """The owning rank context."""
        return self._ctx

    def world_rank_of(self, comm_rank: int) -> int:
        """Translate a rank of this communicator to a world rank."""
        return self._shared.group.world_rank(comm_rank)

    def node_of(self, comm_rank: int) -> int:
        """Machine node hosting *comm_rank*."""
        return self._ctx.placement.node_of(self.world_rank_of(comm_rank))

    # -- point-to-point ------------------------------------------------------
    def _p2p_begin(self, op: str, peer: int, payload: Any = None):
        """Open a p2p wait span (trace detail ``"p2p"`` only).

        The payload is sized lazily — only when the span is actually
        recorded — so untraced runs never pay for ``nbytes_of``.
        """
        tracer = self._ctx.trace
        if tracer is None or not tracer.wants("p2p"):
            return None
        return tracer.begin({
            "t": self._ctx.engine.now,
            "rank": self._ctx.world_rank,
            "comm": self.name,
            "kind": "p2p",
            "op": op,
            "peer": peer,
            "nbytes": nbytes_of(payload) if payload is not None else 0,
        })

    def _p2p_end(self, span) -> None:
        if span is not None:
            self._ctx.trace.end(span, self._ctx.engine.now)

    def send(self, payload: Any, dest: int, tag: int = 0):
        """Blocking send (coroutine)."""
        if dest == PROC_NULL:
            return
        span = self._p2p_begin("send", dest, payload)
        req = self.isend(payload, dest, tag)
        yield req.event
        self._p2p_end(span)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; returns a :class:`Request`."""
        if dest == PROC_NULL:
            ev = Event(self._ctx.engine, name="send.null")
            ev.succeed(None)
            return Request(ev, "send")
        ranks = self._world_ranks
        if not 0 <= dest < len(ranks):
            self._check_peer(dest)
        ctx = self._ctx
        done = ctx.msg_engine.post_send(
            self._shared.id, ctx.world_rank, self.rank, ranks[dest],
            payload, tag,
        )
        return Request(done, "send")

    def recv(self, buf: Any = None, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (coroutine); returns the payload."""
        payload, _status = yield from self.recv_status(buf, source, tag)
        return payload

    def recv_status(
        self, buf: Any = None, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ):
        """Blocking receive returning ``(payload, Status)``."""
        if source == PROC_NULL:
            return None, Status(source=PROC_NULL, tag=tag, nbytes=0)
        span = self._p2p_begin("recv", source)
        req = self.irecv(buf, source, tag)
        payload, status = yield req.event
        if span is not None:
            span["nbytes"] = status.nbytes
        self._p2p_end(span)
        return payload, status

    def irecv(
        self, buf: Any = None, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Request:
        """Non-blocking receive; completion value is ``(payload, Status)``."""
        if source == PROC_NULL:
            ev = Event(self._ctx.engine, name="recv.null")
            ev.succeed((None, Status(source=PROC_NULL, tag=tag, nbytes=0)))
            return Request(ev, "recv")
        if source != ANY_SOURCE and not 0 <= source < len(self._world_ranks):
            self._check_peer(source)
        ctx = self._ctx
        ev = ctx.msg_engine.post_recv(
            self._shared.id, ctx.world_rank, source, tag, buf,
        )
        return Request(ev, "recv")

    def sendrecv(
        self,
        sendpayload: Any,
        dest: int,
        source: int = ANY_SOURCE,
        recvbuf: Any = None,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ):
        """Simultaneous send and receive (coroutine); returns payload."""
        span = self._p2p_begin("sendrecv", dest, sendpayload)
        rreq = self.irecv(recvbuf, source, recvtag)
        sreq = self.isend(sendpayload, dest, sendtag)
        results = yield AllOf([rreq.event, sreq.event])
        payload, _status = results[0]
        self._p2p_end(span)
        return payload

    @staticmethod
    def wait(request: Request):
        """Wait for one request (coroutine); returns its value."""
        value = yield request.event
        return value

    @staticmethod
    def waitall(requests: list[Request]):
        """Wait for all requests (coroutine); returns values in order."""
        values = yield AllOf([r.event for r in requests])
        return values

    @staticmethod
    def test(request: Request) -> bool:
        """True once *request* has completed (never blocks).

        >>> from repro.simulator import Engine, Event
        >>> from repro.mpi.p2p import Request
        >>> eng = Engine()
        >>> req = Request(Event(eng, name="x"), "recv")
        >>> Comm.test(req)
        False
        >>> _ = req.event.succeed(None)
        >>> Comm.test(req)
        True
        """
        return request.complete

    @staticmethod
    def testall(requests: list[Request]) -> bool:
        """True once *every* request has completed (never blocks).

        Like ``MPI_Testall``'s flag; vacuously true for an empty list.

        >>> from repro.simulator import Engine, Event
        >>> from repro.mpi.p2p import Request
        >>> eng = Engine()
        >>> evs = [Event(eng, name=str(i)) for i in range(2)]
        >>> reqs = [Request(ev, "recv") for ev in evs]
        >>> Comm.testall(reqs)
        False
        >>> _ = evs[0].succeed(None)
        >>> Comm.testall(reqs)
        False
        >>> _ = evs[1].succeed(None)
        >>> Comm.testall(reqs)
        True
        """
        return all(r.complete for r in requests)

    @staticmethod
    def waitany(requests: list[Request]):
        """Coroutine: wait until *one* request completes.

        Returns ``(index, value)`` of the first completion (an already
        completed request wins immediately, lowest index first).

        >>> from repro.simulator import Engine, Event
        >>> from repro.mpi.p2p import Request
        >>> eng = Engine()
        >>> evs = [Event(eng, name=str(i)) for i in range(2)]
        >>> reqs = [Request(ev, "recv") for ev in evs]
        >>> waiter = eng.spawn(Comm.waitany(reqs))
        >>> _ = evs[1].succeed("halo")
        >>> eng.run()
        >>> waiter.value
        (1, 'halo')
        """
        if not requests:
            raise MPIError("waitany requires at least one request")
        index, value = yield AnyOf([r.event for r in requests])
        return index, value

    @staticmethod
    def waitsome(requests: list[Request]):
        """Coroutine: wait until *at least one* request completes.

        Returns ``(indices, values)`` of **all** requests complete at
        that moment, in index order (``MPI_Waitsome``).

        >>> from repro.simulator import Engine, Event
        >>> from repro.mpi.p2p import Request
        >>> eng = Engine()
        >>> evs = [Event(eng, name=str(i)) for i in range(3)]
        >>> reqs = [Request(ev, "recv") for ev in evs]
        >>> _ = evs[2].succeed("c")
        >>> _ = evs[0].succeed("a")
        >>> waiter = eng.spawn(Comm.waitsome(reqs))
        >>> eng.run()
        >>> waiter.value
        ([0, 2], ['a', 'c'])
        """
        if not requests:
            raise MPIError("waitsome requires at least one request")
        yield AnyOf([r.event for r in requests])
        indices = [i for i, r in enumerate(requests) if r.complete]
        return indices, [requests[i].event.value for i in indices]

    # -- collectives ---------------------------------------------------------
    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return MAX_INTERNAL_TAG + self._coll_seq

    def _collective(self, op: str, nbytes: int, gen):
        """Single collective entry point (coroutine).

        Every collective — blocking or non-blocking — runs through here,
        so per-operation profiling is uniform; the dispatch layer records
        the matching trace entry (op, algorithm, policy, bytes) for the
        same call.

        Per-op byte conventions (see :mod:`repro.mpi.profiler`):
        rooted/scan family charge the local message size; allgather
        charges ``nbytes * size``; allgatherv charges the agreed sum of
        per-rank sizes; scatter charges the root's total payload;
        alltoall charges this rank's total send volume; barrier is zero.
        """
        t0 = self._ctx.engine.now
        result = yield from gen
        ctx = self._ctx
        dt = ctx.engine.now - t0
        ctx.profile.record(op, nbytes, dt)
        sess = ctx.job.replay
        if sess is not None and sess.profile_taps:
            # Replay verify mode: hand the top-level entry to the
            # pending verifier — the replay record carries only *nested*
            # wrapped collectives (pocket bodies call the unwrapped
            # dispatchers), so the verifier folds this entry into the
            # expected delta.
            state = sess.profile_taps.pop(ctx.world_rank, None)
            if state is not None:
                state.top[ctx.world_rank] = (op, nbytes, dt)
        return result

    # Backward-compatible alias (pre-registry name).
    _profiled = _collective

    def barrier(self):
        """Barrier over all member ranks (coroutine)."""
        yield from self._collective(
            "barrier", 0,
            _coll.dispatch_barrier(self, self._next_coll_tag()),
        )

    def align(self):
        """Coroutine: zero-virtual-cost rendezvous of all member ranks.

        Every rank resumes at the *last* arrival's timestep — in **rank
        order**, not arrival order — without simulating any
        communication (unlike :meth:`barrier`, which models a real
        dissemination/gather-release exchange).  Benchmark harnesses use
        this to realign rank clocks between repetitions so that each
        repetition enters its collective simultaneously *and in the same
        canonical permutation*: same-timestep resource-queue grants
        depend on arrival order, so rank-order wakes make every aligned
        repetition byte-identical — which is exactly what lets the
        replay cache (:mod:`repro.mpi.collectives.replay`) memoize the
        steady state under a single key instead of chasing a rotating
        arrival permutation.  An align is measurement scaffolding, not a
        modelled operation: it adds nothing to virtual time, traffic
        counters, or the trace.
        """
        self._gate_seq += 1
        yield self._shared.align_arrive(
            ("align", self._gate_seq), self.rank
        )
        return None

    def bcast(self, payload: Any, root: int = 0):
        """Broadcast from *root*; returns the payload on every rank."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "bcast", nbytes_of(payload),
                _coll.dispatch_bcast(
                    self, payload, root, self._next_coll_tag()
                ),
            )
        )

    def gather(self, payload: Any, root: int = 0):
        """Gather to *root*; returns list of payloads (None elsewhere)."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "gather", nbytes_of(payload),
                _coll.dispatch_gather(
                    self, payload, root, self._next_coll_tag()
                ),
            )
        )

    def gatherv(self, payload: Any, root: int = 0):
        """Irregular gather to *root* (per-rank sizes may differ)."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "gatherv", nbytes_of(payload),
                _coll.dispatch_gather(
                    self, payload, root, self._next_coll_tag(),
                    irregular=True,
                ),
            )
        )

    def scatter(self, payloads: list[Any] | None, root: int = 0):
        """Scatter list *payloads* (significant at root); returns own part."""
        from repro.mpi.datatypes import nbytes_of

        nbytes = (
            sum(nbytes_of(p) for p in payloads) if payloads is not None else 0
        )
        return (
            yield from self._collective(
                "scatter", nbytes,
                _coll.dispatch_scatter(
                    self, payloads, root, self._next_coll_tag()
                ),
            )
        )

    def allgather(self, payload: Any):
        """Regular allgather; returns the list of per-rank payloads."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "allgather", nbytes_of(payload) * self.size,
                _coll.dispatch_allgather(
                    self, payload, self._next_coll_tag()
                ),
            )
        )

    def allgatherv(self, payload: Any):
        """Irregular allgather (per-rank sizes may differ).

        The size-agreement gate runs first (zero virtual time) so the
        profiler charges the *actual* summed per-rank bytes rather than
        ``local_size * comm_size`` — the two differ exactly when the
        v-variant matters (irregular nodes, Fig 10)."""
        from repro.mpi.datatypes import nbytes_of

        tag = self._next_coll_tag()
        nbytes = nbytes_of(payload)
        if self.size > 1:
            total = yield from _coll._agree_total(self, nbytes, tag)
        else:
            total = nbytes
        return (
            yield from self._collective(
                "allgatherv", total,
                _coll.dispatch_allgatherv(self, payload, tag, total=total),
            )
        )

    def reduce(self, payload: Any, op: ReduceOp = ReduceOp.SUM, root: int = 0):
        """Reduce to *root*; returns the reduction there, None elsewhere."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "reduce", nbytes_of(payload),
                _coll.dispatch_reduce(
                    self, payload, op, root, self._next_coll_tag()
                ),
            )
        )

    def allreduce(self, payload: Any, op: ReduceOp = ReduceOp.SUM):
        """Allreduce; returns the reduction on every rank."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "allreduce", nbytes_of(payload),
                _coll.dispatch_allreduce(
                    self, payload, op, self._next_coll_tag()
                ),
            )
        )

    def alltoall(self, payloads: list[Any]):
        """All-to-all personalized exchange; returns received list."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "alltoall", sum(nbytes_of(p) for p in payloads),
                _coll.dispatch_alltoall(
                    self, payloads, self._next_coll_tag()
                ),
            )
        )

    def scan(self, payload: Any, op: ReduceOp = ReduceOp.SUM):
        """Inclusive prefix reduction."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "scan", nbytes_of(payload),
                _coll.dispatch_scan(
                    self, payload, op, self._next_coll_tag()
                ),
            )
        )

    def exscan(self, payload: Any, op: ReduceOp = ReduceOp.SUM):
        """Exclusive prefix reduction (None on rank 0)."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "exscan", nbytes_of(payload),
                _coll.dispatch_exscan(
                    self, payload, op, self._next_coll_tag()
                ),
            )
        )

    def reduce_scatter(self, payload: Any, op: ReduceOp = ReduceOp.SUM):
        """Block reduce-scatter: returns this rank's reduced block."""
        from repro.mpi.datatypes import nbytes_of

        return (
            yield from self._collective(
                "reduce_scatter", nbytes_of(payload),
                _coll.dispatch_reduce_scatter(
                    self, payload, op, self._next_coll_tag()
                ),
            )
        )

    # -- non-blocking collectives ------------------------------------------
    def _icoll(self, name: str, nbytes: int, gen) -> CollRequest:
        """Spawn a collective as a background process (MPI-3 style).

        The spawned generator still runs through :meth:`_collective`, so
        non-blocking collectives appear in the profile under their own
        ``i``-prefixed op names (time = issue-to-completion span).  The
        engine interleaves all live processes, so the pending collective
        progresses whenever this rank is suspended (compute delays
        included) — asynchronous progress for free.  Span contexts and
        the ordering rules live in :mod:`repro.mpi.nonblocking`."""
        return spawn_collective(
            self, name, self._collective(name, nbytes, gen)
        )

    def ibarrier(self) -> CollRequest:
        """Non-blocking barrier; wait on the returned request."""
        return self._icoll(
            "ibarrier", 0,
            _coll.dispatch_barrier(self, self._next_coll_tag()),
        )

    def ibcast(self, payload: Any, root: int = 0) -> CollRequest:
        """Non-blocking broadcast; request value is the payload."""
        from repro.mpi.datatypes import nbytes_of

        return self._icoll(
            "ibcast", nbytes_of(payload),
            _coll.dispatch_bcast(self, payload, root, self._next_coll_tag()),
        )

    def iallgather(self, payload: Any) -> CollRequest:
        """Non-blocking allgather; request value is the payload list."""
        from repro.mpi.datatypes import nbytes_of

        return self._icoll(
            "iallgather", nbytes_of(payload) * self.size,
            _coll.dispatch_allgather(self, payload, self._next_coll_tag()),
        )

    def iallgatherv(self, payload: Any) -> CollRequest:
        """Non-blocking irregular allgather; request value is the list.

        The size-agreement gate runs inside the background process, so
        issuing never blocks; the profiler still charges the agreed
        per-rank byte sum, exactly like :meth:`allgatherv`."""
        from repro.mpi.datatypes import nbytes_of

        tag = self._next_coll_tag()
        nbytes = nbytes_of(payload)

        def run():
            if self.size > 1:
                total = yield from _coll._agree_total(self, nbytes, tag)
            else:
                total = nbytes
            result = yield from self._collective(
                "iallgatherv", total,
                _coll.dispatch_allgatherv(self, payload, tag, total=total),
            )
            return result

        return spawn_collective(self, "iallgatherv", run())

    def ireduce(self, payload: Any, op: ReduceOp = ReduceOp.SUM,
                root: int = 0) -> CollRequest:
        """Non-blocking reduce; request value is the reduction at *root*
        (None elsewhere)."""
        from repro.mpi.datatypes import nbytes_of

        return self._icoll(
            "ireduce", nbytes_of(payload),
            _coll.dispatch_reduce(
                self, payload, op, root, self._next_coll_tag()
            ),
        )

    def iallreduce(self, payload: Any,
                   op: ReduceOp = ReduceOp.SUM) -> CollRequest:
        """Non-blocking allreduce; request value is the result."""
        from repro.mpi.datatypes import nbytes_of

        return self._icoll(
            "iallreduce", nbytes_of(payload),
            _coll.dispatch_allreduce(self, payload, op, self._next_coll_tag()),
        )

    # -- communicator management ----------------------------------------------
    def _gate(self, op: str, value: Any, reducer):
        """Coroutine helper: rendezvous all ranks of this comm."""
        self._gate_seq += 1
        key = (op, self._gate_seq)
        results = yield self._shared.arrive(key, self.rank, value, reducer)
        return results[self.rank]

    def split(self, color: int, key: int = 0):
        """``MPI_Comm_split`` (coroutine): returns the new :class:`Comm`
        for this rank, or None when *color* is ``UNDEFINED``."""
        job = self._shared.job
        parent_group = self._shared.group

        def reducer(values: dict[int, tuple[int, int]]) -> dict[int, Any]:
            by_color: dict[int, list[tuple[int, int]]] = {}
            for rank, (col, k) in values.items():
                if col == UNDEFINED:
                    continue
                by_color.setdefault(col, []).append((k, rank))
            shared_of_color: dict[int, _CommShared] = {}
            for col, members in by_color.items():
                members.sort()
                world = [parent_group.world_rank(r) for _k, r in members]
                shared_of_color[col] = _CommShared(
                    job, Group(world), name=f"{self.name}.split({col})"
                )
            return {
                rank: (None if col == UNDEFINED else shared_of_color[col])
                for rank, (col, _k) in values.items()
            }

        shared = yield from self._gate("split", (color, key), reducer)
        if shared is None:
            return None
        return Comm(shared, self._ctx)

    def split_type_shared(self, key: int = 0):
        """``MPI_Comm_split_type(..., MPI_COMM_TYPE_SHARED, ...)``:
        split into per-node (shared-memory) communicators."""
        node = self._ctx.placement.node_of(self._ctx.world_rank)
        return (yield from self.split(color=node, key=key))

    def subcomm(self, key: Any, members: list[int]):
        """Non-collective child communicator from globally-known state.

        *members* lists the parent-comm ranks of the child, identically
        derivable on every rank (e.g. "the ranks on my node" from the
        placement).  Used by internal hierarchical collectives, where a
        rendezvous-based split would be unsafe under concurrent
        non-blocking collectives.  Returns None when this rank is not a
        member.
        """
        world = tuple(self.world_rank_of(r) for r in members)
        if self._ctx.world_rank not in world:
            return None
        shared = self._shared.deterministic_child(
            key, world, name=f"{self.name}.sub{key}"
        )
        return Comm(shared, self._ctx)

    def dup(self):
        """Duplicate the communicator (fresh matching namespace)."""
        job = self._shared.job
        group = self._shared.group

        def reducer(values: dict[int, Any]) -> dict[int, Any]:
            shared = _CommShared(job, group, name=f"{self.name}.dup")
            return {rank: shared for rank in values}

        shared = yield from self._gate("dup", None, reducer)
        return Comm(shared, self._ctx)

    # -- internals ------------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise MPIError(
                f"peer rank {peer} out of range for {self.name!r} "
                f"(size {self.size})"
            )

    def __repr__(self) -> str:
        return f"<Comm {self.name!r} rank={self.rank}/{self.size}>"
