"""Process groups: ordered sets of world ranks (MPI_Group analogue)."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.mpi.constants import UNDEFINED

__all__ = ["Group"]


class Group:
    """An immutable, ordered list of world ranks.

    A communicator's rank *r* is the world rank ``group.world_rank(r)``;
    the inverse map is :meth:`rank_of`.
    """

    __slots__ = ("_ranks", "_index")

    def __init__(self, world_ranks: Sequence[int]):
        ranks = [int(r) for r in world_ranks]
        if len(set(ranks)) != len(ranks):
            raise ValueError("group contains duplicate ranks")
        if not ranks:
            raise ValueError("group must be non-empty")
        if any(r < 0 for r in ranks):
            raise ValueError("negative world rank in group")
        self._ranks = tuple(ranks)
        self._index = {w: i for i, w in enumerate(ranks)}

    @property
    def size(self) -> int:
        """Number of processes in the group."""
        return len(self._ranks)

    def world_rank(self, comm_rank: int) -> int:
        """World rank of group member *comm_rank*."""
        return self._ranks[comm_rank]

    def rank_of(self, world_rank: int) -> int:
        """Group rank of *world_rank*, or ``UNDEFINED`` if absent."""
        return self._index.get(world_rank, UNDEFINED)

    def contains(self, world_rank: int) -> bool:
        """True if *world_rank* belongs to the group."""
        return world_rank in self._index

    def world_ranks(self) -> tuple[int, ...]:
        """All members as world ranks, in group order."""
        return self._ranks

    def translate(self, comm_ranks: Iterable[int]) -> list[int]:
        """Map several group ranks to world ranks."""
        return [self._ranks[r] for r in comm_ranks]

    def __len__(self) -> int:
        return len(self._ranks)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and other._ranks == self._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __repr__(self) -> str:
        show = ", ".join(map(str, self._ranks[:8]))
        more = "" if self.size <= 8 else f", …(+{self.size - 8})"
        return f"Group([{show}{more}])"
