"""Derived datatypes: non-contiguous layouts with modelled packing cost.

Paper §6 names MPI derived datatypes as one remedy for non-SMP rank
placements — "the procedures of packing and unpacking always come with
performance penalty".  This module provides the descriptor algebra
(contiguous / vector / indexed, arbitrarily nested) with:

* **real semantics** — :meth:`Datatype.pack` / :meth:`Datatype.unpack`
  gather/scatter actual NumPy elements, so data-mode tests verify
  layouts element-for-element (e.g. sending a matrix column);
* **modelled cost** — ``NetworkSpec.per_byte_packing`` seconds per byte
  on each pack and unpack, charged by :meth:`Comm.send`-family calls
  when a ``datatype`` is passed.

Example: send column 3 of a 10×10 matrix::

    col = Vector(count=10, blocklength=1, stride=10, base=DOUBLE)
    yield from comm.send(matrix.reshape(-1), dest, datatype=col.offset(3))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "BaseType",
    "BYTE",
    "INT",
    "DOUBLE",
    "Contiguous",
    "Vector",
    "Indexed",
    "Datatype",
]


class Datatype:
    """Abstract layout descriptor over a flat element buffer.

    A datatype enumerates *element indices* (into the flattened source
    array) via :meth:`indices`; everything else (sizes, pack, unpack)
    derives from that.
    """

    #: Bytes per element of the underlying base type.
    itemsize: int = 1

    def indices(self) -> np.ndarray:
        """Element indices selected by this layout, in pack order."""
        raise NotImplementedError

    # -- derived quantities ---------------------------------------------------
    def count(self) -> int:
        """Number of elements selected."""
        return int(self.indices().size)

    def size(self) -> int:
        """Payload bytes actually transferred (the *type size*)."""
        return self.count() * self.itemsize

    def extent(self) -> int:
        """Span in elements from the first to one past the last index."""
        idx = self.indices()
        if idx.size == 0:
            return 0
        return int(idx.max()) + 1

    def is_contiguous(self) -> bool:
        """True when the layout needs no packing."""
        idx = self.indices()
        return idx.size == 0 or bool(
            np.all(np.diff(idx) == 1) and idx[0] == 0
        )

    # -- data movement -----------------------------------------------------
    def pack(self, flat: np.ndarray) -> np.ndarray:
        """Gather the selected elements into a contiguous array."""
        return np.ascontiguousarray(flat.reshape(-1)[self.indices()])

    def unpack(self, packed: np.ndarray, flat_dest: np.ndarray) -> None:
        """Scatter a packed array back into a destination buffer."""
        idx = self.indices()
        flat_dest.reshape(-1)[idx] = np.asarray(packed).reshape(-1)[: idx.size]

    def offset(self, elements: int) -> "Datatype":
        """The same layout displaced by *elements* (MPI lb displacement)."""
        return _Offset(self, elements)

    def packing_time(self, per_byte: float) -> float:
        """Seconds to pack (or unpack) one instance at *per_byte* cost."""
        return per_byte * self.size()


@dataclass(frozen=True)
class BaseType(Datatype):
    """A primitive element type (double, int, byte)."""

    nbytes: int
    name: str = "base"

    @property
    def itemsize(self) -> int:  # type: ignore[override]
        return self.nbytes

    def indices(self) -> np.ndarray:
        return np.array([0], dtype=np.int64)

    def __repr__(self) -> str:
        return f"<{self.name}:{self.nbytes}B>"


BYTE = BaseType(1, "byte")
INT = BaseType(4, "int")
DOUBLE = BaseType(8, "double")


class Contiguous(Datatype):
    """``count`` consecutive instances of ``base``."""

    def __init__(self, count: int, base: Datatype = DOUBLE):
        if count < 0:
            raise ValueError("count must be non-negative")
        self.count_ = count
        self.base = base
        self.itemsize = base.itemsize

    def indices(self) -> np.ndarray:
        inner = self.base.indices()
        ext = self.base.extent()
        return (
            inner[None, :] + np.arange(self.count_)[:, None] * ext
        ).reshape(-1)


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` bases, start-to-start ``stride``.

    The MPI_Type_vector analogue: a matrix column is
    ``Vector(nrows, 1, ncols)``.
    """

    def __init__(self, count: int, blocklength: int, stride: int,
                 base: Datatype = DOUBLE):
        if count < 0 or blocklength < 0:
            raise ValueError("count/blocklength must be non-negative")
        if blocklength > stride and count > 1:
            raise ValueError("overlapping vector blocks (blocklength > stride)")
        self.count_ = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base
        self.itemsize = base.itemsize

    def indices(self) -> np.ndarray:
        block = np.arange(self.blocklength)
        starts = np.arange(self.count_) * self.stride
        elem = (starts[:, None] + block[None, :]).reshape(-1)
        inner = self.base.indices()
        ext = self.base.extent()
        return (inner[None, :] + elem[:, None] * ext).reshape(-1)


class Indexed(Datatype):
    """Explicit (blocklength, displacement) pairs (MPI_Type_indexed)."""

    def __init__(self, blocklengths, displacements,
                 base: Datatype = DOUBLE):
        if len(blocklengths) != len(displacements):
            raise ValueError("blocklengths/displacements length mismatch")
        self.blocklengths = [int(b) for b in blocklengths]
        self.displacements = [int(d) for d in displacements]
        if any(b < 0 for b in self.blocklengths):
            raise ValueError("negative blocklength")
        self.base = base
        self.itemsize = base.itemsize

    def indices(self) -> np.ndarray:
        parts = [
            np.arange(d, d + b)
            for b, d in zip(self.blocklengths, self.displacements)
        ]
        elem = (
            np.concatenate(parts) if parts else np.array([], dtype=np.int64)
        )
        inner = self.base.indices()
        ext = self.base.extent()
        return (inner[None, :] + elem[:, None] * ext).reshape(-1)


class _Offset(Datatype):
    """A datatype displaced by a fixed number of elements."""

    def __init__(self, inner: Datatype, elements: int):
        self.inner = inner
        self.elements = int(elements)
        self.itemsize = inner.itemsize

    def indices(self) -> np.ndarray:
        return self.inner.indices() + self.elements


def send_with_datatype(comm, flat: Any, dest: int, datatype: Datatype,
                       tag: int = 0):
    """Coroutine: pack-send a non-contiguous layout (charging pack cost).

    In data mode *flat* is the flattened source array; in model mode any
    payload-like is accepted and only sizes matter.
    """
    per_byte = comm.ctx.machine.spec.network.per_byte_packing
    if not datatype.is_contiguous():
        yield comm.ctx.engine.timeout(datatype.packing_time(per_byte))
    if isinstance(flat, np.ndarray):
        payload = datatype.pack(flat)
    else:
        from repro.mpi.datatypes import Bytes

        payload = Bytes(datatype.size())
    yield from comm.send(payload, dest, tag=tag)


def recv_with_datatype(comm, flat_dest: Any, datatype: Datatype,
                       source: int, tag: int = 0):
    """Coroutine: receive into a non-contiguous layout (charging unpack)."""
    payload = yield from comm.recv(source=source, tag=tag)
    if not datatype.is_contiguous():
        per_byte = comm.ctx.machine.spec.network.per_byte_packing
        yield comm.ctx.engine.timeout(datatype.packing_time(per_byte))
    if isinstance(flat_dest, np.ndarray) and isinstance(payload, np.ndarray):
        datatype.unpack(payload, flat_dest)
    return payload
