"""A simulated MPI runtime on virtual time.

This package implements the MPI subset the paper's algorithms need —
faithfully enough that the hybrid MPI+MPI code in :mod:`repro.core` reads
like the paper's pseudo-code (Figs 4 and 6):

* **Point-to-point** (:mod:`repro.mpi.p2p`): ``send``/``recv``/
  ``isend``/``irecv``/``sendrecv`` with tag matching, wildcards, and an
  eager/rendezvous protocol model.
* **Communicators** (:mod:`repro.mpi.comm`): ``COMM_WORLD``, ``split``,
  ``split_type(COMM_TYPE_SHARED)``, ``dup``, groups and rank translation.
* **Collectives** (:mod:`repro.mpi.collectives`): broadcast, (all)gather(v),
  scatter(v), reduce, allreduce, alltoall, barrier — each with the
  classic algorithms (binomial, recursive doubling, Bruck, ring,
  dissemination) and an MPICH-style runtime selection table, plus
  SMP-aware hierarchical variants used as the paper's pure-MPI baseline.
* **MPI-3 shared memory** (:mod:`repro.mpi.shm`):
  ``win_allocate_shared`` / ``win_shared_query`` with real NumPy backing.
* **The job runner** (:mod:`repro.mpi.runtime`): executes one generator
  program per rank over a :class:`~repro.machine.Machine`.

Rank programs are generators; every blocking MPI call is driven with
``yield from``::

    def program(mpi):
        comm = mpi.world
        data = np.full(4, comm.rank, dtype=np.float64)
        gathered = yield from comm.allgather(data)
        return gathered

    result = run_program(spec, nprocs, program)
"""

from repro.mpi.cart import CartComm, cart_create, dims_create
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, COMM_TYPE_SHARED, UNDEFINED
from repro.mpi.datatypes import Bytes, nbytes_of
from repro.mpi.derived import BYTE, DOUBLE, INT, Contiguous, Indexed, Vector
from repro.mpi.errors import MPIError, TruncationError
from repro.mpi.nonblocking import CollRequest
from repro.mpi.profiler import CommProfile
from repro.mpi.runtime import JobResult, MPIJob, RankContext, run_program

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BYTE",
    "Bytes",
    "COMM_TYPE_SHARED",
    "CartComm",
    "CollRequest",
    "CommProfile",
    "Contiguous",
    "DOUBLE",
    "INT",
    "Indexed",
    "JobResult",
    "MPIError",
    "MPIJob",
    "RankContext",
    "TruncationError",
    "UNDEFINED",
    "Vector",
    "cart_create",
    "dims_create",
    "nbytes_of",
    "run_program",
]
