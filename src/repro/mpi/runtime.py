"""Job runner: execute one generator program per MPI rank in virtual time.

The analogue of ``mpirun``: :class:`MPIJob` builds the engine, the
machine, the placement, the message engine, and ``COMM_WORLD``; spawns
one process per rank running the user *program*; and collects results and
statistics into a :class:`JobResult`.

A rank program is a generator taking the per-rank :class:`RankContext`::

    def program(mpi):
        comm = mpi.world
        token = yield from comm.bcast(np.arange(4.0), root=0)
        yield mpi.compute_flops(1e6, kind="gemm")   # charge compute time
        return float(token.sum())

    result = run_program(hazel_hen(4), nprocs=96, program=program)
    result.returns      # per-rank return values
    result.elapsed      # virtual seconds until the last rank finished
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.machine.model import Machine, MachineSpec
from repro.machine.noise import NoiseModel
from repro.machine.placement import Placement
from repro.mpi.collectives.registry import SelectionPolicy, resolve_policy
from repro.mpi.collectives.tuning import CollectiveTuning, tuning_for_machine
from repro.mpi.comm import Comm, _CommShared
from repro.mpi.datatypes import Bytes
from repro.mpi.group import Group
from repro.mpi.p2p import MessageEngine
from repro.mpi.profiler import CommProfile, aggregate_profiles
from repro.mpi.shm import win_allocate_shared
from repro.simulator import Engine, Event
from repro.trace import Tracer

import numpy as np

__all__ = ["RankContext", "MPIJob", "JobResult", "run_program"]


class RankContext:
    """Everything one simulated MPI rank can see.

    Attributes
    ----------
    world_rank:
        Rank in ``COMM_WORLD``.
    world:
        The world communicator view (:class:`~repro.mpi.comm.Comm`).
    engine, machine, placement:
        Shared simulation infrastructure.
    data_mode:
        True when payloads carry real NumPy data.
    """

    __slots__ = (
        "world_rank", "engine", "machine", "placement", "job",
        "world", "data_mode", "tuning", "policy", "trace", "rng",
        "profile", "noise", "_noise_rng",
    )

    def __init__(self, job: "MPIJob", world_rank: int):
        self.job = job
        self.world_rank = world_rank
        self.engine = job.engine
        self.machine = job.machine
        self.placement = job.placement
        self.data_mode = job.payload_mode == "data"
        self.tuning = job.tuning
        self.policy = job.policy
        self.trace = job.tracer
        self.world: Comm = None  # type: ignore[assignment] - set by MPIJob
        self.rng = np.random.default_rng(job.seed + world_rank)
        self.profile = CommProfile()
        self.noise = job.noise
        self._noise_rng = (
            job.noise.stream_for(world_rank) if job.noise else None
        )

    # -- identity ------------------------------------------------------------
    @property
    def node(self) -> int:
        """Machine node hosting this rank."""
        return self.placement.node_of(self.world_rank)

    @property
    def socket(self) -> int:
        """Socket domain hosting this rank (0 on flat nodes)."""
        return self.machine.socket_of(self.world_rank)

    @property
    def now(self) -> float:
        """Current virtual time, seconds."""
        return self.engine.now

    @property
    def msg_engine(self) -> MessageEngine:
        """The job-wide message engine (used by Comm internals)."""
        return self.job.msg_engine

    # -- compute charging ------------------------------------------------------
    def compute(self, seconds: float, kind: str = "compute") -> Event:
        """Waitable advancing virtual time by *seconds* of computation.

        When the job carries a :class:`~repro.machine.noise.NoiseModel`,
        the charge is perturbed by this rank's deterministic noise
        stream.  With compute-span tracing (``trace="phase+compute"``)
        the charge is recorded as a ``kind="compute"`` span labelled
        *kind* — the signal the overlap analysis uses to tell hidden
        from exposed communication time."""
        if self.noise is not None:
            seconds = self.noise.perturb(seconds, self._noise_rng)
        tracer = self.trace
        if tracer is not None and tracer.compute:
            rec = tracer.begin({
                "t": self.engine.now, "rank": self.world_rank,
                "kind": "compute", "op": kind,
            })
            # Same tick-grid arithmetic as the timeout below, so the
            # span end matches the event time bit-for-bit.
            tracer.end(rec, self.engine.qtime(seconds))
        return self.engine.timeout(seconds)

    def compute_flops(self, flops: float, kind: str = "default") -> Event:
        """Waitable charging *flops* of kernel class *kind* (noise-aware)."""
        model = self.machine.spec.compute
        return self.compute(model.flops_time(flops, kind), kind=kind)

    def compute_gemm(self, m: int, n: int, k: int) -> Event:
        """Waitable charging one local dense GEMM (noise-aware)."""
        model = self.machine.spec.compute
        return self.compute(model.gemm_time(m, n, k), kind="gemm")

    def touch(self, nbytes: float):
        """Coroutine: stream *nbytes* through this rank's memory system
        (its socket's channel on multi-socket nodes)."""
        result = yield from self.machine.shared_touch(
            self.node, nbytes, self.socket
        )
        return result

    # -- payload helpers ------------------------------------------------------
    def payload(self, nbytes: int, fill: Any = None) -> Any:
        """A payload of *nbytes*: real zero/filled bytes in data mode,
        symbolic :class:`Bytes` otherwise."""
        if not self.data_mode:
            return Bytes(nbytes)
        arr = np.zeros(nbytes, dtype=np.uint8)
        if fill is not None:
            arr[:] = fill
        return arr

    def doubles(self, count: int, fill: float | None = None) -> Any:
        """A payload of *count* float64 elements."""
        if not self.data_mode:
            return Bytes(count * 8)
        arr = np.zeros(count, dtype=np.float64)
        if fill is not None:
            arr[:] = fill
        return arr

    # -- MPI-3 SHM ------------------------------------------------------------
    def win_allocate_shared(self, comm: Comm, nbytes: int):
        """Coroutine: allocate a shared window over *comm* (must be a
        single-node communicator)."""
        win = yield from win_allocate_shared(comm, nbytes)
        return win


@dataclass
class JobResult:
    """Outcome of one simulated MPI job."""

    returns: list[Any]
    elapsed: float
    finish_times: list[float]
    events_processed: int
    sent_messages: int
    sent_bytes: float
    intra_copies: int
    intra_bytes: float
    network_messages: int
    network_bytes: float
    trace: list[dict] | None = None
    placement: Placement | None = None
    profiles: list[CommProfile] = field(default_factory=list)
    #: Replay-cache activity (zero when replay is off): cache hits,
    #: misses (pocket recordings), and engine events not simulated
    #: because a record was applied instead.
    replay_hits: int = 0
    replay_misses: int = 0
    replay_events_saved: int = 0

    def max_rank_time(self) -> float:
        """Virtual time when the slowest rank finished."""
        return max(self.finish_times)

    def comm_summary(self) -> dict:
        """Job-wide per-operation communication statistics: calls and
        bytes summed over ranks, time as the per-rank maximum."""
        merged = aggregate_profiles(self.profiles)
        return {
            op: {"calls": s.calls, "bytes": s.bytes, "time": s.time}
            for op, s in sorted(merged.items())
        }


class MPIJob:
    """One simulated MPI execution.

    Payload handling is selected by ``payload`` (preferred) or the
    legacy ``payload_mode``:

    * ``"full"`` / ``"data"`` — real NumPy buffers, element-checked
      results (the default; used by the correctness tests);
    * ``"model"`` — symbolic :class:`Bytes` markers, O(1) memory per
      message;
    * ``"cost-only"`` — like ``"model"`` but additionally skips all
      send-time deep copies and receive-side copy bookkeeping.  Virtual
      times, event counts, and span streams are bit-identical to the
      other modes (the equivalence tests assert this); only wall-clock
      cost changes.  Used by the benchmark sweeps.

    ``fast_path=False`` selects the engine's legacy heap-only scheduler
    (same results, slower) — exposed for the equivalence tests.
    """

    def __init__(
        self,
        spec: MachineSpec,
        program: Callable[..., Any],
        nprocs: int | None = None,
        placement: Placement | None = None,
        payload_mode: str = "data",
        payload: str | None = None,
        tuning: CollectiveTuning | None = None,
        policy: SelectionPolicy | str | None = None,
        trace: bool | str | Tracer = False,
        link_contention: bool = False,
        seed: int = 12345,
        noise: NoiseModel | None = None,
        program_args: tuple = (),
        program_kwargs: dict | None = None,
        fast_path: bool = True,
        replay: bool | str | None = None,
    ):
        if payload is not None:
            payload_mode = {"full": "data"}.get(payload, payload)
        if payload_mode not in ("data", "model", "cost-only"):
            raise ValueError(
                "payload mode must be 'data'/'full', 'model', or 'cost-only'"
            )
        if placement is None:
            if nprocs is None:
                raise ValueError("pass nprocs or an explicit placement")
        self.engine = Engine(fast_path=fast_path)
        self.machine = Machine(
            self.engine, spec, link_contention=link_contention
        )
        self.placement = placement or self.machine.default_placement(nprocs)
        if nprocs is not None and self.placement.num_ranks != nprocs:
            raise ValueError(
                f"placement has {self.placement.num_ranks} ranks, "
                f"nprocs={nprocs}"
            )
        self.machine.bind_placement(self.placement)
        # trace: False -> off; True -> dispatch spans; a detail-level name
        # ("dispatch"/"phase"/"p2p", optionally with a "+compute" suffix
        # for compute-charge spans) or a Tracer -> that configuration.
        if isinstance(trace, Tracer):
            self.tracer: Tracer | None = trace
        elif isinstance(trace, str):
            detail, _, modifier = trace.partition("+")
            if modifier not in ("", "compute"):
                raise ValueError(
                    f"unknown trace modifier {modifier!r} "
                    "(only '+compute' is recognized)"
                )
            self.tracer = Tracer(detail=detail, compute=bool(modifier))
        else:
            self.tracer = Tracer() if trace else None
        self.msg_engine = MessageEngine(
            self.engine, self.machine, tracer=self.tracer,
            cost_only=payload_mode == "cost-only",
        )
        self.payload_mode = payload_mode
        self.spec = spec
        self.link_contention = link_contention
        self.fast_path = fast_path
        self.tuning = tuning or tuning_for_machine(spec.name)
        # None -> environment-driven (REPRO_COLL_POLICY / REPRO_COLL_<OP>);
        # a name or SelectionPolicy instance overrides the environment.
        self.policy = resolve_policy(policy)
        self.trace = trace
        self.seed = seed
        self.noise = noise
        self.program = program
        self.program_args = program_args
        self.program_kwargs = program_kwargs or {}
        self._comm_ids = 0
        # Replay: None defers to the environment (REPRO_REPLAY, with
        # "loop" selecting loop mode; REPRO_REPLAY_VERIFY implies replay
        # in verify mode).  ``replay="loop"`` additionally applies
        # records whose ranks exit at different timesteps — safe only
        # for align-disciplined programs (benchmark harnesses; see
        # ReplaySession).  The session only exists when it can ever fire
        # — symbolic payloads and no noise model; otherwise dispatches
        # run unchanged.
        import os as _os

        verify = _os.environ.get("REPRO_REPLAY_VERIFY", "0") not in ("", "0")
        if replay is None:
            env = _os.environ.get("REPRO_REPLAY", "0")
            replay = env if env == "loop" else (
                verify or env not in ("", "0")
            )
        self.replay = None
        if replay and payload_mode != "data" and noise is None:
            from repro.mpi.collectives.replay import ReplaySession

            self.replay = ReplaySession(
                self, verify=verify, loop=replay == "loop"
            )

    @property
    def trace_log(self) -> list[dict]:
        """The raw trace records (empty when tracing is off)."""
        return self.tracer.records if self.tracer else []

    def next_comm_id(self) -> int:
        """Allocate a runtime-unique communicator id."""
        self._comm_ids += 1
        return self._comm_ids

    def run(self) -> JobResult:
        """Execute the job to completion and return its result."""
        nranks = self.placement.num_ranks
        world_shared = _CommShared(
            self, Group(list(range(nranks))), name="world"
        )
        contexts = []
        finish_times = [0.0] * nranks
        returns: list[Any] = [None] * nranks
        for rank in range(nranks):
            ctx = RankContext(self, rank)
            ctx.world = Comm(world_shared, ctx)
            contexts.append(ctx)
        # Exposed for the replay layer, which applies recorded per-rank
        # profile increments without executing the profiled dispatch.
        self.contexts = contexts

        def wrapper(ctx: RankContext):
            value = yield from self.program(
                ctx, *self.program_args, **self.program_kwargs
            )
            finish_times[ctx.world_rank] = self.engine.now
            returns[ctx.world_rank] = value
            return value

        for ctx in contexts:
            self.engine.spawn(wrapper(ctx), name=f"rank{ctx.world_rank}")
        self.engine.run()
        self.msg_engine.assert_drained()
        net = self.machine.network.stats
        return JobResult(
            returns=returns,
            elapsed=self.engine.now,
            finish_times=finish_times,
            events_processed=self.engine.event_count,
            sent_messages=self.msg_engine.sent_messages,
            sent_bytes=self.msg_engine.sent_bytes,
            intra_copies=self.machine.intra_copies,
            intra_bytes=self.machine.intra_bytes,
            network_messages=net.messages,
            network_bytes=net.bytes,
            trace=self.tracer.records if self.tracer else None,
            placement=self.placement,
            profiles=[ctx.profile for ctx in contexts],
            replay_hits=self.replay.hits if self.replay else 0,
            replay_misses=self.replay.misses if self.replay else 0,
            replay_events_saved=(
                self.replay.events_saved if self.replay else 0
            ),
        )


def run_program(
    spec: MachineSpec,
    nprocs: int | None,
    program: Callable[..., Any],
    **options: Any,
) -> JobResult:
    """Convenience wrapper: build and run an :class:`MPIJob`.

    Extra keyword arguments are forwarded to :class:`MPIJob`.
    """
    job = MPIJob(spec, program, nprocs=nprocs, **options)
    return job.run()
