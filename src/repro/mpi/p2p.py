"""Point-to-point messaging: matching, protocols, and timing.

One :class:`MessageEngine` per job owns every in-flight message.  The
protocol model follows what MPICH/Open MPI/Cray MPI actually do:

**Inter-node**

* *eager* (``nbytes <= eager_threshold``): the sender injects immediately
  and completes once its NIC has serialized the message; delivery happens
  whether or not the receive is posted (unexpected-message queue).
* *rendezvous* (large): the transfer starts only after the matching
  receive is posted, costs an RTS/CTS handshake (one extra round trip),
  and both sides complete at transfer end.

**Intra-node** (the traffic hybrid MPI+MPI eliminates)

* *eager / CICO*: sender pays one latency hop plus a copy into the
  shared staging area (contended node memory), then completes; the
  receiver later pays the copy *out* of staging.  Two full copies total.
* *rendezvous / LMT single-copy*: for large messages both sides
  synchronize and a single direct copy moves the data.

Every payload is snapshotted at send time (value semantics), and receives
enforce buffer sizes (:class:`~repro.mpi.errors.TruncationError`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.machine.model import Machine
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.datatypes import clone, copy_into, nbytes_of
from repro.mpi.errors import MPIError, TruncationError
from repro.simulator import AllOf, Engine, Event

__all__ = ["MessageEngine", "Request", "Status"]


@dataclass(frozen=True)
class Status:
    """Completion metadata of a receive (MPI_Status analogue)."""

    source: int  # comm rank of the sender
    tag: int
    nbytes: int


class Request:
    """Handle for a non-blocking operation.

    ``yield req.event`` (or :meth:`Comm.wait` / :meth:`Comm.waitall`)
    suspends until completion.  For receives, ``req.event``'s value is a
    ``(payload, Status)`` pair.
    """

    __slots__ = ("event", "kind")

    def __init__(self, event: Event, kind: str):
        self.event = event
        self.kind = kind

    @property
    def complete(self) -> bool:
        """True once the operation has finished."""
        return self.event.triggered

    def __repr__(self) -> str:
        return f"<Request {self.kind} complete={self.complete}>"


class _SendRec:
    __slots__ = (
        "src_world", "src_comm_rank", "dst_world", "tag", "payload",
        "nbytes", "eager", "intra", "node", "src_node", "dst_node",
        "matched", "arrived", "sender_done", "seq",
    )

    def __init__(self, **kw: Any):
        for k, v in kw.items():
            setattr(self, k, v)


class _RecvRec:
    __slots__ = ("source", "tag", "buf", "event", "seq", "posted",
                 "dst_world")

    def __init__(self, source: int, tag: int, buf: Any, event: Event,
                 seq: int, posted: float = 0.0, dst_world: int = -1):
        self.source = source
        self.tag = tag
        self.buf = buf
        self.event = event
        self.seq = seq
        self.posted = posted
        self.dst_world = dst_world


@dataclass
class _MatchQueue:
    """Per-(comm, destination) matching state."""

    pending_sends: deque = field(default_factory=deque)
    pending_recvs: deque = field(default_factory=deque)


class MessageEngine:
    """Owns message matching and transfer scheduling for one job."""

    def __init__(self, engine: Engine, machine: Machine, tracer=None):
        self.engine = engine
        self.machine = machine
        # At trace detail "p2p" the match step records receive queue
        # waits (time between posting a receive and the matching send).
        self.tracer = tracer if tracer is not None and tracer.wants("p2p") \
            else None
        self._queues: dict[tuple[int, int], _MatchQueue] = {}
        self._seq = 0
        self.sent_messages = 0
        self.sent_bytes = 0.0

    # ------------------------------------------------------------------
    def _queue(self, comm_id: int, dst_world: int) -> _MatchQueue:
        key = (comm_id, dst_world)
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = _MatchQueue()
        return q

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- send ------------------------------------------------------------
    def post_send(
        self,
        comm_id: int,
        src_world: int,
        src_comm_rank: int,
        dst_world: int,
        payload: Any,
        tag: int,
    ) -> Event:
        """Post a send; returns the sender-completion event."""
        eng = self.engine
        machine = self.machine
        placement = machine._placement  # set by the runtime at job start
        src_node = placement.node_of(src_world)
        dst_node = placement.node_of(dst_world)
        intra = src_node == dst_node
        nbytes = nbytes_of(payload)
        eager = nbytes <= machine.spec.network.eager_threshold
        rec = _SendRec(
            src_world=src_world,
            src_comm_rank=src_comm_rank,
            dst_world=dst_world,
            tag=tag,
            payload=clone(payload),
            nbytes=nbytes,
            eager=eager,
            intra=intra,
            node=src_node,
            src_node=src_node,
            dst_node=dst_node,
            matched=Event(eng, name=f"send.matched s{src_world}->d{dst_world}"),
            arrived=Event(eng, name=f"send.arrived s{src_world}->d{dst_world}"),
            sender_done=Event(eng, name=f"send.done s{src_world}->d{dst_world}"),
            seq=self._next_seq(),
        )
        self.sent_messages += 1
        self.sent_bytes += nbytes
        q = self._queue(comm_id, dst_world)
        q.pending_sends.append(rec)
        eng.spawn(self._sender_process(rec), name=f"msg{rec.seq}.xfer")
        self._try_match(q)
        return rec.sender_done

    def _sender_process(self, rec: _SendRec):
        eng = self.engine
        machine = self.machine
        net = machine.network
        if rec.intra:
            if rec.eager:
                # CICO copy-in: latency hop + contended copy into staging.
                yield eng.timeout(machine.spec.node.shm_latency)
                yield from machine.memory_copy(rec.node, rec.nbytes)
                rec.sender_done.succeed()
                rec.arrived.succeed()
            else:
                # LMT single-copy: wait for the receive, then copy once.
                yield rec.matched
                yield eng.timeout(machine.spec.node.shm_latency)
                yield from machine.memory_copy(rec.node, rec.nbytes)
                rec.sender_done.succeed()
                rec.arrived.succeed()
        else:
            if rec.eager:
                tx = net.nic_tx(rec.src_node).transfer(rec.nbytes)
                rx = net.nic_rx(rec.dst_node).transfer(rec.nbytes)
                yield tx
                rec.sender_done.succeed()
                yield rx
                yield eng.timeout(net.latency(rec.src_node, rec.dst_node))
                rec.arrived.succeed()
            else:
                yield rec.matched
                yield eng.timeout(
                    net.rendezvous_latency(rec.src_node, rec.dst_node)
                )
                tx = net.nic_tx(rec.src_node).transfer(rec.nbytes)
                rx = net.nic_rx(rec.dst_node).transfer(rec.nbytes)
                yield AllOf([tx, rx])
                yield eng.timeout(net.latency(rec.src_node, rec.dst_node))
                net.stats.record(
                    rec.src_node, rec.dst_node, rec.nbytes,
                    net.topology.hops(rec.src_node, rec.dst_node),
                    rendezvous=True,
                )
                rec.sender_done.succeed()
                rec.arrived.succeed()
        if rec.intra:
            pass
        elif rec.eager:
            net.stats.record(
                rec.src_node, rec.dst_node, rec.nbytes,
                net.topology.hops(rec.src_node, rec.dst_node),
                rendezvous=False,
            )

    # -- recv ------------------------------------------------------------
    def post_recv(
        self,
        comm_id: int,
        dst_world: int,
        source: int,
        tag: int,
        buf: Any,
    ) -> Event:
        """Post a receive; the returned event's value is (payload, Status)."""
        ev = Event(
            self.engine, name=f"recv d{dst_world} src={source} tag={tag}"
        )
        rec = _RecvRec(source, tag, buf, ev, self._next_seq(),
                       posted=self.engine.now, dst_world=dst_world)
        q = self._queue(comm_id, dst_world)
        q.pending_recvs.append(rec)
        self._try_match(q)
        return ev

    # -- matching ----------------------------------------------------------
    @staticmethod
    def _matches(recv: _RecvRec, send: _SendRec) -> bool:
        src_ok = recv.source == ANY_SOURCE or recv.source == send.src_comm_rank
        tag_ok = recv.tag == ANY_TAG or recv.tag == send.tag
        return src_ok and tag_ok

    def _try_match(self, q: _MatchQueue) -> None:
        # Repeatedly pair the earliest-posted receive with the
        # earliest-posted matching send (MPI non-overtaking order).
        progress = True
        while progress:
            progress = False
            for recv in list(q.pending_recvs):
                chosen = None
                for send in q.pending_sends:
                    if self._matches(recv, send):
                        chosen = send
                        break
                if chosen is not None:
                    q.pending_recvs.remove(recv)
                    q.pending_sends.remove(chosen)
                    self._start_delivery(chosen, recv)
                    progress = True
                    break

    def _start_delivery(self, send: _SendRec, recv: _RecvRec) -> None:
        if self.tracer is not None:
            now = self.engine.now
            self.tracer.append({
                "t": now,
                "rank": recv.dst_world,
                "kind": "queue_wait",
                "wait": now - recv.posted,
                "nbytes": send.nbytes,
            })
        if not send.matched.triggered:
            send.matched.succeed()
        self.engine.spawn(
            self._deliver_process(send, recv),
            name=f"msg{send.seq}.deliver",
        )

    def _deliver_process(self, send: _SendRec, recv: _RecvRec):
        yield send.arrived
        machine = self.machine
        if send.intra and send.eager:
            # CICO copy-out of the staged message, paid by the receiver.
            yield from machine.memory_copy(send.dst_node, send.nbytes)
        try:
            payload = copy_into(recv.buf, send.payload)
        except ValueError as exc:
            recv.event.fail(TruncationError(str(exc)))
            return
        status = Status(
            source=send.src_comm_rank, tag=send.tag, nbytes=send.nbytes
        )
        recv.event.succeed((payload, status))

    # -- diagnostics -------------------------------------------------------
    def pending_counts(self) -> tuple[int, int]:
        """(unmatched sends, unmatched recvs) across all queues."""
        s = sum(len(q.pending_sends) for q in self._queues.values())
        r = sum(len(q.pending_recvs) for q in self._queues.values())
        return s, r

    def assert_drained(self) -> None:
        """Raise if any message was never matched (program bug)."""
        s, r = self.pending_counts()
        if s or r:
            raise MPIError(
                f"job finished with {s} unmatched send(s) and {r} "
                f"unmatched recv(s)"
            )
