"""Point-to-point messaging: matching, protocols, and timing.

One :class:`MessageEngine` per job owns every in-flight message.  The
protocol model follows what MPICH/Open MPI/Cray MPI actually do:

**Inter-node**

* *eager* (``nbytes <= eager_threshold``): the sender injects immediately
  and completes once its NIC has serialized the message; delivery happens
  whether or not the receive is posted (unexpected-message queue).
* *rendezvous* (large): the transfer starts only after the matching
  receive is posted, costs an RTS/CTS handshake (one extra round trip),
  and both sides complete at transfer end.

**Intra-node** (the traffic hybrid MPI+MPI eliminates)

* *eager / CICO*: sender pays one latency hop plus a copy into the
  shared staging area (contended node memory), then completes; the
  receiver later pays the copy *out* of staging.  Two full copies total.
* *rendezvous / LMT single-copy*: for large messages both sides
  synchronize and a single direct copy moves the data.

Every payload is snapshotted at send time (value semantics), and receives
enforce buffer sizes (:class:`~repro.mpi.errors.TruncationError`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.machine.model import Machine
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.datatypes import clone, copy_into, nbytes_of, snapshot
from repro.mpi.errors import MPIError, TruncationError
from repro.simulator import AllOf, Engine, Event, Process

__all__ = ["MessageEngine", "Request", "Status"]


class Status:
    """Completion metadata of a receive (MPI_Status analogue).

    Value-semantics (eq/hash by field), like the frozen dataclass it
    replaces — the hand-written ``__slots__`` form skips the dataclass
    ``__setattr__`` round-trip on the one-per-delivery hot path.
    """

    __slots__ = ("source", "tag", "nbytes")

    def __init__(self, source: int, tag: int, nbytes: int):
        self.source = source  # comm rank of the sender
        self.tag = tag
        self.nbytes = nbytes

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Status)
            and other.source == self.source
            and other.tag == self.tag
            and other.nbytes == self.nbytes
        )

    def __hash__(self) -> int:
        return hash((self.source, self.tag, self.nbytes))

    def __repr__(self) -> str:
        return (
            f"Status(source={self.source}, tag={self.tag}, "
            f"nbytes={self.nbytes})"
        )


class Request:
    """Handle for a non-blocking operation.

    ``yield req.event`` (or :meth:`Comm.wait` / :meth:`Comm.waitall`)
    suspends until completion.  For receives, ``req.event``'s value is a
    ``(payload, Status)`` pair.
    """

    __slots__ = ("event", "kind")

    def __init__(self, event: Event, kind: str):
        self.event = event
        self.kind = kind

    @property
    def complete(self) -> bool:
        """True once the operation has finished."""
        return self.event.triggered

    def __repr__(self) -> str:
        return f"<Request {self.kind} complete={self.complete}>"


class _SendRec:
    __slots__ = (
        "src_world", "src_comm_rank", "dst_world", "tag", "payload",
        "nbytes", "eager", "intra", "node", "src_node", "dst_node",
        "matched", "arrived", "sender_done", "seq",
    )

    def __init__(self, src_world, src_comm_rank, dst_world, tag, payload,
                 nbytes, eager, intra, node, src_node, dst_node,
                 matched, arrived, sender_done, seq):
        self.src_world = src_world
        self.src_comm_rank = src_comm_rank
        self.dst_world = dst_world
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes
        self.eager = eager
        self.intra = intra
        self.node = node
        self.src_node = src_node
        self.dst_node = dst_node
        self.matched = matched
        self.arrived = arrived
        self.sender_done = sender_done
        self.seq = seq


class _RecvRec:
    __slots__ = ("source", "tag", "buf", "event", "seq", "posted",
                 "dst_world")

    def __init__(self, source: int, tag: int, buf: Any, event: Event,
                 seq: int, posted: float = 0.0, dst_world: int = -1):
        self.source = source
        self.tag = tag
        self.buf = buf
        self.event = event
        self.seq = seq
        self.posted = posted
        self.dst_world = dst_world


@dataclass
class _MatchQueue:
    """Per-(comm, destination) matching state."""

    pending_sends: deque = field(default_factory=deque)
    pending_recvs: deque = field(default_factory=deque)


class MessageEngine:
    """Owns message matching and transfer scheduling for one job.

    ``cost_only=True`` switches send-time value semantics from
    :func:`clone` (deep copy) to :func:`snapshot` (size-preserving,
    storage-free) — every byte count and therefore every virtual-time
    charge is unchanged, only Python-level copying is elided.
    """

    def __init__(self, engine: Engine, machine: Machine, tracer=None,
                 cost_only: bool = False):
        self.engine = engine
        self.machine = machine
        # At trace detail "p2p" the match step records receive queue
        # waits (time between posting a receive and the matching send).
        self.tracer = tracer if tracer is not None and tracer.wants("p2p") \
            else None
        self.cost_only = cost_only
        self._snapshot = snapshot if cost_only else clone
        self._queues: dict[tuple[int, int], _MatchQueue] = {}
        self._seq = 0
        self.sent_messages = 0
        self.sent_bytes = 0.0
        #: Unmatched sends + receives across all queues, maintained O(1)
        #: (the replay layer's quiescence predicate polls this on every
        #: parked dispatch; the per-queue scan of pending_counts() stays
        #: for diagnostics).
        self.pending_total = 0
        # Hot-path caches (one attribute hop instead of three per send).
        self._eager_threshold = machine.spec.network.eager_threshold

    # ------------------------------------------------------------------
    def _queue(self, comm_id: int, dst_world: int) -> _MatchQueue:
        key = (comm_id, dst_world)
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = _MatchQueue()
        return q

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- send ------------------------------------------------------------
    def post_send(
        self,
        comm_id: int,
        src_world: int,
        src_comm_rank: int,
        dst_world: int,
        payload: Any,
        tag: int,
    ) -> Event:
        """Post a send; returns the sender-completion event."""
        eng = self.engine
        # set by the runtime at job start
        node_of = self.machine._placement._node_of
        src_node = node_of[src_world]
        dst_node = node_of[dst_world]
        nbytes = nbytes_of(payload)
        self._seq += 1
        # Event/process names are static: per-message f-strings cost more
        # than the rest of the bookkeeping combined at paper scale, and
        # the records themselves carry the src/dst/seq for diagnostics.
        rec = _SendRec(
            src_world,
            src_comm_rank,
            dst_world,
            tag,
            self._snapshot(payload),
            nbytes,
            nbytes <= self._eager_threshold,
            src_node == dst_node,
            src_node,
            src_node,
            dst_node,
            Event(eng, "send.matched"),
            Event(eng, "send.arrived"),
            Event(eng, "send.done"),
            self._seq,
        )
        self.sent_messages += 1
        self.sent_bytes += nbytes
        key = (comm_id, dst_world)
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = _MatchQueue()
        q.pending_sends.append(rec)
        self.pending_total += 1
        Process(eng, self._sender_process(rec), "msg.xfer")
        self._try_match(q)
        return rec.sender_done

    def _sender_process(self, rec: _SendRec):
        eng = self.engine
        machine = self.machine
        net = machine.network
        if rec.intra:
            if not machine.flat_intra:
                yield from self._intra_sender_transport(rec)
            elif rec.eager:
                # CICO copy-in: latency hop + contended copy into staging.
                # (memory_copy inlined: one copy = 2*nbytes through the
                # node memory system.)
                yield eng.pause(machine.spec.node.shm_latency)
                machine.intra_copies += 1
                machine.intra_bytes += rec.nbytes
                yield machine._memory[rec.node].transfer(2.0 * rec.nbytes)
                rec.sender_done.succeed()
                rec.arrived.succeed()
            else:
                # LMT single-copy: wait for the receive, then copy once.
                yield rec.matched
                yield eng.pause(machine.spec.node.shm_latency)
                machine.intra_copies += 1
                machine.intra_bytes += rec.nbytes
                yield machine._memory[rec.node].transfer(2.0 * rec.nbytes)
                rec.sender_done.succeed()
                rec.arrived.succeed()
        else:
            if rec.eager:
                tx = net.nic_tx(rec.src_node).transfer(rec.nbytes)
                rx = net.nic_rx(rec.dst_node).transfer(rec.nbytes)
                yield tx
                rec.sender_done.succeed()
                yield rx
                yield eng.pause(net.latency(rec.src_node, rec.dst_node))
                rec.arrived.succeed()
                net.stats.record(
                    rec.src_node, rec.dst_node, rec.nbytes,
                    net.topology.hops(rec.src_node, rec.dst_node),
                    rendezvous=False,
                )
            else:
                yield rec.matched
                yield eng.pause(
                    net.rendezvous_latency(rec.src_node, rec.dst_node)
                )
                tx = net.nic_tx(rec.src_node).transfer(rec.nbytes)
                rx = net.nic_rx(rec.dst_node).transfer(rec.nbytes)
                yield AllOf([tx, rx])
                yield eng.pause(net.latency(rec.src_node, rec.dst_node))
                net.stats.record(
                    rec.src_node, rec.dst_node, rec.nbytes,
                    net.topology.hops(rec.src_node, rec.dst_node),
                    rendezvous=True,
                )
                rec.sender_done.succeed()
                rec.arrived.succeed()

    def _intra_sender_transport(self, rec: _SendRec):
        """Sender half of an on-node message under the socket tier /
        pluggable transports (any configuration other than flat
        ``sockets=1`` + ``shm_two_copy``, which keeps the original
        inline path in :meth:`_sender_process`).

        Of the transport's ``eager_copies`` staged copies the sender
        performs all but the last (the receiver's copy-out, charged in
        :meth:`_deliver_process`).  Exactly one copy in the chain moves
        the bytes between sockets when sender and receiver live on
        different sockets: the first one.  Cross-socket copies are
        charged entirely to the node's cross-socket link and add
        ``xsocket_latency`` to the message latency.
        """
        eng = self.engine
        machine = self.machine
        node_spec = machine.spec.node
        tp = machine.transport
        src_sock = machine.socket_of(rec.src_world)
        dst_sock = machine.socket_of(rec.dst_world)
        cross = src_sock != dst_sock
        latency = node_spec.shm_latency * tp.latency_scale
        if cross:
            latency += node_spec.xsocket_latency
        if rec.eager:
            yield eng.pause(latency)
            for i in range(tp.eager_copies - 1):
                if cross and i == 0:
                    yield from machine.xsocket_copy(rec.node, rec.nbytes)
                else:
                    yield from machine.staged_copy(
                        rec.node, src_sock, rec.nbytes
                    )
            rec.sender_done.succeed()
            rec.arrived.succeed()
        else:
            # LMT: wait for the receive, then move the data directly
            # into the receiver's buffer.
            yield rec.matched
            yield eng.pause(latency)
            for i in range(tp.rdv_copies):
                if cross and i == 0:
                    yield from machine.xsocket_copy(rec.node, rec.nbytes)
                else:
                    yield from machine.staged_copy(
                        rec.node, dst_sock, rec.nbytes
                    )
            rec.sender_done.succeed()
            rec.arrived.succeed()

    # -- recv ------------------------------------------------------------
    def post_recv(
        self,
        comm_id: int,
        dst_world: int,
        source: int,
        tag: int,
        buf: Any,
    ) -> Event:
        """Post a receive; the returned event's value is (payload, Status)."""
        ev = Event(self.engine, "recv")
        self._seq += 1
        rec = _RecvRec(source, tag, buf, ev, self._seq,
                       posted=self.engine.now, dst_world=dst_world)
        key = (comm_id, dst_world)
        q = self._queues.get(key)
        if q is None:
            q = self._queues[key] = _MatchQueue()
        q.pending_recvs.append(rec)
        self.pending_total += 1
        self._try_match(q)
        return ev

    # -- matching ----------------------------------------------------------
    @staticmethod
    def _matches(recv: _RecvRec, send: _SendRec) -> bool:
        src_ok = recv.source == ANY_SOURCE or recv.source == send.src_comm_rank
        tag_ok = recv.tag == ANY_TAG or recv.tag == send.tag
        return src_ok and tag_ok

    def _try_match(self, q: _MatchQueue) -> None:
        # Pair the earliest-posted receive with the earliest-posted
        # matching send (MPI non-overtaking order).  One forward pass over
        # the receives suffices: succeed()/spawn() are deferred (nothing
        # is appended mid-scan), and consuming a send can never enable an
        # *earlier* receive that already failed to match.
        sends = q.pending_sends
        recvs = q.pending_recvs
        if not sends or not recvs:
            return
        if len(recvs) == 1 and len(sends) == 1:
            # Single pending pair — by far the dominant case in the
            # collective sweeps (every post_send/post_recv immediately
            # matches its counterpart).  Inline the match predicate and
            # skip the scan copy.
            recv = recvs[0]
            send = sends[0]
            if (recv.source == ANY_SOURCE
                    or recv.source == send.src_comm_rank) and (
                    recv.tag == ANY_TAG or recv.tag == send.tag):
                recvs.popleft()
                sends.popleft()
                self.pending_total -= 2
                self._start_delivery(send, recv)
            return
        for recv in list(recvs):
            chosen = None
            for send in sends:
                if self._matches(recv, send):
                    chosen = send
                    break
            if chosen is not None:
                recvs.remove(recv)
                sends.remove(chosen)
                self.pending_total -= 2
                self._start_delivery(chosen, recv)
                if not sends:
                    return

    def _start_delivery(self, send: _SendRec, recv: _RecvRec) -> None:
        if self.tracer is not None:
            now = self.engine.now
            self.tracer.append({
                "t": now,
                "rank": recv.dst_world,
                "kind": "queue_wait",
                "wait": now - recv.posted,
                "nbytes": send.nbytes,
            })
        if send.matched._state == 0:  # pending
            send.matched.succeed()
        Process(self.engine, self._deliver_process(send, recv), "msg.deliver")

    def _deliver_process(self, send: _SendRec, recv: _RecvRec):
        yield send.arrived
        machine = self.machine
        if send.intra and send.eager:
            if machine.flat_intra:
                # CICO copy-out of the staged message, paid by the
                # receiver (memory_copy inlined).
                machine.intra_copies += 1
                machine.intra_bytes += send.nbytes
                yield machine._memory[send.dst_node].transfer(
                    2.0 * send.nbytes
                )
            else:
                # Receiver-side final staged copy under the socket tier
                # / transport abstraction.  When the transport is
                # single-copy this IS the data movement, so it crosses
                # the socket link for cross-socket pairs; with two-copy
                # CICO the copy-in already crossed and the copy-out is
                # local to the receiver's socket.
                tp = machine.transport
                dst_sock = machine.socket_of(send.dst_world)
                cross = (
                    tp.eager_copies == 1
                    and machine.socket_of(send.src_world) != dst_sock
                )
                if cross:
                    yield from machine.xsocket_copy(
                        send.dst_node, send.nbytes
                    )
                else:
                    yield from machine.staged_copy(
                        send.dst_node, dst_sock, send.nbytes
                    )
        try:
            payload = copy_into(recv.buf, send.payload)
        except ValueError as exc:
            recv.event.fail(TruncationError(str(exc)))
            return
        status = Status(
            source=send.src_comm_rank, tag=send.tag, nbytes=send.nbytes
        )
        recv.event.succeed((payload, status))

    # -- diagnostics -------------------------------------------------------
    def pending_counts(self) -> tuple[int, int]:
        """(unmatched sends, unmatched recvs) across all queues."""
        s = sum(len(q.pending_sends) for q in self._queues.values())
        r = sum(len(q.pending_recvs) for q in self._queues.values())
        return s, r

    def assert_drained(self) -> None:
        """Raise if any message was never matched (program bug)."""
        s, r = self.pending_counts()
        if s or r:
            raise MPIError(
                f"job finished with {s} unmatched send(s) and {r} "
                f"unmatched recv(s)"
            )
