"""Distributed power iteration (repeated matrix-vector products).

The archetypal allgather-per-iteration kernel the paper's introduction
motivates (cf. the mpi4py tutorial's ``matvec``): the matrix is
row-partitioned, each rank computes its slice of ``y = A x`` and the
full iterate is re-assembled with an allgather every step.  Power
iteration on a symmetric matrix converges to the dominant eigenpair,
giving a crisp correctness check (residual ``‖Av - λv‖``).

Variants:

* **ori** — `MPI_Allgatherv` of the iterate each step (private copies);
* **hybrid** — the iterate lives in a node-shared window
  (:mod:`repro.core`), each rank writes its slice in place, and the
  hybrid allgather runs; the local GEMV reads the shared iterate
  directly.

The normalization factor uses an allreduce in both variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.bpmf import block_partition
from repro.core import HybridContext
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes

__all__ = ["MatvecConfig", "power_iteration_program"]


@dataclass(frozen=True)
class MatvecConfig:
    """Power-iteration run parameters.

    Attributes
    ----------
    n:
        Matrix dimension.
    iterations:
        Power steps.
    variant:
        ``"ori"`` or ``"hybrid"``.
    seed:
        Matrix generator seed (symmetric, dominant eigenvalue planted).
    """

    n: int = 256
    iterations: int = 20
    variant: str = "ori"
    seed: int = 21

    def __post_init__(self) -> None:
        if self.variant not in ("ori", "hybrid"):
            raise ValueError("variant must be 'ori' or 'hybrid'")
        if self.n < 1 or self.iterations < 1:
            raise ValueError("n and iterations must be >= 1")


def _planted_matrix(n: int, seed: int) -> np.ndarray:
    """Symmetric matrix with a planted dominant eigenpair."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)) / np.sqrt(n)
    a = (a + a.T) / 2.0
    v = rng.standard_normal(n)
    v /= np.linalg.norm(v)
    return a + 5.0 * np.outer(v, v)  # eigenvalue ~5 dominates


def power_iteration_program(mpi, config: MatvecConfig):
    """Rank program; returns timing stats plus the eigen-estimate."""
    comm = mpi.world
    size, rank = comm.size, comm.rank
    parts = block_partition(config.n, size)
    lo, hi = parts[rank]
    rows = hi - lo
    data = mpi.data_mode

    if data:
        a_full = _planted_matrix(config.n, config.seed)
        a_mine = a_full[lo:hi]          # my row block
        x = np.ones(config.n) / np.sqrt(config.n)
    else:
        a_mine = None
        x = None

    hybrid = None
    xbuf = None
    if config.variant == "hybrid":
        hybrid = yield from HybridContext.create(comm)
        sizes = [8 * (b - a) for a, b in parts]
        xbuf = yield from hybrid.allgatherv_buffer(sizes)
        if data:
            view = xbuf.node_view(np.float64)
            if hybrid.is_leader:
                view[:] = _node_major_vector(x, parts, xbuf)
            yield from hybrid.shm.barrier()

    t0 = mpi.now
    comm_time = 0.0
    lam = 0.0

    for _ in range(config.iterations):
        # Local slice of y = A x.
        if data:
            if config.variant == "hybrid":
                x = _read_vector(xbuf, parts)
            y_mine = a_mine @ x
        else:
            y_mine = None
        yield mpi.compute_flops(2.0 * rows * config.n, kind="blas2")

        # Global normalization via allreduce of the slice's norm².
        norm_contrib = (
            np.array([float(y_mine @ y_mine)]) if data else Bytes(8)
        )
        tc = mpi.now
        total = yield from comm.allreduce(norm_contrib, ReduceOp.SUM)
        comm_time += mpi.now - tc
        if data:
            norm = float(np.sqrt(np.asarray(total)[0]))
            lam = norm  # Rayleigh-like estimate for unit x
            y_mine = y_mine / norm

        # Reassemble the iterate.
        tc = mpi.now
        if config.variant == "ori":
            payload = y_mine if data else Bytes(8 * rows)
            blocks = yield from comm.allgatherv(payload)
            if data:
                x = np.concatenate(
                    [np.asarray(b).reshape(-1) for b in blocks]
                )
        else:
            if data:
                xbuf.local_view(np.float64)[:] = y_mine
            yield from hybrid.allgather(xbuf)
        comm_time += mpi.now - tc

    total_time = mpi.now - t0
    result = {
        "total": total_time,
        "comm": comm_time,
        "compute": total_time - comm_time,
        "eigenvalue": lam if data else None,
    }
    if data:
        x_final = (
            _read_vector(xbuf, parts)
            if config.variant == "hybrid"
            else x
        )
        resid = np.linalg.norm(a_mine @ x_final - lam * x_final[lo:hi])
        result["residual"] = float(resid)
    return result


def _node_major_vector(x: np.ndarray, parts, buf) -> np.ndarray:
    pieces = []
    for slot in range(len(parts)):
        r = buf.layout.rank_of_slot(slot)
        lo, hi = parts[r]
        pieces.append(x[lo:hi])
    return np.concatenate(pieces)


def _read_vector(buf, parts) -> np.ndarray:
    view = buf.node_view(np.float64)
    n = parts[-1][1]
    out = np.empty(n)
    for r, (lo, hi) in enumerate(parts):
        off = buf.offset_of_rank(r) // 8
        out[lo:hi] = view[off : off + (hi - lo)]
    return out
