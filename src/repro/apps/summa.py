"""SUMMA: Scalable Universal Matrix Multiplication Algorithm (§5.2.1).

``C = A × B`` on a ``√P × √P`` process grid (van de Geijn & Watts 1997).
Each process owns ``b × b`` blocks of A, B and C; iteration *k* broadcasts
the k-th block column of A along process rows and the k-th block row of B
along process columns, then every process accumulates
``C += A_k @ B_k``.  The paper runs √P iterations with two broadcasts
each and compares:

* **Ori_SUMMA** — broadcasts via the tuned pure-MPI ``MPI_Bcast``
  (delivering a private copy of each panel to every rank);
* **Hy_SUMMA** — broadcasts via the hybrid MPI+MPI
  :func:`repro.core.bcast.hy_bcast` over row/column
  :class:`~repro.core.hierarchy.HybridContext`\\ s, with the paper's
  added barrier after each broadcast; on-node ranks compute straight out
  of the node-shared panel, so no on-node panel copies exist.

With ``overlap=True`` both variants pre-post iteration *k+1*'s two panel
broadcasts (``ibcast``) before running iteration *k*'s GEMM, so the
communication progresses behind the compute and only the *exposed*
remainder is waited for.  The hybrid variant double-buffers the shared
panel windows (depth 2): the panel being computed from and the panel in
flight live in distinct node-shared regions.  Overwriting buffer
``(k+1) % 2`` at post time is safe because every rank has finished its
reads of panel ``k-1`` (which used the same region) before any root's
``wait(k)`` — and hence its post of ``k+1`` — can complete: a rank's
background broadcast *k* only passes the release barrier after that rank
posted it, which happens after its own panel ``k-1`` reads.

In data mode the blocks are real and the product is verified; in model
mode the GEMM is charged through the compute model only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import HybridContext
from repro.mpi.datatypes import Bytes

__all__ = ["SummaConfig", "summa_program", "grid_shape"]


def grid_shape(nprocs: int) -> int:
    """√P for a perfect-square process count (raises otherwise)."""
    q = int(round(nprocs**0.5))
    if q * q != nprocs:
        raise ValueError(f"SUMMA needs a square process count, got {nprocs}")
    return q


@dataclass(frozen=True)
class SummaConfig:
    """SUMMA run parameters.

    Attributes
    ----------
    block:
        Per-core block edge *b* (the paper uses 8, 64, 128, 256).
    variant:
        ``"ori"`` (pure MPI) or ``"hybrid"`` (MPI+MPI).
    verify:
        In data mode, check the distributed product against a local
        ``A @ B`` (only sensible for small grids).
    overlap:
        Pre-post the next iteration's panel broadcasts behind the
        current GEMM (non-blocking ``ibcast`` + double buffering);
        ``comm`` then reports only the *exposed* wait time.
    """

    block: int = 64
    variant: str = "ori"
    verify: bool = False
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.variant not in ("ori", "hybrid"):
            raise ValueError("variant must be 'ori' or 'hybrid'")
        if self.block < 1:
            raise ValueError("block must be >= 1")


def summa_program(mpi, config: SummaConfig):
    """Rank program running one SUMMA multiply; returns timing stats.

    Returns a dict with the total time, communication time and the
    Frobenius norm of the local C block (data mode).
    """
    comm = mpi.world
    q = grid_shape(comm.size)
    b = config.block
    row, col = comm.rank // q, comm.rank % q

    row_comm = yield from comm.split(color=row, key=col)
    col_comm = yield from comm.split(color=col, key=row)

    data = mpi.data_mode
    if data:
        rng = np.random.default_rng(1000 + comm.rank)
        a_own = rng.standard_normal((b, b))
        b_own = rng.standard_normal((b, b))
        c = np.zeros((b, b))
    else:
        a_own = b_own = c = None

    hybrid_row = hybrid_col = None
    abuf = bbuf = None
    abufs = bbufs = None
    if config.variant == "hybrid":
        hybrid_row = yield from HybridContext.create(row_comm)
        hybrid_col = yield from HybridContext.create(col_comm)
        if config.overlap:
            # Depth-2 double buffering: the panel being multiplied and
            # the panel in flight occupy distinct node-shared regions.
            abufs, bbufs = [], []
            for _ in range(2):
                ab = yield from hybrid_row.bcast_buffer(b * b * 8, cache=False)
                bb = yield from hybrid_col.bcast_buffer(b * b * 8, cache=False)
                abufs.append(ab)
                bbufs.append(bb)
        else:
            abuf = yield from hybrid_row.bcast_buffer(b * b * 8)
            bbuf = yield from hybrid_col.bcast_buffer(b * b * 8)

    t_start = mpi.now
    comm_time = 0.0

    if config.overlap:
        def post_panels(k):
            """Coroutine: post iteration *k*'s two panel broadcasts."""
            if config.variant == "ori":
                if data:
                    pa = a_own.copy() if col == k else np.empty((b, b))
                    pb = b_own.copy() if row == k else np.empty((b, b))
                else:
                    pa = Bytes(b * b * 8)
                    pb = Bytes(b * b * 8)
                if False:  # pragma: no cover - keeps this a generator
                    yield None
                return (
                    row_comm.ibcast(pa, root=k),
                    col_comm.ibcast(pb, root=k),
                )
            abuf_k, bbuf_k = abufs[k % 2], bbufs[k % 2]
            if col == k:
                view = abuf_k.node_view(np.float64)
                if view is not None:
                    view[:] = a_own.reshape(-1)
                # Root's store of its panel into the shared window.
                yield from mpi.machine.memory_copy(mpi.node, b * b * 8)
            req_a = hybrid_row.ibcast(abuf_k, root=k)
            if row == k:
                view = bbuf_k.node_view(np.float64)
                if view is not None:
                    view[:] = b_own.reshape(-1)
                yield from mpi.machine.memory_copy(mpi.node, b * b * 8)
            req_b = hybrid_col.ibcast(bbuf_k, root=k)
            return req_a, req_b

        reqs = yield from post_panels(0)
        for k in range(q):
            req_a, req_b = reqs
            t0 = mpi.now
            got_a = yield from req_a.wait()
            got_b = yield from req_b.wait()
            comm_time += mpi.now - t0
            if config.variant == "ori":
                panel_a = np.asarray(got_a).reshape(b, b) if data else None
                panel_b = np.asarray(got_b).reshape(b, b) if data else None
            else:
                panel_a = abufs[k % 2].node_view(np.float64)
                panel_b = bbufs[k % 2].node_view(np.float64)
                if panel_a is not None:
                    panel_a = panel_a.reshape(b, b)
                if panel_b is not None:
                    panel_b = panel_b.reshape(b, b)
            if k + 1 < q:
                reqs = yield from post_panels(k + 1)
            if data:
                c += panel_a @ panel_b
            yield mpi.compute_gemm(b, b, b)
        total = mpi.now - t_start
        result = {
            "total": total,
            "comm": comm_time,
            "compute": total - comm_time,
            "norm": float(np.linalg.norm(c)) if data else None,
            "row": row,
            "col": col,
        }
        if data and config.verify:
            result["c"] = c
            result["a"] = a_own
            result["b"] = b_own
        return result

    for k in range(q):
        # --- broadcast the k-th A panel along my process row -----------
        t0 = mpi.now
        if config.variant == "ori":
            if data:
                panel_a = a_own.copy() if col == k else np.empty((b, b))
            else:
                panel_a = Bytes(b * b * 8)
            panel_a = yield from row_comm.bcast(panel_a, root=k)
            if data:
                panel_a = np.asarray(panel_a).reshape(b, b)
        else:
            if col == k:
                view = abuf.node_view(np.float64)
                if view is not None:
                    view[:] = a_own.reshape(-1)
                # Root's store of its panel into the shared window.
                yield from mpi.machine.memory_copy(mpi.node, b * b * 8)
            yield from hybrid_row.bcast(abuf, root=k)
            panel_a = abuf.node_view(np.float64)
            if panel_a is not None:
                panel_a = panel_a.reshape(b, b)
        # --- broadcast the k-th B panel along my process column ---------
        if config.variant == "ori":
            if data:
                panel_b = b_own.copy() if row == k else np.empty((b, b))
            else:
                panel_b = Bytes(b * b * 8)
            panel_b = yield from col_comm.bcast(panel_b, root=k)
            if data:
                panel_b = np.asarray(panel_b).reshape(b, b)
        else:
            if row == k:
                view = bbuf.node_view(np.float64)
                if view is not None:
                    view[:] = b_own.reshape(-1)
                yield from mpi.machine.memory_copy(mpi.node, b * b * 8)
            yield from hybrid_col.bcast(bbuf, root=k)
            panel_b = bbuf.node_view(np.float64)
            if panel_b is not None:
                panel_b = panel_b.reshape(b, b)
        comm_time += mpi.now - t0
        # --- local accumulate -------------------------------------------
        if data:
            c += panel_a @ panel_b
        yield mpi.compute_gemm(b, b, b)

    total = mpi.now - t_start
    result = {
        "total": total,
        "comm": comm_time,
        "compute": total - comm_time,
        "norm": float(np.linalg.norm(c)) if data else None,
        "row": row,
        "col": col,
    }
    if data and config.verify:
        result["c"] = c
        result["a"] = a_own
        result["b"] = b_own
    return result


def verify_summa(returns: list[dict], q: int, b: int) -> bool:
    """Cross-check the distributed product against a local multiply.

    Requires ``SummaConfig(verify=True)`` in data mode.  Reassembles the
    global A, B, C from per-rank blocks and compares.
    """
    n = q * b
    A = np.zeros((n, n))
    B = np.zeros((n, n))
    C = np.zeros((n, n))
    for rank, res in enumerate(returns):
        r, c_ = res["row"], res["col"]
        A[r * b : (r + 1) * b, c_ * b : (c_ + 1) * b] = res["a"]
        B[r * b : (r + 1) * b, c_ * b : (c_ + 1) * b] = res["b"]
        C[r * b : (r + 1) * b, c_ * b : (c_ + 1) * b] = res["c"]
    return bool(np.allclose(C, A @ B, atol=1e-8))
