"""Distributed BPMF (Bayesian Probabilistic Matrix Factorization), §5.2.2.

Gibbs-sampling matrix factorization (Salakhutdinov & Mnih 2008) in the
distributed formulation of the ExaScience ``bpmf`` code (Vander Aa et
al. 2016): compounds ("movies") and targets ("users") are block-
partitioned over the ranks; every iteration has two sampling regions —

1. sample the latent vector of each *owned* compound from its Gaussian
   conditional (given the current target factors), then **allgatherv**
   the new compound factors so every rank holds the full matrix;
2. the symmetric step for targets.

Hyper-parameters come from Normal-Wishart posteriors whose sufficient
statistics (factor sum and second moment) are combined with a small
**allreduce** (identical in both variants, so the comparison isolates
the allgather as in the paper).

Variants:

* **Ori_BPMF** — plain ``MPI_Allgatherv``: every rank keeps a private
  copy of both factor matrices.
* **Hy_BPMF** — the factor matrices live in node-shared windows; ranks
  write their slices in place and run the hybrid allgatherv of
  :mod:`repro.core` (barriers included, paper Fig 4), so each node holds
  exactly one copy.

Data mode runs the real sampler on a (small) synthetic dataset and
reports RMSE; model mode charges the sampler's flop count through the
compute model and is used for the paper-scale Fig 12 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.apps.datasets import SyntheticActivity
from repro.core import HybridContext
from repro.mpi.constants import ReduceOp
from repro.mpi.datatypes import Bytes

__all__ = ["BPMFConfig", "bpmf_program", "block_partition"]


def block_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into *parts* contiguous (start, stop) blocks."""
    base, rem = divmod(n, parts)
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < rem else 0)
        out.append((start, start + size))
        start += size
    return out


@dataclass(frozen=True)
class BPMFConfig:
    """BPMF run parameters.

    Attributes
    ----------
    dataset:
        Real data (data mode); may be None in model mode.
    num_compounds / num_targets / nnz:
        Problem dimensions for model mode (ignored when *dataset* given).
    latent_dim:
        Latent dimensionality D (paper/ExaScience default: 10... 32).
    iterations:
        Gibbs iterations ("number of iterations to be sampled is set to
        be 20" in §5.2.2).
    variant:
        ``"ori"`` or ``"hybrid"``.
    beta:
        Observation precision of the Gaussian likelihood.
    """

    dataset: SyntheticActivity | None = None
    num_compounds: int = 15073
    num_targets: int = 346
    nnz: int = 57000
    latent_dim: int = 32
    iterations: int = 20
    variant: str = "ori"
    beta: float = 1.5
    seed: int = 7
    #: Fixed per-item sampling cost (seconds) on top of the flop count —
    #: covers RNG draws, posterior assembly, and cache-unfriendly factor
    #: gathers; calibrated so the communication share of the runtime
    #: lands in the paper's Fig 12 band (a few percent at 24 cores).
    per_item_overhead: float = 2.5e-4
    #: Per-iteration cost replicated on every rank regardless of the
    #: core count: Normal-Wishart hyper-parameter sampling and the
    #: test-set prediction pass, which the reference BPMF executes
    #: redundantly on all ranks.  This is what makes the application's
    #: strong scaling saturate (and keeps Fig 12's ratio in its gentle
    #: 1.0-1.1 band instead of exploding as compute vanishes).
    per_iteration_overhead: float = 2.5e-2

    def __post_init__(self) -> None:
        if self.variant not in ("ori", "hybrid"):
            raise ValueError("variant must be 'ori' or 'hybrid'")
        if self.iterations < 1 or self.latent_dim < 1:
            raise ValueError("iterations and latent_dim must be >= 1")

    def dims(self) -> tuple[int, int, int]:
        """(compounds, targets, nnz) whichever mode we're in."""
        if self.dataset is not None:
            return (
                self.dataset.num_compounds,
                self.dataset.num_targets,
                self.dataset.nnz,
            )
        return self.num_compounds, self.num_targets, self.nnz


def _sample_items(
    rng: np.random.Generator,
    ratings_csr,          # items × others CSR (rows = my item axis)
    lo: int,
    hi: int,
    other_factors: np.ndarray,   # (n_other, D)
    hyper_mu: np.ndarray,
    hyper_lambda: np.ndarray,
    beta: float,
) -> np.ndarray:
    """Sample latent vectors for items [lo, hi) from their Gaussian
    conditionals (the core Gibbs update)."""
    d = other_factors.shape[1]
    out = np.empty((hi - lo, d))
    indptr, indices, data = (
        ratings_csr.indptr,
        ratings_csr.indices,
        ratings_csr.data,
    )
    base = hyper_lambda @ hyper_mu
    for i in range(lo, hi):
        sl = slice(indptr[i], indptr[i + 1])
        cols = indices[sl]
        vals = data[sl]
        if cols.size:
            vv = other_factors[cols]
            prec = hyper_lambda + beta * (vv.T @ vv)
            rhs = base + beta * (vv.T @ vals)
        else:
            prec = hyper_lambda
            rhs = base
        chol = np.linalg.cholesky(prec)
        mean = np.linalg.solve(prec, rhs)
        z = rng.standard_normal(d)
        out[i - lo] = mean + np.linalg.solve(chol.T, z)
    return out


def _gibbs_flops(items: int, nnz: int, d: int) -> float:
    """Flop estimate of one sampling region over *items* rows with *nnz*
    total observations: rank-1 accumulations + one D³ solve per item."""
    return nnz * (2.0 * d * d + 2.0 * d) + items * (2.0 / 3.0 * d**3 + 4.0 * d * d)


def _region_cost(mpi, config: BPMFConfig, items: int, nnz: float) -> float:
    """Virtual seconds charged for one sampling region.

    Combines the flop estimate (at BLAS-2 efficiency) with the fixed
    per-item overhead of the sampler."""
    model = mpi.machine.spec.compute
    return (
        model.flops_time(_gibbs_flops(items, nnz, config.latent_dim), "blas2")
        + items * config.per_item_overhead
    )


def bpmf_program(mpi, config: BPMFConfig):
    """Rank program for one BPMF run; returns timing/quality stats."""
    comm = mpi.world
    size, rank = comm.size, comm.rank
    d = config.latent_dim
    n_comp, n_targ, nnz_total = config.dims()
    comp_parts = block_partition(n_comp, size)
    targ_parts = block_partition(n_targ, size)
    my_comp = comp_parts[rank]
    my_targ = targ_parts[rank]
    data = mpi.data_mode and config.dataset is not None
    rng = np.random.default_rng(config.seed * 1000 + rank)

    if data:
        R = config.dataset.matrix.tocsr()          # compounds × targets
        Rt = R.T.tocsr()                           # targets × compounds
        U = rng.standard_normal((n_comp, d)) * 0.1   # compound factors
        V = rng.standard_normal((n_targ, d)) * 0.1   # target factors
    else:
        R = Rt = None
        U = V = None

    hyper_mu_u = np.zeros(d)
    hyper_lambda_u = np.eye(d)
    hyper_mu_v = np.zeros(d)
    hyper_lambda_v = np.eye(d)

    hybrid = None
    u_buf = v_buf = None
    if config.variant == "hybrid":
        hybrid = yield from HybridContext.create(comm)
        u_sizes = [8 * d * (hi - lo) for lo, hi in comp_parts]
        v_sizes = [8 * d * (hi - lo) for lo, hi in targ_parts]
        u_buf = yield from hybrid.allgatherv_buffer(u_sizes)
        v_buf = yield from hybrid.allgatherv_buffer(v_sizes)
        if data:
            # Publish initial factors into the shared windows once.
            u_view = u_buf.node_view(np.float64)
            v_view = v_buf.node_view(np.float64)
            if hybrid.is_leader:
                u_view[:] = _node_major_flat(U, comp_parts, u_buf)
                v_view[:] = _node_major_flat(V, targ_parts, v_buf)
            yield from hybrid.shm.barrier()

    def full_factors(buf, parts, fallback):
        """Read the complete factor matrix (hybrid: from the window)."""
        if not data:
            return None
        view = buf.node_view(np.float64)
        mat = np.empty((parts[-1][1], d))
        for r, (lo, hi) in enumerate(parts):
            off = buf.offset_of_rank(r) // 8
            n = (hi - lo) * d
            mat[lo:hi] = view[off : off + n].reshape(hi - lo, d)
        return mat

    t_start = mpi.now
    comm_time = 0.0
    rmse_track: list[float] = []

    for it in range(config.iterations):
        # ---- region 1: sample compound ("movie") factors ----------------
        if data:
            Vfull = (
                full_factors(v_buf, targ_parts, V)
                if config.variant == "hybrid"
                else V
            )
            new_u = _sample_items(
                rng, R, my_comp[0], my_comp[1], Vfull,
                hyper_mu_u, hyper_lambda_u, config.beta,
            )
        else:
            new_u = None
        my_nnz = nnz_total / size
        yield mpi.compute(
            _region_cost(mpi, config, my_comp[1] - my_comp[0], my_nnz)
            + config.per_iteration_overhead / 2.0
        )
        # allgather the compound factors
        t0 = mpi.now
        if config.variant == "ori":
            payload = (
                new_u.reshape(-1).copy()
                if data
                else Bytes(8 * d * (my_comp[1] - my_comp[0]))
            )
            blocks = yield from comm.allgatherv(payload)
            if data:
                U = np.concatenate(
                    [np.asarray(b).reshape(-1) for b in blocks]
                ).reshape(n_comp, d)
        else:
            local = u_buf.local_view(np.float64)
            if local is not None:
                local[:] = new_u.reshape(-1)
            yield from hybrid.allgather(u_buf)
        comm_time += mpi.now - t0

        # hyper-parameter statistics (identical small allreduce in both)
        stats = (
            np.concatenate([new_u.sum(axis=0), (new_u.T @ new_u).reshape(-1)])
            if data
            else Bytes(8 * (d + d * d))
        )
        t0 = mpi.now
        total_stats = yield from comm.allreduce(stats, ReduceOp.SUM)
        comm_time += mpi.now - t0
        if data:
            hyper_mu_u, hyper_lambda_u = _wishart_update(
                np.asarray(total_stats), n_comp, d, rng
            )

        # ---- region 2: sample target ("user") factors --------------------
        if data:
            Ufull = (
                full_factors(u_buf, comp_parts, U)
                if config.variant == "hybrid"
                else U
            )
            new_v = _sample_items(
                rng, Rt, my_targ[0], my_targ[1], Ufull,
                hyper_mu_v, hyper_lambda_v, config.beta,
            )
        else:
            new_v = None
        yield mpi.compute(
            _region_cost(mpi, config, my_targ[1] - my_targ[0], my_nnz)
            + config.per_iteration_overhead / 2.0
        )
        t0 = mpi.now
        if config.variant == "ori":
            payload = (
                new_v.reshape(-1).copy()
                if data
                else Bytes(8 * d * (my_targ[1] - my_targ[0]))
            )
            blocks = yield from comm.allgatherv(payload)
            if data:
                V = np.concatenate(
                    [np.asarray(b).reshape(-1) for b in blocks]
                ).reshape(n_targ, d)
        else:
            local = v_buf.local_view(np.float64)
            if local is not None:
                local[:] = new_v.reshape(-1)
            yield from hybrid.allgather(v_buf)
        comm_time += mpi.now - t0

        stats = (
            np.concatenate([new_v.sum(axis=0), (new_v.T @ new_v).reshape(-1)])
            if data
            else Bytes(8 * (d + d * d))
        )
        t0 = mpi.now
        total_stats = yield from comm.allreduce(stats, ReduceOp.SUM)
        comm_time += mpi.now - t0
        if data:
            hyper_mu_v, hyper_lambda_v = _wishart_update(
                np.asarray(total_stats), n_targ, d, rng
            )

        # ---- monitoring ---------------------------------------------------
        if data:
            Ufull = (
                full_factors(u_buf, comp_parts, U)
                if config.variant == "hybrid"
                else U
            )
            Vfull = (
                full_factors(v_buf, targ_parts, V)
                if config.variant == "hybrid"
                else V
            )
            sl = slice(R.indptr[my_comp[0]], R.indptr[my_comp[1]])
            rows = np.repeat(
                np.arange(my_comp[0], my_comp[1]),
                np.diff(R.indptr[my_comp[0] : my_comp[1] + 1]),
            )
            pred = np.einsum(
                "ij,ij->i", Ufull[rows], Vfull[R.indices[sl]]
            )
            err2 = float(np.sum((R.data[sl] - pred) ** 2))
            cnt = float(rows.size)
            tot = yield from comm.allreduce(
                np.array([err2, cnt]), ReduceOp.SUM
            )
            rmse_track.append(float(np.sqrt(tot[0] / max(tot[1], 1.0))))

    total = mpi.now - t_start
    return {
        "total": total,
        "comm": comm_time,
        "compute": total - comm_time,
        "rmse": rmse_track,
    }


def _node_major_flat(mat: np.ndarray, parts, buf) -> np.ndarray:
    """Flatten a factor matrix into the buffer's node-major slot order."""
    pieces = []
    for slot in range(len(parts)):
        r = buf.layout.rank_of_slot(slot)
        lo, hi = parts[r]
        pieces.append(mat[lo:hi].reshape(-1))
    return np.concatenate(pieces)


def _wishart_update(stats: np.ndarray, n: int, d: int,
                    rng: np.random.Generator):
    """Simplified Normal-Wishart posterior update from allreduced
    sufficient statistics (sum, second moment)."""
    s = stats[:d]
    ss = stats[d:].reshape(d, d)
    mean = s / n
    cov = ss / n - np.outer(mean, mean) + 1e-6 * np.eye(d)
    lam = np.linalg.inv(cov + np.eye(d) / n)
    # A light stochastic perturbation stands in for the Wishart draw.
    jitter = 1.0 + 0.05 * rng.standard_normal()
    return mean, lam * max(jitter, 0.5)
