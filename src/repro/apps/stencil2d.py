"""2D-decomposed Jacobi stencil on a Cartesian process grid.

Extends :mod:`repro.apps.stencil` (1D strips) to a full 2D domain
decomposition using :mod:`repro.mpi.cart`: each rank owns a tile, halo
rows/columns are exchanged with all four neighbours.  In the hybrid
variant the tiles of one node live in a node-shared window so on-node
halos are plain loads; only node-boundary halos become messages.

This is the canonical "MPI+MPI point-to-point" pattern of Hoefler et
al. [10] in its full 2D form, and exercises the Cartesian communicator,
``PROC_NULL`` boundaries, and the shared-buffer slot views together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.cart import cart_create, dims_create
from repro.mpi.constants import PROC_NULL
from repro.mpi.datatypes import Bytes
from repro.simulator import AllOf

__all__ = ["Stencil2DConfig", "stencil2d_program"]


@dataclass(frozen=True)
class Stencil2DConfig:
    """2D stencil run parameters.

    Attributes
    ----------
    tile:
        Edge length of each rank's square tile.
    iterations:
        Jacobi sweeps.
    variant:
        ``"pure"`` (all halos are messages) or ``"hybrid"`` (on-node
        halos are shared-memory loads).
    overlap:
        Post the halo exchange, update the ``(tile-2)²`` interior cells
        (which touch no halo) while it is in flight, then wait — and
        load on-node halos — before updating the boundary ring;
        ``comm`` reports only the exposed wait time.
    """

    tile: int = 32
    iterations: int = 4
    variant: str = "pure"
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.variant not in ("pure", "hybrid"):
            raise ValueError("variant must be 'pure' or 'hybrid'")
        if self.tile < 1 or self.iterations < 1:
            raise ValueError("tile and iterations must be >= 1")


def _sweep(tile: np.ndarray, up, down, left, right) -> np.ndarray:
    """5-point Jacobi update of one tile with optional halo vectors."""
    n, m = tile.shape
    padded = np.zeros((n + 2, m + 2))
    padded[1:-1, 1:-1] = tile
    if up is not None:
        padded[0, 1:-1] = up
    if down is not None:
        padded[-1, 1:-1] = down
    if left is not None:
        padded[1:-1, 0] = left
    if right is not None:
        padded[1:-1, -1] = right
    return 0.25 * (
        padded[:-2, 1:-1]
        + padded[2:, 1:-1]
        + padded[1:-1, :-2]
        + padded[1:-1, 2:]
    )


def stencil2d_program(mpi, config: Stencil2DConfig):
    """Rank program; returns {'total', 'comm', 'checksum'}."""
    comm = mpi.world
    dims = dims_create(comm.size, 2)
    cart = cart_create(comm, tuple(dims))
    t = config.tile
    row_bytes = t * 8
    data = mpi.data_mode
    # Overlap split: interior cells need no halo, the boundary ring does.
    interior_cells = max(t - 2, 0) ** 2
    boundary_cells = t * t - interior_cells

    up_src, up_dst = cart.shift(0, -1)      # neighbour above = dst
    down_src, down_dst = cart.shift(0, +1)
    left_src, left_dst = cart.shift(1, -1)
    right_src, right_dst = cart.shift(1, +1)
    up_peer, down_peer = up_dst, down_dst
    left_peer, right_peer = left_dst, right_dst

    if data:
        tile = np.sin(
            np.arange(t * t, dtype=np.float64) * 0.37 + comm.rank
        ).reshape(t, t)
    else:
        tile = None

    hybrid_ctx = buf = None
    if config.variant == "hybrid":
        from repro.core import HybridContext

        hybrid_ctx = yield from HybridContext.create(comm)
        buf = yield from hybrid_ctx.allgather_buffer(t * t * 8)
        view = buf.local_view(np.float64)
        if view is not None:
            view[:] = tile.reshape(-1)
        yield from hybrid_ctx.shm.barrier()

    placement = mpi.placement

    def on_node(peer: int) -> bool:
        if peer == PROC_NULL:
            return False
        return placement.node_of(comm.world_rank_of(peer)) == mpi.node

    def peer_tile(peer: int) -> np.ndarray | None:
        seg = buf.slot_view(peer, np.float64)
        return None if seg is None else seg.reshape(t, t)

    t0 = mpi.now
    comm_time = 0.0
    for _ in range(config.iterations):
        if config.variant == "hybrid" and buf is not None:
            view = buf.local_view(np.float64)
            tile_now = view.reshape(t, t) if view is not None else None
        else:
            tile_now = tile
        tc = mpi.now
        halos = {"up": None, "down": None, "left": None, "right": None}
        reqs = []
        plan = []  # (halo key, peer)
        local_loads = []  # on-node (halo key, peer), loaded after the wait
        for key, peer, mine in (
            ("up", up_peer, 0), ("down", down_peer, -1),
        ):
            if peer == PROC_NULL:
                continue
            if config.variant == "hybrid" and on_node(peer):
                if config.overlap:
                    local_loads.append((key, peer))
                    continue
                yield from mpi.touch(row_bytes)
                if data:
                    other = peer_tile(peer)
                    halos[key] = other[-1] if key == "up" else other[0]
                continue
            payload = (
                tile_now[mine].copy() if data else Bytes(row_bytes)
            )
            reqs.append(comm.isend(payload, peer, tag=10 + mine % 2))
            reqs.append(comm.irecv(source=peer, tag=10 + (mine + 1) % 2))
            plan.append((key, peer))
        for key, peer, col in (
            ("left", left_peer, 0), ("right", right_peer, -1),
        ):
            if peer == PROC_NULL:
                continue
            if config.variant == "hybrid" and on_node(peer):
                if config.overlap:
                    local_loads.append((key, peer))
                    continue
                yield from mpi.touch(row_bytes)
                if data:
                    other = peer_tile(peer)
                    halos[key] = (
                        other[:, -1] if key == "left" else other[:, 0]
                    )
                continue
            payload = (
                tile_now[:, col].copy() if data else Bytes(row_bytes)
            )
            reqs.append(comm.isend(payload, peer, tag=20 + col % 2))
            reqs.append(comm.irecv(source=peer, tag=20 + (col + 1) % 2))
            plan.append((key, peer))
        if config.overlap:
            # Interior cells touch no halo: update them while the
            # exchange is in flight.
            yield mpi.compute_flops(interior_cells * 6.0, kind="blas1")
            tc = mpi.now
        if reqs:
            results = yield AllOf([r.event for r in reqs])
            received = [r[0] for r in results if isinstance(r, tuple)]
            for (key, _peer), payload in zip(plan, received):
                if data:
                    halos[key] = np.asarray(payload).reshape(-1)
        for key, peer in local_loads:
            yield from mpi.touch(row_bytes)
            if data:
                other = peer_tile(peer)
                if key == "up":
                    halos[key] = other[-1]
                elif key == "down":
                    halos[key] = other[0]
                elif key == "left":
                    halos[key] = other[:, -1]
                else:
                    halos[key] = other[:, 0]
        comm_time += mpi.now - tc

        if data:
            new_tile = _sweep(
                tile_now, halos["up"], halos["down"],
                halos["left"], halos["right"],
            )
        yield mpi.compute_flops(
            (boundary_cells if config.overlap else t * t) * 6.0,
            kind="blas1",
        )

        if config.variant == "hybrid":
            yield from hybrid_ctx.shm.barrier()
            if data:
                buf.local_view(np.float64)[:] = new_tile.reshape(-1)
            yield from hybrid_ctx.shm.barrier()
        else:
            if data:
                tile = new_tile

    if config.variant == "hybrid" and data:
        checksum = float(buf.local_view(np.float64).sum())
    elif data:
        checksum = float(tile.sum())
    else:
        checksum = None
    return {
        "total": mpi.now - t0,
        "comm": comm_time,
        "checksum": checksum,
        "dims": tuple(dims),
    }
