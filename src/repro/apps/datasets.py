"""Synthetic chemogenomics dataset (chembl_20 stand-in).

The paper's BPMF experiment uses the ``chembl_20`` compound-on-target
activity matrix (ExaScience BPMF).  That dataset cannot be shipped here,
so :func:`synthetic_chembl` generates a sparse matrix with the same
dimensions and density as the published chembl_20 IC50 subset
(≈15 073 compounds × 346 targets, ≈1.1 % observed): a low-rank
ground-truth factor model plus noise, which gives the Gibbs sampler the
same per-iteration arithmetic and the allgather the same message sizes —
the two properties the Fig 12 comparison depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["SyntheticActivity", "synthetic_chembl"]


@dataclass(frozen=True)
class SyntheticActivity:
    """A synthetic sparse activity matrix plus its generator metadata.

    Attributes
    ----------
    matrix:
        CSR matrix, shape (compounds, targets); explicit entries are
        observed activities (pIC50-like, ~N(6.5, 1.5²)).
    latent_dim:
        Rank of the generating factor model.
    """

    matrix: sp.csr_matrix
    latent_dim: int
    seed: int

    @property
    def num_compounds(self) -> int:
        """Rows (compounds / 'movies' in BPMF terminology)."""
        return self.matrix.shape[0]

    @property
    def num_targets(self) -> int:
        """Columns (targets / 'users')."""
        return self.matrix.shape[1]

    @property
    def nnz(self) -> int:
        """Observed entries."""
        return self.matrix.nnz

    @property
    def density(self) -> float:
        """Fraction of observed entries."""
        return self.nnz / (self.num_compounds * self.num_targets)

    def train_test_split(self, test_fraction: float = 0.2):
        """Deterministically split observations into train/test CSRs."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        coo = self.matrix.tocoo()
        rng = np.random.default_rng(self.seed + 1)
        mask = rng.random(coo.nnz) < test_fraction
        shape = self.matrix.shape
        test = sp.csr_matrix(
            (coo.data[mask], (coo.row[mask], coo.col[mask])), shape=shape
        )
        train = sp.csr_matrix(
            (coo.data[~mask], (coo.row[~mask], coo.col[~mask])), shape=shape
        )
        return train, test


def synthetic_chembl(
    n_compounds: int = 15073,
    n_targets: int = 346,
    density: float = 0.011,
    latent_dim: int = 10,
    noise: float = 0.8,
    seed: int = 42,
) -> SyntheticActivity:
    """Generate a chembl_20-like sparse activity matrix.

    A rank-``latent_dim`` ground truth ``U·Vᵀ`` is sampled, shifted to a
    pIC50-like scale, observed at ``density`` uniformly at random, and
    perturbed with Gaussian noise — so BPMF can actually recover signal
    (tests assert falling training RMSE).
    """
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    rng = np.random.default_rng(seed)
    nnz = int(round(density * n_compounds * n_targets))
    rows = rng.integers(0, n_compounds, size=nnz)
    cols = rng.integers(0, n_targets, size=nnz)
    u = rng.standard_normal((n_compounds, latent_dim)) / np.sqrt(latent_dim)
    v = rng.standard_normal((n_targets, latent_dim)) / np.sqrt(latent_dim)
    vals = (
        6.5
        + 1.5 * np.einsum("ij,ij->i", u[rows], v[cols])
        + noise * rng.standard_normal(nnz)
    )
    matrix = sp.csr_matrix(
        (vals, (rows, cols)), shape=(n_compounds, n_targets)
    )
    matrix.sum_duplicates()
    return SyntheticActivity(matrix=matrix, latent_dim=latent_dim, seed=seed)
