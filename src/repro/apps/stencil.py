"""2D Jacobi stencil with halo exchange — pure-MPI vs hybrid MPI+MPI.

This is the workload of Hoefler et al. 2013 ("MPI+MPI: a new hybrid
approach…", the paper's [10]) that motivated hybrid MPI+MPI in the first
place: a 5-point Jacobi iteration on a 1D-decomposed grid.

* **pure** — every rank owns a private strip and sendrecv's one-row
  halos with both neighbours each iteration (on-node neighbours pay
  CICO copies).
* **hybrid** — all strips of one node live in a single shared window;
  on-node "halos" are plain loads from the neighbour's strip (no copy,
  one barrier per iteration for integrity), and only the node-boundary
  rows travel as messages between leader⁄edge ranks.

The paper lists p2p experiences as future work (§7); this module is the
reproduction's extra example beyond the paper's own evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mpi.constants import PROC_NULL
from repro.mpi.datatypes import Bytes

__all__ = ["StencilConfig", "stencil_program"]


@dataclass(frozen=True)
class StencilConfig:
    """Stencil run parameters.

    Attributes
    ----------
    rows_per_rank:
        Interior rows owned by each rank.
    cols:
        Grid width.
    iterations:
        Jacobi sweeps.
    variant:
        ``"pure"`` or ``"hybrid"``.
    overlap:
        Post the halo exchange, update the *interior* rows (which touch
        no halo) while it is in flight, then wait and update the two
        boundary rows; ``comm`` reports only the exposed wait time.
    """

    rows_per_rank: int = 64
    cols: int = 256
    iterations: int = 10
    variant: str = "pure"
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.variant not in ("pure", "hybrid"):
            raise ValueError("variant must be 'pure' or 'hybrid'")
        if min(self.rows_per_rank, self.cols, self.iterations) < 1:
            raise ValueError("dimensions and iterations must be >= 1")


def _jacobi_sweep(interior: np.ndarray, up: np.ndarray | None,
                  down: np.ndarray | None) -> np.ndarray:
    """One 5-point Jacobi update of a strip given halo rows."""
    rows, cols = interior.shape
    padded = np.zeros((rows + 2, cols))
    padded[1:-1] = interior
    if up is not None:
        padded[0] = up
    if down is not None:
        padded[-1] = down
    out = interior.copy()
    out[:, 1:-1] = 0.25 * (
        padded[:-2, 1:-1]
        + padded[2:, 1:-1]
        + padded[1:-1, :-2]
        + padded[1:-1, 2:]
    )
    return out


def stencil_program(mpi, config: StencilConfig):
    """Rank program running the Jacobi iteration; returns stats."""
    comm = mpi.world
    rank, size = comm.rank, comm.size
    rows, cols = config.rows_per_rank, config.cols
    row_bytes = cols * 8
    data = mpi.data_mode
    up_peer = rank - 1 if rank > 0 else PROC_NULL
    down_peer = rank + 1 if rank < size - 1 else PROC_NULL
    # Overlap split: interior rows need no halo, boundary rows do.
    interior_rows = max(rows - 2, 0)
    boundary_rows = rows - interior_rows

    if config.variant == "pure":
        strip = (
            np.sin(np.arange(rows * cols, dtype=np.float64) + rank).reshape(
                rows, cols
            )
            if data
            else None
        )
        t0 = mpi.now
        comm_time = 0.0
        for _ in range(config.iterations):
            if config.overlap:
                reqs = []
                plan = []
                if up_peer != PROC_NULL:
                    reqs.append(comm.isend(
                        strip[0].copy() if data else Bytes(row_bytes),
                        up_peer, 1,
                    ))
                    reqs.append(comm.irecv(source=up_peer, tag=2))
                    plan.append("up")
                if down_peer != PROC_NULL:
                    reqs.append(comm.isend(
                        strip[-1].copy() if data else Bytes(row_bytes),
                        down_peer, 2,
                    ))
                    reqs.append(comm.irecv(source=down_peer, tag=1))
                    plan.append("down")
                # Interior rows touch no halo: update them while the
                # halo exchange is in flight.
                yield mpi.compute_flops(
                    interior_rows * cols * 6.0, kind="blas1"
                )
                tc = mpi.now
                results = yield from comm.waitall(reqs)
                comm_time += mpi.now - tc
                if data:
                    up_halo = down_halo = None
                    received = [r[0] for r in results if isinstance(r, tuple)]
                    for key, payload in zip(plan, received):
                        if key == "up":
                            up_halo = np.asarray(payload)
                        else:
                            down_halo = np.asarray(payload)
                    strip = _jacobi_sweep(strip, up_halo, down_halo)
                yield mpi.compute_flops(
                    boundary_rows * cols * 6.0, kind="blas1"
                )
                continue
            tc = mpi.now
            up_halo = down_halo = None
            send_up = strip[0].copy() if data else Bytes(row_bytes)
            send_down = strip[-1].copy() if data else Bytes(row_bytes)
            got_up = yield from comm.sendrecv(
                send_up, dest=up_peer, source=up_peer, sendtag=1, recvtag=2
            )
            got_down = yield from comm.sendrecv(
                send_down, dest=down_peer, source=down_peer,
                sendtag=2, recvtag=1,
            )
            if data:
                up_halo = None if up_peer == PROC_NULL else np.asarray(got_up)
                down_halo = (
                    None if down_peer == PROC_NULL else np.asarray(got_down)
                )
            comm_time += mpi.now - tc
            if data:
                strip = _jacobi_sweep(strip, up_halo, down_halo)
            yield mpi.compute_flops(rows * cols * 6.0, kind="blas1")
        return {
            "total": mpi.now - t0,
            "comm": comm_time,
            "checksum": float(strip.sum()) if data else None,
        }

    # ---- hybrid: node-shared strips -------------------------------------
    from repro.core import HybridContext

    ctx = yield from HybridContext.create(comm)
    buf = yield from ctx.allgather_buffer(rows * row_bytes)
    strip_view = buf.local_view(np.float64)
    if strip_view is not None:
        strip_view[:] = np.sin(
            np.arange(rows * cols, dtype=np.float64) + rank
        )
    yield from ctx.shm.barrier()

    placement = mpi.placement
    my_node = mpi.node

    def on_my_node(peer: int) -> bool:
        if peer == PROC_NULL:
            return False
        return placement.node_of(comm.world_rank_of(peer)) == my_node

    t0 = mpi.now
    comm_time = 0.0
    for _ in range(config.iterations):
        strip = (
            strip_view.reshape(rows, cols) if strip_view is not None else None
        )
        tc = mpi.now
        up_halo = down_halo = None
        # Off-node halos travel as messages; on-node ones are direct loads.
        reqs = []
        if up_peer != PROC_NULL and not on_my_node(up_peer):
            reqs.append(
                comm.isend(
                    strip[0].copy() if data else Bytes(row_bytes), up_peer, 1
                )
            )
            reqs.append(comm.irecv(source=up_peer, tag=2))
        if down_peer != PROC_NULL and not on_my_node(down_peer):
            reqs.append(
                comm.isend(
                    strip[-1].copy() if data else Bytes(row_bytes),
                    down_peer, 2,
                )
            )
            reqs.append(comm.irecv(source=down_peer, tag=1))
        if config.overlap:
            # Interior rows touch no halo: update them while the
            # off-node exchange is in flight.
            yield mpi.compute_flops(interior_rows * cols * 6.0, kind="blas1")
            tc = mpi.now
        results = yield from comm.waitall(reqs)
        recv_payloads = [r[0] for r in results if isinstance(r, tuple)]
        ri = 0
        if up_peer != PROC_NULL and not on_my_node(up_peer):
            if data:
                up_halo = np.asarray(recv_payloads[ri])
            ri += 1
        if down_peer != PROC_NULL and not on_my_node(down_peer):
            if data:
                down_halo = np.asarray(recv_payloads[ri])
            ri += 1
        # On-node halos: read the neighbour's boundary row in place.
        if on_my_node(up_peer):
            yield from mpi.touch(row_bytes)
            if data:
                up_halo = buf.slot_view(up_peer, np.float64).reshape(
                    rows, cols
                )[-1]
        if on_my_node(down_peer):
            yield from mpi.touch(row_bytes)
            if data:
                down_halo = buf.slot_view(down_peer, np.float64).reshape(
                    rows, cols
                )[0]
        comm_time += mpi.now - tc
        if data:
            new_strip = _jacobi_sweep(strip, up_halo, down_halo)
        yield mpi.compute_flops(
            (boundary_rows if config.overlap else rows) * cols * 6.0,
            kind="blas1",
        )
        # Integrity barrier before anyone overwrites shared rows the
        # neighbours may still be reading.
        yield from ctx.shm.barrier()
        if data:
            strip_view[:] = new_strip.reshape(-1)
        yield from ctx.shm.barrier()
    return {
        "total": mpi.now - t0,
        "comm": comm_time,
        "checksum": float(strip_view.sum()) if strip_view is not None else None,
    }
