"""Application-level workloads from the paper's evaluation (§5.2).

* :mod:`repro.apps.summa` — SUMMA distributed dense matrix multiply
  (van de Geijn & Watts), in an ``Ori_`` (pure-MPI broadcast) and a
  ``Hy_`` (hybrid MPI+MPI broadcast) variant — Fig 11.
* :mod:`repro.apps.bpmf` — Bayesian Probabilistic Matrix Factorization
  via Gibbs sampling (Salakhutdinov & Mnih; ExaScience distributed
  variant), ``Ori_`` and ``Hy_`` allgather variants — Fig 12.
* :mod:`repro.apps.datasets` — synthetic chembl_20-like sparse activity
  matrix (the real dataset is not redistributable; the synthetic one
  matches its dimensions/density so the communication pattern and
  compute balance are preserved).
* :mod:`repro.apps.stencil` — 2D Jacobi halo exchange in pure-MPI and
  hybrid MPI+MPI (Hoefler et al. 2013 [10]) styles; an extra example
  beyond the paper's evaluation.
"""

from repro.apps.bpmf import BPMFConfig, bpmf_program
from repro.apps.datasets import SyntheticActivity, synthetic_chembl
from repro.apps.matvec import MatvecConfig, power_iteration_program
from repro.apps.stencil import StencilConfig, stencil_program
from repro.apps.stencil2d import Stencil2DConfig, stencil2d_program
from repro.apps.summa import SummaConfig, summa_program

__all__ = [
    "BPMFConfig",
    "MatvecConfig",
    "Stencil2DConfig",
    "StencilConfig",
    "SummaConfig",
    "SyntheticActivity",
    "bpmf_program",
    "power_iteration_program",
    "stencil2d_program",
    "stencil_program",
    "summa_program",
    "synthetic_chembl",
]
