"""Span-based tracing: collection (:class:`Tracer`) and export utilities.

Jobs run with ``trace=True`` (or ``trace="phase"`` / a :class:`Tracer`
instance) collect structured records in virtual time:

* **dispatch spans** — one per collective call (start time, duration,
  rank, communicator, operation, algorithm, selection policy, bytes);
* **phase spans** — nested children of composite (hierarchical /
  hybrid) collectives: on-node gather/copy-in, bridge exchange,
  barrier/flag sync, on-node broadcast/copy-out (detail ``"phase"``);
* **p2p spans and queue waits** — individual send/recv waits and
  receive matching delays (detail ``"p2p"``);
* **compute spans** — per compute charge (``kind="compute"``), enabled
  by the orthogonal ``compute=True`` flag (``trace="phase+compute"`` on
  a job) — the ingredient the hidden-vs-exposed overlap analysis of
  :mod:`repro.analysis.critical_path` needs;
* **instant events** — the pre-span record shape, still accepted
  everywhere for backward compatibility.

Non-blocking collectives run as background processes in their own span
*context*: their spans nest among themselves (the dispatch span covers
issue → completion) and never mis-nest with spans the issuing rank
program opens meanwhile; :func:`to_chrome_trace` renders such
temporally-overlapping spans on separate per-rank rows.

This module turns those records into:

* :func:`summarize` — per-(op, algo) aggregate counts/bytes;
* :func:`to_chrome_trace` — a ``chrome://tracing`` / Perfetto compatible
  JSON object (duration events with proper nesting, one row per rank);
* :func:`format_timeline` — a quick ASCII timeline for terminals.

Critical-path attribution lives in :mod:`repro.analysis.critical_path`;
counter/histogram export lives in :mod:`repro.metrics`.

Determinism: the simulation engine replays identically, spans are
appended in begin order, and span ids are a plain counter — so the same
program always yields a bit-identical span stream (the property the
regression tests serialize and compare).

Example
-------
>>> tracer = Tracer(detail="phase")
>>> parent = tracer.begin({"t": 0.0, "rank": 0, "comm": "world",
...                        "op": "allgather", "algo": "ring",
...                        "nbytes": 64, "kind": "dispatch"})
>>> child = tracer.begin({"t": 0.0, "rank": 0, "comm": "world",
...                       "kind": "phase", "phase": "bridge_exchange",
...                       "nbytes": 64})
>>> child["parent"] == parent["sid"] and child["depth"] == 1
True
>>> tracer.end(child, 1.5e-6); tracer.end(parent, 2.0e-6)
>>> summarize(tracer.records)
{('allgather', 'ring'): {'calls': 1, 'bytes': 64}}
>>> [e["ph"] for e in to_chrome_trace(tracer.records)["traceEvents"]]
['X', 'X', 'M']
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any

__all__ = [
    "Tracer",
    "DETAIL_LEVELS",
    "summarize",
    "to_chrome_trace",
    "format_timeline",
    "save_chrome_trace",
]

#: Ordered trace detail levels: each level includes the previous ones.
DETAIL_LEVELS = {"dispatch": 0, "phase": 1, "p2p": 2}


class Tracer:
    """Collects trace records for one job.

    Parameters
    ----------
    detail:
        ``"dispatch"`` (default) records one span per collective call;
        ``"phase"`` adds nested spans for the internal stages of
        composite algorithms; ``"p2p"`` additionally records individual
        point-to-point waits and receive queue delays.

    The tracer exposes the list API the pre-span trace log had
    (``append`` for instant records, iteration over ``records``), plus
    :meth:`begin`/:meth:`end` for duration spans.  Span records carry:

    ``sid``
        unique span id (a counter — deterministic across runs);
    ``parent``
        ``sid`` of the innermost open span on the same rank, or None;
    ``depth``
        nesting depth (0 = top level);
    ``dur``
        duration in virtual seconds (None while the span is open).
    """

    __slots__ = (
        "detail", "records", "compute", "_level", "_next_sid", "_open",
        "_active_ctx", "_ctx_of_sid", "_next_ctx",
    )

    def __init__(self, detail: str = "dispatch", compute: bool = False):
        try:
            self._level = DETAIL_LEVELS[detail]
        except KeyError:
            known = ", ".join(DETAIL_LEVELS)
            raise ValueError(
                f"unknown trace detail {detail!r}; known: {known}"
            ) from None
        self.detail = detail
        self.compute = compute
        self.records: list[dict] = []
        self._next_sid = 0
        # Open-span stacks keyed by (rank, context).  Context 0 is the
        # rank program; every background non-blocking collective runs in
        # its own context (see run_in_context) so concurrent spans on one
        # rank nest within their own tree instead of corrupting each
        # other's parent/depth bookkeeping.
        self._open: dict[tuple[int, int], list[dict]] = {}
        self._active_ctx: dict[int, int] = {}
        self._ctx_of_sid: dict[int, tuple[int, int]] = {}
        self._next_ctx = 0

    def wants(self, level: str) -> bool:
        """True when records of *level* should be collected.

        ``"compute"`` is an orthogonal flag (compute-charge spans), not a
        member of the detail ladder."""
        if level == "compute":
            return self.compute
        return DETAIL_LEVELS[level] <= self._level

    def append(self, rec: dict) -> None:
        """Record one instant event (the pre-span record shape)."""
        self.records.append(rec)

    def begin(self, rec: dict) -> dict:
        """Open a duration span; *rec* must carry ``t`` and ``rank``.

        The span is appended to :attr:`records` immediately (stream
        order = begin order) with ``dur=None`` until :meth:`end`.
        """
        self._next_sid += 1
        rank = rec["rank"]
        key = (rank, self._active_ctx.get(rank, 0))
        stack = self._open.setdefault(key, [])
        rec["sid"] = self._next_sid
        rec["parent"] = stack[-1]["sid"] if stack else None
        rec["depth"] = len(stack)
        rec["dur"] = None
        stack.append(rec)
        self._ctx_of_sid[self._next_sid] = key
        self.records.append(rec)
        return rec

    def end(self, rec: dict, t: float) -> None:
        """Close a span opened by :meth:`begin` at virtual time *t*."""
        rec["dur"] = t - rec["t"]
        key = self._ctx_of_sid.pop(rec["sid"], (rec["rank"], 0))
        stack = self._open.get(key, [])
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is rec:
                del stack[i]
                break

    def emit_replayed(self, templates: list[dict], base_ticks: float) -> None:
        """Append a recorded span slice, shifted to ``base_ticks``.

        Used by the collective replay cache: *templates* carry times as
        whole ticks relative to the recorded entry (``_tt``); emission
        restores absolute times on the engine's tick grid, assigns fresh
        span ids (remapping in-slice parents), and tags every record
        ``replayed``.  The open-span stacks are untouched — replay only
        fires when no span is open, so the slice is self-contained.
        """
        from repro.simulator.engine import TICK

        sid_map: dict[int, int] = {}
        for tpl in templates:
            rec = dict(tpl)
            rec["t"] = (base_ticks + rec.pop("_tt")) * TICK
            rec["replayed"] = True
            sid = rec.get("sid")
            if sid is not None:
                self._next_sid += 1
                sid_map[sid] = self._next_sid
                rec["sid"] = self._next_sid
                parent = rec.get("parent")
                if parent is not None:
                    rec["parent"] = sid_map[parent]
            self.records.append(rec)

    def run_in_context(self, rank: int, gen):
        """Delegating generator driving *gen* inside a fresh span context.

        Every resume of the wrapped generator runs with the fresh context
        active for *rank*, so spans it begins (and ends) use their own
        open-span stack; while it is suspended the rank's previous
        context is restored.  Used for background non-blocking
        collectives — their dispatch span then covers issue to
        completion with correct internal nesting, and the issuing rank
        program's own spans never become accidental parents/children of
        the background tree.
        """
        self._next_ctx += 1
        ctx_id = self._next_ctx
        active = self._active_ctx
        value: Any = None
        exc: BaseException | None = None
        while True:
            outer = active.get(rank, 0)
            active[rank] = ctx_id
            try:
                if exc is not None:
                    item = gen.throw(exc)
                else:
                    item = gen.send(value)
            except StopIteration as stop:
                return stop.value
            finally:
                if outer:
                    active[rank] = outer
                else:
                    active.pop(rank, None)
            try:
                value, exc = (yield item), None
            except BaseException as e:  # forwarded to gen on next resume
                value, exc = None, e

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __repr__(self) -> str:
        return f"Tracer(detail={self.detail!r}, records={len(self.records)})"


def _kind(rec: dict) -> str:
    """Record kind; instant records predating spans count as dispatch."""
    return rec.get("kind", "dispatch")


def summarize(trace: list[dict]) -> dict[tuple[str, str], dict]:
    """Aggregate dispatch records by (operation, algorithm).

    Returns ``{(op, algo): {"calls": n, "bytes": total}}``.  Phase and
    p2p records are excluded — one collective call contributes exactly
    once, and its byte count follows the profiler conventions of
    :mod:`repro.mpi.profiler` (the dispatch layer records ``req.total``).
    """
    out: dict[tuple[str, str], dict] = defaultdict(
        lambda: {"calls": 0, "bytes": 0}
    )
    for rec in trace:
        if _kind(rec) != "dispatch":
            continue
        key = (rec["op"], rec["algo"])
        out[key]["calls"] += 1
        out[key]["bytes"] += rec.get("nbytes", 0)
    return dict(out)


def _event_name(rec: dict) -> str:
    kind = _kind(rec)
    if kind == "dispatch":
        return f"{rec['op']}:{rec['algo']}"
    if kind == "phase":
        return rec["phase"]
    if kind == "p2p":
        return f"p2p.{rec['op']}"
    if kind == "shm":
        return f"shm.{rec['op']}"
    if kind == "compute":
        return f"compute:{rec['op']}"
    return kind


def _assign_tracks(trace: list[dict]) -> tuple[dict[int, int], int]:
    """Map span ``sid`` → display track, lifting overlapped spans.

    Top-level spans of one rank normally run back-to-back (track 0).
    When a span *starts* while an earlier top-level span of the same
    rank is still open — a pending non-blocking collective overlapping
    the rank program — the later span takes the lowest free track, so
    Chrome/Perfetto renders the two concurrently instead of mis-nesting
    them.  Child spans inherit their root's track.  Returns the map and
    the highest track used (0 = no overlap anywhere).
    """
    track_of: dict[int, int] = {}
    live_of: dict[int, list[tuple[float, int]]] = {}
    max_track = 0
    for rec in trace:
        sid = rec.get("sid")
        if sid is None or rec.get("dur") is None:
            continue
        parent = rec.get("parent")
        if parent is not None:
            track_of[sid] = track_of.get(parent, 0)
            continue
        rank, t = rec["rank"], rec["t"]
        live = [(e, k) for (e, k) in live_of.get(rank, ()) if e > t]
        used = {k for _e, k in live}
        track = 0
        while track in used:
            track += 1
        live.append((t + rec["dur"], track))
        live_of[rank] = live
        track_of[sid] = track
        if track > max_track:
            max_track = track
    return track_of, max_track


def to_chrome_trace(trace: list[dict]) -> dict:
    """Convert trace records to the Chrome trace-event JSON format.

    Duration records (spans with a closed ``dur``) become complete
    (``"ph": "X"``) events; instant records (and spans left open by a
    crashed run) become thread-scoped instant (``"ph": "i"``) events.
    One row (``tid``) per rank, metadata rows naming each rank last.
    Overlapped spans — a non-blocking collective still pending while the
    rank runs on — are lifted onto extra per-rank rows
    (``rank N (overlap K)``) so they render concurrently; traces without
    overlap are unchanged.  Load the result in ``chrome://tracing`` or
    https://ui.perfetto.dev.  Timestamps are microseconds (the format's
    convention).
    """
    track_of, max_track = _assign_tracks(trace)
    ranks = sorted({rec["rank"] for rec in trace})
    stride = (max(ranks) + 1) if ranks else 1
    lifted: set[tuple[int, int]] = set()
    events: list[dict[str, Any]] = []
    for rec in trace:
        args = {
            k: rec[k]
            for k in ("comm", "nbytes", "policy", "phase", "wait",
                      "sid", "parent", "peer", "level", "replayed")
            if k in rec
        }
        args.setdefault("kind", _kind(rec))
        track = track_of.get(rec.get("sid"), 0)
        if track:
            lifted.add((rec["rank"], track))
        event: dict[str, Any] = {
            "name": _event_name(rec),
            "ts": rec["t"] * 1e6,
            "pid": 0,
            "tid": rec["rank"] + track * stride,
            "args": args,
        }
        if rec.get("dur") is not None:
            event["ph"] = "X"
            event["dur"] = rec["dur"] * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread scoped
        events.append(event)
    for rank in ranks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    for rank, track in sorted(lifted):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank + track * stride,
                "args": {"name": f"rank {rank} (overlap {track})"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(trace: list[dict], path: str) -> None:
    """Write :func:`to_chrome_trace` output to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(trace), fh)


def format_timeline(trace: list[dict], width: int = 72,
                    max_rows: int = 40) -> str:
    """ASCII timeline: one line per record, bar position = virtual time.

    Records are sorted by ``(t, rank)`` first, so multi-rank timelines
    read chronologically even though the raw stream is in begin order;
    truncation to *max_rows* keeps the earliest records.  Span records
    show their duration; instant records a bare marker.
    """
    if not trace:
        return "(empty trace)"
    ordered = sorted(trace, key=lambda rec: (rec["t"], rec["rank"]))
    t_max = max(rec["t"] for rec in ordered) or 1.0
    lines = [
        f"{'t(us)':>10}  {'dur(us)':>9}  {'rank':>4}  {'event':<32} timeline",
    ]
    shown = ordered[:max_rows]
    for rec in shown:
        pos = int(rec["t"] / t_max * (width - 1)) if t_max else 0
        bar = "." * pos + "|"
        dur = rec.get("dur")
        dur_s = f"{dur * 1e6:>9.2f}" if dur is not None else f"{'-':>9}"
        lines.append(
            f"{rec['t'] * 1e6:>10.2f}  {dur_s}  {rec['rank']:>4}  "
            f"{_event_name(rec):<32} {bar}"
        )
    if len(ordered) > max_rows:
        lines.append(f"... (+{len(ordered) - max_rows} more records)")
    return "\n".join(lines)
