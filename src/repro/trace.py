"""Trace inspection and export utilities.

Jobs run with ``trace=True`` collect one record per collective dispatch
(time, rank, communicator, operation, algorithm, selection policy,
bytes).  This module turns those records into:

* :func:`summarize` — per-(op, algo) aggregate counts/bytes;
* :func:`to_chrome_trace` — a ``chrome://tracing`` / Perfetto compatible
  JSON object (instant events per dispatch, one row per rank);
* :func:`format_timeline` — a quick ASCII timeline for terminals.

Example
-------
::

    result = run_program(spec, 8, program, trace=True)
    print(format_timeline(result.trace))
    json.dump(to_chrome_trace(result.trace), open("trace.json", "w"))
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Any

__all__ = [
    "summarize",
    "to_chrome_trace",
    "format_timeline",
    "save_chrome_trace",
]


def summarize(trace: list[dict]) -> dict[tuple[str, str], dict]:
    """Aggregate trace records by (operation, algorithm).

    Returns ``{(op, algo): {"calls": n, "bytes": total}}``.
    """
    out: dict[tuple[str, str], dict] = defaultdict(
        lambda: {"calls": 0, "bytes": 0}
    )
    for rec in trace:
        key = (rec["op"], rec["algo"])
        out[key]["calls"] += 1
        out[key]["bytes"] += rec.get("nbytes", 0)
    return dict(out)


def to_chrome_trace(trace: list[dict]) -> dict:
    """Convert dispatch records to the Chrome trace-event JSON format.

    Each record becomes an instant event on its rank's row; load the
    result in ``chrome://tracing`` or https://ui.perfetto.dev.
    Timestamps are microseconds (the format's convention).
    """
    events: list[dict[str, Any]] = []
    for rec in trace:
        events.append(
            {
                "name": f"{rec['op']}:{rec['algo']}",
                "ph": "i",           # instant event
                "s": "t",            # thread scoped
                "ts": rec["t"] * 1e6,
                "pid": 0,
                "tid": rec["rank"],
                "args": {
                    "comm": rec.get("comm", "?"),
                    "nbytes": rec.get("nbytes", 0),
                    "policy": rec.get("policy", "table"),
                },
            }
        )
    ranks = sorted({rec["rank"] for rec in trace})
    for rank in ranks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(trace: list[dict], path: str) -> None:
    """Write :func:`to_chrome_trace` output to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(trace), fh)


def format_timeline(trace: list[dict], width: int = 72,
                    max_rows: int = 40) -> str:
    """ASCII timeline: one line per record, bar position = virtual time.

    Intended for quick eyeballing of collective phases in a terminal.
    """
    if not trace:
        return "(empty trace)"
    t_max = max(rec["t"] for rec in trace) or 1.0
    lines = [
        f"{'t(us)':>10}  {'rank':>4}  {'op:algo':<32} timeline",
    ]
    shown = trace[:max_rows]
    for rec in shown:
        pos = int(rec["t"] / t_max * (width - 1)) if t_max else 0
        bar = "." * pos + "|"
        label = f"{rec['op']}:{rec['algo']}"
        lines.append(
            f"{rec['t'] * 1e6:>10.2f}  {rec['rank']:>4}  "
            f"{label:<32} {bar}"
        )
    if len(trace) > max_rows:
        lines.append(f"... (+{len(trace) - max_rows} more records)")
    return "\n".join(lines)
