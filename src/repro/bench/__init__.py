"""Benchmark harness: regenerate every table and figure of the paper.

* :mod:`repro.bench.osu` — the OSU-style latency measurement protocol
  the paper's micro-benchmarks are built on (§5: "modified from the OSU
  benchmark", warm-up + repeated timed executions).
* :mod:`repro.bench.harness` — sweep runner and table formatting.
* :mod:`repro.bench.figures` — one :class:`~repro.bench.harness.Figure`
  definition per paper artifact (Fig 7, 8a, 8b, 9a, 9b, 10, 11a-d, 12)
  plus the ablation studies (sync mechanism, pipelining, placement,
  multi-leader baseline).
* :mod:`repro.bench.cli` — ``repro-bench --figure fig7`` /
  ``python -m repro.bench``.

Every figure runs in two modes: ``quick`` (reduced sweep for CI /
pytest-benchmark) and ``paper`` (the full parameter grid of the paper).
"""

from repro.bench.figures import FIGURES, get_figure
from repro.bench.harness import Figure, FigureResult, run_figure
from repro.bench.osu import osu_allgather_latency, osu_latency_program

__all__ = [
    "FIGURES",
    "Figure",
    "FigureResult",
    "get_figure",
    "osu_allgather_latency",
    "osu_latency_program",
    "run_figure",
]
