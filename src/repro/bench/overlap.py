"""OSU-style communication/computation overlap benchmark.

Measures how much of a collective's latency a non-blocking issue can
hide behind computation, using the OSU micro-benchmark overlap
protocol:

1. ``t_pure`` — the blocking collective's latency;
2. ``t_compute`` — the compute grain alone (defaults to ``t_pure``,
   the classic "just enough work to hide everything" setting);
3. ``t_overall`` — issue the immediate collective, run the compute
   grain, then wait.

From these::

    overlap % = 100 * (1 - (t_overall - t_compute) / t_pure)
    effective latency = t_overall - t_compute        (the *exposed* part)

A fully hidden exchange gives 100 % overlap and zero effective latency;
a blocking-equivalent one gives 0 % and ``t_pure``.  The hybrid variant
is where the paper's structure pays off: only the node leaders run the
bridge exchange, so every child's compute grain hides it entirely.

Run via ``repro-bench overlap`` (see ``--help``) or import
:func:`measure_overlap` / :func:`run_overlap_suite` directly.  The
committed ``BENCH_overlap.json`` at the repo root is regenerated with
``repro-bench overlap --out-json BENCH_overlap.json`` and pinned by
``tests/bench/test_overlap_bench.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

from repro.core import HybridContext
from repro.machine import presets
from repro.machine.placement import Placement
from repro.mpi import run_program
from repro.mpi.datatypes import Bytes

__all__ = [
    "overlap_program",
    "measure_overlap",
    "summa_speedup",
    "run_overlap_suite",
    "main",
]

#: Timed repetitions / warm-up (the simulator is deterministic; the
#: warm-up absorbs the one-off hierarchy and window setup).
DEFAULT_REPS = 1
DEFAULT_WARMUP = 1

#: Message sizes (bytes per rank) for the suite.
QUICK_SIZES = (4 * 1024, 64 * 1024)
FULL_SIZES = (1024, 4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024)


def overlap_program(mpi, nbytes: int, variant: str = "hybrid",
                    compute_s: float | None = None,
                    compute_factor: float = 1.0,
                    reps: int | None = None, warmup: int | None = None):
    """Rank program: the three OSU overlap measurements for one size.

    *variant* picks the collective: ``"pure"`` (``Comm.iallgather``) or
    ``"hybrid"`` (``HybridContext.iallgather`` over a node-shared
    buffer).  The compute grain is ``compute_s`` seconds when given,
    else ``compute_factor`` × the measured blocking latency (factor 1.0
    is the OSU default: just enough work to hide the whole exchange;
    smaller factors expose the remainder).  Returns ``{"pure": t,
    "compute": t, "overall": t}`` — per-rank mean seconds of each phase.
    """
    if reps is None:
        reps = DEFAULT_REPS
    if warmup is None:
        warmup = DEFAULT_WARMUP
    comm = mpi.world

    if variant == "hybrid":
        ctx = yield from HybridContext.create(comm)
        buf = yield from ctx.allgather_buffer(nbytes)

        def blocking_op():
            yield from ctx.allgather(buf)

        def immediate_op():
            return ctx.iallgather(buf)
    elif variant == "pure":
        payload = mpi.payload(nbytes) if mpi.data_mode else Bytes(nbytes)

        def blocking_op():
            yield from comm.allgather(payload)

        def immediate_op():
            return comm.iallgather(payload)
    else:
        raise ValueError("variant must be 'pure' or 'hybrid'")

    for _ in range(warmup):
        yield from blocking_op()

    yield from comm.barrier()
    t0 = mpi.now
    for _ in range(reps):
        yield from blocking_op()
    t_pure = (mpi.now - t0) / reps

    grain = t_pure * compute_factor if compute_s is None else compute_s

    yield from comm.barrier()
    t0 = mpi.now
    for _ in range(reps):
        yield mpi.compute(grain)
    t_compute = (mpi.now - t0) / reps

    yield from comm.barrier()
    t0 = mpi.now
    for _ in range(reps):
        req = immediate_op()
        yield mpi.compute(grain)
        yield from req.wait()
    t_overall = (mpi.now - t0) / reps

    return {"pure": t_pure, "compute": t_compute, "overall": t_overall}


def measure_overlap(spec, nprocs: int, nbytes: int, variant: str,
                    compute_s: float | None = None,
                    compute_factor: float = 1.0,
                    payload: str = "cost-only",
                    reps: int | None = None,
                    warmup: int | None = None,
                    placement: Placement | None = None) -> dict[str, float]:
    """Run :func:`overlap_program`; aggregate over the slowest rank.

    Returns microsecond latencies plus the OSU overlap percentage::

        {"pure_us", "compute_us", "overall_us", "effective_us",
         "overlap_pct"}
    """
    result = run_program(
        spec, nprocs, overlap_program, payload=payload,
        placement=placement,
        program_kwargs={
            "nbytes": nbytes, "variant": variant,
            "compute_s": compute_s, "compute_factor": compute_factor,
            "reps": reps, "warmup": warmup,
        },
    )
    t_pure = max(r["pure"] for r in result.returns)
    t_compute = max(r["compute"] for r in result.returns)
    t_overall = max(r["overall"] for r in result.returns)
    exposed = max(t_overall - t_compute, 0.0)
    overlap_pct = 100.0 * (1.0 - exposed / t_pure) if t_pure > 0 else 0.0
    return {
        "pure_us": t_pure * 1e6,
        "compute_us": t_compute * 1e6,
        "overall_us": t_overall * 1e6,
        "effective_us": exposed * 1e6,
        "overlap_pct": round(max(overlap_pct, 0.0), 2),
    }


def summa_speedup(spec, nprocs: int, block: int, variant: str,
                  payload: str = "cost-only",
                  placement: Placement | None = None) -> dict[str, float]:
    """Blocking vs overlap-aware SUMMA on *spec*; returns the speedup."""
    from repro.apps.summa import SummaConfig, summa_program

    times = {}
    for overlap in (False, True):
        cfg = SummaConfig(block=block, variant=variant, overlap=overlap)
        result = run_program(
            spec, nprocs, summa_program, payload=payload,
            placement=placement,
            program_kwargs={"config": cfg},
        )
        times[overlap] = max(r["total"] for r in result.returns)
    return {
        "blocking_us": times[False] * 1e6,
        "overlap_us": times[True] * 1e6,
        "speedup": round(times[False] / times[True], 3),
    }


def run_overlap_suite(quick: bool = False, nodes: int = 4, ppn: int = 4,
                      compute_factor: float | None = None,
                      reps: int | None = None,
                      warmup: int | None = None) -> dict[str, Any]:
    """The full overlap suite: micro overlap points + SUMMA speedups.

    *compute_factor* scales the compute grain as a multiple of the
    measured blocking latency (``None`` → 1.0, the OSU default).
    """
    spec = presets.hazel_hen(num_nodes=nodes)
    nprocs = nodes * ppn
    # Block placement spreads the job over all nodes (ppn ranks each),
    # so the hybrid bridge exchange is non-trivial.
    place = Placement.block(nodes, ppn)
    sizes = QUICK_SIZES if quick else FULL_SIZES
    factors = (0.5, 1.0) if compute_factor is None else (compute_factor,)
    points: dict[str, dict[str, float]] = {}
    for variant in ("pure", "hybrid"):
        for nbytes in sizes:
            for factor in factors:
                key = f"{variant}/{nbytes // 1024}KiB/cf{factor:g}"
                points[key] = measure_overlap(
                    spec, nprocs, nbytes, variant,
                    compute_factor=factor,
                    reps=reps, warmup=warmup, placement=place,
                )
    summa = {
        "ori/b128": summa_speedup(spec, nprocs, 128, "ori",
                                  placement=place),
        "hybrid/b128": summa_speedup(spec, nprocs, 128, "hybrid",
                                     placement=place),
    }
    return {
        "label": "overlap",
        "mode": "quick" if quick else "full",
        "payload": "cost-only",
        "machine": f"hazel_hen(n{nodes}x{ppn})",
        "points": points,
        "summa": summa,
    }


def _render(suite: dict[str, Any]) -> str:
    lines = [
        f"overlap suite on {suite['machine']} ({suite['mode']})",
        f"{'point':<18}{'pure_us':>10}{'effective_us':>14}{'overlap%':>10}",
    ]
    for name, pt in suite["points"].items():
        lines.append(
            f"{name:<18}{pt['pure_us']:>10.2f}"
            f"{pt['effective_us']:>14.2f}{pt['overlap_pct']:>10.1f}"
        )
    lines.append("")
    lines.append(f"{'summa':<18}{'blocking_us':>12}{'overlap_us':>12}"
                 f"{'speedup':>9}")
    for name, st in suite["summa"].items():
        lines.append(
            f"{name:<18}{st['blocking_us']:>12.1f}"
            f"{st['overlap_us']:>12.1f}{st['speedup']:>8.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``repro-bench overlap`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-bench overlap",
        description=(
            "OSU-style communication/computation overlap benchmark "
            "(non-blocking collectives; see docs/modeling.md)."
        ),
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced size grid (CI smoke)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="hazel_hen nodes (default 4)")
    parser.add_argument("--ppn", type=int, default=4,
                        help="ranks per node (default 4)")
    parser.add_argument("--compute-factor", type=float, default=None,
                        metavar="F",
                        help="compute grain as F x the blocking latency "
                             "(default: both 0.5 and 1.0; 1.0 is the "
                             "OSU protocol)")
    parser.add_argument("--reps", type=int, default=None,
                        help="timed repetitions per measurement")
    parser.add_argument("--warmup", type=int, default=None,
                        help="warm-up repetitions excluded from timing")
    parser.add_argument("--out-json", metavar="PATH",
                        help="write the suite as JSON (BENCH_overlap.json "
                             "format)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the rendered table")
    args = parser.parse_args(argv)
    if args.nodes < 1 or args.ppn < 1:
        print("--nodes and --ppn must be >= 1", file=sys.stderr)
        return 2
    suite = run_overlap_suite(
        quick=args.quick, nodes=args.nodes, ppn=args.ppn,
        compute_factor=args.compute_factor,
        reps=args.reps, warmup=args.warmup,
    )
    if args.out_json:
        with open(args.out_json, "w") as fh:
            json.dump(suite, fh, indent=2)
            fh.write("\n")
    if not args.quiet:
        print(_render(suite))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
