"""Experiment report generation (EXPERIMENTS.md writer).

Converts :class:`~repro.bench.harness.FigureResult` objects into the
markdown sections of EXPERIMENTS.md: the measured table, the paper's
claimed shape, and an automatic verdict on whether the measured series
matches the claim.  Keeping the document generated from actual runs
prevents the classic reproduction failure of a hand-written results
section drifting from the code.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.harness import FigureResult

__all__ = ["ShapeCheck", "figure_section", "render_report", "SHAPE_CHECKS"]


class ShapeCheck:
    """A named predicate over a figure's rows, with explanation."""

    def __init__(self, description: str,
                 predicate: Callable[[FigureResult], bool]):
        self.description = description
        self.predicate = predicate

    def verdict(self, result: FigureResult) -> tuple[bool, str]:
        try:
            ok = bool(self.predicate(result))
        except Exception as exc:  # noqa: BLE001 - verdicts must not crash
            return False, f"check errored: {exc!r}"
        return ok, self.description


def _cols(result: FigureResult, prefix: str) -> list[str]:
    return [c for c in result.columns if c.startswith(prefix)]


def _ratio_cols(result: FigureResult) -> list[str]:
    return [c for c in result.columns if c.startswith("ratio")]


def _check_fig7(result: FigureResult) -> bool:
    ok = True
    for flavour in ("cray", "ompi"):
        hy = result.series(f"hy_{flavour}_us")
        pure = result.series(f"allgather_{flavour}_us")
        ok &= all(h < p for h, p in zip(hy, pure))
        ok &= max(hy) <= 3.0 * min(hy)
        ok &= pure[-1] > 50 * pure[0]
    return ok


def _check_fig8(result: FigureResult) -> bool:
    ok = True
    for col in _cols(result, "hy_"):
        nodes = col.split("_")[1]
        pure = result.series(f"allgather_{nodes}_us")
        hy = result.series(col)
        ok &= all(h >= 0.95 * p for h, p in zip(hy, pure))
        ok &= hy[-1] <= 1.25 * pure[-1]
    return ok


def _check_fig9(result: FigureResult) -> bool:
    ok = True
    for col in _ratio_cols(result):
        ratios = result.series(col)
        ok &= all(r > 1.0 for r in ratios)
        # Growing trend, tolerating small algorithm-threshold cliffs
        # (one step may dip by up to 5%).
        running_max = ratios[0]
        for r in ratios[1:]:
            ok &= r >= 0.95 * running_max
            running_max = max(running_max, r)
        ok &= ratios[-1] > 1.5 * ratios[0]
    return ok


def _check_fig10(result: FigureResult) -> bool:
    return all(
        r > 1.0 for col in _ratio_cols(result) for r in result.series(col)
    )


def _check_fig11(result: FigureResult) -> bool:
    ratios = result.series("ratio")
    return all(r > 0.95 for r in ratios) and max(ratios) > 1.1


def _check_fig12(result: FigureResult) -> bool:
    ratios = result.series("ratio")
    return (
        all(r > 1.0 for r in ratios)
        and ratios == sorted(ratios)
        and ratios[0] < 1.1
    )


def _check_abl_sync(result: FigureResult) -> bool:
    return all(s >= 0.99 for s in result.series("speedup"))


def _check_abl_pipeline(result: FigureResult) -> bool:
    return all(s > 1.3 for s in result.series("speedup"))


def _check_abl_placement(result: FigureResult) -> bool:
    return all(p > 1.0 for p in result.series("packing_penalty"))


def _check_abl_noise(result: FigureResult) -> bool:
    ratios = result.series("ratio")
    return all(r > 1.0 for r in ratios)


def _check_ext_scaling(result: FigureResult) -> bool:
    return all(r > 1.0 for r in result.series("ratio"))


def _check_ext_transport_crossover(result: FigureResult) -> bool:
    # The 3-level exchange must pay at the smallest size and win at the
    # largest, on every transport — the crossover is real, not uniform.
    rows = sorted(result.rows, key=lambda r: r["elements"])
    small, large = rows[0], rows[-1]
    return all(
        small[f"{t}_3l_us"] > small[f"{t}_2l_us"]
        and large[f"{t}_3l_us"] < large[f"{t}_2l_us"]
        for t in ("shm", "cma", "pip")
    )


def _check_abl_multileader(result: FigureResult) -> bool:
    return all(
        row["hy_us"] < min(row["leaders1_us"], row["leaders2_us"],
                           row["leaders4_us"])
        for row in result.rows
    )


#: Figure id → the shape assertion EXPERIMENTS.md reports on.
SHAPE_CHECKS: dict[str, ShapeCheck] = {
    "fig7": ShapeCheck(
        "Hy flat & always faster; pure grows steadily", _check_fig7
    ),
    "fig8a": ShapeCheck(
        "Hy slightly slower with 1 rank/node; gap small at large sizes",
        _check_fig8,
    ),
    "fig8b": ShapeCheck(
        "Hy slightly slower with 1 rank/node; gap small at large sizes",
        _check_fig8,
    ),
    "fig9a": ShapeCheck(
        "ratio > 1 and monotonically growing with ppn", _check_fig9
    ),
    "fig9b": ShapeCheck(
        "ratio > 1 and monotonically growing with ppn", _check_fig9
    ),
    "fig10": ShapeCheck("Hy wins at every size (irregular)", _check_fig10),
    "fig11a": ShapeCheck("ratio ≳ 1 everywhere, clear wins", _check_fig11),
    "fig11b": ShapeCheck("ratio ≳ 1 everywhere, clear wins", _check_fig11),
    "fig11c": ShapeCheck("ratio ≳ 1 everywhere, clear wins", _check_fig11),
    "fig11d": ShapeCheck("ratio ≳ 1 everywhere, clear wins", _check_fig11),
    "fig12": ShapeCheck(
        "ratio > 1, slowly rising, modest at 24 cores", _check_fig12
    ),
    "abl_sync": ShapeCheck("flags never slower than barrier", _check_abl_sync),
    "abl_pipeline": ShapeCheck(
        "pipelining wins on skewed blocks", _check_abl_pipeline
    ),
    "abl_placement": ShapeCheck(
        "datatype packing always penalized", _check_abl_placement
    ),
    "abl_multileader": ShapeCheck(
        "hybrid beats every leader count", _check_abl_multileader
    ),
    "abl_noise": ShapeCheck(
        "hybrid advantage survives injected noise", _check_abl_noise
    ),
    "ext_weak_scaling": ShapeCheck(
        "advantage sustained under weak scaling", _check_ext_scaling
    ),
    "ext_strong_scaling": ShapeCheck(
        "advantage persists under strong scaling", _check_ext_scaling
    ),
    "ext_transport_crossover": ShapeCheck(
        "3-level pays at small sizes, wins at large, on every transport",
        _check_ext_transport_crossover,
    ),
}


def figure_section(result: FigureResult, paper_claim: str) -> str:
    """One markdown section: claim, verdict, measured table."""
    check = SHAPE_CHECKS.get(result.figure_id)
    if check is None:
        verdict_line = "_no automated shape check registered_"
    else:
        ok, description = check.verdict(result)
        status = "**REPRODUCED**" if ok else "**NOT REPRODUCED**"
        verdict_line = f"{status} — checked: {description}"
    table = _markdown_table(result)
    return (
        f"### {result.title}\n\n"
        f"*Paper claim:* {paper_claim}\n\n"
        f"*Verdict ({result.mode} grid):* {verdict_line}\n\n"
        f"{table}\n"
    )


def _markdown_table(result: FigureResult) -> str:
    cols = result.columns

    def fmt(v) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            if abs(v) >= 1000:
                return f"{v:.0f}"
            if abs(v) >= 1:
                return f"{v:.2f}"
            return f"{v:.4f}"
        return str(v)

    lines = ["| " + " | ".join(cols) + " |",
             "|" + "|".join("---" for _ in cols) + "|"]
    for row in result.rows:
        lines.append(
            "| " + " | ".join(fmt(row.get(c)) for c in cols) + " |"
        )
    return "\n".join(lines)


def render_report(results: list[tuple[FigureResult, str]],
                  header: str = "") -> str:
    """Full EXPERIMENTS.md body from (result, paper_claim) pairs."""
    parts = [header] if header else []
    for result, claim in results:
        parts.append(figure_section(result, claim))
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Round-trip: reload rendered tables from a saved benchmark run
# ---------------------------------------------------------------------------

def parse_rendered(text: str) -> list[FigureResult]:
    """Parse ``FigureResult.render()`` output back into result objects.

    Lets reports be regenerated from a saved ``repro-bench --out`` file
    without re-running hours of sweeps.  Figure ids are recovered by
    matching titles against the registry.
    """
    from repro.bench.figures import FIGURES

    title_to_id = {fig.title: fid for fid, fig in FIGURES.items()}
    results: list[FigureResult] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        if "[mode=" in line:
            title = line[: line.index("[mode=")].strip()
            mode = line.split("[mode=")[1].rstrip("]").strip(" ]")
            header = lines[i + 1].rstrip()
            columns = header.split()
            # Column start offsets from the header layout (columns are
            # left-aligned and padded with >= 2 spaces).
            starts = []
            pos = 0
            for col in columns:
                pos = header.index(col, pos)
                starts.append(pos)
                pos += len(col)
            rows = []
            j = i + 3  # skip header + dashes
            while j < len(lines) and lines[j].strip() and not lines[
                j
            ].startswith("("):
                raw = lines[j]
                row: dict = {}
                for k, col in enumerate(columns):
                    lo = starts[k]
                    hi = starts[k + 1] if k + 1 < len(columns) else len(raw)
                    cell = raw[lo:hi].strip()
                    row[col] = _parse_cell(cell)
                first = row[columns[0]]
                if isinstance(first, str):
                    break  # a trailing notes line, not a data row
                rows.append(row)
                j += 1
            results.append(
                FigureResult(
                    figure_id=title_to_id.get(title, title),
                    title=title,
                    columns=columns,
                    rows=rows,
                    mode=mode,
                    wall_seconds=0.0,
                )
            )
            i = j
        else:
            i += 1
    return results


def _parse_cell(cell: str):
    if cell in ("-", ""):
        return None
    try:
        if "." in cell or "e" in cell or "E" in cell:
            return float(cell)
        return int(cell)
    except ValueError:
        return cell


def load_results(path: str) -> list[FigureResult]:
    """Parse every figure table from a saved benchmark output file."""
    with open(path, encoding="utf-8") as fh:
        return parse_rendered(fh.read())
