"""Figure/table runner: sweep definitions and text rendering.

A :class:`Figure` bundles a parameter sweep (per mode: quick/paper) with
a point-measurement function; :func:`run_figure` executes the sweep and
returns a :class:`FigureResult` whose rows regenerate the series of the
paper's plot.  ``result.render()`` prints an aligned table like::

    Fig 7 — single-node allgather latency (us)
    elements   Hy+cray   Allgather+cray   Hy+ompi   Allgather+ompi
    1          0.90      3.47             1.20      3.77
    ...
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Figure", "FigureResult", "run_figure", "format_table"]


@dataclass
class FigureResult:
    """Outcome of one figure regeneration."""

    figure_id: str
    title: str
    columns: list[str]
    rows: list[dict]
    mode: str
    wall_seconds: float
    notes: str = ""

    def render(self) -> str:
        """Aligned plain-text table of the figure's series."""
        header = f"{self.title}  [mode={self.mode}]"
        table = format_table(self.columns, self.rows)
        tail = f"\n{self.notes}" if self.notes else ""
        return f"{header}\n{table}{tail}"

    def series(self, column: str) -> list[Any]:
        """One column as a list (row order)."""
        return [row.get(column) for row in self.rows]


def format_table(columns: list[str], rows: list[dict]) -> str:
    """Align *rows* under *columns*; floats rendered sensibly."""

    def fmt(v: Any) -> str:
        if v is None:
            return "-"
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000:
                return f"{v:.0f}"
            if abs(v) >= 1:
                return f"{v:.2f}"
            return f"{v:.4f}"
        return str(v)

    rendered = [[fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(c), *(len(r[i]) for r in rendered)) if rendered else len(c)
        for i, c in enumerate(columns)
    ]
    lines = ["  ".join(c.ljust(w) for c, w in zip(columns, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class Figure:
    """A regenerable paper artifact.

    Attributes
    ----------
    figure_id:
        Stable identifier (``fig7``, ``fig11a``, ``abl_sync``, …).
    title:
        Human title matching the paper's caption.
    paper_claim:
        One-sentence statement of the shape the paper reports (asserted
        loosely by the benchmark suite).
    sweep:
        ``sweep(mode)`` → list of point dicts.
    measure:
        ``measure(point, mode)`` → row dict (merged with the point).
    columns:
        Render order of row keys.
    """

    figure_id: str
    title: str
    paper_claim: str
    sweep: Callable[[str], list[dict]]
    measure: Callable[[dict, str], dict]
    columns: list[str] = field(default_factory=list)
    notes: str = ""

    def run(self, mode: str = "quick", progress: bool = False) -> FigureResult:
        """Execute the sweep; returns the populated result."""
        if mode not in ("quick", "paper"):
            raise ValueError("mode must be 'quick' or 'paper'")
        t0 = time.time()
        rows = []
        points = self.sweep(mode)
        for i, point in enumerate(points):
            if progress:
                print(
                    f"[{self.figure_id}] point {i + 1}/{len(points)}: {point}",
                    file=sys.stderr,
                    flush=True,
                )
            row = dict(point)
            row.update(self.measure(point, mode))
            rows.append(row)
        return FigureResult(
            figure_id=self.figure_id,
            title=self.title,
            columns=self.columns or (list(rows[0]) if rows else []),
            rows=rows,
            mode=mode,
            wall_seconds=time.time() - t0,
            notes=self.notes,
        )


def run_figure(figure_id: str, mode: str = "quick",
               progress: bool = False) -> FigureResult:
    """Look up and run a figure by id (see :data:`repro.bench.FIGURES`)."""
    from repro.bench.figures import get_figure

    return get_figure(figure_id).run(mode=mode, progress=progress)
