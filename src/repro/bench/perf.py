"""Tracked wall-clock performance harness (``repro-perf``).

Measures how fast the *simulator itself* runs — wall-clock seconds and
events/second — on the canonical Fig 7/9/10 allgather configurations,
and writes one ``BENCH_<label>.json`` per figure.  The committed BENCH
files at the repository root carry the before/after numbers of the
fast-path work (see docs/performance.md); CI re-runs the quick sweep and
gates on events/second against them.

Virtual-time results (latencies, event counts) are independent of the
payload mode and scheduler path — the equivalence tests assert that —
so the harness measures the cheap configuration (``payload="cost-only"``,
``fast_path=True``) by default and the numbers still describe the same
simulation the figures run.

Usage::

    repro-perf                      # full sweep, BENCH_*.json in cwd
    repro-perf --quick              # reduced sweep (CI smoke)
    repro-perf --label fig10        # one figure only
    repro-perf --quick --gate .     # compare against committed BENCH files
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import Any

from repro.bench import sweep as sweeplib

__all__ = ["PERF_LABELS", "perf_points", "measure_point", "run_perf",
           "write_bench", "check_gate", "main"]

PERF_LABELS = ("fig7", "fig9", "fig10")

#: Pre-fast-path reference numbers (wall seconds / events processed),
#: measured at the commit before this harness existed on the same
#: configurations (payload_mode="model", legacy scheduler).  Keyed like
#: the harness output so "before" columns and speedups can be reported.
#: Event counts double as a determinism check: the optimized engine must
#: process exactly the same number of events.
BASELINE: dict[str, dict[str, dict[str, float]]] = {
    "fig7": {
        "n1x24/1el/hybrid": {"wall_s": 0.0121, "events": 126},
        "n1x24/1el/pure": {"wall_s": 0.0313, "events": 4441},
        "n1x24/1024el/hybrid": {"wall_s": 0.0035, "events": 126},
        "n1x24/1024el/pure": {"wall_s": 0.0279, "events": 3673},
        "n1x24/16384el/hybrid": {"wall_s": 0.0044, "events": 126},
        "n1x24/16384el/pure": {"wall_s": 0.1022, "events": 15577},
    },
    "fig9-quick": {
        "n4x3/512el/hybrid": {"wall_s": 0.006, "events": 592},
        "n4x3/512el/pure": {"wall_s": 0.0221, "events": 1696},
        "n4x12/512el/hybrid": {"wall_s": 0.0112, "events": 880},
        "n4x12/512el/pure": {"wall_s": 0.1046, "events": 18112},
        "n4x24/512el/hybrid": {"wall_s": 0.0228, "events": 1424},
        "n4x24/512el/pure": {"wall_s": 0.4296, "events": 68384},
    },
    "fig9-full": {
        "n16x3/512el/hybrid": {"wall_s": 0.0294, "events": 4148},
        "n16x3/512el/pure": {"wall_s": 0.0539, "events": 8576},
        "n16x12/512el/hybrid": {"wall_s": 0.1281, "events": 12340},
        "n16x12/512el/pure": {"wall_s": 0.5801, "events": 81280},
        "n16x24/512el/hybrid": {"wall_s": 0.2461, "events": 13876},
        "n16x24/512el/pure": {"wall_s": 2.2704, "events": 281728},
    },
    "fig10-quick": {
        "r160/1el/hybrid": {"wall_s": 0.0579, "events": 2453},
        "r160/1el/pure": {"wall_s": 0.1397, "events": 12818},
        "r160/1024el/hybrid": {"wall_s": 0.0577, "events": 3377},
        "r160/1024el/pure": {"wall_s": 0.8333, "events": 111968},
        "r160/16384el/hybrid": {"wall_s": 0.0535, "events": 3377},
        "r160/16384el/pure": {"wall_s": 0.8858, "events": 111331},
    },
    "fig10-full": {
        "r1024/1el/hybrid": {"wall_s": 1.6162, "events": 22085},
        "r1024/1el/pure": {"wall_s": 1.896, "events": 88577},
        "r1024/1024el/hybrid": {"wall_s": 1.5383, "events": 85037},
        "r1024/1024el/pure": {"wall_s": 8.5006, "events": 795719},
        "r1024/16384el/hybrid": {"wall_s": 1.6151, "events": 85037},
        "r1024/16384el/pure": {"wall_s": 9.2572, "events": 791623},
    },
}


def _baseline_key(label: str, quick: bool) -> str:
    # fig7 is a single-node config with no quick/full distinction.
    if label == "fig7":
        return "fig7"
    return f"{label}-{'quick' if quick else 'full'}"


def perf_points(label: str,
                quick: bool = False) -> list[tuple[str, Any]]:
    """``(name, SweepPoint)`` for every measured point of *label* —
    a thin alias of :func:`repro.bench.sweep.figure_points`, the single
    source of truth for the canonical figure grids."""
    return sweeplib.figure_points(label, quick)


def measure_point(point, payload: str = "cost-only",
                  fast_path: bool = True) -> dict[str, Any]:
    """Run one :class:`~repro.bench.sweep.SweepPoint` fresh and return
    its wall/event/latency record (BENCH field subset)."""
    point = replace(point, payload=payload, fast_path=fast_path)
    rec = sweeplib.run_point(point)
    return {k: rec[k] for k in
            ("wall_s", "events", "latency_us", "events_per_s")}


def run_perf(label: str, quick: bool = False, payload: str = "cost-only",
             fast_path: bool = True, progress: bool = True,
             cache: "sweeplib.ResultCache | None" = None) -> dict[str, Any]:
    """Measure every point of *label*; returns the BENCH document.

    The harness *always computes* — it exists to wall-clock the
    simulator, and a cached wall-clock would be a lie — but with
    *cache* set it stores every fresh result into the shared sweep
    cache, so a ``repro-perf`` run doubles as a cache warmer for
    ``repro-sweep``/the query service.
    """
    baseline = BASELINE.get(_baseline_key(label, quick), {})
    points: dict[str, Any] = {}
    total_wall = 0.0
    total_events = 0
    for name, point in perf_points(label, quick):
        sweep_point = replace(point, payload=payload, fast_path=fast_path)
        full = sweeplib.run_point(sweep_point)
        if cache is not None:
            sweeplib.store_record(cache, sweep_point, full)
        rec = {k: full[k] for k in
               ("wall_s", "events", "latency_us", "events_per_s")}
        before = baseline.get(name)
        if before:
            rec["before_wall_s"] = before["wall_s"]
            rec["before_events"] = int(before["events"])
            if rec["wall_s"] > 0:
                rec["speedup"] = round(before["wall_s"] / rec["wall_s"], 2)
        points[name] = rec
        total_wall += rec["wall_s"]
        total_events += rec["events"]
        if progress:
            extra = (f" (was {before['wall_s']}s)" if before else "")
            print(f"  {name}: {rec['wall_s']}s, {rec['events']} events"
                  f"{extra}", flush=True)
    doc: dict[str, Any] = {
        "label": label,
        "mode": "quick" if quick else "full",
        "payload": payload,
        "fast_path": fast_path,
        "points": points,
        "total_wall_s": round(total_wall, 3),
        "total_events": total_events,
        "events_per_s": round(total_events / total_wall, 1)
        if total_wall > 0 else 0.0,
    }
    if baseline:
        before_total = round(
            sum(b["wall_s"] for b in baseline.values()), 3
        )
        doc["before_total_wall_s"] = before_total
        if total_wall > 0:
            doc["speedup"] = round(before_total / total_wall, 2)
    return doc


def write_bench(doc: dict[str, Any], out_dir: str = ".") -> str:
    """Write *doc* as ``BENCH_<label>.json`` under *out_dir*."""
    path = os.path.join(out_dir, f"BENCH_{doc['label']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return path


def check_gate(doc: dict[str, Any], committed_dir: str,
               factor: float = 2.0) -> str | None:
    """Compare a fresh measurement against a committed BENCH file.

    The gate is on aggregate *events per second* — wall-clock normalized
    by work — because the committed reference (full sweep) and the CI
    smoke run (quick sweep) use different problem sizes, and because CI
    runners differ from the machine that produced the reference.  Returns
    an error string if the fresh run is more than *factor* x slower, or
    ``None`` if it passes (or no reference exists).
    """
    path = os.path.join(committed_dir, f"BENCH_{doc['label']}.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        ref = json.load(fh)
    ref_eps = ref.get("events_per_s", 0.0)
    eps = doc.get("events_per_s", 0.0)
    if ref_eps <= 0 or eps <= 0:
        return None
    if eps * factor < ref_eps:
        return (
            f"{doc['label']}: {eps:.0f} events/s is more than {factor:g}x "
            f"below the committed reference ({ref_eps:.0f} events/s in "
            f"{path})"
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description=(
            "Wall-clock benchmark of the simulator on the canonical "
            "Fig 7/9/10 configurations; writes BENCH_<label>.json."
        ),
    )
    parser.add_argument(
        "--label", action="append", choices=PERF_LABELS,
        help="figure config to measure (repeatable; default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep (smaller node counts; used by CI)",
    )
    parser.add_argument(
        "--payload", choices=("cost-only", "model", "full"),
        default="cost-only",
        help="payload mode to benchmark (default: cost-only)",
    )
    parser.add_argument(
        "--legacy-path", action="store_true",
        help="benchmark the legacy heap-only scheduler (fast_path=False)",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<label>.json (default: cwd)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="measure only, write nothing"
    )
    parser.add_argument(
        "--gate", metavar="DIR",
        help=(
            "compare against committed BENCH files in DIR and exit "
            "non-zero on regression (events/s, see --gate-factor)"
        ),
    )
    parser.add_argument(
        "--gate-factor", type=float, default=2.0, metavar="X",
        help="allowed events/s slowdown before --gate fails (default: 2)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help=(
            "also store every fresh result into the content-addressed "
            "sweep cache in DIR (repro-sweep/service reads it back)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    args = parser.parse_args(argv)
    labels = args.label or list(PERF_LABELS)
    cache = sweeplib.ResultCache(args.cache) if args.cache else None
    failures = []
    for label in labels:
        if not args.quiet:
            print(f"{label} ({'quick' if args.quick else 'full'}):",
                  flush=True)
        doc = run_perf(
            label, quick=args.quick, payload=args.payload,
            fast_path=not args.legacy_path, progress=not args.quiet,
            cache=cache,
        )
        summary = f"{label}: {doc['total_wall_s']}s, {doc['events_per_s']:.0f} events/s"
        if "speedup" in doc:
            summary += (f" ({doc['before_total_wall_s']}s before, "
                        f"x{doc['speedup']} speedup)")
        print(summary, flush=True)
        if not args.no_json:
            path = write_bench(doc, args.out_dir)
            if not args.quiet:
                print(f"wrote {path}", flush=True)
        if args.gate:
            err = check_gate(doc, args.gate, args.gate_factor)
            if err:
                failures.append(err)
    for err in failures:
        print(f"PERF REGRESSION: {err}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
