"""Tracked wall-clock performance harness (``repro-perf``).

Measures how fast the *simulator itself* runs — wall-clock seconds and
events/second — on the canonical Fig 7/9/10 allgather configurations,
and writes one ``BENCH_<label>.json`` per figure.  The committed BENCH
files at the repository root carry the before/after numbers of the
replay-cache work (see docs/performance.md); CI re-runs the quick sweep
and gates on events/second against them.

Virtual-time results (latencies, event counts) are independent of the
payload mode and scheduler path — the equivalence tests assert that —
so the harness measures the cheap configuration (``payload="cost-only"``,
``fast_path=True``) by default and the numbers still describe the same
simulation the figures run.

Usage::

    repro-perf                      # full sweep, BENCH_*.json in cwd
    repro-perf --quick              # reduced sweep (CI smoke)
    repro-perf --label fig10        # one figure only
    repro-perf --quick --gate .     # compare against committed BENCH files
    repro-perf --replay             # replay-off vs replay-on comparison
    repro-perf --profile            # cProfile table (PROFILE_<label>.txt)

``--replay`` runs every point twice — once with the collective replay
cache disabled, once cold-cache enabled — asserts the virtual-time
latency is bit-identical, and writes a single ``BENCH_replay.json``
with per-point wall/event columns for both legs.  ``--replay-gate X``
fails the run when the aggregate warm-repetition speedup drops below
``X`` (CI uses 5).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import Any

from repro.bench import sweep as sweeplib

__all__ = ["PERF_LABELS", "perf_points", "measure_point", "run_perf",
           "run_replay_compare", "profile_perf", "write_bench",
           "check_gate", "main"]

PERF_LABELS = ("fig7", "fig9", "fig10")

#: Pre-replay reference numbers (wall seconds / events processed),
#: measured on the PR 5 fast-path configuration (``fast_path=True``,
#: ``payload="cost-only"``, replay disabled) at ``DEFAULT_REPS=50`` —
#: i.e. the off leg of ``repro-perf --replay``.  Keyed like the harness
#: output so "before" columns and speedups can be reported.  Event
#: counts are the replay-off totals; a fresh run (replay on by default)
#: processes far fewer, and the ratio is the work the replay cache
#: skipped.
BASELINE: dict[str, dict[str, dict[str, float]]] = {
    "fig7": {
        "n1x24/1el/hybrid": {"wall_s": 0.0675, "events": 2526},
        "n1x24/1el/pure": {"wall_s": 0.2585, "events": 112632},
        "n1x24/1024el/hybrid": {"wall_s": 0.037, "events": 2526},
        "n1x24/1024el/pure": {"wall_s": 0.2512, "events": 93048},
        "n1x24/16384el/hybrid": {"wall_s": 0.0377, "events": 2526},
        "n1x24/16384el/pure": {"wall_s": 1.1086, "events": 396600},
    },
    "fig9-quick": {
        "n4x3/512el/hybrid": {"wall_s": 0.0546, "events": 10881},
        "n4x3/512el/pure": {"wall_s": 0.1077, "events": 39180},
        "n4x12/512el/hybrid": {"wall_s": 0.1411, "events": 16425},
        "n4x12/512el/pure": {"wall_s": 1.0725, "events": 455988},
        "n4x24/512el/hybrid": {"wall_s": 0.282, "events": 27897},
        "n4x24/512el/pure": {"wall_s": 4.6844, "events": 1735524},
    },
    "fig9-full": {
        "n16x3/512el/hybrid": {"wall_s": 0.3772, "events": 76005},
        "n16x3/512el/pure": {"wall_s": 0.6134, "events": 189360},
        "n16x12/512el/hybrid": {"wall_s": 1.2895, "events": 277701},
        "n16x12/512el/pure": {"wall_s": 6.4207, "events": 2036112},
        "n16x24/512el/hybrid": {"wall_s": 1.9874, "events": 307269},
        "n16x24/512el/pure": {"wall_s": 19.1185, "events": 7137936},
    },
    "fig10-quick": {
        "r160/1el/hybrid": {"wall_s": 0.5131, "events": 45406},
        "r160/1el/pure": {"wall_s": 1.0707, "events": 309934},
        "r160/1024el/hybrid": {"wall_s": 0.5595, "events": 68968},
        "r160/1024el/pure": {"wall_s": 9.9456, "events": 2838208},
        "r160/16384el/hybrid": {"wall_s": 0.6851, "events": 68968},
        "r160/16384el/pure": {"wall_s": 9.6221, "events": 2821888},
    },
    "fig10-full": {
        "r1024/1el/hybrid": {"wall_s": 4.0347, "events": 403408},
        "r1024/1el/pure": {"wall_s": 11.6811, "events": 2099980},
        "r1024/1024el/hybrid": {"wall_s": 8.9145, "events": 2008684},
        "r1024/1024el/pure": {"wall_s": 68.8288, "events": 20132050},
        "r1024/16384el/hybrid": {"wall_s": 7.9382, "events": 2008684},
        "r1024/16384el/pure": {"wall_s": 70.4192, "events": 20027602},
    },
}


def _baseline_key(label: str, quick: bool) -> str:
    # fig7 is a single-node config with no quick/full distinction.
    if label == "fig7":
        return "fig7"
    return f"{label}-{'quick' if quick else 'full'}"


def perf_points(label: str,
                quick: bool = False) -> list[tuple[str, Any]]:
    """``(name, SweepPoint)`` for every measured point of *label* —
    a thin alias of :func:`repro.bench.sweep.figure_points`, the single
    source of truth for the canonical figure grids."""
    return sweeplib.figure_points(label, quick)


def measure_point(point, payload: str = "cost-only",
                  fast_path: bool = True) -> dict[str, Any]:
    """Run one :class:`~repro.bench.sweep.SweepPoint` fresh and return
    its wall/event/latency record (BENCH field subset)."""
    point = replace(point, payload=payload, fast_path=fast_path)
    rec = sweeplib.run_point(point)
    return {k: rec[k] for k in
            ("wall_s", "events", "latency_us", "events_per_s")}


def run_perf(label: str, quick: bool = False, payload: str = "cost-only",
             fast_path: bool = True, progress: bool = True,
             cache: "sweeplib.ResultCache | None" = None) -> dict[str, Any]:
    """Measure every point of *label*; returns the BENCH document.

    The harness *always computes* — it exists to wall-clock the
    simulator, and a cached wall-clock would be a lie — but with
    *cache* set it stores every fresh result into the shared sweep
    cache, so a ``repro-perf`` run doubles as a cache warmer for
    ``repro-sweep``/the query service.
    """
    baseline = BASELINE.get(_baseline_key(label, quick), {})
    points: dict[str, Any] = {}
    total_wall = 0.0
    total_events = 0
    for name, point in perf_points(label, quick):
        sweep_point = replace(point, payload=payload, fast_path=fast_path)
        full = sweeplib.run_point(sweep_point)
        if cache is not None:
            sweeplib.store_record(cache, sweep_point, full)
        rec = {k: full[k] for k in
               ("wall_s", "events", "latency_us", "events_per_s")}
        before = baseline.get(name)
        if before:
            rec["before_wall_s"] = before["wall_s"]
            rec["before_events"] = int(before["events"])
            if rec["wall_s"] > 0:
                rec["speedup"] = round(before["wall_s"] / rec["wall_s"], 2)
        points[name] = rec
        total_wall += rec["wall_s"]
        total_events += rec["events"]
        if progress:
            extra = (f" (was {before['wall_s']}s)" if before else "")
            print(f"  {name}: {rec['wall_s']}s, {rec['events']} events"
                  f"{extra}", flush=True)
    doc: dict[str, Any] = {
        "label": label,
        "mode": "quick" if quick else "full",
        "payload": payload,
        "fast_path": fast_path,
        "points": points,
        "total_wall_s": round(total_wall, 3),
        "total_events": total_events,
        "events_per_s": round(total_events / total_wall, 1)
        if total_wall > 0 else 0.0,
    }
    if baseline:
        before_total = round(
            sum(b["wall_s"] for b in baseline.values()), 3
        )
        doc["before_total_wall_s"] = before_total
        if total_wall > 0:
            doc["speedup"] = round(before_total / total_wall, 2)
    return doc


def run_replay_compare(labels, quick: bool = False,
                       payload: str = "cost-only", fast_path: bool = True,
                       progress: bool = True) -> dict[str, Any]:
    """Measure the replay cache's warm-repetition speedup.

    Every latency point of *labels* runs twice: replay off, then replay
    on from a cold cache (so the on-leg pays its own pocket-recording
    cost).  Virtual time must be bit-identical between the legs — a
    mismatched ``latency_us`` or ``events``-independent field raises —
    and the document records both legs' wall seconds and event counts,
    plus the aggregate ``speedup`` the CI gate checks.
    """
    from repro.mpi.collectives import replay as replaylib

    points: dict[str, Any] = {}
    total_off = total_on = 0.0
    saved = sweeplib.REPLAY_MODE
    try:
        for label in labels:
            for name, point in perf_points(label, quick):
                sweep_point = replace(
                    point, payload=payload, fast_path=fast_path
                )
                sweeplib.REPLAY_MODE = False
                off = sweeplib.run_point(sweep_point)
                sweeplib.REPLAY_MODE = "loop"
                replaylib.clear_cache()
                on = sweeplib.run_point(sweep_point)
                if on["latency_us"] != off["latency_us"]:
                    raise RuntimeError(
                        f"{label}/{name}: replay changed virtual time "
                        f"({on['latency_us']} != {off['latency_us']} us)"
                    )
                rec = {
                    "latency_us": off["latency_us"],
                    "wall_off_s": off["wall_s"],
                    "wall_on_s": on["wall_s"],
                    "events_off": off["events"],
                    "events_on": on["events"],
                }
                if on["wall_s"] > 0:
                    rec["speedup"] = round(off["wall_s"] / on["wall_s"], 2)
                if "replay" in on:
                    rec["replay"] = on["replay"]
                points[f"{label}/{name}"] = rec
                total_off += off["wall_s"]
                total_on += on["wall_s"]
                if progress:
                    print(
                        f"  {label}/{name}: {off['wall_s']}s -> "
                        f"{on['wall_s']}s (x{rec.get('speedup', 0)})",
                        flush=True,
                    )
    finally:
        sweeplib.REPLAY_MODE = saved
    return {
        "label": "replay",
        "mode": "quick" if quick else "full",
        "payload": payload,
        "fast_path": fast_path,
        "points": points,
        "total_wall_off_s": round(total_off, 3),
        "total_wall_on_s": round(total_on, 3),
        "speedup": round(total_off / total_on, 2) if total_on > 0 else 0.0,
    }


def profile_perf(labels, quick: bool = False, payload: str = "cost-only",
                 fast_path: bool = True, out_dir: str = ".",
                 top: int = 25) -> str:
    """cProfile the full measurement sweep of *labels* and write the
    top-*top* cumulative-time table to ``PROFILE_perf.txt`` in
    *out_dir* (CI uploads it as an artifact).  Returns the path."""
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    for label in labels:
        run_perf(label, quick=quick, payload=payload,
                 fast_path=fast_path, progress=False)
    prof.disable()
    buf = io.StringIO()
    stats = pstats.Stats(prof, stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    path = os.path.join(out_dir, "PROFILE_perf.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(buf.getvalue())
    return path


def write_bench(doc: dict[str, Any], out_dir: str = ".") -> str:
    """Write *doc* as ``BENCH_<label>.json`` under *out_dir*."""
    path = os.path.join(out_dir, f"BENCH_{doc['label']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return path


def check_gate(doc: dict[str, Any], committed_dir: str,
               factor: float = 2.0) -> str | None:
    """Compare a fresh measurement against a committed BENCH file.

    The gate is on aggregate *events per second* — wall-clock normalized
    by work — because the committed reference (full sweep) and the CI
    smoke run (quick sweep) use different problem sizes, and because CI
    runners differ from the machine that produced the reference.  Returns
    an error string if the fresh run is more than *factor* x slower, or
    ``None`` if it passes (or no reference exists).
    """
    path = os.path.join(committed_dir, f"BENCH_{doc['label']}.json")
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        ref = json.load(fh)
    ref_eps = ref.get("events_per_s", 0.0)
    eps = doc.get("events_per_s", 0.0)
    if ref_eps <= 0 or eps <= 0:
        return None
    if eps * factor < ref_eps:
        return (
            f"{doc['label']}: {eps:.0f} events/s is more than {factor:g}x "
            f"below the committed reference ({ref_eps:.0f} events/s in "
            f"{path})"
        )
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description=(
            "Wall-clock benchmark of the simulator on the canonical "
            "Fig 7/9/10 configurations; writes BENCH_<label>.json."
        ),
    )
    parser.add_argument(
        "--label", action="append", choices=PERF_LABELS,
        help="figure config to measure (repeatable; default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep (smaller node counts; used by CI)",
    )
    parser.add_argument(
        "--payload", choices=("cost-only", "model", "full"),
        default="cost-only",
        help="payload mode to benchmark (default: cost-only)",
    )
    parser.add_argument(
        "--legacy-path", action="store_true",
        help="benchmark the legacy heap-only scheduler (fast_path=False)",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for BENCH_<label>.json (default: cwd)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="measure only, write nothing"
    )
    parser.add_argument(
        "--gate", metavar="DIR",
        help=(
            "compare against committed BENCH files in DIR and exit "
            "non-zero on regression (events/s, see --gate-factor)"
        ),
    )
    parser.add_argument(
        "--gate-factor", type=float, default=2.0, metavar="X",
        help="allowed events/s slowdown before --gate fails (default: 2)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help=(
            "also store every fresh result into the content-addressed "
            "sweep cache in DIR (repro-sweep/service reads it back)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-point progress"
    )
    parser.add_argument(
        "--replay", action="store_true",
        help=(
            "measure replay-off vs cold-cache replay-on for every point "
            "and write BENCH_replay.json (virtual time must match)"
        ),
    )
    parser.add_argument(
        "--replay-gate", type=float, default=None, metavar="X",
        help=(
            "with --replay: fail when the aggregate warm-repetition "
            "speedup is below X (CI uses 5)"
        ),
    )
    parser.add_argument(
        "--profile", action="store_true",
        help=(
            "cProfile the sweep and write the top-25 cumulative table "
            "to PROFILE_perf.txt (CI artifact)"
        ),
    )
    args = parser.parse_args(argv)
    labels = args.label or list(PERF_LABELS)
    cache = sweeplib.ResultCache(args.cache) if args.cache else None
    if args.replay:
        doc = run_replay_compare(
            labels, quick=args.quick, payload=args.payload,
            fast_path=not args.legacy_path, progress=not args.quiet,
        )
        print(
            f"replay: {doc['total_wall_off_s']}s off -> "
            f"{doc['total_wall_on_s']}s on (x{doc['speedup']} speedup)",
            flush=True,
        )
        if not args.no_json:
            path = write_bench(doc, args.out_dir)
            if not args.quiet:
                print(f"wrote {path}", flush=True)
        if args.replay_gate and doc["speedup"] < args.replay_gate:
            print(
                f"PERF REGRESSION: replay speedup x{doc['speedup']} is "
                f"below the x{args.replay_gate:g} gate", file=sys.stderr,
            )
            return 1
        return 0
    if args.profile:
        path = profile_perf(
            labels, quick=args.quick, payload=args.payload,
            fast_path=not args.legacy_path, out_dir=args.out_dir,
        )
        print(f"wrote {path}", flush=True)
        return 0
    failures = []
    for label in labels:
        if not args.quiet:
            print(f"{label} ({'quick' if args.quick else 'full'}):",
                  flush=True)
        doc = run_perf(
            label, quick=args.quick, payload=args.payload,
            fast_path=not args.legacy_path, progress=not args.quiet,
            cache=cache,
        )
        summary = f"{label}: {doc['total_wall_s']}s, {doc['events_per_s']:.0f} events/s"
        if "speedup" in doc:
            summary += (f" ({doc['before_total_wall_s']}s before, "
                        f"x{doc['speedup']} speedup)")
        print(summary, flush=True)
        if not args.no_json:
            path = write_bench(doc, args.out_dir)
            if not args.quiet:
                print(f"wrote {path}", flush=True)
        if args.gate:
            err = check_gate(doc, args.gate, args.gate_factor)
            if err:
                failures.append(err)
    for err in failures:
        print(f"PERF REGRESSION: {err}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
