"""OSU-micro-benchmark-style latency measurement (paper §5).

The paper's micro experiments are "modified from the OSU benchmark and
averaged over 10000 executions": warm-up iterations, then a barrier-
delimited timed loop, reporting the mean per-operation latency of the
slowest rank.  The simulator is deterministic, so a handful of timed
repetitions converges exactly; we keep the warm-up because the first
iteration includes one-off costs (window allocation, hierarchy splits)
the paper explicitly excludes from timing.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core import HybridContext, SyncPolicy
from repro.machine.model import MachineSpec
from repro.machine.placement import Placement
from repro.mpi import run_program
from repro.mpi.datatypes import Bytes

__all__ = [
    "osu_latency_program",
    "osu_allgather_latency",
    "hybrid_allgather_program",
    "pure_allgather_program",
]

#: Timed repetitions.  The engine is deterministic, so one repetition
#: equals the mean of the paper's 10000; the warm-up still matters (it
#: absorbs the one-off hierarchy/window setup the paper excludes).
#: ``repro-bench --reps/--warmup`` overrides these module-wide, which is
#: why the programs below resolve ``None`` here at call time instead of
#: binding the values as signature defaults.
DEFAULT_REPS = 1
#: Warm-up repetitions excluded from timing (one-off setup amortization).
DEFAULT_WARMUP = 1


def osu_latency_program(mpi, op: Callable, reps: int | None = None,
                        warmup: int | None = None):
    """Rank program: time ``op(mpi)`` with the OSU protocol.

    *op* is a coroutine function taking the rank context.  Returns the
    mean per-operation latency on this rank.  ``reps``/``warmup`` default
    to :data:`DEFAULT_REPS`/:data:`DEFAULT_WARMUP` at call time.
    """
    if reps is None:
        reps = DEFAULT_REPS
    if warmup is None:
        warmup = DEFAULT_WARMUP
    comm = mpi.world
    for _ in range(warmup):
        yield from op(mpi)
    yield from comm.barrier()
    t0 = mpi.now
    for _ in range(reps):
        yield from op(mpi)
    elapsed = mpi.now - t0
    return elapsed / reps


def hybrid_allgather_program(mpi, nbytes_per_rank: int,
                             reps: int | None = None,
                             warmup: int | None = None,
                             sync: SyncPolicy | None = None,
                             pipelined: bool | None = None,
                             chunk_bytes: int = 128 * 1024,
                             pack_datatypes: bool = False):
    """Rank program measuring the paper's Hy_Allgather latency."""
    ctx = yield from HybridContext.create(mpi.world)
    if sync is not None:
        ctx.default_sync = sync
    buf = yield from ctx.allgather_buffer(nbytes_per_rank)

    def op(_mpi):
        yield from ctx.allgather(
            buf, pipelined=pipelined, chunk_bytes=chunk_bytes,
            pack_datatypes=pack_datatypes,
        )

    latency = yield from osu_latency_program(mpi, op, reps, warmup)
    return latency


def pure_allgather_program(mpi, nbytes_per_rank: int,
                           reps: int | None = None,
                           warmup: int | None = None,
                           irregular: bool = False):
    """Rank program measuring the naive pure-MPI Allgather latency."""
    payload = (
        mpi.payload(nbytes_per_rank)
        if mpi.data_mode
        else Bytes(nbytes_per_rank)
    )

    def op(_mpi):
        if irregular:
            yield from mpi.world.allgatherv(payload)
        else:
            yield from mpi.world.allgather(payload)

    latency = yield from osu_latency_program(mpi, op, reps, warmup)
    return latency


def osu_allgather_latency(
    spec: MachineSpec,
    placement: Placement,
    nbytes_per_rank: int,
    variant: str,
    reps: int | None = None,
    warmup: int | None = None,
    payload: str = "cost-only",
    fast_path: bool = True,
    policy=None,
    **options: Any,
) -> float:
    """Measure one (machine, placement, size, variant) point.

    *variant* is ``"hybrid"`` or ``"pure"``.  Returns the slowest rank's
    mean latency in seconds.  The job runs in ``cost-only`` payload mode
    by default — byte-for-byte the same virtual-time charges as
    ``"model"``/``"full"``, without materializing payload storage (the
    equivalence tests assert identical latencies across modes).
    *policy* overrides the collective selection policy (e.g. a
    ``ForcedSelection`` pinning the bridge-exchange variant).
    """
    if variant == "hybrid":
        program, kwargs = hybrid_allgather_program, {
            "nbytes_per_rank": nbytes_per_rank, "reps": reps,
            "warmup": warmup, **options,
        }
    elif variant == "pure":
        program, kwargs = pure_allgather_program, {
            "nbytes_per_rank": nbytes_per_rank, "reps": reps,
            "warmup": warmup, **options,
        }
    else:
        raise ValueError(f"unknown variant {variant!r}")
    result = run_program(
        spec, None, program,
        placement=placement,
        payload=payload,
        fast_path=fast_path,
        policy=policy,
        program_kwargs=kwargs,
    )
    return max(result.returns)
