"""OSU-micro-benchmark-style latency measurement (paper §5).

The paper's micro experiments are "modified from the OSU benchmark and
averaged over 10000 executions": warm-up iterations, then a timed loop
with the ranks realigned before every repetition, reporting the mean
per-operation latency of the slowest rank.  The realignment uses
:meth:`~repro.mpi.comm.Comm.align` — a zero-virtual-cost rendezvous
standing in for the real benchmark's inter-repetition barrier, so the
measured latency is the collective alone, not the barrier.  We keep the
warm-up because the first iteration includes one-off costs (window
allocation, hierarchy splits) the paper explicitly excludes from
timing.

Aligned repetitions make the timed loop a sequence of byte-identical
dispatches from simultaneous entries — exactly the shape the replay
cache (:mod:`repro.mpi.collectives.replay`) memoizes, so bench runs
default to ``replay="loop"`` and simulate each distinct collective
roughly twice regardless of the repetition count.  Virtual-time results
are bit-identical with replay off (the equivalence suite asserts it).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core import HybridContext, SyncPolicy
from repro.machine.model import MachineSpec
from repro.machine.placement import Placement
from repro.mpi import run_program
from repro.mpi.datatypes import Bytes

__all__ = [
    "osu_latency_program",
    "osu_allgather_latency",
    "hybrid_allgather_program",
    "pure_allgather_program",
]

#: Timed repetitions.  The engine is deterministic, so repetitions do
#: not average out noise — but a multi-rep loop exercises the steady
#: state (and the replay cache makes repetitions nearly free: every
#: aligned repetition after the first is a cache hit, so 50 reps cost
#: about as much simulation as 2).  ``repro-bench --reps/--warmup``
#: overrides these module-wide, which is why the programs below resolve
#: ``None`` here at call time instead of binding the values as
#: signature defaults.
DEFAULT_REPS = 50
#: Warm-up repetitions excluded from timing (one-off setup amortization).
DEFAULT_WARMUP = 1


def osu_latency_program(mpi, op: Callable, reps: int | None = None,
                        warmup: int | None = None):
    """Rank program: time ``op(mpi)`` with the OSU protocol.

    *op* is a coroutine function taking the rank context.  Returns the
    mean per-operation latency on this rank.  ``reps``/``warmup`` default
    to :data:`DEFAULT_REPS`/:data:`DEFAULT_WARMUP` at call time.
    """
    if reps is None:
        reps = DEFAULT_REPS
    if warmup is None:
        warmup = DEFAULT_WARMUP
    comm = mpi.world
    for _ in range(warmup):
        yield from op(mpi)
    # Align-delimited repetitions: every rep starts from a simultaneous
    # entry (replay-cacheable), and only the collective itself is timed.
    # Nothing but the align may sit between a rep's end and the next
    # align — replay's loop mode relies on that (see ReplaySession).
    total = 0.0
    for _ in range(reps):
        yield from comm.align()
        t0 = mpi.now
        yield from op(mpi)
        total += mpi.now - t0
    return total / reps


def hybrid_allgather_program(mpi, nbytes_per_rank: int,
                             reps: int | None = None,
                             warmup: int | None = None,
                             sync: SyncPolicy | None = None,
                             pipelined: bool | None = None,
                             chunk_bytes: int = 128 * 1024,
                             pack_datatypes: bool = False):
    """Rank program measuring the paper's Hy_Allgather latency."""
    ctx = yield from HybridContext.create(mpi.world)
    if sync is not None:
        ctx.default_sync = sync
    buf = yield from ctx.allgather_buffer(nbytes_per_rank)

    def op(_mpi):
        yield from ctx.allgather(
            buf, pipelined=pipelined, chunk_bytes=chunk_bytes,
            pack_datatypes=pack_datatypes,
        )

    latency = yield from osu_latency_program(mpi, op, reps, warmup)
    return latency


def pure_allgather_program(mpi, nbytes_per_rank: int,
                           reps: int | None = None,
                           warmup: int | None = None,
                           irregular: bool = False):
    """Rank program measuring the naive pure-MPI Allgather latency."""
    payload = (
        mpi.payload(nbytes_per_rank)
        if mpi.data_mode
        else Bytes(nbytes_per_rank)
    )

    def op(_mpi):
        if irregular:
            yield from mpi.world.allgatherv(payload)
        else:
            yield from mpi.world.allgather(payload)

    latency = yield from osu_latency_program(mpi, op, reps, warmup)
    return latency


def osu_allgather_latency(
    spec: MachineSpec,
    placement: Placement,
    nbytes_per_rank: int,
    variant: str,
    reps: int | None = None,
    warmup: int | None = None,
    payload: str = "cost-only",
    fast_path: bool = True,
    policy=None,
    replay: bool | str = "loop",
    **options: Any,
) -> float:
    """Measure one (machine, placement, size, variant) point.

    *variant* is ``"hybrid"`` or ``"pure"``.  Returns the slowest rank's
    mean latency in seconds.  The job runs in ``cost-only`` payload mode
    by default — byte-for-byte the same virtual-time charges as
    ``"model"``/``"full"``, without materializing payload storage (the
    equivalence tests assert identical latencies across modes).
    *policy* overrides the collective selection policy (e.g. a
    ``ForcedSelection`` pinning the bridge-exchange variant).
    *replay* defaults to the replay cache's loop mode — the aligned OSU
    loop is exactly the discipline it requires, and results are
    bit-identical to ``replay=False`` (the equivalence suite pins this).
    """
    if variant == "hybrid":
        program, kwargs = hybrid_allgather_program, {
            "nbytes_per_rank": nbytes_per_rank, "reps": reps,
            "warmup": warmup, **options,
        }
    elif variant == "pure":
        program, kwargs = pure_allgather_program, {
            "nbytes_per_rank": nbytes_per_rank, "reps": reps,
            "warmup": warmup, **options,
        }
    else:
        raise ValueError(f"unknown variant {variant!r}")
    result = run_program(
        spec, None, program,
        placement=placement,
        payload=payload,
        fast_path=fast_path,
        policy=policy,
        replay=replay,
        program_kwargs=kwargs,
    )
    return max(result.returns)
