"""Traced benchmark runs for the observability exports.

`repro-bench --trace-out/--metrics-out` runs one Fig 9-configuration
allgather (hybrid by default, pure-MPI via ``--trace-variant pure``)
with span tracing enabled and exports:

* a Chrome/Perfetto trace (``--trace-out``),
* JSON or Prometheus metrics (``--metrics-out``),
* a critical-path report on stdout.

The figures pipeline itself never exposes job traces (each figure point
builds its job internally); this module is the dedicated path for
inspecting *one* run phase-by-phase.
"""

from __future__ import annotations

from repro.analysis.critical_path import critical_path_report, format_report
from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen
from repro.mpi.runtime import JobResult, run_program
from repro.trace import Tracer

__all__ = ["run_traced_allgather"]


def run_traced_allgather(
    variant: str = "hybrid",
    nodes: int = 4,
    ppn: int = 8,
    elements: int = 512,
    detail: str = "phase",
    reps: int = 3,
    warmup: int = 1,
) -> tuple[JobResult, Tracer]:
    """Run one Fig 9-config allgather with tracing; returns (result, tracer).

    *variant* is ``"hybrid"`` (paper Fig 3b/4) or ``"pure"`` (the
    SMP-aware pure-MPI baseline); *elements* are float64 per rank, as in
    the paper's OSU-style sweeps.
    """
    from repro.bench.osu import (
        hybrid_allgather_program,
        pure_allgather_program,
    )

    if variant not in ("hybrid", "pure"):
        raise ValueError(f"variant must be 'hybrid' or 'pure', got {variant!r}")
    program = (
        hybrid_allgather_program if variant == "hybrid"
        else pure_allgather_program
    )
    tracer = Tracer(detail=detail)
    result = run_program(
        hazel_hen(nodes),
        None,
        program,
        placement=Placement.block(nodes, ppn),
        payload="cost-only",
        trace=tracer,
        program_kwargs={
            "nbytes_per_rank": elements * 8,
            "reps": reps,
            "warmup": warmup,
        },
    )
    return result, tracer


def render_critical_path(result: JobResult) -> str:
    """The critical-path report of a traced run, as text."""
    report = critical_path_report(result.trace or [],
                                  total_time=result.elapsed)
    return format_report(report)
