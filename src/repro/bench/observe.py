"""Traced benchmark runs for the observability exports.

`repro-bench --trace-out/--metrics-out` runs one Fig 9-configuration
allgather (hybrid by default, pure-MPI via ``--trace-variant pure``)
with span tracing enabled and exports:

* a Chrome/Perfetto trace (``--trace-out``),
* JSON or Prometheus metrics (``--metrics-out``),
* a critical-path report on stdout.

The figures pipeline itself never exposes job traces (each figure point
builds its job internally); this module is the dedicated path for
inspecting *one* run phase-by-phase.
"""

from __future__ import annotations

from repro.analysis.critical_path import critical_path_report, format_report
from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen, hazel_hen_2s
from repro.mpi.runtime import JobResult, run_program
from repro.trace import Tracer

__all__ = ["run_traced_allgather"]


def run_traced_allgather(
    variant: str = "hybrid",
    nodes: int = 4,
    ppn: int = 8,
    elements: int = 512,
    detail: str = "phase",
    reps: int = 3,
    warmup: int = 1,
    sockets: int = 1,
    socket_mode: str = "compact",
    transport: str = "shm_two_copy",
) -> tuple[JobResult, Tracer]:
    """Run one Fig 9-config allgather with tracing; returns (result, tracer).

    *variant* is ``"hybrid"`` (paper Fig 3b/4) or ``"pure"`` (the
    SMP-aware pure-MPI baseline); *elements* are float64 per rank, as in
    the paper's OSU-style sweeps.

    ``sockets=2`` switches to the honest two-socket Hazel Hen node with
    the given on-node *transport* (see :mod:`repro.machine.transport`)
    and maps slots to sockets per *socket_mode* — phase spans then carry
    a ``level`` tag so the exported trace shows which stages ran inside
    a socket, across sockets, or on the bridge network.
    """
    from repro.bench.osu import (
        hybrid_allgather_program,
        pure_allgather_program,
    )

    if variant not in ("hybrid", "pure"):
        raise ValueError(f"variant must be 'hybrid' or 'pure', got {variant!r}")
    if sockets == 1:
        spec = hazel_hen(nodes)
    elif sockets == 2:
        spec = hazel_hen_2s(nodes, transport=transport)
    else:
        raise ValueError(f"sockets must be 1 or 2, got {sockets!r}")
    program = (
        hybrid_allgather_program if variant == "hybrid"
        else pure_allgather_program
    )
    tracer = Tracer(detail=detail)
    result = run_program(
        spec,
        None,
        program,
        placement=Placement.block(nodes, ppn).with_socket_mode(socket_mode),
        payload="cost-only",
        trace=tracer,
        program_kwargs={
            "nbytes_per_rank": elements * 8,
            "reps": reps,
            "warmup": warmup,
        },
    )
    return result, tracer


def render_critical_path(result: JobResult) -> str:
    """The critical-path report of a traced run, as text."""
    report = critical_path_report(result.trace or [],
                                  total_time=result.elapsed)
    return format_report(report)
