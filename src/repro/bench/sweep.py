"""Sharded sweep orchestrator with a content-addressed result cache
(``repro-sweep``).

A *sweep* is a grid of independent measurement points — (machine, rank
population, message size, variant, algorithm, on-node transport) tuples
— answered either by the discrete-event simulator (``engine="sim"``) or
by the closed-form analytic model (``engine="model"``).  Both engines
are deterministic: the same point always produces the same latency, so
every answer is cacheable forever *as long as nothing it depends on
changed*.  This module provides the three pieces that exploit that:

* :class:`SweepPoint` / :func:`expand_spec` — the declarative point and
  the spec format that expands into a grid of them;
* :class:`ResultCache` — a content-addressed on-disk store keyed by
  :func:`cache_key`, a stable hash over the *resolved* machine spec
  (every hardware constant, sockets and transport included), the full
  point description, and the engine/model version — so cache entries
  invalidate automatically when any hash input changes;
* :func:`run_sweep` — the orchestrator: answers what it can from cache,
  shards the misses across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`, chunked), applies a
  per-point timeout with bounded retry, and returns a report with
  per-point records, structured failure records, and cache hit/miss
  counters (renderable via :func:`repro.metrics.sweep_metrics`).

``bench/figures.py`` (Fig 7/9/10 + scaling/transport extensions),
``bench/perf.py`` (the tracked wall-clock harness and the committed
``BENCH_*.json``) and ``bench/model.py`` (the analytic sweeps) all
execute their points through this module, so they share one cache
format and one execution path.  The JSON-over-HTTP service mode lives
in :mod:`repro.bench.service`; the user guide is ``docs/sweeps.md``.

Determinism guarantee: the simulator's virtual-time results are
independent of wall-clock, scheduling, and process boundaries, so a
sweep run with ``workers=8`` is bit-identical (latencies, event counts)
to the same sweep run serially — asserted by
``tests/bench/test_sweep.py``.

Usage::

    repro-sweep run --figure fig10 --cache .sweep-cache --workers 4
    repro-sweep run --spec sweep.json --cache .sweep-cache
    repro-sweep query --machine hazel_hen --nodes 4 --ppn 24 --elements 512
    repro-sweep stats --cache .sweep-cache
    repro-sweep gc --cache .sweep-cache --older-than 604800
    repro-sweep serve --cache .sweep-cache --port 8351
"""

from __future__ import annotations

import argparse
import concurrent.futures
import hashlib
import itertools
import json
import os
import sys
import time
from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable, Sequence

from repro.analysis.model import MODEL_VERSION, CostModel
from repro.machine.model import MachineSpec
from repro.machine.placement import Placement
from repro.machine import presets as _presets
from repro.simulator import ENGINE_VERSION

__all__ = [
    "MACHINES",
    "SweepPoint",
    "ResultCache",
    "cache_key",
    "point_name",
    "point_seed",
    "expand_spec",
    "figure_points",
    "run_point",
    "evaluate",
    "store_record",
    "run_sweep",
    "check_against_bench",
    "default_cache",
    "cached_latency_us",
    "main",
]

#: Machine presets addressable from a sweep spec, by name.  Each maps
#: ``name -> factory(num_nodes)``; a point's ``transport`` field (if
#: set) overrides the node transport of whatever the factory built.
MACHINES = {
    "hazel_hen": _presets.hazel_hen,
    "hazel_hen_flat": _presets.hazel_hen_flat,
    "hazel_hen_2s": _presets.hazel_hen_2s,
    "vulcan": _presets.vulcan,
    "testing": _presets.testing_machine,
}

#: Environment variable naming a cache directory that the figure
#: harness (`bench/figures.py`) transparently reads/writes through
#: :func:`default_cache`.
CACHE_ENV = "REPRO_SWEEP_CACHE"

#: Test hook: when set (seconds, float), :func:`run_point` sleeps that
#: long before executing — used by the timeout/retry tests to make a
#: point predictably slow.  Never set this outside tests.
TEST_DELAY_ENV = "REPRO_SWEEP_TEST_DELAY"

#: Replay-cache mode for latency-workload simulator points.  The OSU
#: latency loop is align-disciplined, so loop mode is sound and virtual
#: time is bit-identical either way; harnesses that need an honest
#: replay-off wall-clock (``repro-perf --replay``) patch this to
#: ``False`` for the baseline leg, in the ``osu.DEFAULT_REPS`` style.
#: Not part of :func:`cache_key` precisely because results are
#: bit-identical.
REPLAY_MODE: bool | str = "loop"


@dataclass(frozen=True)
class SweepPoint:
    """One independent measurement point of a sweep.

    Attributes
    ----------
    machine:
        Preset name (a key of :data:`MACHINES`).
    counts:
        Per-node rank counts in block order (``Placement.irregular``
        semantics); ``(24, 24, 16)`` is two full nodes plus one
        16-rank straggler.
    nbytes:
        Per-rank payload bytes.
    variant:
        ``"hybrid"`` (the paper's Hy_Allgather) or ``"pure"``
        (tuned pure-MPI allgather/allgatherv).
    engine:
        ``"sim"`` (discrete-event simulator) or ``"model"``
        (closed-form analytic model).
    op / algo:
        Explicit operation / algorithm.  For ``engine="sim"`` a set
        ``algo`` is forced through ``ForcedSelection``; for
        ``engine="model"`` both default from the variant
        (``hy_allgather/shared_window`` for hybrid) but a pure-variant
        model point must name its algorithm explicitly.
    transport:
        On-node transport override (``None`` keeps the preset's).
    socket_mode:
        Slot→socket mapping for multi-socket nodes
        (``compact``/``scatter``/``balanced``).
    payload / fast_path:
        Simulator execution mode knobs (virtual-time results are
        independent of both; they are still part of the cache key).
    workload:
        ``"latency"`` (blocking OSU latency, the default) or
        ``"overlap"`` (the OSU communication/computation overlap
        protocol of :mod:`repro.bench.overlap`; ``latency_us`` is then
        the *effective* — exposed — latency).
    compute_grain:
        Overlap workload only: the compute grain as a multiple of the
        blocking latency (1.0 = the OSU default).  Part of the cache
        key — two overlap points differing only in grain are distinct
        entries.

    >>> p = SweepPoint(machine="testing", counts=(2, 2), nbytes=64)
    >>> p.is_irregular
    False
    >>> SweepPoint(machine="testing", counts=(4, 2), nbytes=8).is_irregular
    True
    >>> p == SweepPoint.from_dict(p.to_dict())
    True
    """

    machine: str = "hazel_hen"
    counts: tuple = (24,)
    nbytes: int = 8
    variant: str = "hybrid"
    engine: str = "sim"
    op: str | None = None
    algo: str | None = None
    transport: str | None = None
    socket_mode: str = "compact"
    payload: str = "cost-only"
    fast_path: bool = True
    workload: str = "latency"
    compute_grain: float = 1.0

    def __post_init__(self):
        object.__setattr__(self, "counts", tuple(int(c) for c in self.counts))
        if self.machine not in MACHINES:
            raise ValueError(
                f"unknown machine {self.machine!r}; "
                f"known: {', '.join(sorted(MACHINES))}"
            )
        if self.variant not in ("hybrid", "pure"):
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.engine not in ("sim", "model"):
            raise ValueError(f"unknown engine {self.engine!r}")
        if not self.counts or min(self.counts) < 1:
            raise ValueError("counts must be non-empty positive ints")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.workload not in ("latency", "overlap"):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.compute_grain < 0:
            raise ValueError("compute_grain must be non-negative")

    # -- derived views ---------------------------------------------------
    @property
    def is_irregular(self) -> bool:
        """True when nodes carry unequal rank counts (→ allgatherv)."""
        return len(set(self.counts)) > 1

    @property
    def resolved_op(self) -> str:
        """The collective this point measures (explicit or derived)."""
        if self.op:
            return self.op
        if self.variant == "hybrid":
            return "hy_allgather"
        return "allgatherv" if self.is_irregular else "allgather"

    def spec(self) -> MachineSpec:
        """The resolved :class:`~repro.machine.model.MachineSpec`."""
        built = MACHINES[self.machine](len(self.counts))
        if self.transport and self.transport != built.node.transport:
            built = replace(
                built, node=replace(built.node, transport=self.transport)
            )
        return built

    def placement(self) -> Placement:
        """The rank→node (and slot→socket) map of this point."""
        pl = Placement.irregular(list(self.counts))
        if self.socket_mode != "compact":
            pl = pl.with_socket_mode(self.socket_mode)
        return pl

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON form (round-trips via :meth:`from_dict`)."""
        return {
            f.name: (list(v) if isinstance(v := getattr(self, f.name), tuple)
                     else v)
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SweepPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown point field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**doc)


def point_name(point: SweepPoint) -> str:
    """Stable human-readable point id, matching the committed
    ``BENCH_*.json`` key scheme for the canonical figure configs.

    Uniform populations render as ``n<nodes>x<ppn>``, irregular ones as
    ``r<ranks>``; message sizes as ``<n>el`` (8-byte elements) when the
    byte count divides evenly, else ``<n>B``.  Non-default axes
    (algorithm, transport, socket mode, model engine) append suffixes
    so grid points never collide.

    >>> point_name(SweepPoint(machine="hazel_hen", counts=(24,) * 4,
    ...                       nbytes=4096, variant="pure"))
    'n4x24/512el/pure'
    >>> point_name(SweepPoint(machine="hazel_hen", counts=(24, 16),
    ...                       nbytes=12, variant="hybrid", engine="model",
    ...                       algo="shared_window"))
    'r40/12B/hybrid/shared_window/model'
    """
    if point.is_irregular:
        shape = f"r{sum(point.counts)}"
    else:
        shape = f"n{len(point.counts)}x{point.counts[0]}"
    if point.nbytes % 8 == 0 and point.nbytes > 0:
        size = f"{point.nbytes // 8}el"
    else:
        size = f"{point.nbytes}B"
    name = f"{shape}/{size}/{point.variant}"
    if point.algo:
        name += f"/{point.algo}"
    if point.transport:
        name += f"/{point.transport}"
    if point.socket_mode != "compact":
        name += f"/{point.socket_mode}"
    if point.workload != "latency":
        name += f"/{point.workload}{point.compute_grain:g}"
    if point.engine != "sim":
        name += f"/{point.engine}"
    return name


def _canonical(doc: dict) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def point_seed(point: SweepPoint) -> int:
    """Deterministic 32-bit seed derived from the point content alone
    (no version inputs, so a seed survives engine upgrades).  Forwarded
    to stochastic extensions (noise models); the baseline simulator is
    deterministic and ignores it.

    >>> a = point_seed(SweepPoint(machine="testing", counts=(2,), nbytes=8))
    >>> a == point_seed(SweepPoint(machine="testing", counts=(2,), nbytes=8))
    True
    >>> 0 <= a < 2 ** 32
    True
    """
    digest = hashlib.sha256(_canonical(point.to_dict())).hexdigest()
    return int(digest[:8], 16)


def cache_key(point: SweepPoint) -> str:
    """Content address of a point's result: SHA-256 over the resolved
    machine description (every hardware constant, sockets/transport
    included), the topology kind, the full point description, the OSU
    repetition settings, and the executing engine's version.

    Any change to any input — a preset recalibration, a different
    transport, an engine bump — changes the key, so stale cache entries
    are simply never addressed again (see docs/sweeps.md for the
    invalidation rules).

    >>> p = SweepPoint(machine="testing", counts=(2, 2), nbytes=64)
    >>> cache_key(p) == cache_key(SweepPoint.from_dict(p.to_dict()))
    True
    >>> cache_key(p) != cache_key(replace(p, nbytes=128))
    True
    >>> cache_key(p) != cache_key(replace(p, transport="pip_direct"))
    True
    """
    from repro.bench import osu

    doc: dict[str, Any] = {
        "machine": point.spec().describe(),
        "point": point.to_dict(),
    }
    if point.engine == "model":
        doc["model_version"] = MODEL_VERSION
    else:
        doc["engine_version"] = ENGINE_VERSION
        doc["reps"] = osu.DEFAULT_REPS
        doc["warmup"] = osu.DEFAULT_WARMUP
    return hashlib.sha256(_canonical(doc)).hexdigest()


# ---------------------------------------------------------------------------
# Content-addressed result cache
# ---------------------------------------------------------------------------

class ResultCache:
    """Content-addressed on-disk store of point results.

    Entries live under ``<root>/objects/<k[:2]>/<k>.json`` where ``k``
    is the :func:`cache_key`; writes are atomic (temp file + rename) so
    concurrent sweeps sharing a cache directory are safe.  The instance
    tracks session hit/miss/put counters; :meth:`stats` adds the
    on-disk totals.
    """

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, "objects", key[:2], f"{key}.json")

    def get(self, key: str) -> dict | None:
        """The stored record for *key*, or ``None`` (counts hit/miss).
        A corrupt entry is treated as a miss (and overwritten by the
        next :meth:`put`)."""
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                doc = json.load(fh)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return doc

    def put(self, key: str, doc: dict) -> str:
        """Store *doc* under *key* atomically; returns the entry path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self.puts += 1
        return path

    def _entries(self) -> Iterable[str]:
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return
        for shard in sorted(os.listdir(objects)):
            shard_dir = os.path.join(objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for entry in sorted(os.listdir(shard_dir)):
                if entry.endswith(".json"):
                    yield os.path.join(shard_dir, entry)

    def stats(self) -> dict:
        """On-disk entry count/bytes plus this session's counters."""
        entries = 0
        nbytes = 0
        for path in self._entries():
            entries += 1
            nbytes += os.path.getsize(path)
        return {
            "root": self.root,
            "entries": entries,
            "bytes": nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
        }

    def gc(self, older_than: float | None = None,
           everything: bool = False) -> int:
        """Remove entries; returns how many were deleted.

        With *older_than* (seconds) only entries whose mtime is older
        than that age go; ``everything=True`` clears the store.  Stale
        entries (written under an older engine/model version or machine
        calibration) are never *addressed* again — their keys changed —
        so gc is about disk space, not correctness.
        """
        now = time.time()
        removed = 0
        for path in list(self._entries()):
            if not everything:
                if older_than is None:
                    continue
                if now - os.path.getmtime(path) <= older_than:
                    continue
            try:
                os.remove(path)
                removed += 1
            except FileNotFoundError:
                pass
        return removed


def default_cache() -> ResultCache | None:
    """The process-wide cache named by ``$REPRO_SWEEP_CACHE`` (used
    transparently by the figure harness), or ``None`` when unset."""
    root = os.environ.get(CACHE_ENV)
    return ResultCache(root) if root else None


# ---------------------------------------------------------------------------
# Point execution
# ---------------------------------------------------------------------------

def run_point(point: SweepPoint) -> dict:
    """Execute one point (no cache) and return its result record:
    ``latency_us``/``latency_s``, ``events`` (0 for the model engine),
    ``wall_s``, ``events_per_s``, ``engine``, ``seed``.

    Virtual-time fields depend only on the point (deterministic
    engines); ``wall_s``/``events_per_s`` are wall-clock measurements
    and vary run to run.
    """
    delay = os.environ.get(TEST_DELAY_ENV)
    if delay:
        time.sleep(float(delay))
    if point.engine == "model":
        return _run_model_point(point)
    return _run_sim_point(point)


def _run_sim_point(point: SweepPoint) -> dict:
    from repro.bench.osu import (
        hybrid_allgather_program,
        pure_allgather_program,
    )
    from repro.mpi import run_program
    from repro.mpi.collectives.registry import ForcedSelection

    policy = None
    if point.algo:
        policy = ForcedSelection({point.resolved_op: point.algo})
    if point.workload == "overlap":
        from repro.bench.overlap import overlap_program

        program: Any = overlap_program
        kwargs: dict[str, Any] = {
            "nbytes": point.nbytes, "variant": point.variant,
            "compute_factor": point.compute_grain,
        }
    else:
        program = (hybrid_allgather_program if point.variant == "hybrid"
                   else pure_allgather_program)
        kwargs = {"nbytes_per_rank": point.nbytes}
        if point.variant == "pure" and point.is_irregular:
            kwargs["irregular"] = True
    # The OSU latency loop is align-disciplined, so the replay cache's
    # loop mode applies (virtual time is bit-identical either way; see
    # tests/bench/test_replay_equivalence.py).  The overlap workload
    # interleaves non-blocking collectives with compute — replay's
    # quiescence predicate would veto every dispatch anyway, so skip
    # the session entirely.
    t0 = time.perf_counter()
    result = run_program(
        point.spec(), None, program,
        placement=point.placement(),
        payload=point.payload,
        fast_path=point.fast_path,
        policy=policy,
        replay=REPLAY_MODE if point.workload == "latency" else False,
        program_kwargs=kwargs,
    )
    wall = time.perf_counter() - t0
    extra: dict[str, float] = {}
    if point.workload == "overlap":
        t_pure = max(r["pure"] for r in result.returns)
        t_compute = max(r["compute"] for r in result.returns)
        t_overall = max(r["overall"] for r in result.returns)
        latency = max(t_overall - t_compute, 0.0)  # effective (exposed)
        extra = {
            "pure_us": t_pure * 1e6,
            "overall_us": t_overall * 1e6,
            "compute_us": t_compute * 1e6,
            "overlap_pct": round(
                100.0 * (1.0 - latency / t_pure) if t_pure > 0 else 0.0, 2
            ),
        }
    else:
        latency = max(result.returns)
    events = result.events_processed
    if result.replay_hits or result.replay_misses:
        extra["replay"] = {
            "hits": result.replay_hits,
            "misses": result.replay_misses,
            "events_saved": result.replay_events_saved,
        }
    return {
        "latency_us": latency * 1e6,
        "latency_s": latency,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall, 1) if wall > 0 else 0.0,
        "engine": "sim",
        "seed": point_seed(point),
        **extra,
    }


def _run_model_point(point: SweepPoint) -> dict:
    algo = point.algo
    op = point.resolved_op
    if algo is None:
        if op == "hy_allgather":
            algo = "shared_window"
        else:
            raise ValueError(
                f"model-engine point for op {op!r} needs an explicit algo"
            )
    t0 = time.perf_counter()
    model = CostModel(point.spec(), point.counts,
                      socket_mode=point.socket_mode)
    extra: dict[str, float] = {}
    if point.workload == "overlap":
        total = model.predict(op, algo, point.nbytes)
        floor = min(model.predict(op, algo, 1.0), total)
        grain = total * point.compute_grain
        latency = floor + max(0.0, (total - floor) - grain)
        extra = {
            "pure_us": total * 1e6,
            "compute_us": grain * 1e6,
            "overlap_pct": round(
                100.0 * (total - latency) / total if total > 0 else 0.0, 2
            ),
        }
    else:
        latency = model.predict(op, algo, point.nbytes)
    wall = time.perf_counter() - t0
    return {
        "latency_us": latency * 1e6,
        "latency_s": latency,
        "events": 0,
        "wall_s": round(wall, 6),
        "events_per_s": 0.0,
        "engine": "model",
        "seed": point_seed(point),
        **extra,
    }


def store_record(cache: ResultCache, point: SweepPoint,
                 record: dict) -> str:
    """Store a computed *record* for *point* under its content address;
    returns the cache key.  Used by every producer of point results —
    the orchestrator itself and ``repro-perf`` (which always computes,
    for honest wall-clocks, but warms the shared cache on the way)."""
    key = cache_key(point)
    cache.put(key, {
        "key": key,
        "name": point_name(point),
        "point": point.to_dict(),
        "machine_fingerprint": point.spec().fingerprint(),
        "created": time.time(),
        "result": record,
    })
    return key


def evaluate(point: SweepPoint,
             cache: ResultCache | None = None) -> tuple[dict, str]:
    """Answer one point from *cache* or by running it; returns
    ``(record, source)`` with source ``"cache"`` or ``"computed"``.
    Computed results are stored before returning."""
    if cache is None:
        return run_point(point), "computed"
    stored = cache.get(cache_key(point))
    if stored is not None:
        return stored["result"], "cache"
    record = run_point(point)
    store_record(cache, point, record)
    return record, "computed"


def cached_latency_us(machine: str, counts: Sequence[int], nbytes: int,
                      variant: str, cache: ResultCache | None = None,
                      **point_fields: Any) -> float:
    """Latency (µs) of one simulator point, through *cache* when given
    — or through :func:`default_cache` (``$REPRO_SWEEP_CACHE``) when
    not.  This is the entry point the figure definitions
    (`bench/figures.py`) measure their allgather points with."""
    point = SweepPoint(machine=machine, counts=tuple(counts),
                       nbytes=nbytes, variant=variant, **point_fields)
    record, _source = evaluate(
        point, cache if cache is not None else default_cache()
    )
    return record["latency_us"]


# ---------------------------------------------------------------------------
# Spec expansion
# ---------------------------------------------------------------------------

#: Spec keys that may be lists (swept axes).
_AXES = ("machine", "elements", "nbytes", "variant", "algo", "transport",
         "socket_mode", "ppn", "engine", "compute_grain")
_SCALARS = ("nodes", "counts", "payload", "fast_path", "op", "workload")


def _listify(value) -> list:
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def expand_spec(spec: dict) -> list[SweepPoint]:
    """Expand a declarative sweep spec into its point grid.

    The spec is a JSON object.  Population comes from either
    ``counts`` (explicit per-node rank list) or ``nodes`` + ``ppn``;
    message sizes from ``elements`` (8-byte elements) or ``nbytes``.
    ``machine``, ``elements``/``nbytes``, ``variant``, ``algo``,
    ``transport``, ``socket_mode``, ``ppn``, ``engine`` and
    ``compute_grain`` may be lists — the grid is their Cartesian
    product, in deterministic (input) order.  ``workload`` (scalar)
    switches every point to the overlap protocol.  Unknown keys are
    rejected.

    >>> pts = expand_spec({"machine": "testing", "nodes": 2, "ppn": 2,
    ...                    "elements": [1, 8], "variant": ["hybrid", "pure"]})
    >>> [point_name(p) for p in pts]
    ['n2x2/1el/hybrid', 'n2x2/1el/pure', 'n2x2/8el/hybrid', 'n2x2/8el/pure']
    >>> expand_spec({"machine": "testing", "nodes": 2, "ppn": 2,
    ...              "sizes": [1]})
    Traceback (most recent call last):
        ...
    ValueError: unknown sweep spec key(s): sizes
    """
    unknown = set(spec) - set(_AXES) - set(_SCALARS)
    if unknown:
        raise ValueError(
            f"unknown sweep spec key(s): {', '.join(sorted(unknown))}"
        )
    if "counts" in spec and ("ppn" in spec or "nodes" in spec):
        raise ValueError("give either counts or nodes+ppn, not both")
    if "elements" in spec and "nbytes" in spec:
        raise ValueError("give either elements or nbytes, not both")

    machines = _listify(spec.get("machine", "hazel_hen"))
    if "elements" in spec:
        sizes = [int(e) * 8 for e in _listify(spec["elements"])]
    else:
        sizes = [int(b) for b in _listify(spec.get("nbytes", 8))]
    variants = _listify(spec.get("variant", "hybrid"))
    algos = _listify(spec.get("algo", None))
    transports = _listify(spec.get("transport", None))
    socket_modes = _listify(spec.get("socket_mode", "compact"))
    engines = _listify(spec.get("engine", "sim"))
    grains = [float(g) for g in _listify(spec.get("compute_grain", 1.0))]
    if "counts" in spec:
        counts_axis = [tuple(int(c) for c in spec["counts"])]
    else:
        nodes = int(spec.get("nodes", 1))
        counts_axis = [
            (int(ppn),) * nodes for ppn in _listify(spec.get("ppn", 24))
        ]

    points = []
    for machine, counts, transport, socket_mode, nbytes, variant, algo, \
            engine, grain in itertools.product(
                machines, counts_axis, transports, socket_modes, sizes,
                variants, algos, engines, grains):
        points.append(SweepPoint(
            machine=machine, counts=counts, nbytes=nbytes, variant=variant,
            engine=engine, op=spec.get("op"), algo=algo, transport=transport,
            socket_mode=socket_mode,
            payload=spec.get("payload", "cost-only"),
            fast_path=bool(spec.get("fast_path", True)),
            workload=spec.get("workload", "latency"),
            compute_grain=grain,
        ))
    return points


def figure_points(label: str,
                  quick: bool = False) -> list[tuple[str, SweepPoint]]:
    """The canonical Fig 7/9/10 point lists — the single source of
    truth shared by ``repro-perf`` (which wall-clocks them into
    ``BENCH_<label>.json``) and ``repro-sweep run --figure`` (which
    answers them through the cache).  Names match the committed BENCH
    point keys.

    >>> [name for name, _ in figure_points("fig7")][:2]
    ['n1x24/1el/hybrid', 'n1x24/1el/pure']
    >>> len(figure_points("fig9", quick=True))
    6
    """
    points: list[tuple[str, SweepPoint]] = []
    if label == "fig7":
        for elements in (1, 1024, 16384):
            for variant in ("hybrid", "pure"):
                points.append((f"n1x24/{elements}el/{variant}", SweepPoint(
                    machine="hazel_hen", counts=(24,),
                    nbytes=elements * 8, variant=variant)))
    elif label == "fig9":
        nodes = 4 if quick else 16
        for ppn in (3, 12, 24):
            for variant in ("hybrid", "pure"):
                points.append((f"n{nodes}x{ppn}/512el/{variant}", SweepPoint(
                    machine="hazel_hen", counts=(ppn,) * nodes,
                    nbytes=512 * 8, variant=variant)))
    elif label == "fig10":
        counts = tuple([24] * 6 + [16]) if quick else tuple([24] * 42 + [16])
        ranks = sum(counts)
        for elements in (1, 1024, 16384):
            for variant in ("hybrid", "pure"):
                points.append((f"r{ranks}/{elements}el/{variant}", SweepPoint(
                    machine="hazel_hen", counts=counts,
                    nbytes=elements * 8, variant=variant)))
    else:
        raise ValueError(
            f"unknown figure label {label!r}; known: fig7, fig9, fig10"
        )
    return points


# ---------------------------------------------------------------------------
# The orchestrator
# ---------------------------------------------------------------------------

def _run_chunk_task(point_docs: list[dict]) -> list[dict]:
    """Worker-side entry: run a chunk of points, catching per-point
    errors so one bad point never poisons its chunk-mates."""
    out = []
    for doc in point_docs:
        try:
            out.append({"result": run_point(SweepPoint.from_dict(doc))})
        except Exception as exc:  # noqa: BLE001 — reported, not swallowed
            out.append({"error": f"{type(exc).__name__}: {exc}"})
    return out


def _chunks(seq: list, size: int) -> list[list]:
    return [seq[i:i + size] for i in range(0, len(seq), size)]


def run_sweep(points: Sequence[SweepPoint],
              cache: ResultCache | None = None,
              workers: int = 0,
              timeout: float | None = None,
              retries: int = 1,
              chunksize: int = 1,
              progress: bool = False) -> dict:
    """Run a sweep: cache lookups first, then the misses — serially
    (``workers=0``) or sharded over *workers* processes in chunks of
    *chunksize* points.

    Each miss gets ``1 + retries`` attempts; a chunk that exceeds
    *timeout* seconds per point (workers > 0 only — a serial run cannot
    preempt itself) or raises is retried and, when attempts run out,
    recorded as a **structured failure record** in the report instead
    of crashing the sweep.  Results are written back to *cache* in the
    parent process.

    Returns the sweep report::

        {"points": {name: record},        # input order
         "failures": [{"name", "point", "error", "attempts"}, ...],
         "counters": {"points", "hits", "misses", "computed",
                      "failed", "retried"},
         "cache": cache.stats() | None, "workers": ..., "wall_s": ...}

    Determinism: virtual-time fields of every record are independent of
    *workers* — a parallel run is bit-identical to a serial one.
    """
    t0 = time.perf_counter()
    names = [point_name(p) for p in points]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"sweep points collide: {', '.join(dupes)}")

    records: dict[str, dict] = {}
    sources: dict[str, str] = {}
    failures: list[dict] = []
    retried = 0

    # Phase 1: answer what the cache already holds.
    misses: list[tuple[str, SweepPoint]] = []
    for name, point in zip(names, points):
        stored = cache.get(cache_key(point)) if cache is not None else None
        if stored is not None:
            records[name] = stored["result"]
            sources[name] = "cache"
            if progress:
                print(f"  {name}: cache hit", flush=True)
        else:
            misses.append((name, point))

    # Phase 2: compute the misses.
    def _store(name: str, point: SweepPoint, record: dict) -> None:
        records[name] = record
        sources[name] = "computed"
        if cache is not None:
            store_record(cache, point, record)
        if progress:
            print(f"  {name}: computed ({record['wall_s']}s wall)",
                  flush=True)

    if workers <= 0:
        for name, point in misses:
            attempts = 0
            while True:
                attempts += 1
                try:
                    _store(name, point, run_point(point))
                    break
                except Exception as exc:  # noqa: BLE001
                    if attempts <= retries:
                        retried += 1
                        continue
                    failures.append({
                        "name": name, "point": point.to_dict(),
                        "error": f"{type(exc).__name__}: {exc}",
                        "attempts": attempts,
                    })
                    break
    elif misses:
        pending = list(misses)
        attempts = {name: 0 for name, _ in misses}
        round_no = 0
        while pending and round_no <= retries:
            if round_no > 0:
                retried += len(pending)
            # Retry rounds run one point per task to isolate the slow one.
            size = chunksize if round_no == 0 else 1
            chunks = _chunks(pending, max(1, size))
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            )
            futures = [
                (pool.submit(_run_chunk_task,
                             [p.to_dict() for _n, p in chunk]), chunk)
                for chunk in chunks
            ]
            next_round: list[tuple[str, SweepPoint]] = []
            timed_out = False
            for future, chunk in futures:
                chunk_timeout = (
                    None if timeout is None else timeout * len(chunk)
                )
                for _name, _point in chunk:
                    attempts[_name] += 1
                try:
                    results = future.result(timeout=chunk_timeout)
                except concurrent.futures.TimeoutError:
                    timed_out = True
                    next_round.extend(chunk)
                    continue
                except Exception as exc:  # noqa: BLE001 — pool breakage
                    for name, point in chunk:
                        next_round.append((name, point))
                    continue
                for (name, point), outcome in zip(chunk, results):
                    if "result" in outcome:
                        _store(name, point, outcome["result"])
                    else:
                        next_round.append((name, point))
            # A timed-out worker may still be running; abandon the pool
            # without waiting so retries start on fresh processes.
            pool.shutdown(wait=not timed_out, cancel_futures=True)
            pending = next_round
            round_no += 1
        for name, point in pending:
            failures.append({
                "name": name, "point": point.to_dict(),
                "error": "timeout" if timeout is not None else "error",
                "attempts": attempts[name],
            })

    hits = sum(1 for s in sources.values() if s == "cache")
    computed = sum(1 for s in sources.values() if s == "computed")
    report = {
        "points": {n: records[n] for n in names if n in records},
        "sources": {n: sources[n] for n in names if n in sources},
        "failures": failures,
        "counters": {
            "points": len(points),
            "hits": hits,
            "misses": len(misses),
            "computed": computed,
            "failed": len(failures),
            "retried": retried,
        },
        "cache": cache.stats() if cache is not None else None,
        "workers": workers,
        "wall_s": round(time.perf_counter() - t0, 4),
    }
    return report


# ---------------------------------------------------------------------------
# BENCH conformance
# ---------------------------------------------------------------------------

def check_against_bench(report: dict, label: str,
                        bench_dir: str = ".") -> list[str]:
    """Compare a sweep report's virtual-time results with the committed
    ``BENCH_<label>.json``; returns a list of mismatch strings (empty =
    identical ``latency_us``/``events`` on every shared point)."""
    path = os.path.join(bench_dir, f"BENCH_{label}.json")
    if not os.path.exists(path):
        return [f"no committed BENCH_{label}.json in {bench_dir}"]
    with open(path, encoding="utf-8") as fh:
        bench = json.load(fh)
    problems = []
    for name, ref in bench.get("points", {}).items():
        mine = report["points"].get(name)
        if mine is None:
            problems.append(f"{name}: missing from the sweep report")
            continue
        for field_name in ("latency_us", "events"):
            if mine.get(field_name) != ref.get(field_name):
                problems.append(
                    f"{name}: {field_name} {mine.get(field_name)!r} != "
                    f"committed {ref.get(field_name)!r}"
                )
    return problems


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _point_from_args(args) -> SweepPoint:
    if args.counts:
        counts = tuple(int(c) for c in args.counts.split(","))
    else:
        counts = (args.ppn,) * args.nodes
    nbytes = args.nbytes if args.nbytes is not None else args.elements * 8
    return SweepPoint(
        machine=args.machine, counts=counts, nbytes=nbytes,
        variant=args.variant, engine=args.engine, algo=args.algo,
        transport=args.transport, socket_mode=args.socket_mode,
        workload=args.workload, compute_grain=args.compute_grain,
    )


def _cmd_run(args) -> int:
    cache = ResultCache(args.cache) if args.cache else None
    if args.figure:
        named = figure_points(args.figure, quick=args.quick)
        points = [p for _n, p in named]
    else:
        with open(args.spec, encoding="utf-8") as fh:
            points = expand_spec(json.load(fh))
    report = run_sweep(
        points, cache=cache, workers=args.workers, timeout=args.timeout,
        retries=args.retries, chunksize=args.chunksize,
        progress=not args.quiet,
    )
    c = report["counters"]
    hit_rate = c["hits"] / c["points"] if c["points"] else 0.0
    print(f"{c['points']} points: {c['hits']} cache hits "
          f"({hit_rate:.0%}), {c['computed']} computed, "
          f"{c['failed']} failed, {report['wall_s']}s wall", flush=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}", flush=True)
    rc = 1 if report["failures"] else 0
    if args.check_bench and args.figure:
        problems = check_against_bench(report, args.figure, args.check_bench)
        for problem in problems:
            print(f"BENCH MISMATCH: {problem}", file=sys.stderr)
        if problems:
            rc = 1
        else:
            print(f"matches committed BENCH_{args.figure}.json "
                  "(latency_us and events identical)", flush=True)
    return rc


def _cmd_query(args) -> int:
    cache = ResultCache(args.cache) if args.cache else None
    point = _point_from_args(args)
    key = cache_key(point)
    if args.cache_only:
        stored = cache.get(key) if cache is not None else None
        if stored is None:
            print(f"MISS {key}", file=sys.stderr)
            return 1
        record, source = stored["result"], "cache"
    else:
        record, source = evaluate(point, cache)
    print(json.dumps({
        "name": point_name(point), "key": key, "source": source,
        "result": record,
    }, indent=1, sort_keys=True))
    return 0


def _cmd_stats(args) -> int:
    print(json.dumps(ResultCache(args.cache).stats(), indent=1,
                     sort_keys=True))
    return 0


def _cmd_gc(args) -> int:
    cache = ResultCache(args.cache)
    removed = cache.gc(older_than=args.older_than, everything=args.all)
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_serve(args) -> int:
    from repro.bench.service import serve

    serve(cache_dir=args.cache, host=args.host, port=args.port)
    return 0


def _add_point_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default="hazel_hen",
                        choices=sorted(MACHINES))
    parser.add_argument("--nodes", type=int, default=1)
    parser.add_argument("--ppn", type=int, default=24)
    parser.add_argument("--counts", default=None,
                        help="per-node rank counts, comma separated "
                             "(overrides --nodes/--ppn)")
    parser.add_argument("--elements", type=int, default=1,
                        help="8-byte elements per rank")
    parser.add_argument("--nbytes", type=int, default=None,
                        help="bytes per rank (overrides --elements)")
    parser.add_argument("--variant", default="hybrid",
                        choices=("hybrid", "pure"))
    parser.add_argument("--engine", default="sim", choices=("sim", "model"))
    parser.add_argument("--algo", default=None)
    parser.add_argument("--transport", default=None)
    parser.add_argument("--socket-mode", dest="socket_mode",
                        default="compact",
                        choices=Placement.SOCKET_MODES)
    parser.add_argument("--workload", default="latency",
                        choices=("latency", "overlap"))
    parser.add_argument("--compute-grain", dest="compute_grain",
                        type=float, default=1.0,
                        help="overlap workload: compute grain as a "
                             "multiple of the blocking latency")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description=("Sharded sweep orchestrator with a content-addressed "
                     "result cache (see docs/sweeps.md)."),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a sweep (spec file or figure)")
    group = p_run.add_mutually_exclusive_group(required=True)
    group.add_argument("--spec", help="sweep spec JSON file")
    group.add_argument("--figure", choices=("fig7", "fig9", "fig10"),
                       help="a canonical figure config")
    p_run.add_argument("--quick", action="store_true",
                       help="reduced figure grid (CI smoke)")
    p_run.add_argument("--cache", default=None, metavar="DIR")
    p_run.add_argument("--workers", type=int, default=0,
                       help="worker processes (0 = serial, the default)")
    p_run.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-point timeout, seconds (workers > 0)")
    p_run.add_argument("--retries", type=int, default=1,
                       help="extra attempts per failed point (default 1)")
    p_run.add_argument("--chunksize", type=int, default=1,
                       help="points per worker task (default 1)")
    p_run.add_argument("--out", default=None, help="write the report here")
    p_run.add_argument("--check-bench", metavar="DIR", default=None,
                       help="verify virtual-time results against the "
                            "committed BENCH_<figure>.json in DIR")
    p_run.add_argument("--quiet", action="store_true")
    p_run.set_defaults(fn=_cmd_run)

    p_query = sub.add_parser("query", help="answer one point")
    _add_point_args(p_query)
    p_query.add_argument("--cache", default=None, metavar="DIR")
    p_query.add_argument("--cache-only", action="store_true",
                         help="exit 1 on a cache miss instead of computing")
    p_query.set_defaults(fn=_cmd_query)

    p_stats = sub.add_parser("stats", help="cache statistics")
    p_stats.add_argument("--cache", required=True, metavar="DIR")
    p_stats.set_defaults(fn=_cmd_stats)

    p_gc = sub.add_parser("gc", help="delete cache entries")
    p_gc.add_argument("--cache", required=True, metavar="DIR")
    p_gc.add_argument("--older-than", type=float, default=None, metavar="S",
                      help="only entries older than S seconds")
    p_gc.add_argument("--all", action="store_true", help="clear the store")
    p_gc.set_defaults(fn=_cmd_gc)

    p_serve = sub.add_parser("serve", help="JSON-over-HTTP service mode")
    p_serve.add_argument("--cache", default=None, metavar="DIR")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8351)
    p_serve.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
