"""Analytic-model bench CLI (``repro-model``).

Two subjects, both priced entirely by :mod:`repro.analysis.model` —
no simulation runs, which is what makes 10k–1M-rank sweeps take
milliseconds:

* ``sweep`` — Fig-7/9/10-style hybrid-vs-pure allgather crossover maps
  at rank counts the DES cannot reach (default 10k/65k/1M ranks),
  printing per-size latencies, the crossover message sizes, and the
  wall-clock the sweep itself took;
* ``report`` — divergence of the model against the committed
  ``BENCH_<label>.json`` latencies at the repository root, written as a
  JSON artifact for CI;
* ``transports`` — the socket-tier crossover map: two- vs three-level
  Hy_Allgather on the 2-socket preset under every registered on-node
  transport (the model-side companion of the DES-measured
  ``BENCH_transport_crossover.json``).

Usage::

    repro-model sweep                   # 10k/65k/1M-rank crossover maps
    repro-model sweep --ranks 4096
    repro-model report --out model_divergence.json
    repro-model transports --out transport_crossover.json
    repro-model                         # sweep + report + transports
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Any

from repro.analysis.model import CostModel, crossover_points
from repro.bench import sweep as sweeplib
from repro.machine.presets import hazel_hen, hazel_hen_2s, vulcan
from repro.machine.transport import TRANSPORTS
from repro.mpi.collectives.tuning import tuning_for_machine

__all__ = ["model_best", "pure_candidates", "hybrid_candidates",
           "sweep_config", "run_sweep", "run_report", "run_transports",
           "main"]

#: Message sizes swept (bytes per rank), eager through pipeline regime.
SWEEP_SIZES = tuple(8 * (1 << k) for k in range(0, 15))  # 8 B .. 128 KiB

#: Fig-10-style irregular populations at simulator-unreachable scale.
SWEEP_RANKS = (10_000, 65_536, 1_000_000)


def _fig10_counts(nranks: int, ppn: int = 24) -> list[int]:
    """Fig 10's irregular population at *nranks*: full nodes of *ppn*
    ranks plus one straggler node holding the remainder."""
    full, rem = divmod(nranks, ppn)
    return [ppn] * full + ([rem] if rem else [])


def _priced(model: CostModel, op: str, algo: str, nbytes: int,
            cache: "sweeplib.ResultCache | None", *,
            machine: str, counts, variant: str,
            socket_mode: str = "compact",
            transport: str | None = None) -> float:
    """One candidate's model latency (seconds) — straight from the
    model when *cache* is ``None``, else through the sweep cache as a
    content-addressed ``engine="model"`` point (so re-running a sweep
    against the same cache answers every candidate without pricing)."""
    if cache is None:
        return model.predict(op, algo, nbytes)
    point = sweeplib.SweepPoint(
        machine=machine, counts=tuple(counts), nbytes=int(nbytes),
        variant=variant, engine="model", op=op, algo=algo,
        transport=transport, socket_mode=socket_mode,
    )
    record, _source = sweeplib.evaluate(point, cache)
    return record["latency_s"]


def model_best(model: CostModel, op: str, nbytes: float,
               candidates: list[str],
               cache: "sweeplib.ResultCache | None" = None,
               **point_kwargs) -> tuple[str, float]:
    """(algo, seconds) minimizing the model over *candidates*.

    With *cache* set, every candidate is priced through the sweep
    cache; *point_kwargs* (machine, counts, variant, ...) identify the
    configuration for the cache key.
    """
    best = None
    for name in candidates:
        if cache is None:
            t = model.predict(op, name, nbytes)
        else:
            t = _priced(model, op, name, nbytes, cache, **point_kwargs)
        if best is None or t < best[1]:
            best = (name, t)
    assert best is not None
    return best


def pure_candidates(model: CostModel, irregular: bool) -> list[str]:
    """Structurally-applicable pure-MPI allgather(v) algorithms."""
    hier = model.N > 1 and model.q > 1
    if irregular:
        cands = ["bruck_v", "ring_v", "gather_bcast"]
        if hier:
            cands.append("smp_hierarchical")
        return cands
    cands = ["bruck", "ring"]
    if model.p > 0 and model.p & (model.p - 1) == 0:
        cands.append("recursive_doubling")
    if hier:
        cands += ["smp_hierarchical", "multileader"]
    return cands


def hybrid_candidates(model: CostModel) -> list[str]:
    """Structurally-applicable hybrid (Hy_Allgather) algorithms."""
    cands = ["shared_window"]
    if model.N > 1:
        cands.append("pipelined_ring")
    return cands


def _table_pure_algo(model: CostModel, irregular: bool,
                     nbytes: float) -> str:
    """The allgather(v) algorithm ``TableSelection`` — the default DES
    policy the committed BENCH numbers were measured under — picks."""
    tuning = model.tuning
    total = nbytes * model.p
    smp = tuning.smp_aware and model.N > 1 and model.q > 1
    if smp:
        return "smp_hierarchical"
    if irregular:
        if total <= tuning.allgatherv_bruck_max_total:
            return "bruck_v"
        return "ring_v"
    if (model.p & (model.p - 1) == 0
            and total <= tuning.allgather_rd_max_total):
        return "recursive_doubling"
    if total <= tuning.allgather_bruck_max_total:
        return "bruck"
    return "ring"


def sweep_config(nranks: int, machine: str = "hazel_hen"):
    """The Fig-10-style (spec, counts) pair at *nranks* total ranks."""
    counts = _fig10_counts(nranks)
    factory = {"hazel_hen": hazel_hen, "vulcan": vulcan}[machine]
    return factory(len(counts)), counts


def run_sweep(ranks=SWEEP_RANKS, sizes=SWEEP_SIZES,
              machine: str = "hazel_hen",
              cache: "sweeplib.ResultCache | None" = None
              ) -> dict[str, Any]:
    """Crossover maps: per rank count, hybrid-vs-pure latency per size
    and the message sizes where the curves cross.  With *cache* set,
    every candidate latency goes through the content-addressed sweep
    cache (``engine="model"`` points)."""
    t0 = time.perf_counter()
    out: dict[str, Any] = {"machine": machine, "maps": {}}
    for nranks in ranks:
        spec, counts = sweep_config(nranks, machine)
        model = CostModel(spec, counts,
                          tuning=tuning_for_machine(spec.name))
        irregular = len(set(counts)) > 1
        op = "allgatherv" if irregular else "allgather"
        rows = []
        pure_lat, hy_lat = [], []
        for nbytes in sizes:
            pure = model_best(model, op, nbytes,
                              pure_candidates(model, irregular),
                              cache=cache, machine=machine,
                              counts=counts, variant="pure")
            hy = model_best(model, "hy_allgather", nbytes,
                            hybrid_candidates(model),
                            cache=cache, machine=machine,
                            counts=counts, variant="hybrid")
            pure_lat.append(pure[1])
            hy_lat.append(hy[1])
            rows.append({
                "nbytes": nbytes,
                "pure_algo": pure[0], "pure_s": pure[1],
                "hybrid_algo": hy[0], "hybrid_s": hy[1],
                "speedup": pure[1] / hy[1],
            })
        out["maps"][str(nranks)] = {
            "nodes": len(counts),
            "op": op,
            "rows": rows,
            "crossover_nbytes": crossover_points(
                [float(s) for s in sizes], hy_lat, pure_lat),
        }
    out["wall_s"] = round(time.perf_counter() - t0, 4)
    return out


def _parse_point(label: str, key: str) -> tuple[list[int], int, str]:
    """(per-node counts, nbytes, variant) of one BENCH point key."""
    shape, el, variant = key.split("/")
    nbytes = int(el[:-2]) * 8
    if shape.startswith("n"):
        nodes, ppn = shape[1:].split("x")
        counts = [int(ppn)] * int(nodes)
    elif shape.startswith("r"):
        # Fig 10 population: full 24-rank nodes + one 16-rank node.
        ranks = int(shape[1:])
        full, rem = divmod(ranks - 16, 24)
        if rem:
            raise ValueError(f"unrecognized fig10 shape {shape!r}")
        counts = [24] * full + [16]
    else:
        raise ValueError(f"unrecognized point key {key!r}")
    return counts, nbytes, variant


def run_report(bench_dir: str = ".",
               labels=("fig7", "fig9", "fig10")) -> dict[str, Any]:
    """Model-vs-BENCH divergence for every committed point."""
    report: dict[str, Any] = {"points": {}, "missing": []}
    divs = []
    for label in labels:
        path = os.path.join(bench_dir, f"BENCH_{label}.json")
        if not os.path.exists(path):
            report["missing"].append(label)
            continue
        with open(path) as fh:
            bench = json.load(fh)
        for key, point in bench.get("points", {}).items():
            counts, nbytes, variant = _parse_point(label, key)
            spec = hazel_hen(len(counts))
            model = CostModel(spec, counts,
                              tuning=tuning_for_machine(spec.name))
            irregular = len(set(counts)) > 1
            if variant == "hybrid":
                # The OSU hybrid program dispatches shared_window.
                model_s = model.predict("hy_allgather", "shared_window",
                                        nbytes)
            else:
                op = "allgatherv" if irregular else "allgather"
                algo = _table_pure_algo(model, irregular, nbytes)
                model_s = model.predict(op, algo, nbytes)
            bench_s = point["latency_us"] / 1e6
            div = (abs(model_s - bench_s) / bench_s
                   if bench_s > 0 else math.inf)
            divs.append(div)
            report["points"][f"{label}/{key}"] = {
                "bench_us": round(bench_s * 1e6, 3),
                "model_us": round(model_s * 1e6, 3),
                "divergence": round(div, 4),
            }
    if divs:
        divs.sort()
        report["median_divergence"] = round(divs[len(divs) // 2], 4)
        report["worst_divergence"] = round(divs[-1], 4)
    return report


def run_transports(sizes=SWEEP_SIZES, nodes: int = 4, ppn: int = 24,
                   socket_mode: str = "compact",
                   cache: "sweeplib.ResultCache | None" = None
                   ) -> dict[str, Any]:
    """Two- vs three-level Hy_Allgather crossover on the 2-socket
    preset, per registered on-node transport, priced by the model.

    For each transport the three-level exchange (per-socket parallel
    bridges) is compared against the two-level one and against the flat
    single-pool node model; ``crossover_nbytes`` locates the message
    sizes where three-level starts winning.
    """
    t0 = time.perf_counter()
    counts = [ppn] * nodes
    flat_model = CostModel(hazel_hen(nodes), counts)
    out: dict[str, Any] = {
        "nodes": nodes, "ppn": ppn, "socket_mode": socket_mode,
        "machine": "hazel_hen_2s", "transports": {},
    }
    for transport in sorted(TRANSPORTS):
        spec = hazel_hen_2s(nodes, transport=transport)
        model = CostModel(spec, counts, socket_mode=socket_mode)
        rows = []
        t2, t3 = [], []
        kwargs = dict(machine="hazel_hen_2s", counts=counts,
                      variant="hybrid", socket_mode=socket_mode,
                      transport=transport)
        for nbytes in sizes:
            two = _priced(model, "hy_allgather", "shared_window",
                          nbytes, cache, **kwargs)
            three = _priced(model, "hy_allgather", "shared_window_3l",
                            nbytes, cache, **kwargs)
            t2.append(two)
            t3.append(three)
            rows.append({
                "nbytes": nbytes,
                "flat_s": _priced(
                    flat_model, "hy_allgather", "shared_window", nbytes,
                    cache, machine="hazel_hen", counts=counts,
                    variant="hybrid"),
                "two_level_s": two,
                "three_level_s": three,
                "speedup": two / three,
            })
        out["transports"][transport] = {
            "rows": rows,
            "crossover_nbytes": crossover_points(
                [float(s) for s in sizes], t3, t2),
        }
    out["wall_s"] = round(time.perf_counter() - t0, 4)
    return out


def _print_sweep(sweep: dict[str, Any]) -> None:
    for nranks, m in sweep["maps"].items():
        print(f"\n== {int(nranks):,} ranks on {m['nodes']:,} nodes "
              f"({sweep['machine']}, {m['op']}) ==")
        print(f"{'bytes/rank':>10}  {'pure':>12}  {'hybrid':>12}"
              f"  {'speedup':>8}  algos")
        for row in m["rows"]:
            print(f"{row['nbytes']:>10}  {row['pure_s']*1e6:>10.1f}us"
                  f"  {row['hybrid_s']*1e6:>10.1f}us"
                  f"  {row['speedup']:>7.2f}x"
                  f"  {row['pure_algo']} vs {row['hybrid_algo']}")
        xs = m["crossover_nbytes"]
        if xs:
            pretty = ", ".join(f"{x:,.0f} B" for x in xs)
            print(f"crossover (hybrid vs pure) at: {pretty}")
        else:
            print("no crossover in the swept size range")
    print(f"\nswept {sum(len(m['rows']) for m in sweep['maps'].values())}"
          f" points in {sweep['wall_s']:.3f}s wall-clock")


def _print_transports(doc: dict[str, Any]) -> None:
    print(f"\n== 2- vs 3-level Hy_Allgather on {doc['machine']} "
          f"({doc['nodes']}x{doc['ppn']} ranks, "
          f"{doc['socket_mode']} mapping) ==")
    for transport, m in doc["transports"].items():
        print(f"\n-- transport: {transport} --")
        print(f"{'bytes/rank':>10}  {'2-level':>12}  {'3-level':>12}"
              f"  {'speedup':>8}")
        for row in m["rows"]:
            print(f"{row['nbytes']:>10}  {row['two_level_s']*1e6:>10.1f}us"
                  f"  {row['three_level_s']*1e6:>10.1f}us"
                  f"  {row['speedup']:>7.2f}x")
        xs = m["crossover_nbytes"]
        if xs:
            pretty = ", ".join(f"{x:,.0f} B" for x in xs)
            print(f"3-level overtakes 2-level at: {pretty}")
        else:
            print("no crossover in the swept size range")


def _print_report(report: dict[str, Any]) -> None:
    if report["points"]:
        print(f"\n== model vs committed BENCH latencies ==")
        for key, row in report["points"].items():
            print(f"{key:32s} bench {row['bench_us']:>10.2f}us  "
                  f"model {row['model_us']:>10.2f}us  "
                  f"div {row['divergence']:>7.1%}")
        print(f"median divergence {report['median_divergence']:.1%}, "
              f"worst {report['worst_divergence']:.1%}")
    for label in report["missing"]:
        print(f"BENCH_{label}.json not found — skipped")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-model", description=__doc__.split("\n\n")[0],
    )
    parser.add_argument("command", nargs="?", default="all",
                        choices=("sweep", "report", "transports", "all"))
    parser.add_argument("--ranks", type=int, nargs="*", default=None,
                        help="rank counts to sweep (default 10k/65k/1M)")
    parser.add_argument("--machine", default="hazel_hen",
                        choices=("hazel_hen", "vulcan"))
    parser.add_argument("--bench-dir", default=".",
                        help="directory holding BENCH_<label>.json")
    parser.add_argument("--out", default=None,
                        help="write the combined JSON document here")
    parser.add_argument("--cache", default=None, metavar="DIR",
                        help="answer candidate latencies through the "
                             "content-addressed sweep cache in DIR")
    args = parser.parse_args(argv)

    cache = sweeplib.ResultCache(args.cache) if args.cache else None
    doc: dict[str, Any] = {}
    if args.command in ("sweep", "all"):
        ranks = tuple(args.ranks) if args.ranks else SWEEP_RANKS
        doc["sweep"] = run_sweep(ranks=ranks, machine=args.machine,
                                 cache=cache)
        _print_sweep(doc["sweep"])
    if args.command in ("report", "all"):
        doc["report"] = run_report(bench_dir=args.bench_dir)
        _print_report(doc["report"])
    if args.command in ("transports", "all"):
        doc["transports"] = run_transports(cache=cache)
        _print_transports(doc["transports"])
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
