"""Definitions of every regenerable paper artifact (figures + ablations).

Paper → figure id map:

========  =====================================================
fig7      Single full node, Hy_Allgather vs Allgather (Fig 7)
fig8a     One rank/node on Vulcan/OpenMPI (Fig 8a)
fig8b     One rank/node on Hazel Hen/Cray MPI (Fig 8b)
fig9a     64 nodes, ppn sweep, 512 elements (Fig 9a)
fig9b     64 nodes, ppn sweep, 16384 elements (Fig 9b)
fig10     Irregularly populated nodes, 1024 cores (Fig 10)
fig11a-d  SUMMA per-core blocks 8/64/128/256 (Fig 11a-d)
fig12     BPMF strong scaling ratio (Fig 12)
abl_sync       Barrier vs shared-flag synchronization (§6)
abl_pipeline   Plain vs pipelined large-message exchange (§7/[30])
abl_placement  SMP vs round-robin placement (§6)
abl_multileader  Single- vs multi-leader pure-MPI baseline ([14])
========  =====================================================

Latencies are reported in microseconds, application times in
milliseconds, matching the paper's axes.
"""

from __future__ import annotations

from typing import Any

from repro.bench.harness import Figure
from repro.bench.osu import hybrid_allgather_program
from repro.core.sync import BarrierSync, FlagSync
from repro.machine.placement import Placement
from repro.machine.presets import hazel_hen
from repro.mpi import run_program

__all__ = ["FIGURES", "get_figure"]

_US = 1.0e6
_MS = 1.0e3


def cached_latency_us(*args, **kwargs):
    """Lazy alias of :func:`repro.bench.sweep.cached_latency_us` — the
    allgather figures measure every point through the sweep layer (and
    its ``$REPRO_SWEEP_CACHE`` cache).  Imported at call time so that
    ``python -m repro.bench.sweep`` does not re-import this package's
    eager figure registry."""
    from repro.bench.sweep import cached_latency_us as measure

    return measure(*args, **kwargs)

#: The paper's message-size axis: 2^0 .. 2^15 doubles.
_PAPER_SIZES = [2**k for k in range(0, 16, 2)] + [2**15]
_QUICK_SIZES = [1, 64, 1024, 16384]


def _dedup(seq: list[int]) -> list[int]:
    return sorted(set(seq))


# ---------------------------------------------------------------------------
# Fig 7 — single node
# ---------------------------------------------------------------------------

def _fig7_sweep(mode: str) -> list[dict]:
    sizes = _PAPER_SIZES if mode == "paper" else _QUICK_SIZES
    return [{"elements": n} for n in _dedup(sizes)]


def _fig7_measure(point: dict, mode: str) -> dict:
    nbytes = point["elements"] * 8
    counts = (24,)
    out: dict[str, Any] = {}
    for label, machine in (("cray", "hazel_hen"), ("ompi", "vulcan")):
        out[f"hy_{label}_us"] = cached_latency_us(
            machine, counts, nbytes, "hybrid"
        )
        out[f"allgather_{label}_us"] = cached_latency_us(
            machine, counts, nbytes, "pure"
        )
    return out


# ---------------------------------------------------------------------------
# Fig 8 — one rank per node
# ---------------------------------------------------------------------------

def _fig8_sweep(mode: str) -> list[dict]:
    sizes = _PAPER_SIZES if mode == "paper" else _QUICK_SIZES
    return [{"elements": n} for n in _dedup(sizes)]


def _fig8_measure(machine: str, point: dict, mode: str) -> dict:
    nbytes = point["elements"] * 8
    node_counts = (4, 16, 64) if mode == "paper" else (4, 16)
    out: dict[str, Any] = {}
    for nodes in node_counts:
        counts = (1,) * nodes
        out[f"hy_{nodes}_us"] = cached_latency_us(
            machine, counts, nbytes, "hybrid"
        )
        out[f"allgather_{nodes}_us"] = cached_latency_us(
            machine, counts, nbytes, "pure"
        )
    return out


# ---------------------------------------------------------------------------
# Fig 9 — ppn sweep at fixed node count
# ---------------------------------------------------------------------------

def _fig9_sweep(mode: str) -> list[dict]:
    ppns = range(3, 25, 3) if mode == "paper" else (3, 12, 24)
    return [{"ppn": p} for p in ppns]


def _fig9_measure(elements: int, point: dict, mode: str) -> dict:
    nodes = 64 if mode == "paper" else 16
    nbytes = elements * 8
    counts = (point["ppn"],) * nodes
    out: dict[str, Any] = {"nodes": nodes}
    for label, machine in (("cray", "hazel_hen"), ("ompi", "vulcan")):
        hy = cached_latency_us(machine, counts, nbytes, "hybrid")
        pure = cached_latency_us(machine, counts, nbytes, "pure")
        out[f"hy_{label}_us"] = hy
        out[f"allgather_{label}_us"] = pure
        out[f"ratio_{label}"] = pure / hy
    return out


# ---------------------------------------------------------------------------
# Fig 10 — irregular node population
# ---------------------------------------------------------------------------

def _fig10_sweep(mode: str) -> list[dict]:
    sizes = _PAPER_SIZES if mode == "paper" else _QUICK_SIZES
    return [{"elements": n} for n in _dedup(sizes)]


def _fig10_measure(point: dict, mode: str) -> dict:
    # Paper: 24 ranks on 42 nodes plus 16 on one more (1024 ranks).
    counts = [24] * 42 + [16] if mode == "paper" else [24] * 6 + [16]
    nbytes = point["elements"] * 8
    out: dict[str, Any] = {"ranks": sum(counts)}
    for label, machine in (("cray", "hazel_hen"), ("ompi", "vulcan")):
        # The irregular population routes the pure variant to
        # allgatherv automatically (SweepPoint.is_irregular).
        hy = cached_latency_us(machine, counts, nbytes, "hybrid")
        pure = cached_latency_us(machine, counts, nbytes, "pure")
        out[f"hy_{label}_us"] = hy
        out[f"allgatherv_{label}_us"] = pure
        out[f"ratio_{label}"] = pure / hy
    return out


# ---------------------------------------------------------------------------
# Fig 11 — SUMMA
# ---------------------------------------------------------------------------

def _summa_cores(mode: str) -> list[int]:
    return [4, 16, 64, 256, 1024] if mode == "paper" else [4, 16, 64]


def _fig11_sweep(mode: str) -> list[dict]:
    return [{"cores": c} for c in _summa_cores(mode)]


def _fig11_measure(block: int, point: dict, mode: str) -> dict:
    from repro.apps.summa import SummaConfig, summa_program

    cores = point["cores"]
    full, rem = divmod(cores, 24)
    placement = Placement.irregular([24] * full + ([rem] if rem else []))
    spec = hazel_hen(max(placement.num_nodes, 1))
    out: dict[str, Any] = {}
    for variant, key in (("ori", "ori_ms"), ("hybrid", "hy_ms")):
        cfg = SummaConfig(block=block, variant=variant)
        result = run_program(
            spec, None, summa_program,
            placement=placement,
            payload="cost-only",
            program_kwargs={"config": cfg},
        )
        out[key] = _MS * max(r["total"] for r in result.returns)
    out["ratio"] = out["ori_ms"] / out["hy_ms"]
    return out


# ---------------------------------------------------------------------------
# Fig 12 — BPMF
# ---------------------------------------------------------------------------

def _fig12_sweep(mode: str) -> list[dict]:
    cores = (
        [24, 120, 240, 360, 480, 1024] if mode == "paper" else [24, 120, 240]
    )
    return [{"cores": c} for c in cores]


def _fig12_measure(point: dict, mode: str) -> dict:
    from repro.apps.bpmf import BPMFConfig, bpmf_program

    cores = point["cores"]
    iterations = 20 if mode == "paper" else 3
    full, rem = divmod(cores, 24)
    placement = Placement.irregular([24] * full + ([rem] if rem else []))
    spec = hazel_hen(max(placement.num_nodes, 1))
    out: dict[str, Any] = {"iterations": iterations}
    for variant, key in (("ori", "ori_tt_ms"), ("hybrid", "hy_tt_ms")):
        cfg = BPMFConfig(iterations=iterations, variant=variant)
        result = run_program(
            spec, None, bpmf_program,
            placement=placement,
            payload="cost-only",
            program_kwargs={"config": cfg},
        )
        out[key] = _MS * max(r["total"] for r in result.returns)
    out["ratio"] = out["ori_tt_ms"] / out["hy_tt_ms"]
    return out


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def _abl_sync_sweep(mode: str) -> list[dict]:
    sizes = [1, 512, 4096, 16384] if mode == "paper" else [1, 4096]
    return [{"elements": n} for n in sizes]


def _abl_sync_measure(point: dict, mode: str) -> dict:
    nodes = 4
    placement = Placement.block(nodes, 24)
    spec = hazel_hen(nodes)
    nbytes = point["elements"] * 8
    out: dict[str, Any] = {}
    for label, sync in (("barrier", BarrierSync()), ("flags", FlagSync())):
        result = run_program(
            spec, None, hybrid_allgather_program,
            placement=placement,
            payload="cost-only",
            program_kwargs={"nbytes_per_rank": nbytes, "sync": sync},
        )
        out[f"{label}_us"] = _US * max(result.returns)
    out["speedup"] = out["barrier_us"] / out["flags_us"]
    return out


def _abl_pipeline_sweep(mode: str) -> list[dict]:
    sizes = (
        [32768, 65536, 131072, 262144] if mode == "paper" else [32768, 131072]
    )
    return [{"elements": n} for n in sizes]


def _abl_pipeline_measure(point: dict, mode: str) -> dict:
    # Traeff et al.'s pipelining targets *irregular* all-gathers: one
    # heavily-populated node's block otherwise stalls the ring at full
    # block granularity.  Population: one 24-rank node + seven 3-rank
    # nodes (block skew 8x).
    counts = [24] + [3] * 7
    placement = Placement.irregular(counts)
    spec = hazel_hen(len(counts))
    nbytes = point["elements"] * 8
    out: dict[str, Any] = {"max_block_mb": 24 * nbytes / 1e6}
    for label, pipelined in (("plain", False), ("pipelined", True)):
        result = run_program(
            spec, None, hybrid_allgather_program,
            placement=placement,
            payload="cost-only",
            program_kwargs={
                "nbytes_per_rank": nbytes, "pipelined": pipelined,
                "chunk_bytes": 256 * 1024,
            },
        )
        out[f"{label}_us"] = _US * max(result.returns)
    out["speedup"] = out["plain_us"] / out["pipelined_us"]
    return out


def _abl_placement_sweep(mode: str) -> list[dict]:
    sizes = [64, 1024, 16384] if mode == "paper" else [64, 4096]
    return [{"elements": n} for n in sizes]


def _abl_placement_measure(point: dict, mode: str) -> dict:
    nodes, ppn = 4, 12
    spec = hazel_hen(nodes)
    nbytes = point["elements"] * 8
    rr = Placement.round_robin(nodes, ppn)
    out: dict[str, Any] = {}
    out["smp_us"] = cached_latency_us(
        "hazel_hen", (ppn,) * nodes, nbytes, "hybrid"
    )
    # Round-robin placement, remedy 2 (§6): node-sorted rank array —
    # the default layout, no packing needed.
    result = run_program(
        spec, None, hybrid_allgather_program,
        placement=rr, payload="cost-only",
        program_kwargs={"nbytes_per_rank": nbytes},
    )
    out["rr_nodesorted_us"] = _US * max(result.returns)
    # Round-robin placement, remedy 1 (§6): derived-datatype packing.
    result = run_program(
        spec, None, hybrid_allgather_program,
        placement=rr, payload="cost-only",
        program_kwargs={"nbytes_per_rank": nbytes, "pack_datatypes": True},
    )
    out["rr_datatypes_us"] = _US * max(result.returns)
    out["packing_penalty"] = out["rr_datatypes_us"] / out["rr_nodesorted_us"]
    return out


def _abl_multileader_sweep(mode: str) -> list[dict]:
    sizes = [512, 4096, 16384] if mode == "paper" else [512, 16384]
    return [{"elements": n} for n in sizes]


def _multileader_program(mpi, nbytes_per_rank: int, leaders: int):
    from repro.mpi.collectives.hierarchical import multileader_allgather
    from repro.mpi.collectives.registry import bridge_allgatherv
    from repro.mpi.datatypes import Bytes

    comm = mpi.world
    payload = Bytes(nbytes_per_rank)
    total = nbytes_per_rank * comm.size

    def select_bridge(bridge, blocks, tag):
        result = yield from bridge_allgatherv(bridge, blocks, tag, total)
        return result

    # Warm-up builds the leader hierarchy (one-off, excluded from timing).
    yield from multileader_allgather(comm, payload, 2**27, leaders, select_bridge)
    yield from comm.barrier()
    t0 = mpi.now
    yield from multileader_allgather(
        comm, payload, 2**27 + 100, leaders, select_bridge
    )
    return mpi.now - t0


def _abl_noise_sweep(mode: str) -> list[dict]:
    rates = [0.0, 0.002, 0.01, 0.05] if mode == "paper" else [0.0, 0.01]
    return [{"detour_rate": r} for r in rates]


def _abl_noise_measure(point: dict, mode: str) -> dict:
    """Noise-sensitivity: slowdown factor of each design under identical
    injected OS noise (SUMMA-like bcast+compute loop)."""
    from repro.machine.noise import NoiseModel
    from repro.apps.summa import SummaConfig, summa_program

    nodes = 2
    spec = hazel_hen(nodes)
    noise = (
        None
        if point["detour_rate"] == 0.0
        else NoiseModel(jitter=0.02, detour_rate=point["detour_rate"])
    )
    # SUMMA needs a square rank count: 36 ranks over the two 24-core
    # nodes (24 + 12).
    pl = Placement.irregular([24, 12])
    out: dict[str, Any] = {}
    for variant, key in (("ori", "ori_ms"), ("hybrid", "hy_ms")):
        cfg = SummaConfig(block=48, variant=variant)
        result = run_program(
            spec, None, summa_program,
            placement=pl, payload="cost-only", noise=noise,
            program_kwargs={"config": cfg},
        )
        out[key] = _MS * max(r["total"] for r in result.returns)
    out["ratio"] = out["ori_ms"] / out["hy_ms"]
    return out


def _ext_scaling_sweep(mode: str) -> list[dict]:
    nodes = [1, 2, 4, 8, 16, 32] if mode == "paper" else [1, 2, 4, 8]
    return [{"nodes": n} for n in nodes]


def _ext_weak_scaling_measure(point: dict, mode: str) -> dict:
    """Weak scaling (beyond the paper): fixed 1024 doubles *per rank*,
    growing node count at 24 ranks/node."""
    nodes = point["nodes"]
    counts = (24,) * nodes
    nbytes = 1024 * 8
    hy = cached_latency_us("hazel_hen", counts, nbytes, "hybrid")
    pure = cached_latency_us("hazel_hen", counts, nbytes, "pure")
    return {
        "ranks": nodes * 24,
        "hy_us": hy,
        "pure_us": pure,
        "ratio": pure / hy,
    }


def _ext_strong_scaling_measure(point: dict, mode: str) -> dict:
    """Strong scaling (beyond the paper): fixed 3 MB *total* result,
    growing node count at 24 ranks/node."""
    nodes = point["nodes"]
    counts = (24,) * nodes
    total = 3 * 1024 * 1024
    nbytes = max(8, total // (nodes * 24))
    hy = cached_latency_us("hazel_hen", counts, nbytes, "hybrid")
    pure = cached_latency_us("hazel_hen", counts, nbytes, "pure")
    return {
        "ranks": nodes * 24,
        "per_rank_kb": nbytes / 1024,
        "hy_us": hy,
        "pure_us": pure,
        "ratio": pure / hy,
    }


def _ext_transport_sweep(mode: str) -> list[dict]:
    elements = (
        [1, 16, 64, 256, 1024, 8192, 32768]
        if mode == "paper"
        else [1, 256, 8192, 32768]
    )
    return [{"elements": n} for n in elements]


#: Short column keys for the registered on-node transports.
_TRANSPORT_KEYS = {
    "shm_two_copy": "shm",
    "cma_single_copy": "cma",
    "pip_direct": "pip",
}


def _ext_transport_measure(point: dict, mode: str) -> dict:
    """Transport/socket crossover: Hy_Allgather on the honest 2-socket
    Hazel Hen node under each on-node transport, with the two-level and
    three-level bridge exchange forced, against the flat node model.

    The three-level exchange runs one bridge per socket concurrently;
    it wins once node blocks are bandwidth-bound and loses at small
    sizes to its extra leader-completion round.
    """
    from repro.machine.transport import TRANSPORTS

    nodes, ppn = 4, 24
    counts = (ppn,) * nodes
    nbytes = point["elements"] * 8
    out: dict[str, Any] = {
        "flat_us": cached_latency_us("hazel_hen", counts, nbytes, "hybrid"),
    }
    for transport in sorted(TRANSPORTS):
        key = _TRANSPORT_KEYS[transport]
        for algo, suffix in (
            ("shared_window", "2l"),
            ("shared_window_3l", "3l"),
        ):
            # algo forces the bridge exchange via ForcedSelection
            # inside the sweep point runner.
            out[f"{key}_{suffix}_us"] = cached_latency_us(
                "hazel_hen_2s", counts, nbytes, "hybrid",
                algo=algo, transport=transport,
            )
    out["shm_3l_speedup"] = out["shm_2l_us"] / out["shm_3l_us"]
    return out


def _abl_multileader_measure(point: dict, mode: str) -> dict:
    nodes, ppn = 8, 24
    placement = Placement.block(nodes, ppn)
    spec = hazel_hen(nodes)
    nbytes = point["elements"] * 8
    out: dict[str, Any] = {}
    for leaders in (1, 2, 4):
        result = run_program(
            spec, None, _multileader_program,
            placement=placement,
            payload="cost-only",
            program_kwargs={"nbytes_per_rank": nbytes, "leaders": leaders},
        )
        out[f"leaders{leaders}_us"] = _US * max(result.returns)
    out["hy_us"] = cached_latency_us("hazel_hen", (ppn,) * nodes, nbytes,
                                     "hybrid")
    return out


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def _figure(figure_id: str, title: str, claim: str, sweep, measure,
            notes: str = "") -> Figure:
    return Figure(
        figure_id=figure_id,
        title=title,
        paper_claim=claim,
        sweep=sweep,
        measure=measure,
        notes=notes,
    )


FIGURES: dict[str, Figure] = {
    "fig7": _figure(
        "fig7",
        "Fig 7 — Hy_Allgather vs Allgather within one full node (24 ranks)",
        "Hy_Allgather is ~constant in message size and always faster; "
        "Allgather grows steadily.",
        _fig7_sweep,
        _fig7_measure,
    ),
    "fig8a": _figure(
        "fig8a",
        "Fig 8a — one rank per node, OpenMPI on Vulcan (latency, us)",
        "Hy_Allgather (MPI_Allgatherv) is slightly slower than pure "
        "MPI_Allgather; the gap shrinks at larger node counts/messages.",
        _fig8_sweep,
        lambda p, m: _fig8_measure("vulcan", p, m),
    ),
    "fig8b": _figure(
        "fig8b",
        "Fig 8b — one rank per node, Cray MPI on Hazel Hen (latency, us)",
        "Same shape as Fig 8a under the Cray personality.",
        _fig8_sweep,
        lambda p, m: _fig8_measure("hazel_hen", p, m),
    ),
    "fig9a": _figure(
        "fig9a",
        "Fig 9a — 64 nodes, 3..24 ranks/node, 512 elements",
        "Hy_Allgather's advantage grows with ranks per node.",
        _fig9_sweep,
        lambda p, m: _fig9_measure(512, p, m),
        notes="quick mode uses 16 nodes to bound run time",
    ),
    "fig9b": _figure(
        "fig9b",
        "Fig 9b — 64 nodes, 3..24 ranks/node, 16384 elements",
        "Same trend at the large message size.",
        _fig9_sweep,
        lambda p, m: _fig9_measure(16384, p, m),
        notes="quick mode uses 16 nodes to bound run time",
    ),
    "fig10": _figure(
        "fig10",
        "Fig 10 — irregularly populated nodes (42x24 + 1x16 ranks)",
        "Hy_Allgather shows consistently lower latency than pure "
        "MPI_Allgatherv on the irregular population.",
        _fig10_sweep,
        _fig10_measure,
        notes="quick mode scales the population down to 6x24 + 1x16",
    ),
    "fig11a": _figure(
        "fig11a",
        "Fig 11a — SUMMA, per-core block 8x8 (time & ratio)",
        "Hy_SUMMA is faster; small blocks gain the most (up to ~5x in "
        "the paper when all ranks share one node).",
        _fig11_sweep,
        lambda p, m: _fig11_measure(8, p, m),
    ),
    "fig11b": _figure(
        "fig11b",
        "Fig 11b — SUMMA, per-core block 64x64 (time & ratio)",
        "Ratios consistently above one.",
        _fig11_sweep,
        lambda p, m: _fig11_measure(64, p, m),
    ),
    "fig11c": _figure(
        "fig11c",
        "Fig 11c — SUMMA, per-core block 128x128 (time & ratio)",
        "Ratios above one, smaller than for 64x64.",
        _fig11_sweep,
        lambda p, m: _fig11_measure(128, p, m),
    ),
    "fig11d": _figure(
        "fig11d",
        "Fig 11d — SUMMA, per-core block 256x256 (time & ratio)",
        "Ratios above one, approaching one as compute dominates.",
        _fig11_sweep,
        lambda p, m: _fig11_measure(256, p, m),
    ),
    "fig12": _figure(
        "fig12",
        "Fig 12 — BPMF total-time ratio Ori/Hy, 24..1024 cores",
        "Ratio always above one and slowly rising with core count "
        "(paper: +3.9% at 1024 cores, savings up to 10%).",
        _fig12_sweep,
        _fig12_measure,
    ),
    "abl_sync": _figure(
        "abl_sync",
        "Ablation — barrier vs shared-flag synchronization (4 nodes x 24)",
        "Light-weight flags beat the heavy-weight barrier (paper §6).",
        _abl_sync_sweep,
        _abl_sync_measure,
    ),
    "abl_pipeline": _figure(
        "abl_pipeline",
        "Ablation — plain vs pipelined bridge exchange (8 nodes x 24)",
        "Chunked pipelining helps beyond ~256 kB node blocks (paper §7).",
        _abl_pipeline_sweep,
        _abl_pipeline_measure,
    ),
    "abl_placement": _figure(
        "abl_placement",
        "Ablation — SMP vs round-robin rank placement (4 nodes x 12)",
        "The node-sorted layout keeps the hybrid advantage under "
        "non-SMP placement (paper §6).",
        _abl_placement_sweep,
        _abl_placement_measure,
    ),
    "abl_noise": _figure(
        "abl_noise",
        "Ablation — sensitivity to injected OS noise (SUMMA-like loop)",
        "Both designs slow under injected noise; the hybrid advantage "
        "narrows (synchronization is a larger share of its runtime, and "
        "barriers amplify per-rank noise) but persists.",
        _abl_noise_sweep,
        _abl_noise_measure,
    ),
    "ext_weak_scaling": _figure(
        "ext_weak_scaling",
        "Extension — weak scaling, 1024 doubles/rank, 24 ranks/node",
        "Beyond the paper: the hybrid advantage is sustained as nodes "
        "grow with fixed per-rank data.",
        _ext_scaling_sweep,
        _ext_weak_scaling_measure,
    ),
    "ext_strong_scaling": _figure(
        "ext_strong_scaling",
        "Extension — strong scaling, 3 MB total result",
        "Beyond the paper: with shrinking per-rank blocks the hybrid "
        "advantage narrows but persists.",
        _ext_scaling_sweep,
        _ext_strong_scaling_measure,
    ),
    "ext_transport_crossover": _figure(
        "ext_transport_crossover",
        "Extension — on-node transports and 2- vs 3-level Hy_Allgather "
        "(4 nodes x 24, 2-socket nodes)",
        "Beyond the paper: with per-socket bridges the three-level "
        "exchange overtakes the two-level one at mid/large messages on "
        "every transport; single-copy transports shift the crossover.",
        _ext_transport_sweep,
        _ext_transport_measure,
    ),
    "abl_multileader": _figure(
        "abl_multileader",
        "Ablation — multi-leader pure-MPI allgather baseline (8 nodes x 24)",
        "Extra leaders reduce the baseline's leader bottleneck but do "
        "not close the gap to the hybrid approach ([14]).",
        _abl_multileader_sweep,
        _abl_multileader_measure,
    ),
}


def get_figure(figure_id: str) -> Figure:
    """Figure by id; raises KeyError with the known ids listed."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(
            f"unknown figure {figure_id!r}; known: {known}"
        ) from None
