"""Command-line entry point: regenerate paper figures as text tables.

Examples::

    repro-bench --list
    repro-bench --figure fig7
    repro-bench --figure fig9a --mode paper
    repro-bench --all --mode quick --out results.txt
    python -m repro.bench --figure fig12
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import FIGURES, get_figure

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the tables/figures of 'MPI Collectives for "
            "Multi-core Clusters' (ICPP'19) on the simulated clusters."
        ),
    )
    parser.add_argument(
        "--figure", "-f",
        help="figure id to run (see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every figure"
    )
    parser.add_argument(
        "--mode", choices=("quick", "paper"), default="quick",
        help="sweep size: quick (reduced, default) or paper (full grid)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known figure ids"
    )
    parser.add_argument(
        "--out", help="append rendered tables to this file"
    )
    parser.add_argument(
        "--report",
        help="write an EXPERIMENTS-style markdown report to this file",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list:
        width = max(len(k) for k in FIGURES)
        for fid in sorted(FIGURES):
            fig = FIGURES[fid]
            print(f"{fid.ljust(width)}  {fig.title}")
        return 0
    if not args.figure and not args.all:
        print("nothing to do: pass --figure <id>, --all, or --list",
              file=sys.stderr)
        return 2
    ids = sorted(FIGURES) if args.all else [args.figure]
    outputs = []
    report_pairs = []
    for fid in ids:
        try:
            figure = get_figure(fid)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        result = figure.run(mode=args.mode, progress=not args.quiet)
        text = result.render()
        print(text)
        print(f"(wall time {result.wall_seconds:.1f}s)\n")
        outputs.append(text)
        report_pairs.append((result, figure.paper_claim))
    if args.out:
        with open(args.out, "a", encoding="utf-8") as fh:
            for text in outputs:
                fh.write(text + "\n\n")
    if args.report:
        from repro.bench.report import render_report

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_report(report_pairs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
