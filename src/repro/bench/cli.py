"""Command-line entry point: regenerate paper figures as text tables.

Examples::

    repro-bench --list
    repro-bench --figure fig7
    repro-bench --figure fig9a --mode paper
    repro-bench --all --mode quick --out results.txt
    python -m repro.bench --figure fig12

Algorithm-selection ablations (the registry's pluggable policies)::

    repro-bench --list-algos
    repro-bench --figure fig7 --policy cost_model
    repro-bench --figure fig9a --algo allgather=ring
    repro-bench --figure fig7 --algo allgather=bruck --algo bcast=binomial

Communication/computation overlap (non-blocking collectives — see
docs/modeling.md)::

    repro-bench overlap --quick
    repro-bench overlap --out-json BENCH_overlap.json

Observability (span tracing, metrics, critical path — see
docs/observability.md)::

    repro-bench --trace-out run.json
    repro-bench --trace-out run.json --trace-detail p2p
    repro-bench --metrics-out metrics.prom --trace-variant pure
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.bench.figures import FIGURES, get_figure
from repro.mpi.collectives import registry as _registry

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the tables/figures of 'MPI Collectives for "
            "Multi-core Clusters' (ICPP'19) on the simulated clusters."
        ),
    )
    parser.add_argument(
        "--figure", "-f",
        help="figure id to run (see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every figure"
    )
    parser.add_argument(
        "--mode", choices=("quick", "paper"), default="quick",
        help="sweep size: quick (reduced, default) or paper (full grid)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known figure ids"
    )
    parser.add_argument(
        "--out", help="append rendered tables to this file"
    )
    parser.add_argument(
        "--report",
        help="write an EXPERIMENTS-style markdown report to this file",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    parser.add_argument(
        "--reps", type=int, metavar="N",
        help=(
            "timed repetitions per OSU measurement (default 50; the "
            "replay cache memoizes the aligned repetitions, so extra "
            "reps cost O(ranks) each instead of a full re-simulation)"
        ),
    )
    parser.add_argument(
        "--warmup", type=int, metavar="N",
        help="warm-up repetitions excluded from timing (default 1)",
    )
    parser.add_argument(
        "--policy", choices=("table", "cost_model"),
        help=(
            "collective selection policy for all runs "
            "(default: the behavior-preserving decision tables)"
        ),
    )
    parser.add_argument(
        "--algo", action="append", metavar="OP=NAME", default=[],
        help=(
            "force one collective's algorithm, e.g. allgather=ring "
            "(repeatable; see --list-algos for names)"
        ),
    )
    parser.add_argument(
        "--list-algos", action="store_true",
        help="list registered collective algorithms per op",
    )
    obs = parser.add_argument_group(
        "observability",
        "trace one Fig 9-config allgather run (see docs/observability.md)",
    )
    obs.add_argument(
        "--trace-out", metavar="FILE",
        help="write a Chrome/Perfetto trace of one traced run to FILE",
    )
    obs.add_argument(
        "--metrics-out", metavar="FILE",
        help=(
            "write metrics of one traced run to FILE "
            "(.json -> JSON, otherwise Prometheus text format)"
        ),
    )
    obs.add_argument(
        "--trace-detail", choices=("dispatch", "phase", "p2p"),
        default="phase",
        help="span granularity of the traced run (default: phase)",
    )
    obs.add_argument(
        "--trace-variant", choices=("hybrid", "pure"), default="hybrid",
        help="allgather variant to trace (default: hybrid)",
    )
    obs.add_argument(
        "--trace-nodes", type=int, default=4, metavar="N",
        help="nodes of the traced run (default: 4)",
    )
    obs.add_argument(
        "--trace-ppn", type=int, default=8, metavar="N",
        help="ranks per node of the traced run (default: 8)",
    )
    obs.add_argument(
        "--trace-elements", type=int, default=512, metavar="N",
        help="float64 elements per rank (default: 512, a Fig 9 point)",
    )
    obs.add_argument(
        "--sockets", type=int, choices=(1, 2), default=1,
        help=(
            "sockets per node of the traced run: 1 = flat node model "
            "(default), 2 = the honest two-socket Hazel Hen preset"
        ),
    )
    obs.add_argument(
        "--placement", choices=("compact", "scatter", "balanced"),
        default="compact", metavar="MODE",
        help=(
            "slot-to-socket mapping of the traced run: compact "
            "(default), scatter, or balanced (only meaningful with "
            "--sockets 2)"
        ),
    )
    obs.add_argument(
        "--transport", default="shm_two_copy", metavar="NAME",
        help=(
            "on-node transport of the traced run: shm_two_copy "
            "(default), cma_single_copy, or pip_direct (only meaningful "
            "with --sockets 2)"
        ),
    )
    return parser


def _run_traced(args) -> int:
    """Handle --trace-out/--metrics-out: one traced allgather run."""
    from repro.bench.observe import render_critical_path, run_traced_allgather
    from repro.metrics import collect_metrics, save_metrics
    from repro.trace import save_chrome_trace

    from repro.machine.transport import get_transport

    try:
        get_transport(args.transport)  # fail fast on typos
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    result, _tracer = run_traced_allgather(
        variant=args.trace_variant,
        nodes=args.trace_nodes,
        ppn=args.trace_ppn,
        elements=args.trace_elements,
        detail=args.trace_detail,
        sockets=args.sockets,
        socket_mode=args.placement,
        transport=args.transport,
    )
    if not args.quiet:
        node_desc = (
            f"{args.sockets}-socket ({args.transport}, {args.placement})"
            if args.sockets > 1 else "flat"
        )
        print(
            f"traced {args.trace_variant} allgather: "
            f"{args.trace_nodes} nodes x {args.trace_ppn} ranks, "
            f"{args.trace_elements} elements/rank, {node_desc} nodes, "
            f"detail={args.trace_detail}, "
            f"{len(result.trace)} trace records"
        )
    if args.trace_out:
        save_chrome_trace(result.trace, args.trace_out)
        if not args.quiet:
            print(f"wrote Chrome trace to {args.trace_out} "
                  "(open in https://ui.perfetto.dev)")
    if args.metrics_out:
        save_metrics(collect_metrics(result), args.metrics_out)
        if not args.quiet:
            print(f"wrote metrics to {args.metrics_out}")
    print(render_critical_path(result))
    return 0


def _selection_env(policy: str | None, algos: list[str]) -> dict[str, str]:
    """Translate --policy/--algo into REPRO_COLL_* environment variables.

    The figures construct their :class:`~repro.mpi.runtime.MPIJob`
    internally, and a job built without an explicit policy resolves one
    from the environment — so the CLI simply stages the same variables a
    user would export by hand."""
    env: dict[str, str] = {}
    if policy:
        env[_registry.ENV_POLICY] = policy
    for spec in algos:
        op, sep, name = spec.partition("=")
        op, name = op.strip().lower(), name.strip()
        if not sep or not op or not name:
            raise ValueError(
                f"--algo expects OP=NAME (e.g. allgather=ring), got {spec!r}"
            )
        _registry.get_algorithm(op, name)  # fail fast on typos
        env[_registry.ENV_OP_PREFIX + op.upper()] = name
    return env


def _print_algos() -> None:
    for op in sorted(_registry.ops()):
        names = ", ".join(
            f"{d.name}{'*' if d.kind != 'flat' else ''}"
            for d in _registry.algorithms_for(op)
        )
        print(f"{op:16s} {names}")
    print("\n(* = hierarchical/hybrid variant; force with --algo OP=NAME "
          f"or the {_registry.ENV_OP_PREFIX}<OP> environment variable)")


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "overlap":
        # Subcommand: the OSU-style overlap benchmark (docs/modeling.md).
        from repro.bench.overlap import main as overlap_main

        return overlap_main(argv[1:])
    args = _build_parser().parse_args(argv)
    if args.list_algos:
        _print_algos()
        return 0
    if args.list:
        width = max(len(k) for k in FIGURES)
        for fid in sorted(FIGURES):
            fig = FIGURES[fid]
            print(f"{fid.ljust(width)}  {fig.title}")
        return 0
    if args.trace_out or args.metrics_out:
        return _run_traced(args)
    if not args.figure and not args.all:
        print("nothing to do: pass --figure <id>, --all, or --list",
              file=sys.stderr)
        return 2
    try:
        selection_env = _selection_env(args.policy, args.algo)
    except (ValueError, KeyError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if (args.reps is not None and args.reps < 1) or (
            args.warmup is not None and args.warmup < 0):
        print("--reps must be >= 1 and --warmup >= 0", file=sys.stderr)
        return 2
    ids = sorted(FIGURES) if args.all else [args.figure]
    outputs = []
    report_pairs = []
    saved = {k: os.environ.get(k) for k in selection_env}
    os.environ.update(selection_env)
    # The figure measure functions build their OSU programs internally,
    # so --reps/--warmup override the module defaults for the duration
    # of the runs (restored below).
    from repro.bench import osu as _osu

    saved_reps, saved_warmup = _osu.DEFAULT_REPS, _osu.DEFAULT_WARMUP
    if args.reps is not None:
        _osu.DEFAULT_REPS = args.reps
    if args.warmup is not None:
        _osu.DEFAULT_WARMUP = args.warmup
    try:
        try:
            # Validate the merged REPRO_COLL_* environment (including
            # variables the user exported) before any figure runs.
            _registry.resolve_policy(None)
        except (ValueError, KeyError) as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        for fid in ids:
            try:
                figure = get_figure(fid)
            except KeyError as exc:
                print(exc.args[0], file=sys.stderr)
                return 2
            result = figure.run(mode=args.mode, progress=not args.quiet)
            text = result.render()
            print(text)
            print(f"(wall time {result.wall_seconds:.1f}s)\n")
            outputs.append(text)
            report_pairs.append((result, figure.paper_claim))
    finally:
        _osu.DEFAULT_REPS, _osu.DEFAULT_WARMUP = saved_reps, saved_warmup
        for key, old in saved.items():
            if old is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = old
    if args.out:
        with open(args.out, "a", encoding="utf-8") as fh:
            for text in outputs:
                fh.write(text + "\n\n")
    if args.report:
        from repro.bench.report import render_report

        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(render_report(report_pairs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
