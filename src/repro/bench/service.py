"""JSON-over-HTTP front end of the sweep cache (``repro-sweep serve``).

A small stdlib-only service that answers "what is the latency of this
configuration?" and "which algorithm should this configuration use?"
from the content-addressed result cache — or, on a miss, by running the
point (simulator or analytic model) and caching the answer for the next
client.  Binds to localhost by default; there is no authentication, so
keep it there.

Endpoints (all responses are JSON; see docs/sweeps.md for curl
examples):

``GET /health``
    Liveness plus the engine/model versions the cache keys embed.
``GET /stats``
    Cache statistics (entries, bytes, session hits/misses), the
    in-process collective replay-cache counters (``replay``), and
    request counters, in the :func:`repro.metrics.sweep_metrics`
    counter style.
``POST /query``
    Body: a :class:`~repro.bench.sweep.SweepPoint` JSON document (any
    subset of its fields).  Answers the point from cache or by running
    its engine; the response carries the record, its cache key, and
    whether it was served from cache.
``POST /best``
    Body: a configuration (machine, nodes/ppn or counts, nbytes or
    elements, optional socket_mode/transport).  Prices every
    structurally-applicable pure-MPI and hybrid algorithm with the
    analytic model (each candidate a cacheable model point) and returns
    the ranked candidates plus the recommendation.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis.model import MODEL_VERSION, CostModel
from repro.bench import sweep as sweeplib
from repro.simulator import ENGINE_VERSION

__all__ = ["SweepService", "make_server", "serve"]


class _BadRequest(ValueError):
    """Client error; its message becomes the JSON ``error`` field."""


def _config_counts(doc: dict) -> tuple:
    if "counts" in doc:
        return tuple(int(c) for c in doc["counts"])
    return (int(doc.get("ppn", 24)),) * int(doc.get("nodes", 1))


def _config_nbytes(doc: dict) -> int:
    if "nbytes" in doc:
        return int(doc["nbytes"])
    return int(doc.get("elements", 1)) * 8


class SweepService:
    """The request logic, HTTP-free so tests can drive it directly."""

    def __init__(self, cache: sweeplib.ResultCache | None = None):
        self.cache = cache
        self.requests = 0
        self.errors = 0

    # -- endpoints -------------------------------------------------------
    def health(self) -> dict:
        return {
            "status": "ok",
            "engine_version": ENGINE_VERSION,
            "model_version": MODEL_VERSION,
            "cache": self.cache.root if self.cache else None,
        }

    def stats(self) -> dict:
        from repro.mpi.collectives import replay

        return {
            "cache": self.cache.stats() if self.cache else None,
            "replay": replay.cache_stats(),
            "requests": self.requests,
            "errors": self.errors,
        }

    def query(self, doc: dict) -> dict:
        """Answer one point (cache first, engine on a miss)."""
        try:
            point = sweeplib.SweepPoint.from_dict(doc)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(str(exc)) from exc
        record, source = sweeplib.evaluate(point, self.cache)
        return {
            "name": sweeplib.point_name(point),
            "key": sweeplib.cache_key(point),
            "source": source,
            "result": record,
        }

    def best(self, doc: dict) -> dict:
        """Which algorithm (and variant) should this config use?

        Prices every structurally-applicable candidate with the
        analytic model; each candidate evaluation is itself a cacheable
        model point, so repeated questions are pure cache reads.
        """
        from repro.bench.model import hybrid_candidates, pure_candidates

        unknown = set(doc) - {"machine", "counts", "nodes", "ppn",
                              "nbytes", "elements", "socket_mode",
                              "transport"}
        if unknown:
            raise _BadRequest(
                f"unknown field(s): {', '.join(sorted(unknown))}"
            )
        machine = doc.get("machine", "hazel_hen")
        try:
            counts = _config_counts(doc)
            nbytes = _config_nbytes(doc)
            probe = sweeplib.SweepPoint(
                machine=machine, counts=counts, nbytes=nbytes,
                socket_mode=doc.get("socket_mode", "compact"),
                transport=doc.get("transport"),
            )
        except (TypeError, ValueError) as exc:
            raise _BadRequest(str(exc)) from exc
        model = CostModel(probe.spec(), counts,
                          socket_mode=probe.socket_mode)
        irregular = probe.is_irregular
        pure_op = "allgatherv" if irregular else "allgather"
        candidates = [
            ("pure", pure_op, algo)
            for algo in pure_candidates(model, irregular)
        ] + [
            ("hybrid", "hy_allgather", algo)
            for algo in hybrid_candidates(model)
        ]
        ranked = []
        for variant, op, algo in candidates:
            point = sweeplib.SweepPoint(
                machine=machine, counts=counts, nbytes=nbytes,
                variant=variant, engine="model", op=op, algo=algo,
                transport=probe.transport, socket_mode=probe.socket_mode,
            )
            record, source = sweeplib.evaluate(point, self.cache)
            ranked.append({
                "variant": variant, "op": op, "algo": algo,
                "latency_us": record["latency_us"], "source": source,
            })
        ranked.sort(key=lambda row: row["latency_us"])
        best = ranked[0]
        return {
            "machine": machine,
            "ranks": sum(counts),
            "nodes": len(counts),
            "nbytes": nbytes,
            "recommendation": {
                "variant": best["variant"], "op": best["op"],
                "algo": best["algo"], "latency_us": best["latency_us"],
            },
            "candidates": ranked,
        }

    # -- dispatch --------------------------------------------------------
    def handle(self, method: str, path: str, body: dict | None) -> \
            tuple[int, dict]:
        """(status, response document) for one request."""
        self.requests += 1
        try:
            if method == "GET" and path == "/health":
                return 200, self.health()
            if method == "GET" and path == "/stats":
                return 200, self.stats()
            if method == "POST" and path == "/query":
                return 200, self.query(body or {})
            if method == "POST" and path == "/best":
                return 200, self.best(body or {})
            self.errors += 1
            return 404, {"error": f"no such endpoint: {method} {path}"}
        except _BadRequest as exc:
            self.errors += 1
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — report, don't die
            self.errors += 1
            return 500, {"error": f"{type(exc).__name__}: {exc}"}


class _Handler(BaseHTTPRequestHandler):
    service: SweepService  # set by make_server on the subclass

    def _respond(self, status: int, doc: dict) -> None:
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):  # noqa: N802 — BaseHTTPRequestHandler API
        status, doc = self.service.handle("GET", self.path, None)
        self._respond(status, doc)

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            self._respond(400, {"error": f"invalid JSON body: {exc}"})
            return
        if not isinstance(body, dict):
            self._respond(400, {"error": "body must be a JSON object"})
            return
        status, doc = self.service.handle("POST", self.path, body)
        self._respond(status, doc)

    def log_message(self, fmt, *args):  # noqa: A003 — quiet by default
        pass


def make_server(cache_dir: str | None = None, host: str = "127.0.0.1",
                port: int = 0) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a
    free port (``server.server_address[1]`` has the real one).  The
    returned server's handler class carries the :class:`SweepService`
    as ``service``."""
    cache = sweeplib.ResultCache(cache_dir) if cache_dir else None
    service = SweepService(cache)
    handler = type("BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    return server


def serve(cache_dir: str | None = None, host: str = "127.0.0.1",
          port: int = 8351) -> None:
    """Run the service until interrupted (``repro-sweep serve``)."""
    server = make_server(cache_dir, host, port)
    actual_host, actual_port = server.server_address[:2]
    print(f"repro-sweep service on http://{actual_host}:{actual_port} "
          f"(cache: {cache_dir or 'none — every query computes'})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
