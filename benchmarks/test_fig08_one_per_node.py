"""Fig 8a/8b — one MPI rank per node (the hybrid approach's worst case).

Paper claims: with no on-node sharing to exploit, Hy_Allgather (which
must use MPI_Allgatherv on the bridge) is slightly *slower* than the
pure MPI_Allgather, and the gap shrinks for large messages / node
counts.
"""

from __future__ import annotations

from conftest import bench_once

from repro.bench.harness import run_figure


def _check_worst_case(result, nodes: int) -> None:
    hy = result.series(f"hy_{nodes}_us")
    pure = result.series(f"allgather_{nodes}_us")
    # Hybrid never wins big here (it has no shared memory to exploit):
    # allow a small tolerance for algorithm-threshold cliffs.
    assert all(h >= 0.95 * p for h, p in zip(hy, pure)), (
        f"{nodes} nodes: hybrid should not beat pure with 1 rank/node"
    )
    # ...but it is only *slightly* inferior at the largest message.
    assert hy[-1] <= 1.2 * pure[-1], (
        f"{nodes} nodes: gap should shrink for large messages "
        f"(hy={hy[-1]:.1f}us pure={pure[-1]:.1f}us)"
    )


def test_fig8a_regenerate(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("fig8a", mode="quick"))
    print()
    print(result.render())
    for nodes in (4, 16):
        _check_worst_case(result, nodes)


def test_fig8b_regenerate(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("fig8b", mode="quick"))
    print()
    print(result.render())
    for nodes in (4, 16):
        _check_worst_case(result, nodes)


def test_fig8_relative_gap_shrinks_with_size(figure_runner):
    result = figure_runner("fig8b")
    for nodes in (4, 16):
        gaps = [
            h / p
            for h, p in zip(
                result.series(f"hy_{nodes}_us"),
                result.series(f"allgather_{nodes}_us"),
            )
        ]
        assert gaps[-1] <= gaps[0] + 0.05, (
            f"{nodes} nodes: relative gap should not grow with size: {gaps}"
        )
