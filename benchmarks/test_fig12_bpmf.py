"""Fig 12 — BPMF total-time ratio Ori_BPMF / Hy_BPMF, strong scaling.

Paper claims: the ratio is always above one and on a slow rise as the
core count grows (+3.9% at 1024 cores; total-time savings up to 10%).
"""

from __future__ import annotations

from conftest import bench_once

from repro.bench.harness import run_figure


def test_fig12_regenerate(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("fig12", mode="quick"))
    print()
    print(result.render())
    ratios = result.series("ratio")
    assert all(r > 1.0 for r in ratios), ratios
    # Slow rise with core count.
    assert ratios == sorted(ratios), ratios
    # "Slow": the advantage stays in a modest band, not a blow-out.
    assert ratios[0] < 1.1, ratios


def test_fig12_strong_scaling_totals_shrink(figure_runner):
    result = figure_runner("fig12")
    totals = result.series("ori_tt_ms")
    assert totals == sorted(totals, reverse=True), (
        f"total time should fall as cores grow: {totals}"
    )
