"""Ablation benchmarks for the design choices DESIGN.md calls out.

* abl_sync — §6's heavy-weight barrier vs light-weight shared flags.
* abl_pipeline — §7's pointer to pipelined large/irregular allgather.
* abl_placement — §6's derived-datatype vs node-sorted-array remedies
  for non-SMP rank placement.
* abl_multileader — the multi-leader baseline of [14] does not close
  the gap to the hybrid approach.
"""

from __future__ import annotations

from conftest import bench_once

from repro.bench.harness import run_figure


def test_abl_sync(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("abl_sync", "quick"))
    print()
    print(result.render())
    # Flags are never slower, and win clearly at small message sizes
    # (where synchronization dominates the hybrid allgather).
    speedups = result.series("speedup")
    assert all(s >= 0.99 for s in speedups), speedups
    assert speedups[0] > 1.15, speedups


def test_abl_pipeline(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("abl_pipeline", "quick"))
    print()
    print(result.render())
    # Chunked pipelining clearly wins on the skewed population with
    # multi-megabyte node blocks.
    assert all(s > 1.5 for s in result.series("speedup")), result.rows


def test_abl_placement(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("abl_placement", "quick"))
    print()
    print(result.render())
    for row in result.rows:
        # Node-sorted layout: round-robin placement costs the same as SMP.
        assert abs(row["rr_nodesorted_us"] - row["smp_us"]) <= 0.1 * row["smp_us"]
        # Datatype packing always pays a penalty (paper §6).
        assert row["packing_penalty"] > 1.0
    # The penalty grows with message size (per-byte cost).
    penalties = result.series("packing_penalty")
    assert penalties == sorted(penalties), penalties


def test_abl_multileader(benchmark, figure_runner):
    result = bench_once(
        benchmark, lambda: run_figure("abl_multileader", "quick")
    )
    print()
    print(result.render())
    for row in result.rows:
        baseline_best = min(
            row["leaders1_us"], row["leaders2_us"], row["leaders4_us"]
        )
        # Even the best multi-leader configuration stays far behind the
        # hybrid approach (which removes the on-node copies entirely).
        assert row["hy_us"] < 0.5 * baseline_best, row
