"""Fig 10 — irregularly populated nodes (42x24 + 1x16 in the paper).

Paper claims: even on an irregular population — where MPI_Allgatherv's
cost is set by the largest per-node block — Hy_Allgather keeps
consistently lower latency than the pure-MPI irregular allgather.
"""

from __future__ import annotations

from conftest import bench_once

from repro.bench.harness import run_figure


def test_fig10_regenerate(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("fig10", mode="quick"))
    print()
    print(result.render())
    for flavour in ("cray", "ompi"):
        ratios = result.series(f"ratio_{flavour}")
        assert all(r > 1.0 for r in ratios), (
            f"{flavour}: hybrid should win at every size on the "
            f"irregular population: {ratios}"
        )


def test_fig10_population_is_irregular(figure_runner):
    result = figure_runner("fig10")
    # Quick mode: 6 full nodes + one 16-rank node.
    assert result.rows[0]["ranks"] == 6 * 24 + 16
