"""Fig 7 — allgather within one full node (24 ranks), both MPI flavours.

Paper claims: Hy_Allgather is ~constant in message size (one barrier)
and always cheaper than the naive pure-MPI Allgather, whose cost grows
steadily with message size.
"""

from __future__ import annotations

from conftest import bench_once

from repro.bench.harness import run_figure


def test_fig7_regenerate(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("fig7", mode="quick"))
    print()
    print(result.render())

    for flavour in ("cray", "ompi"):
        hy = result.series(f"hy_{flavour}_us")
        pure = result.series(f"allgather_{flavour}_us")
        # Hybrid beats pure at every size.
        assert all(h < p for h, p in zip(hy, pure)), flavour
        # Hybrid is ~flat: largest size within 3x of smallest.
        assert max(hy) <= 3.0 * min(hy), flavour
        # Pure grows steadily: biggest message far above the smallest.
        assert pure[-1] > 50.0 * pure[0], flavour


def test_fig7_gap_widens_with_size(figure_runner):
    result = figure_runner("fig7")
    for flavour in ("cray", "ompi"):
        ratios = [
            p / h
            for p, h in zip(
                result.series(f"allgather_{flavour}_us"),
                result.series(f"hy_{flavour}_us"),
            )
        ]
        assert ratios == sorted(ratios), (
            f"{flavour}: hybrid advantage should grow with message size: "
            f"{ratios}"
        )
