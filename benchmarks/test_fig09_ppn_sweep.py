"""Fig 9a/9b — fixed node count, 3..24 ranks per node.

Paper claims: the hybrid advantage *grows* with the number of ranks per
node (more on-node copies removed), at both 512 and 16384 elements.
"""

from __future__ import annotations

from conftest import bench_once

from repro.bench.harness import run_figure


def _check_growth(result) -> None:
    for flavour in ("cray", "ompi"):
        ratios = result.series(f"ratio_{flavour}")
        # Hybrid wins at every ppn >= 3...
        assert all(r > 1.0 for r in ratios), (flavour, ratios)
        # ...and the win grows monotonically with ppn.
        assert ratios == sorted(ratios), (
            f"{flavour}: advantage should grow with ppn: {ratios}"
        )


def test_fig9a_regenerate(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("fig9a", mode="quick"))
    print()
    print(result.render())
    _check_growth(result)


def test_fig9b_regenerate(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("fig9b", mode="quick"))
    print()
    print(result.render())
    _check_growth(result)
