"""Benchmarks for the beyond-the-paper extension figures."""

from __future__ import annotations

from conftest import bench_once

from repro.bench.harness import run_figure


def test_abl_noise(benchmark, figure_runner):
    result = bench_once(benchmark, lambda: run_figure("abl_noise", "quick"))
    print()
    print(result.render())
    ratios = result.series("ratio")
    # Hybrid keeps winning under injected noise...
    assert all(r > 1.0 for r in ratios), ratios
    # ...but its advantage narrows (synchronization amplifies noise).
    assert ratios[-1] < ratios[0], ratios


def test_ext_weak_scaling(benchmark, figure_runner):
    result = bench_once(
        benchmark, lambda: run_figure("ext_weak_scaling", "quick")
    )
    print()
    print(result.render())
    ratios = result.series("ratio")
    assert all(r > 1.0 for r in ratios), ratios
    # Multi-node advantage settles to a sustained plateau, far above 1.
    assert ratios[-1] > 3.0, ratios


def test_ext_strong_scaling(benchmark, figure_runner):
    result = bench_once(
        benchmark, lambda: run_figure("ext_strong_scaling", "quick")
    )
    print()
    print(result.render())
    ratios = result.series("ratio")
    assert all(r > 1.0 for r in ratios), ratios
    # Shrinking per-rank blocks narrow the multi-node advantage.
    multi = ratios[1:]
    assert multi == sorted(multi, reverse=True), ratios
