"""Fig 11a-d — SUMMA with pure-MPI vs hybrid broadcasts.

Paper claims: the ratio Ori_SUMMA/Hy_SUMMA is consistently above one,
largest for small per-core blocks (communication-bound) and approaching
one for 256x256 blocks (compute-bound).
"""

from __future__ import annotations

import pytest
from conftest import bench_once

from repro.bench.harness import run_figure

_FIGS = {
    "fig11a": 8,
    "fig11b": 64,
    "fig11c": 128,
    "fig11d": 256,
}


@pytest.mark.parametrize("figure_id", sorted(_FIGS))
def test_fig11_regenerate(benchmark, figure_runner, figure_id):
    result = bench_once(
        benchmark, lambda: run_figure(figure_id, mode="quick")
    )
    print()
    print(result.render())
    ratios = result.series("ratio")
    # The hybrid version never loses (tolerance for the 2x2-grid case
    # where a 2-rank broadcast is already a single copy).
    assert all(r > 0.95 for r in ratios), ratios
    # And it clearly wins somewhere in the sweep.
    assert max(ratios) > 1.2, ratios


def test_fig11_small_blocks_win_more_than_large(figure_runner):
    small = figure_runner("fig11b").series("ratio")
    large = figure_runner("fig11d").series("ratio")
    # Communication-bound (64x64) gains more than compute-bound (256x256)
    # at the same core counts.
    assert max(small) > max(large), (small, large)
