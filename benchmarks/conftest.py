"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one paper artifact via
:func:`repro.bench.run_figure` in *quick* mode and additionally asserts
the paper's qualitative claim (who wins, the trend direction), so a
model regression that flips a conclusion fails loudly rather than just
shifting a number.

Full-grid reproduction (``--mode paper``) is run through the CLI
(``repro-bench --figure figX --mode paper``), not through pytest.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FigureResult, run_figure


@pytest.fixture(scope="session")
def figure_runner():
    """Run (and cache) a figure in quick mode once per session."""
    cache: dict[str, FigureResult] = {}

    def runner(figure_id: str) -> FigureResult:
        if figure_id not in cache:
            cache[figure_id] = run_figure(figure_id, mode="quick")
        return cache[figure_id]

    return runner


def bench_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark.

    The simulator is deterministic — repeated rounds measure Python
    overhead, not the system under test — so one round suffices.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
