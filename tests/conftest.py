"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import pytest

from repro.machine import Machine, MachineSpec, testing_machine
from repro.simulator import Engine


@pytest.fixture()
def engine() -> Engine:
    """A fresh simulation engine."""
    return Engine()


@pytest.fixture()
def tiny_spec() -> MachineSpec:
    """2 nodes x 4 cores with round-number cost parameters."""
    return testing_machine(num_nodes=2, cores=4)


@pytest.fixture()
def tiny_machine(engine, tiny_spec) -> Machine:
    """Instantiated 2x4 machine bound to the fresh engine."""
    return Machine(engine, tiny_spec)
