"""Additional engine edge-case coverage."""

from __future__ import annotations

import pytest

from repro.simulator import (
    AllOf,
    AnyOf,
    BandwidthChannel,
    Engine,
    Event,
    Interrupt,
    Resource,
)
from repro.simulator.engine import SimulationError


class TestNestedComposition:
    def test_allof_of_processes_and_timeouts(self, engine):
        def child():
            yield engine.timeout(1.0)
            return "c"

        got = []

        def parent():
            values = yield AllOf(
                [engine.spawn(child()), engine.timeout(2.0, value="t")]
            )
            got.append(values)

        engine.spawn(parent())
        engine.run()
        assert got == [["c", "t"]]

    def test_anyof_then_drain_losers(self, engine):
        def child(d):
            yield engine.timeout(d)
            return d

        def parent():
            a = engine.spawn(child(1.0))
            b = engine.spawn(child(2.0))
            idx, val = yield AnyOf([a, b])
            assert (idx, val) == (0, 1.0)
            leftover = yield b
            return leftover

        p = engine.spawn(parent())
        engine.run()
        assert p.value == 2.0

    def test_chained_processes_deep(self, engine):
        def level(n):
            if n == 0:
                yield engine.timeout(0.1)
                return 0
            value = yield engine.spawn(level(n - 1))
            return value + 1

        p = engine.spawn(level(30))
        engine.run()
        assert p.value == 30
        assert engine.now == pytest.approx(0.1)


class TestInterruptSemantics:
    def test_interrupt_while_holding_resource_releases_in_finally(self, engine):
        res = Resource(engine, capacity=1)
        order = []

        def holder():
            yield res.acquire()
            try:
                yield engine.timeout(100.0)
            except Interrupt:
                order.append("interrupted")
            finally:
                res.release()

        def contender():
            yield engine.timeout(1.0)
            yield res.acquire()
            order.append(("acquired", engine.now))
            res.release()

        h = engine.spawn(holder())

        def killer():
            yield engine.timeout(2.0)
            h.interrupt()

        engine.spawn(contender())
        engine.spawn(killer())
        engine.run()
        assert order == ["interrupted", ("acquired", 2.0)]

    def test_interrupt_dead_process_is_noop(self, engine):
        def quick():
            yield engine.timeout(0.1)

        p = engine.spawn(quick())
        engine.run()
        p.interrupt()  # must not raise
        engine.run()


class TestEventLifecycle:
    def test_value_before_trigger_raises(self, engine):
        ev = Event(engine)
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_false_while_pending(self, engine):
        ev = Event(engine)
        assert not ev.ok

    def test_two_waiters_both_resume(self, engine):
        ev = engine.event()
        got = []

        def waiter(tag):
            value = yield ev
            got.append((tag, value))

        engine.spawn(waiter("a"))
        engine.spawn(waiter("b"))

        def trigger():
            yield engine.timeout(1.0)
            ev.succeed(42)

        engine.spawn(trigger())
        engine.run()
        assert sorted(got) == [("a", 42), ("b", 42)]


class TestBandwidthEdge:
    def test_many_queued_transfers_complete_in_order(self, engine):
        ch = BandwidthChannel(engine, bandwidth=100.0, streams=1)
        done = []

        def mover(i):
            yield ch.transfer(10.0)
            done.append(i)

        for i in range(20):
            engine.spawn(mover(i))
        engine.run()
        assert done == list(range(20))
        assert engine.now == pytest.approx(20 * 0.1)

    def test_interleaved_sizes_fifo(self, engine):
        ch = BandwidthChannel(engine, bandwidth=10.0, streams=1)
        done = []

        def mover(i, n):
            yield ch.transfer(n)
            done.append(i)

        engine.spawn(mover(0, 100.0))  # 10 s
        engine.spawn(mover(1, 1.0))    # queued despite being tiny
        engine.run()
        assert done == [0, 1]


class TestRunSemantics:
    def test_run_until_before_first_event(self, engine):
        def proc():
            yield engine.timeout(10.0)

        engine.spawn(proc())
        engine.run(until=0.5)
        assert engine.now == 0.5
        engine.run()  # completes the rest
        assert engine.now == 10.0

    def test_empty_engine_run_is_noop(self):
        eng = Engine()
        eng.run()
        assert eng.now == 0.0

    def test_run_until_exact_boundary(self, engine):
        fired = []

        def proc():
            yield engine.timeout(1.0)
            fired.append(True)

        engine.spawn(proc())
        engine.run(until=1.0)
        assert fired == [True]
