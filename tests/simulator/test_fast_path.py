"""Unit tests for the engine fast path and its companion fixes.

Covers the satellite fixes that rode along with the fast-path work:
AnyOf index reporting under duplicate/late events, interrupt detaching
its stale resume callback, pause-event pooling, and fast/legacy
scheduler equivalence at the engine level.
"""

from __future__ import annotations

import pytest

from repro.simulator import AnyOf, Engine, Interrupt


def _collect(engine, waitable):
    out = {}

    def waiter():
        out["value"] = yield waitable

    engine.spawn(waiter(), name="waiter")
    engine.run()
    return out["value"]


class TestAnyOfIndices:
    def test_later_position_winner_reports_its_index(self):
        eng = Engine()
        a, b = eng.event("a"), eng.event("b")
        eng.timeout(2.0).add_callback(lambda _ev: a.succeed("slow"))
        eng.timeout(1.0).add_callback(lambda _ev: b.succeed("quick"))
        assert _collect(eng, AnyOf([a, b])) == (1, "quick")

    def test_duplicate_event_reports_first_occurrence(self):
        # The same event listed twice used to confuse the winning-index
        # scan; each position now has its own subscription.
        eng = Engine()
        a = eng.event("a")
        b = eng.event("b")
        eng.timeout(1.0).add_callback(lambda _ev: a.succeed("v"))
        assert _collect(eng, AnyOf([b, a, a])) == (1, "v")

    def test_already_triggered_duplicate(self):
        eng = Engine()
        a = eng.event("a")
        a.succeed(7)
        assert _collect(eng, AnyOf([a, a])) == (0, 7)


class TestInterruptDetach:
    def test_interrupt_removes_stale_callback(self):
        eng = Engine()
        gate = eng.event("gate")
        seen = []

        def sleeper():
            try:
                yield gate
            except Interrupt as exc:
                seen.append(exc)

        proc = eng.spawn(sleeper(), name="sleeper")

        def driver():
            yield eng.timeout(1.0)
            proc.interrupt("wake up")
            # The interrupted process must no longer be subscribed: a
            # stale entry here would grow unboundedly on long-lived
            # events and resurrect the process when the gate fires.
            assert not gate.callbacks
            yield eng.timeout(1.0)
            gate.succeed("late")

        eng.spawn(driver(), name="driver")
        eng.run()
        assert len(seen) == 1
        assert seen[0].cause == "wake up"

    def test_interrupted_process_not_resumed_by_old_target(self):
        eng = Engine()
        gate = eng.event("gate")
        resumed = []

        def sleeper():
            try:
                yield gate
            except Interrupt:
                yield eng.timeout(5.0)
                resumed.append(eng.now)

        proc = eng.spawn(sleeper(), name="sleeper")

        def driver():
            yield eng.timeout(1.0)
            proc.interrupt()
            gate.succeed("x")  # must not double-resume the sleeper
            yield proc

        eng.spawn(driver(), name="driver")
        eng.run()
        assert resumed == [6.0]


class TestPausePooling:
    def test_pause_events_are_recycled(self):
        eng = Engine()
        ids = []

        def ticker():
            for _ in range(50):
                ev = eng.pause(1.0)
                ids.append(id(ev))
                yield ev

        eng.spawn(ticker(), name="ticker")
        eng.run()
        assert eng.now == 50.0
        # The free list keeps at most a handful of live pause events for
        # a single sequential user; identity reuse proves pooling works.
        assert len(set(ids)) < len(ids)
        assert eng._pause_pool

    def test_pause_values_survive_recycling(self):
        eng = Engine()
        got = []

        def ticker():
            for k in range(5):
                got.append((yield eng.pause(1.0, value=k)))

        eng.spawn(ticker(), name="ticker")
        eng.run()
        assert got == [0, 1, 2, 3, 4]

    def test_legacy_path_pause_not_pooled(self):
        eng = Engine(fast_path=False)

        def ticker():
            for _ in range(3):
                yield eng.pause(1.0)

        eng.spawn(ticker(), name="ticker")
        eng.run()
        assert eng.now == 3.0
        assert not eng._pause_pool


def _pingpong(eng, rounds):
    """A small two-process network exercising events, pauses, interrupts."""
    a_inbox = [eng.event(f"a{i}") for i in range(rounds)]
    b_inbox = [eng.event(f"b{i}") for i in range(rounds)]

    def player(my_inbox, peer_inbox, delay):
        for i in range(rounds):
            yield eng.pause(delay)
            peer_inbox[i].succeed(i)
            yield my_inbox[i]

    eng.spawn(player(a_inbox, b_inbox, 0.5), name="a")
    eng.spawn(player(b_inbox, a_inbox, 0.25), name="b")
    eng.run()
    return eng.now, eng.event_count


@pytest.mark.parametrize("rounds", [1, 7, 31])
def test_fast_and_legacy_paths_identical(rounds):
    fast = _pingpong(Engine(fast_path=True), rounds)
    legacy = _pingpong(Engine(fast_path=False), rounds)
    assert fast == legacy
