"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simulator import (
    AllOf,
    AnyOf,
    DeadlockError,
    Engine,
    Event,
    Interrupt,
    SimulationError,
)


class TestEvent:
    def test_pending_event_has_no_value(self, engine):
        ev = engine.event("x")
        assert not ev.triggered
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_succeed_delivers_value(self, engine):
        ev = engine.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, engine):
        ev = engine.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self, engine):
        ev = engine.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_failed_event_value_raises(self, engine):
        ev = engine.event()
        ev.fail(ValueError("boom"))
        engine.run()
        assert ev.triggered and not ev.ok
        with pytest.raises(ValueError):
            _ = ev.value

    def test_callback_after_processed_still_fires(self, engine):
        ev = engine.event()
        ev.succeed("late")
        engine.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        engine.run()
        assert seen == ["late"]


class TestTimeout:
    def test_timeout_advances_clock(self, engine):
        fired = []

        def proc():
            yield engine.timeout(2.5)
            fired.append(engine.now)

        engine.spawn(proc())
        engine.run()
        assert fired == [2.5]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-1.0)

    def test_zero_delay_runs_immediately(self, engine):
        order = []

        def proc(tag):
            yield engine.timeout(0.0)
            order.append(tag)

        engine.spawn(proc("a"))
        engine.spawn(proc("b"))
        engine.run()
        assert order == ["a", "b"]
        assert engine.now == 0.0

    def test_timeout_carries_value(self, engine):
        got = []

        def proc():
            v = yield engine.timeout(1.0, value="hello")
            got.append(v)

        engine.spawn(proc())
        engine.run()
        assert got == ["hello"]


class TestProcess:
    def test_return_value_via_stopiteration(self, engine):
        def child():
            yield engine.timeout(1.0)
            return "result"

        def parent():
            value = yield engine.spawn(child())
            return value

        p = engine.spawn(parent())
        engine.run()
        assert p.value == "result"

    def test_spawn_requires_generator(self, engine):
        def not_a_generator():
            return 3

        with pytest.raises(TypeError):
            engine.spawn(not_a_generator)  # the function itself
        with pytest.raises(TypeError):
            engine.spawn(not_a_generator())

    def test_exception_propagates_to_waiter(self, engine):
        def child():
            yield engine.timeout(1.0)
            raise ValueError("child broke")

        caught = []

        def parent():
            try:
                yield engine.spawn(child())
            except ValueError as exc:
                caught.append(str(exc))

        engine.spawn(parent())
        engine.run()
        assert caught == ["child broke"]

    def test_unwaited_crash_surfaces(self, engine):
        def crasher():
            yield engine.timeout(1.0)
            raise RuntimeError("unobserved")

        engine.spawn(crasher())
        with pytest.raises(SimulationError, match="unhandled"):
            engine.run()

    def test_process_is_alive_until_done(self, engine):
        def worker():
            yield engine.timeout(5.0)

        p = engine.spawn(worker())
        assert p.is_alive
        engine.run()
        assert not p.is_alive

    def test_interrupt_raises_in_process(self, engine):
        events = []

        def sleeper():
            try:
                yield engine.timeout(100.0)
            except Interrupt as i:
                events.append(("interrupted", i.cause, engine.now))

        def killer(victim):
            yield engine.timeout(3.0)
            victim.interrupt("stop now")

        victim = engine.spawn(sleeper())
        engine.spawn(killer(victim))
        engine.run()
        assert events == [("interrupted", "stop now", 3.0)]

    def test_yielding_garbage_fails_process(self, engine):
        def bad():
            yield 12345

        p = engine.spawn(bad())
        waiter_caught = []

        def waiter():
            try:
                yield p
            except SimulationError:
                waiter_caught.append(True)

        engine.spawn(waiter())
        engine.run()
        assert waiter_caught == [True]


class TestComposites:
    def test_allof_collects_in_order(self, engine):
        def child(d, v):
            yield engine.timeout(d)
            return v

        got = []

        def parent():
            a = engine.spawn(child(3.0, "slow"))
            b = engine.spawn(child(1.0, "fast"))
            values = yield AllOf([a, b])
            got.append((engine.now, values))

        engine.spawn(parent())
        engine.run()
        assert got == [(3.0, ["slow", "fast"])]

    def test_allof_empty_completes_immediately(self, engine):
        got = []

        def parent():
            values = yield AllOf([])
            got.append(values)

        engine.spawn(parent())
        engine.run()
        assert got == [[]]

    def test_anyof_returns_first(self, engine):
        def child(d, v):
            yield engine.timeout(d)
            return v

        got = []

        def parent():
            a = engine.spawn(child(3.0, "slow"))
            b = engine.spawn(child(1.0, "fast"))
            index, value = yield AnyOf([a, b])
            got.append((engine.now, index, value))
            yield a  # drain the slow one

        engine.spawn(parent())
        engine.run()
        assert got == [(1.0, 1, "fast")]

    def test_anyof_requires_children(self, engine):
        with pytest.raises(ValueError):
            AnyOf([])

    def test_allof_failure_propagates(self, engine):
        def bad():
            yield engine.timeout(1.0)
            raise ValueError("nope")

        def good():
            yield engine.timeout(2.0)

        caught = []

        def parent():
            try:
                yield AllOf([engine.spawn(bad()), engine.spawn(good())])
            except ValueError:
                caught.append(engine.now)

        engine.spawn(parent())
        engine.run()
        assert caught == [1.0]


class TestRunLoop:
    def test_deadlock_detection_names_processes(self, engine):
        def stuck():
            yield engine.event("never")

        engine.spawn(stuck(), name="victim")
        with pytest.raises(DeadlockError, match="victim"):
            engine.run()

    def test_run_until_stops_at_time(self, engine):
        log = []

        def ticker():
            for _ in range(10):
                yield engine.timeout(1.0)
                log.append(engine.now)

        engine.spawn(ticker())
        engine.run(until=3.5)
        assert log == [1.0, 2.0, 3.0]
        assert engine.now == 3.5

    def test_determinism_same_trace(self):
        def build():
            eng = Engine()
            order = []

            def proc(tag, delay):
                yield eng.timeout(delay)
                order.append(tag)
                yield eng.timeout(delay)
                order.append(tag.upper())

            for i, d in enumerate([0.3, 0.1, 0.2]):
                eng.spawn(proc(f"p{i}", d))
            eng.run()
            return order, eng.event_count

        assert build() == build()

    def test_simultaneous_events_fire_in_schedule_order(self, engine):
        order = []

        def proc(tag):
            yield engine.timeout(1.0)
            order.append(tag)

        for tag in "abcde":
            engine.spawn(proc(tag))
        engine.run()
        assert order == list("abcde")

    def test_event_count_advances(self, engine):
        def proc():
            yield engine.timeout(1.0)

        engine.spawn(proc())
        engine.run()
        assert engine.event_count > 0
