"""Unit tests for contended resources."""

from __future__ import annotations

import pytest

from repro.simulator import BandwidthChannel, Engine, Resource, TokenBucket
from repro.simulator.engine import SimulationError


class TestResource:
    def test_grant_within_capacity_is_immediate(self, engine):
        res = Resource(engine, capacity=2)
        ev = res.acquire()
        assert ev.triggered
        assert res.in_use == 1

    def test_fifo_queue_order(self, engine):
        res = Resource(engine, capacity=1)
        order = []

        def worker(tag, hold):
            yield res.acquire()
            order.append((engine.now, tag))
            yield engine.timeout(hold)
            res.release()

        engine.spawn(worker("a", 2.0))
        engine.spawn(worker("b", 1.0))
        engine.spawn(worker("c", 1.0))
        engine.run()
        assert order == [(0.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_multi_unit_acquire(self, engine):
        res = Resource(engine, capacity=3)
        times = []

        def big():
            yield res.acquire(3)
            times.append(("big", engine.now))
            yield engine.timeout(1.0)
            res.release(3)

        def small():
            yield engine.timeout(0.1)
            yield res.acquire(1)
            times.append(("small", engine.now))
            res.release(1)

        engine.spawn(big())
        engine.spawn(small())
        engine.run()
        assert times == [("big", 0.0), ("small", 1.0)]

    def test_invalid_amounts(self, engine):
        res = Resource(engine, capacity=2)
        with pytest.raises(ValueError):
            res.acquire(0)
        with pytest.raises(ValueError):
            res.acquire(3)
        with pytest.raises(SimulationError):
            res.release()  # nothing held

    def test_capacity_validation(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)

    def test_queued_counter(self, engine):
        res = Resource(engine, capacity=1)
        res.acquire()
        res.acquire()
        res.acquire()
        assert res.queued == 2


class TestBandwidthChannel:
    def test_single_transfer_time(self, engine):
        ch = BandwidthChannel(engine, bandwidth=100.0, streams=1)
        done = []

        def mover():
            yield ch.transfer(50.0)
            done.append(engine.now)

        engine.spawn(mover())
        engine.run()
        assert done == [0.5]

    def test_streams_divide_bandwidth(self, engine):
        # 2 streams of 50 B/s each: two concurrent 100 B transfers both
        # take 2 s; a third queues and finishes at 4 s.
        ch = BandwidthChannel(engine, bandwidth=100.0, streams=2)
        done = []

        def mover(tag):
            yield ch.transfer(100.0)
            done.append((tag, engine.now))

        for t in "abc":
            engine.spawn(mover(t))
        engine.run()
        assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]

    def test_zero_byte_transfer_is_free(self, engine):
        ch = BandwidthChannel(engine, bandwidth=10.0)
        done = []

        def mover():
            yield ch.transfer(0.0)
            done.append(engine.now)

        engine.spawn(mover())
        engine.run()
        assert done == [0.0]

    def test_accounting(self, engine):
        ch = BandwidthChannel(engine, bandwidth=10.0)

        def mover():
            yield ch.transfer(5.0)

        engine.spawn(mover())
        engine.run()
        assert ch.bytes_moved == 5.0
        assert ch.busy_time == pytest.approx(0.5)

    def test_negative_bytes_rejected(self, engine):
        ch = BandwidthChannel(engine, bandwidth=10.0)
        with pytest.raises(ValueError):
            ch.transfer(-1.0)

    def test_bandwidth_validation(self, engine):
        with pytest.raises(ValueError):
            BandwidthChannel(engine, bandwidth=0.0)


class TestTokenBucket:
    def test_burst_without_wait(self, engine):
        bucket = TokenBucket(engine, rate=1.0, capacity=5.0)
        done = []

        def taker():
            yield bucket.take(5.0)
            done.append(engine.now)

        engine.spawn(taker())
        engine.run()
        assert done == [0.0]

    def test_refill_wait(self, engine):
        bucket = TokenBucket(engine, rate=2.0, capacity=2.0)
        done = []

        def taker():
            yield bucket.take(2.0)     # drains the bucket
            yield bucket.take(2.0)     # must wait 1 s for refill
            done.append(engine.now)

        engine.spawn(taker())
        engine.run()
        assert done == [pytest.approx(1.0)]

    def test_invalid_take(self, engine):
        bucket = TokenBucket(engine, rate=1.0, capacity=1.0)
        with pytest.raises(ValueError):
            bucket.take(2.0)
        with pytest.raises(ValueError):
            bucket.take(0.0)

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            TokenBucket(engine, rate=0.0, capacity=1.0)
