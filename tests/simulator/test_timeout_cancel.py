"""Timeout/cancel watchdog cycles must keep the event heap bounded.

The replay layer (and any watchdog pattern) schedules far-future
timeouts that are almost always cancelled before they fire.  Cancelled
entries are lazily deleted: the drain loop skips them without counting
them, and :meth:`Engine._note_cancelled` compacts the heap in place
once cancelled entries dominate — so a long-running job that arms and
disarms a watchdog per step runs in O(live events) memory, not
O(steps).
"""

from __future__ import annotations

from repro.simulator import Engine

CYCLES = 2000


def _watchdog_loop(engine: Engine, cycles: int = CYCLES):
    for _ in range(cycles):
        watchdog = engine.timeout(1e6, name="watchdog")
        yield engine.timeout(1e-6)
        watchdog.cancel()


def test_timeout_cancel_cycles_keep_heap_bounded():
    engine = Engine()
    engine.spawn(_watchdog_loop(engine), name="worker")
    engine.run()
    # 2000 cancelled watchdogs were pushed; lazy deletion + periodic
    # compaction must leave the heap near-empty, not linear in cycles.
    assert len(engine._heap) < 200


def test_cancelled_timeouts_are_not_processed_or_counted():
    engine = Engine()
    engine.spawn(_watchdog_loop(engine, 100), name="worker")
    engine.run()
    # Every cycle processes its short timeout (plus process bookkeeping)
    # but never a cancelled watchdog: the count stays well below the
    # 2-events-per-cycle a naive drain would report.  (Draining a
    # cancelled entry may still advance virtual time past it — only
    # processing, i.e. callbacks and counting, is suppressed.)
    assert engine.event_count < 150


def test_cancel_after_trigger_suppresses_processing():
    engine = Engine()
    fired = []
    ev = engine.timeout(0.5, name="late")
    ev.add_callback(lambda e: fired.append(e))

    def prog():
        yield engine.timeout(0.25)
        ev.cancel()  # already _TRIGGERED (queued), not yet processed

    engine.spawn(prog(), name="canceller")
    engine.run()
    assert fired == []
    assert not ev.processed


def test_heap_compaction_preserves_live_ordering():
    """Compaction (heapify of survivors) must not reorder live events."""
    engine = Engine()
    order = []

    def prog():
        # Arm enough cancelled entries to force at least one compaction
        # (threshold: >= 64 cancelled and more cancelled than live).
        for i in range(300):
            wd = engine.timeout(1e6)
            yield engine.timeout(1e-6)
            wd.cancel()
        for delay in (3e-3, 1e-3, 2e-3):
            ev = engine.timeout(delay, value=delay)
            ev.add_callback(lambda e: order.append(e.value))
        yield engine.timeout(5e-3)

    engine.spawn(prog(), name="worker")
    engine.run()
    assert order == [1e-3, 2e-3, 3e-3]
