"""Tests of the critical-path decomposition (repro/analysis)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.critical_path import (
    OUTSIDE,
    critical_path_report,
    format_report,
)
from repro.bench.observe import run_traced_allgather
from repro.mpi import Bytes
from tests.helpers import run


def mixed_program(mpi):
    yield from mpi.world.allgather(Bytes(64))
    yield from mpi.world.barrier()
    return mpi.now


def test_empty_trace():
    report = critical_path_report([])
    assert report.total == 0.0 and report.categories == {}
    report = critical_path_report([], total_time=2.0)
    assert report.categories == {OUTSIDE: 2.0}


def test_hand_built_tree_self_times():
    trace = [
        {"t": 0.0, "rank": 0, "op": "allgather", "algo": "ring",
         "kind": "dispatch", "sid": 1, "parent": None, "depth": 0,
         "dur": 10.0},
        {"t": 1.0, "rank": 0, "kind": "phase", "phase": "bridge_exchange",
         "sid": 2, "parent": 1, "depth": 1, "dur": 6.0},
        {"t": 8.0, "rank": 0, "kind": "phase", "phase": "post_sync",
         "sid": 3, "parent": 1, "depth": 1, "dur": 2.0},
    ]
    report = critical_path_report(trace, total_time=12.0)
    assert report.rank == 0
    cats = report.categories
    assert cats["allgather:ring/bridge_exchange"] == 6.0
    assert cats["allgather:ring/post_sync"] == 2.0
    assert cats["allgather:ring"] == pytest.approx(2.0)  # self time
    assert cats[OUTSIDE] == pytest.approx(2.0)
    assert report.calls["allgather:ring"] == 1


def test_critical_rank_is_latest_finisher():
    trace = [
        {"t": 0.0, "rank": 0, "op": "a", "algo": "x", "kind": "dispatch",
         "sid": 1, "parent": None, "depth": 0, "dur": 1.0},
        {"t": 0.0, "rank": 3, "op": "a", "algo": "x", "kind": "dispatch",
         "sid": 2, "parent": None, "depth": 0, "dur": 5.0},
    ]
    assert critical_path_report(trace).rank == 3


def test_phase_times_sum_to_total_on_real_run():
    """Acceptance: per-category times sum to end-to-end virtual time."""
    result = run(mixed_program, nodes=2, cores=2, trace="phase",
                 payload_mode="model")
    report = critical_path_report(result.trace, total_time=result.elapsed)
    assert report.total == result.elapsed
    assert sum(report.categories.values()) == pytest.approx(report.total,
                                                            rel=1e-9)


def test_fig9_config_distinguishes_bridge_from_sync():
    """Acceptance: a Fig 9-config hybrid run separates the bridge
    exchange from the on-node sync phases, and the report covers the
    full end-to-end time."""
    result, tracer = run_traced_allgather(nodes=4, ppn=8, elements=512,
                                          reps=2, warmup=1)
    phases = {r["phase"] for r in result.trace if r.get("kind") == "phase"}
    assert "bridge_exchange" in phases
    assert {"pre_sync", "post_sync"} <= phases
    # Nested: every phase span has a parent dispatch span.
    by_sid = {r["sid"]: r for r in result.trace if "sid" in r}
    assert all(r["parent"] in by_sid for r in result.trace
               if r.get("kind") == "phase")
    report = critical_path_report(result.trace, total_time=result.elapsed)
    assert sum(report.categories.values()) == pytest.approx(result.elapsed,
                                                            rel=1e-9)
    labels = set(report.categories)
    assert any("bridge_exchange" in lbl for lbl in labels)
    assert any("sync" in lbl for lbl in labels)


def test_traced_run_is_deterministic():
    streams = []
    for _ in range(2):
        result, _ = run_traced_allgather(nodes=2, ppn=4, elements=128,
                                         reps=2, warmup=0)
        streams.append(json.dumps(result.trace, sort_keys=True))
    assert streams[0] == streams[1]


def test_format_report_renders_table():
    result = run(mixed_program, nodes=2, cores=2, trace="phase",
                 payload_mode="model")
    report = critical_path_report(result.trace, total_time=result.elapsed)
    text = format_report(report)
    assert "critical rank:" in text
    assert "end-to-end:" in text
    assert OUTSIDE in text
