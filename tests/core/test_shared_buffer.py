"""Direct unit tests for SharedBuffer geometry and payloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridContext
from repro.core.shared_buffer import SharedBuffer
from repro.core.placement import NodeSortedLayout
from repro.machine import Placement
from repro.mpi.datatypes import Bytes
from tests.helpers import returns_of


def build_buffer(mpi_nodes=2, cores=2, sizes=None, payload_mode="data"):
    """Run a tiny job that returns per-rank buffer geometry facts."""
    def prog(mpi):
        ctx = yield from HybridContext.create(mpi.world)
        if sizes is None:
            buf = yield from ctx.allgather_buffer(16)
        else:
            buf = yield from ctx.allgatherv_buffer(list(sizes))
        yield from ctx.shm.barrier()
        return buf

    raise RuntimeError("use the in-program helpers instead")


class TestGeometry:
    def test_slot_offsets_partition_total(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            sizes = [8, 24, 16, 32][: mpi.world.size]
            buf = yield from ctx.allgatherv_buffer(sizes)
            yield from ctx.shm.barrier()
            covered = sum(
                buf.size_of_rank(r) for r in range(mpi.world.size)
            )
            return (covered, buf.total_nbytes)

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(c == t for c, t in rets)

    def test_node_regions_tile_buffer(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(10)
            yield from ctx.shm.barrier()
            regions = [buf.node_region(n) for n in ctx.layout.nodes]
            return regions

        rets = returns_of(prog, nodes=3, cores=2)
        for regions in rets:
            end = 0
            for off, nbytes in regions:
                assert off == end
                end += nbytes
            assert end == 60

    def test_mismatched_slot_sizes_rejected(self):
        layout = NodeSortedLayout((0, 1), Placement.block(1, 2))
        with pytest.raises(ValueError):
            SharedBuffer(
                win=None, layout=layout, slot_sizes=[8],
                my_rank=0, node=0, data_mode=False,
            )


class TestPayloads:
    def test_node_payload_matches_region_in_model_mode(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(100)
            yield from ctx.shm.barrier()
            payload = buf.node_payload()
            _off, nbytes = buf.my_node_region
            return (isinstance(payload, Bytes), payload.nbytes == nbytes)

        rets = returns_of(prog, nodes=2, cores=3, payload_mode="model")
        assert all(r == (True, True) for r in rets)

    def test_node_payload_is_window_view_in_data_mode(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(8)
            buf.local_view(np.float64)[:] = mpi.world.rank + 1
            yield from ctx.shm.barrier()
            payload = buf.node_payload()
            # The payload aliases the window: mutating it is visible.
            return [float(x) for x in np.asarray(payload).view(np.float64)]

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets[0] == [1.0, 2.0]
        assert rets[2] == [3.0, 4.0]

    def test_write_region_roundtrip(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(8)
            yield from ctx.shm.barrier()
            if ctx.is_leader:
                data = np.array([42.5]).view(np.uint8)
                offset, _n = buf.node_region(ctx.node)
                buf.write_region(offset, data)
            yield from ctx.shm.barrier()
            return float(buf.node_view(np.float64)[buf.my_slot - buf.my_slot])

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == 42.5 for r in rets)

    def test_write_region_noop_in_model_mode(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(8)
            yield from ctx.shm.barrier()
            buf.write_region(0, Bytes(8))  # must not raise
            return buf.node_view() is None

        assert all(returns_of(prog, nodes=1, cores=2, nprocs=2,
                              payload_mode="model"))

    def test_region_payload_arbitrary_window(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(8)
            buf.local_view(np.float64)[:] = float(mpi.world.rank)
            yield from ctx.shm.barrier()
            part = buf.region_payload(8, 8)  # rank 1's slot
            return float(np.asarray(part).view(np.float64)[0])

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == 1.0 for r in rets)


class TestBroadcastBuffers:
    def test_bcast_buffer_single_region(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.bcast_buffer(64)
            yield from ctx.shm.barrier()
            return (buf.total_nbytes, len(buf.node_view(np.float64)))

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == (64, 8) for r in rets)

    def test_each_node_gets_its_own_copy(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.bcast_buffer(8)
            yield from ctx.shm.barrier()
            if ctx.is_leader:
                buf.node_view(np.float64)[:] = float(ctx.node + 7)
            yield from ctx.shm.barrier()
            return float(buf.node_view(np.float64)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets == [7.0, 7.0, 8.0, 8.0]
