"""Tests for the synchronization policies (barrier vs shared flags)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BarrierSync, FlagSync, HybridContext
from tests.helpers import returns_of, run


def hybrid_ag(sync, *, nodes=2, cores=3, epochs=1, nbytes=8):
    def prog(mpi):
        comm = mpi.world
        ctx = yield from HybridContext.create(comm, default_sync=sync)
        buf = yield from ctx.allgather_buffer(nbytes)
        times = []
        for _ in range(epochs):
            t0 = mpi.now
            yield from ctx.allgather(buf)
            times.append(mpi.now - t0)
        return times

    return run(prog, nodes=nodes, cores=cores, payload_mode="model")


class TestBarrierSync:
    def test_orders_leader_after_children(self):
        # Leaders must observe the pre-sync after the slowest child.
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.allgather_buffer(8)
            if comm.rank == 1:  # a child is slow to write
                yield mpi.compute(1e-3)
            yield from ctx.allgather(buf)
            return mpi.now

        rets = returns_of(prog, nodes=2, cores=2, payload_mode="model")
        assert all(t >= 1e-3 for t in rets)


class TestFlagSync:
    def test_validation(self):
        with pytest.raises(ValueError):
            FlagSync(flag_latency=-1.0)

    def test_cheaper_than_barrier(self):
        barrier = max(hybrid_ag(BarrierSync()).returns)[0]
        flags = max(hybrid_ag(FlagSync()).returns)[0]
        assert flags < barrier

    def test_multiple_epochs_stay_consistent(self):
        result = hybrid_ag(FlagSync(), epochs=5)
        for times in result.returns:
            assert len(times) == 5
            # Steady state: epochs 2..5 cost the same.
            assert times[1] == pytest.approx(times[-1])

    def test_children_wait_for_leader_release(self):
        # A slow LEADER (doing the bridge exchange) must gate children.
        sync = FlagSync()

        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm, default_sync=sync)
            buf = yield from ctx.allgather_buffer(100_000)  # slow exchange
            yield from ctx.allgather(buf)
            return mpi.now

        rets = returns_of(prog, nodes=2, cores=3, payload_mode="model")
        # Everyone (children included) finishes at/after the exchange.
        exchange_floor = 100_000 / 1.0e9  # node block / bandwidth
        assert all(t > exchange_floor for t in rets)

    def test_single_node_round_trip(self):
        sync = FlagSync()

        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm, default_sync=sync)
            buf = yield from ctx.allgather_buffer(8)
            buf_view = buf.local_view(np.float64)
            if buf_view is not None:
                buf_view[:] = comm.rank
            yield from ctx.allgather(buf)
            return float(buf.node_view(np.float64).sum())

        rets = returns_of(prog, nodes=1, cores=4, nprocs=4)
        assert all(r == 6.0 for r in rets)


class TestSyncCostModel:
    def test_barrier_cost_grows_with_ppn(self):
        t4 = max(hybrid_ag(BarrierSync(), nodes=1, cores=4).returns)[0]
        t16 = max(hybrid_ag(BarrierSync(), nodes=1, cores=16).returns)[0]
        assert t16 > t4

    def test_flag_cost_independent_of_message_size(self):
        small = max(hybrid_ag(FlagSync(), nodes=1, cores=4,
                              nbytes=8).returns)[0]
        large = max(hybrid_ag(FlagSync(), nodes=1, cores=4,
                              nbytes=80_000).returns)[0]
        assert small == pytest.approx(large)
