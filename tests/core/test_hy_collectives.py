"""Correctness of the hybrid collectives (data mode, vs references)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FlagSync, HybridContext
from repro.core.alltoall import alloc_alltoall_buffers, hy_alltoall
from repro.core.gather import hy_gather, hy_scatter
from repro.core.reduce import hy_reduce
from repro.machine import Placement
from repro.mpi.constants import ReduceOp
from tests.helpers import returns_of

SHAPES = [(1, 4), (2, 2), (2, 3), (3, 2), (1, 1)]


def _id(s):
    return f"{s[0]}x{s[1]}"


@pytest.mark.parametrize("shape", SHAPES, ids=_id)
class TestHyAllgather:
    def test_full_result_everywhere(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.allgather_buffer(16)
            buf.local_view(np.float64)[:] = comm.rank
            yield from ctx.allgather(buf)
            full = buf.node_view(np.float64).reshape(comm.size, 2)
            return [float(v) for v in full[:, 0]]

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          nprocs=nodes * cores)
        expected = [float(r) for r in range(nodes * cores)]
        assert all(r == expected for r in rets)

    def test_repeated_epochs_update(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.allgather_buffer(8)
            sums = []
            for epoch in range(3):
                buf.local_view(np.float64)[:] = comm.rank + epoch * 100
                yield from ctx.allgather(buf)
                sums.append(float(buf.node_view(np.float64).sum()))
                # Re-sync before the next epoch overwrites the buffer.
                yield from ctx.shm.barrier()
            return sums

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          nprocs=nodes * cores)
        size = nodes * cores
        base = sum(range(size))
        expected = [float(base + e * 100 * size) for e in range(3)]
        assert all(r == expected for r in rets)


class TestHyAllgatherVariants:
    def test_irregular_sizes(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            sizes = [8 * (r + 1) for r in range(comm.size)]
            buf = yield from ctx.allgatherv_buffer(sizes)
            buf.local_view(np.float64)[:] = comm.rank
            yield from ctx.allgather(buf)
            return [
                list(buf.slot_view(r, np.float64))
                for r in range(comm.size)
            ]

        rets = returns_of(prog, nodes=2, cores=2)
        for r in rets:
            for rank, block in enumerate(r):
                assert block == [float(rank)] * (rank + 1)

    def test_pipelined_matches_plain(self):
        def make(pipelined):
            def prog(mpi):
                comm = mpi.world
                ctx = yield from HybridContext.create(comm)
                buf = yield from ctx.allgather_buffer(50_000)
                buf.local_view(np.float64)[:] = comm.rank
                yield from ctx.allgather(
                    buf, pipelined=pipelined, chunk_bytes=16_384
                )
                return float(buf.node_view(np.float64).sum())

            return prog

        plain = returns_of(make(False), nodes=3, cores=2)
        piped = returns_of(make(True), nodes=3, cores=2)
        assert plain == piped

    def test_flag_sync_matches_barrier_sync(self):
        def make(sync):
            def prog(mpi):
                comm = mpi.world
                ctx = yield from HybridContext.create(
                    comm, default_sync=sync
                )
                buf = yield from ctx.allgather_buffer(8)
                buf.local_view(np.float64)[:] = comm.rank * 2
                yield from ctx.allgather(buf)
                return list(buf.node_view(np.float64))

            return prog

        a = returns_of(make(None), nodes=2, cores=3)
        b = returns_of(make(FlagSync()), nodes=2, cores=3)
        assert a == b

    def test_round_robin_placement_correctness(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.allgather_buffer(8)
            buf.local_view(np.float64)[:] = comm.rank
            yield from ctx.allgather(buf)
            return [
                float(buf.slot_view(r, np.float64)[0])
                for r in range(comm.size)
            ]

        placement = Placement.round_robin(2, 3)
        rets = returns_of(prog, nodes=2, cores=3, placement=placement)
        assert all(r == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0] for r in rets)


@pytest.mark.parametrize("shape", SHAPES, ids=_id)
class TestHyBcast:
    def test_from_rank0(self, shape):
        nodes, cores = shape

        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.bcast_buffer(32)
            if comm.rank == 0:
                buf.node_view(np.float64)[:] = np.arange(4.0) + 7
            yield from ctx.bcast(buf, root=0)
            return list(buf.node_view(np.float64))

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          nprocs=nodes * cores)
        assert all(r == [7.0, 8.0, 9.0, 10.0] for r in rets)


class TestHyBcastRoots:
    @pytest.mark.parametrize("root", [0, 1, 3, 5])
    def test_non_leader_roots(self, root):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.bcast_buffer(16)
            if comm.rank == root:
                buf.node_view(np.float64)[:] = root * 11.0
            yield from ctx.bcast(buf, root=root)
            return float(buf.node_view(np.float64)[0])

        rets = returns_of(prog, nodes=2, cores=3)
        assert all(r == root * 11.0 for r in rets)


class TestHyReductions:
    @pytest.mark.parametrize("shape", SHAPES, ids=_id)
    def test_allreduce_sum(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            contrib = np.full(4, float(comm.rank))
            out = yield from ctx.allreduce(contrib, 32)
            return list(np.asarray(out))

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          nprocs=nodes * cores)
        assert all(r == [float(sum(range(size)))] * 4 for r in rets)

    def test_allreduce_max(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            out = yield from ctx.allreduce(
                np.array([float(comm.rank)]), 8, op=ReduceOp.MAX
            )
            return float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=2, cores=3)
        assert all(r == 5.0 for r in rets)

    def test_reduce_to_root_node(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            from repro.core.reduce import hy_reduce

            out = yield from hy_reduce(
                ctx, np.array([1.0]), 8, ReduceOp.SUM, root=2
            )
            return None if out is None else float(np.asarray(out)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        # root 2 is on node 1; both node-1 ranks share the result window.
        assert rets[2] == 4.0
        assert rets[0] is None and rets[1] is None

    def test_allreduce_size_mismatch_rejected(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            try:
                yield from ctx.allreduce(np.zeros(4), 999)
            except ValueError:
                yield from comm.barrier()
                return "rejected"
            return "accepted"

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == "rejected" for r in rets)


class TestHyGatherScatter:
    def test_gather_to_root_node(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.allgather_buffer(8)
            buf.local_view(np.float64)[:] = comm.rank * 3.0
            yield from hy_gather(ctx, buf, root=0)
            if mpi.node == 0:
                return [
                    float(buf.slot_view(r, np.float64)[0])
                    for r in range(comm.size)
                ]
            return None

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets[0] == [0.0, 3.0, 6.0, 9.0]
        assert rets[1] == [0.0, 3.0, 6.0, 9.0]  # shared on the node
        assert rets[2] is None

    def test_scatter_from_root(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            buf = yield from ctx.allgather_buffer(8)
            if comm.rank == 0:
                view = buf.node_view(np.float64)
                view[:] = np.arange(comm.size, dtype=np.float64) * 5
            yield from hy_scatter(ctx, buf, root=0)
            return float(buf.local_view(np.float64)[0])

        rets = returns_of(prog, nodes=2, cores=2)
        assert rets == [0.0, 5.0, 10.0, 15.0]


class TestHyAlltoall:
    @pytest.mark.parametrize("shape", [(2, 2), (2, 3), (3, 2)], ids=_id)
    def test_personalized_exchange(self, shape):
        nodes, cores = shape
        size = nodes * cores

        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            bufs = yield from alloc_alltoall_buffers(ctx, block_bytes=8)
            out = bufs.my_out_row()
            for dst in range(comm.size):
                out[dst].view(np.float64)[0] = comm.rank * 100 + dst
            yield from hy_alltoall(ctx, bufs)
            inc = bufs.my_in_row()
            return [float(inc[src].view(np.float64)[0])
                    for src in range(comm.size)]

        rets = returns_of(prog, nodes=nodes, cores=cores,
                          nprocs=nodes * cores)
        for rank, incoming in enumerate(rets):
            assert incoming == [
                float(src * 100 + rank) for src in range(size)
            ], rank
