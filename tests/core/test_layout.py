"""Tests for the node-sorted slot layout (paper §6)."""

from __future__ import annotations

import pytest

from repro.core import NodeSortedLayout
from repro.machine import Placement


def layout_for(placement, comm_world_ranks=None):
    ranks = tuple(comm_world_ranks or range(placement.num_ranks))
    return NodeSortedLayout(ranks, placement)


class TestIdentityCase:
    def test_block_placement_is_identity(self):
        lay = layout_for(Placement.block(3, 4))
        assert lay.is_identity
        assert [lay.slot_of_rank(r) for r in range(12)] == list(range(12))

    def test_nodes_listed_ascending(self):
        lay = layout_for(Placement.block(3, 2))
        assert lay.nodes == [0, 1, 2]


class TestPermutedCase:
    def test_round_robin_groups_by_node(self):
        lay = layout_for(Placement.round_robin(2, 3))
        assert not lay.is_identity
        # node 0: comm ranks 0,2,4 -> slots 0,1,2; node 1: 1,3,5 -> 3,4,5
        assert [lay.slot_of_rank(r) for r in range(6)] == [0, 3, 1, 4, 2, 5]

    def test_roundtrip(self):
        lay = layout_for(Placement.round_robin(3, 4))
        for r in range(12):
            assert lay.rank_of_slot(lay.slot_of_rank(r)) == r

    def test_node_regions_contiguous(self):
        lay = layout_for(Placement.round_robin(2, 3))
        assert lay.node_slot_start(0) == 0
        assert lay.node_count(0) == 3
        assert lay.node_slot_start(1) == 3
        assert lay.node_counts_in_order() == [3, 3]


class TestSubcommunicator:
    def test_partial_membership(self):
        # A communicator holding only world ranks 1, 2, 5 of a 2x3 machine.
        placement = Placement.block(2, 3)
        lay = layout_for(placement, comm_world_ranks=(1, 2, 5))
        # world 1,2 on node 0 -> slots 0,1; world 5 on node 1 -> slot 2.
        assert lay.size == 3
        assert lay.slot_of_rank(0) == 0
        assert lay.slot_of_rank(1) == 1
        assert lay.slot_of_rank(2) == 2
        assert lay.nodes == [0, 1]
        assert lay.node_count(1) == 1

    def test_validation_of_sizes(self):
        placement = Placement.block(2, 2)
        lay = layout_for(placement)
        with pytest.raises(KeyError):
            lay.node_slot_start(99)
