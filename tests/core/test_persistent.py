"""Tests for persistent collective plans and calibration probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridContext
from repro.core.persistent import AllgatherPlan, BcastPlan
from repro.machine import hazel_hen, testing_machine as make_testing_spec
from repro.machine.calibration import probe_machine, probe_report
from tests.helpers import returns_of


class TestAllgatherPlan:
    def test_repeated_starts_produce_fresh_results(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            plan = yield from AllgatherPlan.build(ctx, nbytes_per_rank=8)
            sums = []
            for epoch in range(3):
                plan.buf.local_view(np.float64)[:] = comm.rank + epoch
                yield from plan.start()
                sums.append(float(plan.buf.node_view(np.float64).sum()))
                yield from ctx.shm.barrier()
            return (sums, plan.starts)

        rets = returns_of(prog, nodes=2, cores=2)
        base = sum(range(4))
        expected = [float(base + e * 4) for e in range(3)]
        assert all(r == (expected, 3) for r in rets)

    def test_irregular_plan(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            sizes = [8 * (r + 1) for r in range(comm.size)]
            plan = yield from AllgatherPlan.build(
                ctx, nbytes_by_rank=sizes
            )
            plan.buf.local_view(np.float64)[:] = comm.rank
            yield from plan.start()
            return plan.buf.total_nbytes

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == 8 + 16 + 24 + 32 for r in rets)

    def test_exactly_one_size_argument(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            try:
                yield from AllgatherPlan.build(ctx)
            except ValueError:
                yield from mpi.world.barrier()
                return "rejected"
            return "ok"

        rets = returns_of(prog, nodes=1, cores=2, nprocs=2)
        assert all(r == "rejected" for r in rets)

    def test_amortization_start_cheaper_than_build(self):
        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            t0 = mpi.now
            plan = yield from AllgatherPlan.build(
                ctx, nbytes_per_rank=1024
            )
            yield from plan.start()
            first = mpi.now - t0
            t1 = mpi.now
            yield from plan.start()
            second = mpi.now - t1
            # One-off setup is zero-cost gates in the model, so the two
            # are nearly equal; the second must never be meaningfully
            # more expensive (no per-start re-setup).
            return second <= first * 1.05

        assert all(returns_of(prog, nodes=2, cores=2,
                              payload_mode="model"))


class TestBcastPlan:
    def test_repeated_broadcasts(self):
        def prog(mpi):
            comm = mpi.world
            ctx = yield from HybridContext.create(comm)
            plan = yield from BcastPlan.build(ctx, nbytes=16, root=0)
            seen = []
            for epoch in range(2):
                if comm.rank == 0:
                    plan.buf.node_view(np.float64)[:] = epoch * 10.0
                yield from plan.start()
                seen.append(float(plan.buf.node_view(np.float64)[0]))
                yield from ctx.shm.barrier()
            return seen

        rets = returns_of(prog, nodes=2, cores=2)
        assert all(r == [0.0, 10.0] for r in rets)


class TestCalibrationProbes:
    def test_probes_match_testing_spec(self):
        probe = probe_machine(lambda n: make_testing_spec(n, 4))
        # testing machine: alpha 1 us, flat topology (no hop latency).
        assert probe.internode_latency == pytest.approx(1.0e-6, rel=0.01)
        # Large messages approach the 1 GB/s point-to-point bandwidth
        # (rendezvous handshake amortized away).
        assert probe.internode_bandwidth == pytest.approx(1.0e9, rel=0.15)
        # Intra-node large message: single-copy LMT at one stream's
        # 5 GB/s, moving 2n bytes -> effective 2.5 GB/s.
        assert probe.intranode_copy_bandwidth == pytest.approx(
            2.5e9, rel=0.2
        )
        assert probe.shm_barrier_24 > 0

    def test_hazel_hen_probe_sane(self):
        probe = probe_machine(hazel_hen)
        assert 1.0e-6 < probe.internode_latency < 3.0e-6
        assert 5.0e9 < probe.internode_bandwidth < 12.0e9
        assert probe.allgather_1rpn_8nodes > probe.internode_latency

    def test_report_renders(self):
        text = probe_report(lambda n: make_testing_spec(n, 2), name="tiny")
        assert "tiny" in text
        assert "GB/s" in text
