"""Small-scale timing assertions of the paper's headline claims.

These are the paper's qualitative results stated as executable tests at
test-suite-friendly sizes; the full-scale versions live in benchmarks/.
"""

from __future__ import annotations

import pytest

from repro.bench.osu import osu_allgather_latency
from repro.machine import Placement, hazel_hen, vulcan
from repro.mpi import run_program


def latencies(spec, placement, nbytes):
    hy = osu_allgather_latency(spec, placement, nbytes, "hybrid")
    pure = osu_allgather_latency(spec, placement, nbytes, "pure")
    return hy, pure


class TestFig7Claims:
    """Single full node: hybrid flat and faster; pure grows."""

    def test_hybrid_constant_pure_growing(self):
        spec = hazel_hen(1)
        placement = Placement.block(1, 24)
        hy_small, pure_small = latencies(spec, placement, 8)
        hy_big, pure_big = latencies(spec, placement, 8 * 16384)
        assert hy_small == pytest.approx(hy_big)    # one barrier each
        assert pure_big > 100 * pure_small          # steady growth
        assert hy_small < pure_small
        assert hy_big < pure_big

    def test_holds_for_both_libraries(self):
        placement = Placement.block(1, 24)
        for spec in (hazel_hen(1), vulcan(1)):
            hy, pure = latencies(spec, placement, 4096)
            assert hy < pure, spec.name


class TestFig8Claims:
    """One rank per node: hybrid slightly slower, never dramatically."""

    def test_hybrid_never_better_never_catastrophic(self):
        spec = hazel_hen(8)
        placement = Placement.irregular([1] * 8)
        for elements in (1, 512, 16384):
            hy, pure = latencies(spec, placement, elements * 8)
            assert hy >= 0.95 * pure, elements
            assert hy <= 1.6 * pure, elements


class TestFig9Claims:
    """Advantage grows with ranks per node."""

    def test_monotone_in_ppn(self):
        spec = hazel_hen(4)
        ratios = []
        for ppn in (2, 4, 8):
            placement = Placement.block(4, ppn)
            hy, pure = latencies(spec, placement, 512 * 8)
            ratios.append(pure / hy)
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0] > 1.0


class TestFig10Claims:
    """Irregular population: hybrid still wins."""

    def test_irregular_advantage(self):
        spec = hazel_hen(4)
        placement = Placement.irregular([6, 6, 6, 4])
        for elements in (64, 4096):
            hy = osu_allgather_latency(
                spec, placement, elements * 8, "hybrid"
            )
            pure = osu_allgather_latency(
                spec, placement, elements * 8, "pure", irregular=True
            )
            assert hy < pure, elements


class TestMemoryClaims:
    """The paper's memory argument: one copy per node, not per rank."""

    def test_hybrid_removes_on_node_copies(self):
        from repro.bench.osu import (
            hybrid_allgather_program,
            pure_allgather_program,
        )

        spec = hazel_hen(2)
        placement = Placement.block(2, 8)
        hy = run_program(
            spec, None, hybrid_allgather_program, placement=placement,
            payload_mode="model",
            program_kwargs={"nbytes_per_rank": 4096},
        )
        pure = run_program(
            spec, None, pure_allgather_program, placement=placement,
            payload_mode="model",
            program_kwargs={"nbytes_per_rank": 4096},
        )
        # Hybrid: zero CICO copies (only barriers + bridge traffic).
        assert hy.intra_copies == 0
        assert pure.intra_copies > 0

    def test_per_node_memory_constant_in_ppn(self):
        # The shared window's size is msg * nprocs per NODE regardless of
        # how many ranks share the node (paper §4: per-core memory costs
        # constant) — every rank handle reports the same total.
        from repro.core import HybridContext

        def prog(mpi):
            ctx = yield from HybridContext.create(mpi.world)
            buf = yield from ctx.allgather_buffer(1024)
            yield from ctx.shm.barrier()
            return buf.win.total_bytes if ctx.is_leader else 0

        for ppn in (2, 4):
            spec = hazel_hen(2)
            placement = Placement.block(2, ppn)
            result = run_program(
                spec, None, prog, placement=placement,
                payload_mode="model",
            )
            window_bytes = [b for b in result.returns if b]
            # One allocation per node, each the full result size.
            assert len(window_bytes) == 2
            assert all(b == 1024 * 2 * ppn for b in window_bytes)
