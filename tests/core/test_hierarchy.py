"""Tests for HybridContext setup and shared buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HybridContext
from repro.machine import Placement
from tests.helpers import returns_of


def make_ctx_prog(body):
    def prog(mpi):
        ctx = yield from HybridContext.create(mpi.world)
        result = yield from body(mpi, ctx)
        return result

    return prog


class TestContextCreation:
    def test_leaders_and_bridge(self):
        def body(mpi, ctx):
            yield from ctx.shm.barrier()
            return (
                ctx.is_leader,
                ctx.num_nodes,
                None if ctx.bridge is None else ctx.bridge.size,
            )

        rets = returns_of(make_ctx_prog(body), nodes=2, cores=3)
        assert rets[0] == (True, 2, 2)
        assert rets[1] == (False, 2, None)
        assert rets[3] == (True, 2, 2)

    def test_single_node_context(self):
        def body(mpi, ctx):
            yield from ctx.shm.barrier()
            return (ctx.multi_node, ctx.num_nodes)

        rets = returns_of(make_ctx_prog(body), nodes=1, cores=4, nprocs=4)
        assert all(r == (False, 1) for r in rets)

    def test_bridge_rank_node_mapping(self):
        def body(mpi, ctx):
            yield from ctx.shm.barrier()
            return [
                ctx.node_of_bridge_rank(b) for b in range(ctx.num_nodes)
            ]

        rets = returns_of(make_ctx_prog(body), nodes=3, cores=2)
        assert all(r == [0, 1, 2] for r in rets)
        assert rets[0] is not None

    def test_context_on_subcommunicator(self):
        def prog(mpi):
            comm = mpi.world
            # Column communicator spanning both nodes.
            col = yield from comm.split(color=comm.rank % 2, key=comm.rank)
            ctx = yield from HybridContext.create(col)
            yield from ctx.shm.barrier()
            return (ctx.num_nodes, ctx.shm.size)

        rets = returns_of(prog, nodes=2, cores=4)
        assert all(r == (2, 2) for r in rets)


class TestBuffers:
    def test_allgather_buffer_layout(self):
        def body(mpi, ctx):
            buf = yield from ctx.allgather_buffer(16)
            yield from ctx.shm.barrier()
            return (
                buf.total_nbytes,
                buf.my_slot,
                buf.offset_of_rank(mpi.world.rank),
                buf.my_node_region,
            )

        rets = returns_of(make_ctx_prog(body), nodes=2, cores=2)
        assert rets[0] == (64, 0, 0, (0, 32))
        assert rets[1] == (64, 1, 16, (0, 32))
        assert rets[2] == (64, 2, 32, (32, 32))

    def test_buffer_cache_reuses_window(self):
        def body(mpi, ctx):
            a = yield from ctx.allgather_buffer(16)
            b = yield from ctx.allgather_buffer(16)
            c = yield from ctx.allgather_buffer(32)
            yield from ctx.shm.barrier()
            return (a is b, a is c)

        rets = returns_of(make_ctx_prog(body), nodes=1, cores=2, nprocs=2)
        assert all(r == (True, False) for r in rets)

    def test_allgatherv_buffer_sizes(self):
        def body(mpi, ctx):
            sizes = [8 * (r + 1) for r in range(mpi.world.size)]
            buf = yield from ctx.allgatherv_buffer(sizes)
            yield from ctx.shm.barrier()
            return [buf.size_of_rank(r) for r in range(mpi.world.size)]

        rets = returns_of(make_ctx_prog(body), nodes=2, cores=2)
        assert all(r == [8, 16, 24, 32] for r in rets)

    def test_allgatherv_buffer_validates_length(self):
        def body(mpi, ctx):
            try:
                yield from ctx.allgatherv_buffer([8])
            except ValueError:
                yield from ctx.shm.barrier()
                return "rejected"
            return "accepted"

        rets = returns_of(make_ctx_prog(body), nodes=1, cores=2, nprocs=2)
        assert all(r == "rejected" for r in rets)

    def test_local_view_is_shared_storage(self):
        def body(mpi, ctx):
            buf = yield from ctx.allgather_buffer(8)
            local = buf.local_view(np.float64)
            local[0] = mpi.world.rank + 0.5
            yield from ctx.shm.barrier()
            # A neighbour on the same node sees my store directly.
            peer = mpi.world.rank ^ 1
            return float(buf.slot_view(peer, np.float64)[0])

        rets = returns_of(make_ctx_prog(body), nodes=1, cores=2, nprocs=2)
        assert rets == [1.5, 0.5]

    def test_round_robin_placement_node_major_regions(self):
        def body(mpi, ctx):
            buf = yield from ctx.allgather_buffer(8)
            yield from ctx.shm.barrier()
            return buf.offset_of_rank(mpi.world.rank)

        placement = Placement.round_robin(2, 2)
        rets = returns_of(
            make_ctx_prog(body), nodes=2, cores=2, placement=placement
        )
        # node 0 hosts world ranks 0,2 (slots 0,1); node 1 hosts 1,3.
        assert rets == [0, 16, 8, 24]
