"""Property tests for the closed-form model.

For every registered (op, algo) pair: predictions are finite and
positive, deterministic across calls, and non-decreasing in both the
message size and the rank count.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.model import predict
from repro.mpi.collectives import registry

from .conformance import CASES

_POF2_ONLY = {
    ("allgather", "recursive_doubling"),
    ("allreduce", "rabenseifner"),
    ("reduce_scatter", "recursive_halving"),
}

#: Message sizes spanning eager, rendezvous and pipeline regimes.
NBYTES = (1, 64, 4096, 65536, 1 << 20)


def _rank_grid(op: str, algo: str):
    """(nranks, ppn) points, ascending in nranks, honoring the pair's
    applicability constraints (single node for shm-only, multi-node
    for hierarchical/hybrid, power-of-two where required)."""
    if (op, algo) == ("barrier", "shm_flags"):
        return [(q, q) for q in (2, 4, 8, 16)]
    if algo.startswith("smp_") or algo == "multileader" \
            or op.startswith("hy_"):
        return [(16, 8), (32, 8), (64, 8), (128, 8)]
    if (op, algo) in _POF2_ONLY:
        return [(8, 8), (16, 8), (32, 8), (64, 8), (512, 8)]
    return [(8, 8), (24, 8), (48, 8), (96, 8), (520, 8)]


@pytest.mark.parametrize(
    "op,algo", CASES, ids=[f"{o}-{a}" for o, a in CASES]
)
@pytest.mark.parametrize("machine", ["hazel_hen", "vulcan"])
def test_finite_positive_deterministic(machine, op, algo):
    for nranks, ppn in _rank_grid(op, algo):
        for nbytes in NBYTES:
            t = predict(machine, None, op, algo, nranks, ppn, nbytes)
            assert math.isfinite(t) and t > 0.0, (
                f"{op}/{algo} p={nranks} n={nbytes}: {t}"
            )
            again = predict(machine, None, op, algo, nranks, ppn,
                            nbytes)
            assert again == t


@pytest.mark.parametrize(
    "op,algo", CASES, ids=[f"{o}-{a}" for o, a in CASES]
)
@pytest.mark.parametrize("machine", ["hazel_hen", "vulcan"])
def test_nondecreasing_in_nbytes(machine, op, algo):
    for nranks, ppn in _rank_grid(op, algo):
        prev = 0.0
        for nbytes in NBYTES:
            t = predict(machine, None, op, algo, nranks, ppn, nbytes)
            assert t >= prev, (
                f"{op}/{algo} p={nranks}: t({nbytes}) = {t} < {prev}"
            )
            prev = t


@pytest.mark.parametrize(
    "op,algo", CASES, ids=[f"{o}-{a}" for o, a in CASES]
)
@pytest.mark.parametrize("machine", ["hazel_hen", "vulcan"])
def test_nondecreasing_in_nranks(machine, op, algo):
    for nbytes in (64, 65536):
        prev = 0.0
        for nranks, ppn in _rank_grid(op, algo):
            t = predict(machine, None, op, algo, nranks, ppn, nbytes)
            assert t >= prev, (
                f"{op}/{algo} n={nbytes}: t(p={nranks}) = {t} < {prev}"
            )
            prev = t


def test_registry_and_cases_agree():
    registered = {
        (op, algo.name)
        for op in registry.ops()
        for algo in registry.algorithms_for(op)
    }
    assert registered == set(CASES)
