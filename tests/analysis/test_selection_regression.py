"""Regression pins for model-driven behavior.

``SNAPSHOT`` freezes the algorithm :class:`CostModelSelection` picks
per (topology, op, size class) on the three Fig configs: selection
drift caused by a model or tuning change must show up as an explicit
diff of this table, not as a silent behavior change.

The unit-consistency test closes the historical gap that motivated the
model delegation: ``Algorithm.cost`` used to return relative alpha-beta
scores, so comparing or summing them against simulated seconds was
meaningless.  Costs are now seconds, shared with the DES clock.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.model import predict_comm
from repro.mpi.collectives import registry
from repro.mpi.collectives.registry import CollRequest, CostModelSelection

from .conformance import (
    CASES,
    DEFAULT_TOL,
    MINIS,
    SIZES,
    TOLERANCES,
    _probe_comm,
    applicable,
    measure_des,
)

#: Ops exercised by the snapshot (every dispatchable collective).
SNAPSHOT_OPS = (
    "allgather", "allgatherv", "bcast", "gather", "gatherv", "scatter",
    "reduce", "allreduce", "reduce_scatter", "scan", "exscan",
    "alltoall", "barrier", "hy_allgather", "hy_bcast",
)

#: (mini, op, nbytes) -> algorithm CostModelSelection picks.
SNAPSHOT = {
    ("fig7", "allgather", 8): "recursive_doubling",
    ("fig7", "allgather", 2048): "ring",
    ("fig7", "allgather", 65536): "ring",
    ("fig7", "allgatherv", 8): "bruck_v",
    ("fig7", "allgatherv", 2048): "ring_v",
    ("fig7", "allgatherv", 65536): "ring_v",
    ("fig7", "bcast", 8): "binomial",
    ("fig7", "bcast", 2048): "binomial",
    ("fig7", "bcast", 65536): "binomial",
    ("fig7", "gather", 8): "linear",
    ("fig7", "gather", 2048): "linear",
    ("fig7", "gather", 65536): "linear",
    ("fig7", "gatherv", 8): "linear",
    ("fig7", "gatherv", 2048): "linear",
    ("fig7", "gatherv", 65536): "linear",
    ("fig7", "scatter", 8): "linear",
    ("fig7", "scatter", 2048): "linear",
    ("fig7", "scatter", 65536): "linear",
    ("fig7", "reduce", 8): "binomial",
    ("fig7", "reduce", 2048): "binomial",
    ("fig7", "reduce", 65536): "binomial",
    ("fig7", "allreduce", 8): "recursive_doubling",
    ("fig7", "allreduce", 2048): "rabenseifner",
    ("fig7", "allreduce", 65536): "rabenseifner",
    ("fig7", "reduce_scatter", 8): "recursive_halving",
    ("fig7", "reduce_scatter", 2048): "recursive_halving",
    ("fig7", "reduce_scatter", 65536): "recursive_halving",
    ("fig7", "scan", 8): "binomial",
    ("fig7", "scan", 2048): "binomial",
    ("fig7", "scan", 65536): "binomial",
    ("fig7", "exscan", 8): "binomial",
    ("fig7", "exscan", 2048): "binomial",
    ("fig7", "exscan", 65536): "binomial",
    ("fig7", "alltoall", 8): "bruck",
    ("fig7", "alltoall", 2048): "pairwise",
    ("fig7", "alltoall", 65536): "pairwise",
    ("fig7", "barrier", 8): "shm_flags",
    ("fig7", "barrier", 2048): "shm_flags",
    ("fig7", "barrier", 65536): "shm_flags",
    ("fig7", "hy_allgather", 8): "shared_window",
    ("fig7", "hy_allgather", 2048): "shared_window",
    ("fig7", "hy_allgather", 65536): "shared_window",
    ("fig7", "hy_bcast", 8): "shared_window",
    ("fig7", "hy_bcast", 2048): "shared_window",
    ("fig7", "hy_bcast", 65536): "shared_window",
    ("fig9", "allgather", 8): "recursive_doubling",
    ("fig9", "allgather", 2048): "recursive_doubling",
    ("fig9", "allgather", 65536): "ring",
    ("fig9", "allgatherv", 8): "smp_hierarchical",
    ("fig9", "allgatherv", 2048): "bruck_v",
    ("fig9", "allgatherv", 65536): "ring_v",
    ("fig9", "bcast", 8): "binomial",
    ("fig9", "bcast", 2048): "smp_hierarchical",
    ("fig9", "bcast", 65536): "binomial",
    ("fig9", "gather", 8): "linear",
    ("fig9", "gather", 2048): "linear",
    ("fig9", "gather", 65536): "linear",
    ("fig9", "gatherv", 8): "linear",
    ("fig9", "gatherv", 2048): "linear",
    ("fig9", "gatherv", 65536): "linear",
    ("fig9", "scatter", 8): "linear",
    ("fig9", "scatter", 2048): "linear",
    ("fig9", "scatter", 65536): "linear",
    ("fig9", "reduce", 8): "binomial",
    ("fig9", "reduce", 2048): "binomial",
    ("fig9", "reduce", 65536): "binomial",
    ("fig9", "allreduce", 8): "recursive_doubling",
    ("fig9", "allreduce", 2048): "recursive_doubling",
    ("fig9", "allreduce", 65536): "rabenseifner",
    ("fig9", "reduce_scatter", 8): "recursive_halving",
    ("fig9", "reduce_scatter", 2048): "recursive_halving",
    ("fig9", "reduce_scatter", 65536): "recursive_halving",
    ("fig9", "scan", 8): "binomial",
    ("fig9", "scan", 2048): "binomial",
    ("fig9", "scan", 65536): "binomial",
    ("fig9", "exscan", 8): "binomial",
    ("fig9", "exscan", 2048): "binomial",
    ("fig9", "exscan", 65536): "binomial",
    ("fig9", "alltoall", 8): "bruck",
    ("fig9", "alltoall", 2048): "pairwise",
    ("fig9", "alltoall", 65536): "pairwise",
    ("fig9", "barrier", 8): "smp_hierarchical",
    ("fig9", "barrier", 2048): "smp_hierarchical",
    ("fig9", "barrier", 65536): "smp_hierarchical",
    ("fig9", "hy_allgather", 8): "shared_window",
    ("fig9", "hy_allgather", 2048): "pipelined_ring",
    ("fig9", "hy_allgather", 65536): "shared_window",
    ("fig9", "hy_bcast", 8): "shared_window",
    ("fig9", "hy_bcast", 2048): "shared_window",
    ("fig9", "hy_bcast", 65536): "shared_window",
    ("fig10", "allgather", 8): "recursive_doubling",
    ("fig10", "allgather", 2048): "ring",
    ("fig10", "allgather", 65536): "ring",
    ("fig10", "allgatherv", 8): "smp_hierarchical",
    ("fig10", "allgatherv", 2048): "ring_v",
    ("fig10", "allgatherv", 65536): "ring_v",
    ("fig10", "bcast", 8): "smp_hierarchical",
    ("fig10", "bcast", 2048): "smp_hierarchical",
    ("fig10", "bcast", 65536): "scatter_allgather",
    ("fig10", "gather", 8): "linear",
    ("fig10", "gather", 2048): "linear",
    ("fig10", "gather", 65536): "linear",
    ("fig10", "gatherv", 8): "linear",
    ("fig10", "gatherv", 2048): "linear",
    ("fig10", "gatherv", 65536): "linear",
    ("fig10", "scatter", 8): "linear",
    ("fig10", "scatter", 2048): "linear",
    ("fig10", "scatter", 65536): "linear",
    ("fig10", "reduce", 8): "smp_hierarchical",
    ("fig10", "reduce", 2048): "smp_hierarchical",
    ("fig10", "reduce", 65536): "binomial",
    ("fig10", "allreduce", 8): "recursive_doubling",
    ("fig10", "allreduce", 2048): "recursive_doubling",
    ("fig10", "allreduce", 65536): "ring",
    ("fig10", "reduce_scatter", 8): "recursive_halving",
    ("fig10", "reduce_scatter", 2048): "recursive_halving",
    ("fig10", "reduce_scatter", 65536): "pairwise",
    ("fig10", "scan", 8): "binomial",
    ("fig10", "scan", 2048): "binomial",
    ("fig10", "scan", 65536): "binomial",
    ("fig10", "exscan", 8): "binomial",
    ("fig10", "exscan", 2048): "binomial",
    ("fig10", "exscan", 65536): "binomial",
    ("fig10", "alltoall", 8): "bruck",
    ("fig10", "alltoall", 2048): "pairwise",
    ("fig10", "alltoall", 65536): "pairwise",
    ("fig10", "barrier", 8): "smp_hierarchical",
    ("fig10", "barrier", 2048): "smp_hierarchical",
    ("fig10", "barrier", 65536): "smp_hierarchical",
    ("fig10", "hy_allgather", 8): "pipelined_ring",
    ("fig10", "hy_allgather", 2048): "shared_window",
    ("fig10", "hy_allgather", 65536): "shared_window",
    ("fig10", "hy_bcast", 8): "shared_window",
    ("fig10", "hy_bcast", 2048): "shared_window",
    ("fig10", "hy_bcast", 65536): "shared_window",
    ("fig9_2s", "allgather", 8): "recursive_doubling",
    ("fig9_2s", "allgather", 2048): "bruck",
    ("fig9_2s", "allgather", 65536): "ring",
    ("fig9_2s", "allgatherv", 8): "smp_hierarchical",
    ("fig9_2s", "allgatherv", 2048): "bruck_v",
    ("fig9_2s", "allgatherv", 65536): "ring_v",
    ("fig9_2s", "bcast", 8): "binomial",
    ("fig9_2s", "bcast", 2048): "smp_hierarchical",
    ("fig9_2s", "bcast", 65536): "binomial",
    ("fig9_2s", "gather", 8): "linear",
    ("fig9_2s", "gather", 2048): "linear",
    ("fig9_2s", "gather", 65536): "linear",
    ("fig9_2s", "gatherv", 8): "linear",
    ("fig9_2s", "gatherv", 2048): "linear",
    ("fig9_2s", "gatherv", 65536): "linear",
    ("fig9_2s", "scatter", 8): "linear",
    ("fig9_2s", "scatter", 2048): "linear",
    ("fig9_2s", "scatter", 65536): "linear",
    ("fig9_2s", "reduce", 8): "binomial",
    ("fig9_2s", "reduce", 2048): "binomial",
    ("fig9_2s", "reduce", 65536): "binomial",
    ("fig9_2s", "allreduce", 8): "recursive_doubling",
    ("fig9_2s", "allreduce", 2048): "recursive_doubling",
    ("fig9_2s", "allreduce", 65536): "rabenseifner",
    ("fig9_2s", "reduce_scatter", 8): "recursive_halving",
    ("fig9_2s", "reduce_scatter", 2048): "recursive_halving",
    ("fig9_2s", "reduce_scatter", 65536): "recursive_halving",
    ("fig9_2s", "scan", 8): "binomial",
    ("fig9_2s", "scan", 2048): "binomial",
    ("fig9_2s", "scan", 65536): "binomial",
    ("fig9_2s", "exscan", 8): "binomial",
    ("fig9_2s", "exscan", 2048): "binomial",
    ("fig9_2s", "exscan", 65536): "binomial",
    ("fig9_2s", "alltoall", 8): "bruck",
    ("fig9_2s", "alltoall", 2048): "pairwise",
    ("fig9_2s", "alltoall", 65536): "pairwise",
    ("fig9_2s", "barrier", 8): "smp_hierarchical",
    ("fig9_2s", "barrier", 2048): "smp_hierarchical",
    ("fig9_2s", "barrier", 65536): "smp_hierarchical",
    ("fig9_2s", "hy_allgather", 8): "shared_window",
    ("fig9_2s", "hy_allgather", 2048): "shared_window_3l",
    ("fig9_2s", "hy_allgather", 65536): "shared_window_3l",
    ("fig9_2s", "hy_bcast", 8): "shared_window",
    ("fig9_2s", "hy_bcast", 2048): "shared_window",
    ("fig9_2s", "hy_bcast", 65536): "shared_window",
    ("fig9_2s_cma", "allgather", 8): "recursive_doubling",
    ("fig9_2s_cma", "allgather", 2048): "bruck",
    ("fig9_2s_cma", "allgather", 65536): "ring",
    ("fig9_2s_cma", "allgatherv", 8): "bruck_v",
    ("fig9_2s_cma", "allgatherv", 2048): "bruck_v",
    ("fig9_2s_cma", "allgatherv", 65536): "ring_v",
    ("fig9_2s_cma", "bcast", 8): "binomial",
    ("fig9_2s_cma", "bcast", 2048): "binomial",
    ("fig9_2s_cma", "bcast", 65536): "scatter_allgather",
    ("fig9_2s_cma", "gather", 8): "linear",
    ("fig9_2s_cma", "gather", 2048): "linear",
    ("fig9_2s_cma", "gather", 65536): "linear",
    ("fig9_2s_cma", "gatherv", 8): "linear",
    ("fig9_2s_cma", "gatherv", 2048): "linear",
    ("fig9_2s_cma", "gatherv", 65536): "linear",
    ("fig9_2s_cma", "scatter", 8): "linear",
    ("fig9_2s_cma", "scatter", 2048): "linear",
    ("fig9_2s_cma", "scatter", 65536): "linear",
    ("fig9_2s_cma", "reduce", 8): "binomial",
    ("fig9_2s_cma", "reduce", 2048): "binomial",
    ("fig9_2s_cma", "reduce", 65536): "binomial",
    ("fig9_2s_cma", "allreduce", 8): "recursive_doubling",
    ("fig9_2s_cma", "allreduce", 2048): "recursive_doubling",
    ("fig9_2s_cma", "allreduce", 65536): "rabenseifner",
    ("fig9_2s_cma", "reduce_scatter", 8): "recursive_halving",
    ("fig9_2s_cma", "reduce_scatter", 2048): "recursive_halving",
    ("fig9_2s_cma", "reduce_scatter", 65536): "recursive_halving",
    ("fig9_2s_cma", "scan", 8): "binomial",
    ("fig9_2s_cma", "scan", 2048): "binomial",
    ("fig9_2s_cma", "scan", 65536): "binomial",
    ("fig9_2s_cma", "exscan", 8): "binomial",
    ("fig9_2s_cma", "exscan", 2048): "binomial",
    ("fig9_2s_cma", "exscan", 65536): "binomial",
    ("fig9_2s_cma", "alltoall", 8): "bruck",
    ("fig9_2s_cma", "alltoall", 2048): "pairwise",
    ("fig9_2s_cma", "alltoall", 65536): "pairwise",
    ("fig9_2s_cma", "barrier", 8): "smp_hierarchical",
    ("fig9_2s_cma", "barrier", 2048): "smp_hierarchical",
    ("fig9_2s_cma", "barrier", 65536): "smp_hierarchical",
    ("fig9_2s_cma", "hy_allgather", 8): "shared_window",
    ("fig9_2s_cma", "hy_allgather", 2048): "shared_window_3l",
    ("fig9_2s_cma", "hy_allgather", 65536): "shared_window_3l",
    ("fig9_2s_cma", "hy_bcast", 8): "shared_window",
    ("fig9_2s_cma", "hy_bcast", 2048): "shared_window",
    ("fig9_2s_cma", "hy_bcast", 65536): "shared_window",
    ("fig9_2s_pip", "allgather", 8): "recursive_doubling",
    ("fig9_2s_pip", "allgather", 2048): "recursive_doubling",
    ("fig9_2s_pip", "allgather", 65536): "ring",
    ("fig9_2s_pip", "allgatherv", 8): "smp_hierarchical",
    ("fig9_2s_pip", "allgatherv", 2048): "bruck_v",
    ("fig9_2s_pip", "allgatherv", 65536): "ring_v",
    ("fig9_2s_pip", "bcast", 8): "binomial",
    ("fig9_2s_pip", "bcast", 2048): "smp_hierarchical",
    ("fig9_2s_pip", "bcast", 65536): "scatter_allgather",
    ("fig9_2s_pip", "gather", 8): "linear",
    ("fig9_2s_pip", "gather", 2048): "linear",
    ("fig9_2s_pip", "gather", 65536): "linear",
    ("fig9_2s_pip", "gatherv", 8): "linear",
    ("fig9_2s_pip", "gatherv", 2048): "linear",
    ("fig9_2s_pip", "gatherv", 65536): "linear",
    ("fig9_2s_pip", "scatter", 8): "linear",
    ("fig9_2s_pip", "scatter", 2048): "linear",
    ("fig9_2s_pip", "scatter", 65536): "linear",
    ("fig9_2s_pip", "reduce", 8): "binomial",
    ("fig9_2s_pip", "reduce", 2048): "binomial",
    ("fig9_2s_pip", "reduce", 65536): "binomial",
    ("fig9_2s_pip", "allreduce", 8): "recursive_doubling",
    ("fig9_2s_pip", "allreduce", 2048): "recursive_doubling",
    ("fig9_2s_pip", "allreduce", 65536): "ring",
    ("fig9_2s_pip", "reduce_scatter", 8): "recursive_halving",
    ("fig9_2s_pip", "reduce_scatter", 2048): "recursive_halving",
    ("fig9_2s_pip", "reduce_scatter", 65536): "recursive_halving",
    ("fig9_2s_pip", "scan", 8): "binomial",
    ("fig9_2s_pip", "scan", 2048): "binomial",
    ("fig9_2s_pip", "scan", 65536): "binomial",
    ("fig9_2s_pip", "exscan", 8): "binomial",
    ("fig9_2s_pip", "exscan", 2048): "binomial",
    ("fig9_2s_pip", "exscan", 65536): "binomial",
    ("fig9_2s_pip", "alltoall", 8): "bruck",
    ("fig9_2s_pip", "alltoall", 2048): "pairwise",
    ("fig9_2s_pip", "alltoall", 65536): "pairwise",
    ("fig9_2s_pip", "barrier", 8): "smp_hierarchical",
    ("fig9_2s_pip", "barrier", 2048): "smp_hierarchical",
    ("fig9_2s_pip", "barrier", 65536): "smp_hierarchical",
    ("fig9_2s_pip", "hy_allgather", 8): "shared_window",
    ("fig9_2s_pip", "hy_allgather", 2048): "shared_window_3l",
    ("fig9_2s_pip", "hy_allgather", 65536): "shared_window_3l",
    ("fig9_2s_pip", "hy_bcast", 8): "shared_window",
    ("fig9_2s_pip", "hy_bcast", 2048): "shared_window",
    ("fig9_2s_pip", "hy_bcast", 65536): "shared_window",
}


@pytest.mark.parametrize("mini", list(MINIS))
def test_cost_model_selection_snapshot(mini):
    policy = CostModelSelection()
    comm = _probe_comm(mini)
    got = {}
    for op in SNAPSHOT_OPS:
        for nbytes in SIZES:
            req = CollRequest(op=op, nbytes=nbytes,
                              total=nbytes * comm.size, root=0)
            got[(mini, op, nbytes)] = policy.select(comm, req).name
    expected = {k: v for k, v in SNAPSHOT.items() if k[0] == mini}
    assert got == expected


def test_snapshot_covers_all_ops():
    assert {op for _m, op, _n in SNAPSHOT} == set(SNAPSHOT_OPS)
    assert set(SNAPSHOT_OPS) == set(registry.ops())


# -- unit consistency: Algorithm.cost is seconds ---------------------------

@pytest.mark.parametrize("mini", list(MINIS))
def test_registry_cost_delegates_to_model(mini):
    """Every Algorithm.cost equals the model's prediction exactly."""
    comm = _probe_comm(mini)
    for op, algo in CASES:
        if not applicable(mini, op, algo):
            continue
        for nbytes in SIZES:
            req = CollRequest(op=op, nbytes=nbytes,
                              total=nbytes * comm.size, root=0)
            cost = registry.get_algorithm(op, algo).cost(comm, req)
            assert cost == predict_comm(comm, req, algo)
            assert math.isfinite(cost) and cost > 0.0


def test_registry_cost_unit_is_simulated_seconds():
    """Costs share a unit with the DES clock: for each registered pair,
    the registry estimate of a 2 KiB call on its first applicable mini
    is within the conformance tolerance of the measured latency."""
    for op, algo in CASES:
        mini = next(m for m in MINIS if applicable(m, op, algo))
        comm = _probe_comm(mini)
        nbytes = 0 if op == "barrier" else 2048
        req = CollRequest(op=op, nbytes=nbytes,
                          total=nbytes * comm.size, root=0)
        cost = registry.get_algorithm(op, algo).cost(comm, req)
        des = measure_des(mini, op, algo, nbytes)
        tol = TOLERANCES.get((op, algo), DEFAULT_TOL)
        assert abs(cost - des) <= tol * des, (
            f"{op}/{algo} on {mini}: cost {cost * 1e6:.2f} us is not "
            f"simulated-seconds-consistent with DES {des * 1e6:.2f} us"
        )
