"""Model-vs-simulator conformance suite.

Every registered (op, algo) pair is priced by the closed-form model
and measured on the DES on the miniature Fig 7/9/10 configurations;
relative divergence must stay inside the documented per-algorithm
tolerance (worst case) and the 10% median target.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.model import MODEL_FORMS
from repro.mpi.collectives import registry

from .conformance import (
    CASES,
    DEFAULT_TOL,
    MEDIAN_TOL,
    MINIS,
    SIZES,
    TOLERANCES,
    applicable,
    divergence,
)


def _cells():
    for op, algo in CASES:
        for mini in MINIS:
            yield op, algo, mini


_CELLS = list(_cells())


def test_every_registered_pair_is_covered():
    registered = {
        (op, algo.name)
        for op in registry.ops()
        for algo in registry.algorithms_for(op)
    }
    assert registered == set(CASES)
    assert registered == set(MODEL_FORMS), (
        "repro.analysis.model must provide a closed form for every "
        "registered (op, algo) pair"
    )


def test_every_pair_runs_somewhere():
    """Each (op, algo) must be applicable on at least one mini config,
    otherwise the conformance suite silently skips it."""
    for op, algo in CASES:
        assert any(applicable(mini, op, algo) for mini in MINIS), (
            f"{op}/{algo} is not applicable on any mini config"
        )


@pytest.mark.parametrize(
    "op,algo,mini", _CELLS, ids=[f"{o}-{a}-{m}" for o, a, m in _CELLS]
)
def test_model_matches_des(op, algo, mini):
    if not applicable(mini, op, algo):
        pytest.skip(f"{op}/{algo} not applicable on {mini}")
    tol = TOLERANCES.get((op, algo), DEFAULT_TOL)
    sizes = (0,) if op == "barrier" else SIZES
    for nbytes in sizes:
        d, model_s, des_s = divergence(mini, op, algo, nbytes)
        assert d <= tol, (
            f"{op}/{algo} on {mini} at {nbytes} B: model "
            f"{model_s * 1e6:.2f} us vs DES {des_s * 1e6:.2f} us "
            f"({d:.1%} > {tol:.0%})"
        )


@pytest.mark.parametrize(
    "op,algo", CASES, ids=[f"{o}-{a}" for o, a in CASES]
)
def test_per_algorithm_median(op, algo):
    """Each algorithm's median divergence across all applicable minis
    and sizes stays within the 10% target."""
    divs = []
    for mini in MINIS:
        if not applicable(mini, op, algo):
            continue
        sizes = (0,) if op == "barrier" else SIZES
        divs.extend(divergence(mini, op, algo, n)[0] for n in sizes)
    assert divs, f"{op}/{algo} has no applicable mini config"
    assert statistics.median(divs) <= MEDIAN_TOL


def test_median_divergence_across_suite():
    """Issue acceptance: <=10% median divergence over all cells."""
    divs = []
    for op, algo, mini in _CELLS:
        if not applicable(mini, op, algo):
            continue
        sizes = (0,) if op == "barrier" else SIZES
        for nbytes in sizes:
            divs.append(divergence(mini, op, algo, nbytes)[0])
    assert statistics.median(divs) <= MEDIAN_TOL
