"""Hidden/exposed communication analysis and the model's overlap form."""

from __future__ import annotations

import pytest

from repro.analysis.critical_path import (
    format_overlap_report,
    overlap_report,
)
from repro.analysis.model import predict_overlap
from repro.apps.summa import SummaConfig, summa_program
from repro.machine import presets
from repro.machine.placement import Placement
from repro.mpi.runtime import run_program


def _traced_summa(overlap: bool):
    spec = presets.hazel_hen(num_nodes=4)
    cfg = SummaConfig(block=128, variant="ori", overlap=overlap)
    return run_program(
        spec, 16, summa_program, payload="cost-only",
        placement=Placement.block(4, 4), trace="dispatch+compute",
        program_kwargs={"config": cfg},
    )


class TestOverlapReport:
    @pytest.fixture(scope="class")
    def blocking(self):
        return _traced_summa(overlap=False)

    @pytest.fixture(scope="class")
    def overlapped(self):
        return _traced_summa(overlap=True)

    def test_blocking_run_hides_nothing(self, blocking):
        rep = overlap_report(blocking.trace, total_time=blocking.elapsed)
        assert rep.hidden == pytest.approx(0.0, abs=1e-12)
        assert rep.exposed == pytest.approx(rep.comm)
        assert rep.overlap_pct == pytest.approx(0.0, abs=1e-6)

    def test_overlap_run_hides_communication(self, blocking, overlapped):
        rep = overlap_report(overlapped.trace,
                             total_time=overlapped.elapsed)
        assert rep.hidden > 0
        assert rep.overlap_pct > 50.0
        assert rep.hidden + rep.exposed == pytest.approx(rep.comm)
        # Hiding communication is why the run got faster.
        assert overlapped.elapsed < blocking.elapsed

    def test_per_rank_consistency(self, overlapped):
        rep = overlap_report(overlapped.trace)
        assert len(rep.per_rank) == 16
        for stats in rep.per_rank.values():
            assert stats["hidden"] >= 0
            assert stats["exposed"] >= -1e-12
            assert stats["hidden"] <= stats["compute"] + 1e-12
            assert (stats["hidden"] + stats["exposed"]
                    == pytest.approx(stats["comm"]))

    def test_format(self, overlapped):
        rep = overlap_report(overlapped.trace)
        text = format_overlap_report(rep)
        assert "overlap:" in text
        assert text.count("\n") >= 16  # header + one row per rank

    def test_empty_trace(self):
        rep = overlap_report([])
        assert rep.rank == -1
        assert rep.comm == 0.0 and rep.hidden == 0.0


class TestPredictOverlap:
    ARGS = ("hazel_hen", None, "hy_allgather", "shared_window", 16, 4,
            64 * 1024)

    def test_bounds(self):
        out = predict_overlap(*self.ARGS)
        assert 0.0 <= out["exposed_s"] <= out["total_s"]
        assert out["hidden_s"] == pytest.approx(
            out["total_s"] - out["exposed_s"]
        )
        assert 0.0 <= out["overlap_pct"] <= 100.0

    def test_monotone_in_compute_grain(self):
        total = predict_overlap(*self.ARGS)["total_s"]
        exposed = [
            predict_overlap(*self.ARGS, compute_s=total * f)["exposed_s"]
            for f in (0.0, 0.25, 0.5, 1.0)
        ]
        assert exposed == sorted(exposed, reverse=True)
        # No compute at all -> everything is exposed.
        assert exposed[0] == pytest.approx(total)

    def test_alpha_floor_never_hidden(self):
        out = predict_overlap(*self.ARGS, compute_s=1.0)  # a full second
        assert out["exposed_s"] > 0
        assert out["exposed_s"] < out["total_s"]

    def test_matches_simulated_latency(self):
        """The blocking total equals the simulator's hybrid latency for
        the same config (the committed BENCH_overlap hybrid/64KiB
        point), so the overlap split starts from a conformant base."""
        out = predict_overlap(*self.ARGS)
        assert out["total_s"] * 1e6 == pytest.approx(93.52, rel=0.05)
